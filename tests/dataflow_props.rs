//! Differential equivalence for the analysis-driven optimizations:
//! on randomly generated circuits, the netlist rewritten by the
//! known-bits/range passes (analysis folding + width narrowing) must
//! simulate identically to the unoptimized netlist under random
//! stimulus — every output, every cycle. The full default pipeline is
//! checked alongside, so interactions between the semantic passes and
//! the structural ones (const-prop, forwarding, CSE, DCE) are covered
//! too.

use essent::netlist::opt::{optimize, OptConfig};
use essent::prelude::*;
use essent::sim::testgen::gen_circuit;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Only the passes introduced by the dataflow analysis, so a failure
/// implicates them directly rather than the whole pipeline.
fn analysis_only() -> OptConfig {
    OptConfig {
        analysis_fold: true,
        narrow: true,
        rounds: 3,
        ..OptConfig::none()
    }
}

fn check_equivalence(seed: u64, cycles: u64) {
    let circuit = gen_circuit(seed);
    let reference = essent::compile_unoptimized(&circuit.source).expect("compiles");
    let mut semantic = reference.clone();
    optimize(&mut semantic, &analysis_only());
    let mut full = reference.clone();
    optimize(&mut full, &OptConfig::default());

    let config = EngineConfig::default();
    let mut sims = [
        FullCycleSim::new(&reference, &config),
        FullCycleSim::new(&semantic, &config),
        FullCycleSim::new(&full, &config),
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xda7af10f);
    for cycle in 0..cycles {
        for (name, width) in &circuit.inputs {
            let v = Bits::from_limbs(vec![rng.gen(), rng.gen()], *width);
            for sim in &mut sims {
                sim.poke(name, v.clone());
            }
        }
        for sim in &mut sims {
            sim.step(1);
        }
        for out in &circuit.outputs {
            let want = sims[0].peek(out);
            prop_assert_eq!(
                &sims[1].peek(out),
                &want,
                "analysis-only diverges on `{}` at cycle {} (seed {})",
                out,
                cycle,
                seed
            );
            prop_assert_eq!(
                &sims[2].peek(out),
                &want,
                "full pipeline diverges on `{}` at cycle {} (seed {})",
                out,
                cycle,
                seed
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits, random stimulus: the analysis passes are
    /// behavior-preserving.
    #[test]
    fn analysis_passes_preserve_behavior(seed in any::<u64>()) {
        check_equivalence(seed, 30);
    }
}

/// A fixed deterministic sweep on top of the random one, so CI failures
/// reproduce without a proptest regression file.
#[test]
fn analysis_passes_preserve_behavior_fixed_seeds() {
    for seed in 0..40u64 {
        check_equivalence(seed, 30);
    }
}
