//! Robustness and determinism tests across the pipeline.

use essent::core::plan::{extended_dag, CcssPlan};
use essent::prelude::*;
use essent::sim::testgen::gen_circuit;

/// Partitioning and planning are fully deterministic: building twice from
/// the same netlist yields identical schedules, members, and triggers.
#[test]
fn plans_are_deterministic() {
    for seed in [3u64, 77, 1234] {
        let circuit = gen_circuit(seed);
        let netlist = essent::compile(&circuit.source).unwrap();
        let a = CcssPlan::build(&netlist, 8);
        let b = CcssPlan::build(&netlist, 8);
        assert_eq!(a.sched_of_signal, b.sched_of_signal, "seed {seed}");
        assert_eq!(a.partitions.len(), b.partitions.len());
        for (pa, pb) in a.partitions.iter().zip(&b.partitions) {
            assert_eq!(pa.members, pb.members);
            assert_eq!(
                pa.outputs
                    .iter()
                    .map(|o| (o.signal, o.consumers.clone()))
                    .collect::<Vec<_>>(),
                pb.outputs
                    .iter()
                    .map(|o| (o.signal, o.consumers.clone()))
                    .collect::<Vec<_>>(),
            );
        }
    }
}

/// Zero-width signals flow through the whole pipeline.
#[test]
fn zero_width_signals_supported() {
    let src = "circuit Z :\n  module Z :\n    input a : UInt<0>\n    input b : UInt<4>\n    output o : UInt<5>\n    output z : UInt<1>\n    o <= add(pad(a, 1), b)\n    z <= orr(a)\n";
    let netlist = essent::compile(src).unwrap();
    let mut sim = EssentSim::new(&netlist, &EngineConfig::default());
    sim.poke("b", Bits::from_u64(7, 4));
    sim.step(1);
    assert_eq!(sim.peek("o").to_u64(), Some(7));
    assert_eq!(sim.peek("z").to_u64(), Some(0));
}

/// Step after halt is a no-op returning 0 for every engine.
#[test]
fn step_after_halt_is_noop() {
    let src = "circuit H :\n  module H :\n    input clock : Clock\n    input reset : UInt<1>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    stop(clock, eq(r, UInt<4>(2)), 5)\n";
    let netlist = essent::compile(src).unwrap();
    let engines: Vec<Box<dyn Simulator>> = vec![
        Box::new(FullCycleSim::new(&netlist, &EngineConfig::default())),
        Box::new(EssentSim::new(&netlist, &EngineConfig::default())),
        Box::new(EventDrivenSim::new(&netlist, &EngineConfig::default())),
        Box::new(essent::sim::ParEssentSim::new(
            &netlist,
            &EngineConfig::default(),
            2,
        )),
    ];
    for mut sim in engines {
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.step(50);
        assert_eq!(sim.halted(), Some(5), "{}", sim.engine_name());
        let at = sim.cycle();
        assert_eq!(sim.step(10), 0, "{}", sim.engine_name());
        assert_eq!(sim.cycle(), at);
    }
}

/// Poking a non-input panics with a clear message.
#[test]
#[should_panic(expected = "is not an input")]
fn poking_non_input_panics() {
    let src =
        "circuit P :\n  module P :\n    input a : UInt<4>\n    output o : UInt<4>\n    o <= a\n";
    let netlist = essent::compile(src).unwrap();
    let mut sim = EssentSim::new(&netlist, &EngineConfig::default());
    sim.poke("o", Bits::from_u64(1, 4));
}

/// Frontend errors carry actionable messages.
#[test]
fn frontend_error_messages() {
    let cases: Vec<(&str, &str)> = vec![
        ("circuit A :\n  module A :\n    input a : UInt<4>\n    output o : UInt<4>\n    o <= unknown_signal\n", "undeclared"),
        ("circuit B :\n  module C :\n    skip\n", "no module"),
        ("circuit D :\n  module D :\n    wire w : UInt<4>\n    w <= bogus_op(w)\n", "unknown operation"),
        ("circuit E :\n  module E :\n    output o : UInt<1>\n    wire x : UInt<1>\n    wire y : UInt<1>\n    x <= not(y)\n    y <= not(x)\n    o <= x\n", "cycle"),
    ];
    for (src, needle) in cases {
        let err = essent::compile(src).expect_err(src).to_string();
        assert!(err.contains(needle), "expected `{needle}` in error `{err}`");
    }
}

/// The optimized netlist is never larger than the raw netlist, and both
/// simulate identically on random circuits (spot check beyond the
/// property suite).
#[test]
fn optimizer_shrinks_and_preserves() {
    for seed in [11u64, 99, 4242] {
        let circuit = gen_circuit(seed);
        let raw = essent::compile_unoptimized(&circuit.source).unwrap();
        let opt = essent::compile(&circuit.source).unwrap();
        assert!(
            opt.signal_count() <= raw.signal_count(),
            "seed {seed}: optimizer grew the netlist"
        );
        let (dag, _) = extended_dag(&opt);
        assert!(essent::core::partition::partition(&dag, 8)
            .validate(&dag)
            .is_ok());
    }
}
