//! Cross-crate integration tests: FIRRTL text through the full pipeline
//! (parse → lower → netlist → optimize → partition → simulate) on real
//! designs, under every engine.

use essent::designs::soc::{generate_soc, SocConfig};
use essent::designs::workloads::{dhrystone, matmul, pchase, run_workload};
use essent::designs::{asm, small};
use essent::prelude::*;

fn engines_for(netlist: &Netlist) -> Vec<Box<dyn Simulator>> {
    let config = EngineConfig::default();
    vec![
        Box::new(FullCycleSim::new(netlist, &config)),
        Box::new(EssentSim::new(netlist, &config)),
        Box::new(EssentSim::new(
            netlist,
            &EngineConfig {
                c_p: 2,
                ..config.clone()
            },
        )),
        Box::new(EventDrivenSim::new(netlist, &config)),
        Box::new(EventDrivenSim::new(
            netlist,
            &EngineConfig {
                event_levelized: false,
                ..config
            },
        )),
    ]
}

#[test]
fn gcd_design_on_all_engines() {
    let netlist = essent::compile(&small::gcd(24)).unwrap();
    for mut sim in engines_for(&netlist) {
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.poke("start", Bits::from_u64(1, 1));
        sim.poke("a", Bits::from_u64(1071, 24));
        sim.poke("b", Bits::from_u64(462, 24));
        sim.step(1);
        sim.poke("start", Bits::from_u64(0, 1));
        for _ in 0..4000 {
            sim.step(1);
            if sim.peek("done").to_u64() == Some(1) {
                break;
            }
        }
        assert_eq!(
            sim.peek("result").to_u64(),
            Some(21),
            "gcd(1071, 462) on {}",
            sim.engine_name()
        );
    }
}

#[test]
fn unoptimized_and_optimized_netlists_agree() {
    let src = small::fir(16, 6);
    let optimized = essent::compile(&src).unwrap();
    let unoptimized = essent::compile_unoptimized(&src).unwrap();
    let mut a = EssentSim::new(&optimized, &EngineConfig::default());
    let mut b = EssentSim::new(&unoptimized, &EngineConfig::default());
    for (sim, label) in [(&mut a, "opt"), (&mut b, "unopt")] {
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.poke("en", Bits::from_u64(1, 1));
        let _ = label;
    }
    for cycle in 0..50u64 {
        let x = Bits::from_u64((cycle * 31 + 7) & 0xffff, 16);
        a.poke("x", x.clone());
        b.poke("x", x);
        a.step(1);
        b.step(1);
        assert_eq!(a.peek("y"), b.peek("y"), "cycle {cycle}");
    }
}

#[test]
fn all_three_workloads_complete_and_agree_on_tiny_soc() {
    let netlist = essent::compile(&generate_soc(&SocConfig::tiny())).unwrap();
    for workload in [
        dhrystone(2).unwrap(),
        matmul(3, 1).unwrap(),
        pchase(64, 300).unwrap(),
    ] {
        let mut results = Vec::new();
        for mut sim in engines_for(&netlist) {
            let run = run_workload(sim.as_mut(), &workload, 2_000_000);
            assert!(
                run.finished,
                "{} stalled on {}",
                sim.engine_name(),
                workload.name
            );
            results.push((run.cycles, run.instret, run.tohost));
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "{}: engines disagree: {results:?}",
            workload.name
        );
    }
}

#[test]
fn soc_putchar_printf_reaches_log() {
    // Print "OK" then terminate.
    let program = essent::designs::workloads::Workload {
        name: "hello".into(),
        words: asm::assemble(
            "    lui t6, 0x80000\n    li t0, 79\n    sw t0, 4(t6)\n    li t0, 75\n    sw t0, 4(t6)\n    li a0, 0\n    sw a0, 0(t6)\nhalt:\n    j halt\n",
        )
        .unwrap(),
    };
    let netlist = essent::compile(&generate_soc(&SocConfig::tiny())).unwrap();
    let mut sim = EssentSim::new(&netlist, &EngineConfig::default());
    let run = run_workload(&mut sim, &program, 100_000);
    assert!(run.finished);
    assert_eq!(sim.printf_log().join(""), "OK");
}

#[test]
fn essent_skips_idle_soc_lanes() {
    // The lanes tick rarely; ESSENT's evaluated ops per cycle must be a
    // small fraction of the design while the core chases pointers.
    let netlist = essent::compile(&generate_soc(&SocConfig::r16())).unwrap();
    let workload = pchase(256, 2_000).unwrap();
    let mut sim = EssentSim::new(
        &netlist,
        &EngineConfig {
            capture_printf: false,
            ..EngineConfig::default()
        },
    );
    let run = run_workload(&mut sim, &workload, 1_000_000);
    assert!(run.finished);
    let c = sim.counters();
    let effective = c.ops_evaluated as f64 / (c.cycles as f64 * sim.full_steps_per_cycle() as f64);
    assert!(
        effective < 0.25,
        "effective activity factor {effective:.3} should be far below 1"
    );
}

#[test]
fn vcd_dump_of_soc_is_well_formed() {
    use essent::sim::vcd::VcdWriter;
    let netlist = essent::compile(&generate_soc(&SocConfig::tiny())).unwrap();
    let mut sim = FullCycleSim::new(&netlist, &EngineConfig::default());
    let mut buf = Vec::new();
    let mut vcd = VcdWriter::new(&mut buf, &netlist, "soc").unwrap();
    sim.poke("reset", Bits::from_u64(1, 1));
    for t in 0..20 {
        sim.step(1);
        vcd.sample(sim.machine(), t).unwrap();
    }
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("$enddefinitions"));
    assert!(text.contains("#19"));
}
