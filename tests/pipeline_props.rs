//! Pipeline-level property tests over randomly generated circuits:
//! printer round-trips, plan invariants at arbitrary `C_p`, and
//! optimization behavioral equivalence.

use essent::core::partition::partition;
use essent::core::plan::{extended_dag, CcssPlan, PlanOptions};
use essent::prelude::*;
use essent::sim::testgen::gen_circuit;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(parse(x)) reparses to the identical AST for arbitrary
    /// generated circuits.
    #[test]
    fn printer_roundtrip_on_random_circuits(seed in any::<u64>()) {
        let circuit = gen_circuit(seed);
        let ast1 = essent::firrtl::parse(&circuit.source).expect("parses");
        let printed = essent::firrtl::print_circuit(&ast1);
        let ast2 = essent::firrtl::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(ast1, ast2);
    }

    /// The CCSS plan validates on random circuits across C_p, with and
    /// without state elision, on optimized and unoptimized netlists.
    #[test]
    fn plan_invariants_on_random_circuits(seed in any::<u64>(), cp in 1usize..64, elide in any::<bool>(), optimize in any::<bool>()) {
        let circuit = gen_circuit(seed);
        let netlist = if optimize {
            essent::compile(&circuit.source).expect("compiles")
        } else {
            essent::compile_unoptimized(&circuit.source).expect("compiles")
        };
        let (dag, writes) = extended_dag(&netlist);
        let parts = partition(&dag, cp);
        prop_assert!(parts.validate(&dag).is_ok());
        let plan = CcssPlan::from_partitioning(
            &netlist,
            &dag,
            &writes,
            &parts,
            PlanOptions { elide_state: elide, elide_mem: elide },
        );
        if let Err(e) = plan.validate(&netlist) {
            prop_assert!(false, "plan invalid (cp={}, elide={}): {}", cp, elide, e);
        }
    }

    /// The lowered form of a random circuit simulates identically to the
    /// printed-and-relowered form (printer + passes are semantics-
    /// preserving end to end).
    #[test]
    fn reprint_preserves_behavior(seed in 0u64..500) {
        let circuit = gen_circuit(seed);
        let direct = essent::compile(&circuit.source).expect("compiles");
        let reprinted = essent::firrtl::print_circuit(
            &essent::firrtl::parse(&circuit.source).expect("parses"),
        );
        let via_print = essent::compile(&reprinted).expect("compiles after reprint");

        let mut a = FullCycleSim::new(&direct, &EngineConfig::default());
        let mut b = FullCycleSim::new(&via_print, &EngineConfig::default());
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..10u64 {
            for (name, width) in &circuit.inputs {
                let v = Bits::from_limbs(vec![rng.gen(), rng.gen()], *width);
                a.poke(name, v.clone());
                b.poke(name, v);
            }
            a.step(1);
            b.step(1);
            for out in &circuit.outputs {
                prop_assert_eq!(a.peek(out), b.peek(out));
            }
        }
    }
}
