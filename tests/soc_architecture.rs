//! Architectural tests of the generated SoC: each RV32IM instruction
//! class is exercised by a focused program with a known result, run under
//! the ESSENT engine.

use essent::designs::asm::assemble;
use essent::designs::soc::{generate_soc, SocConfig};
use essent::designs::workloads::{run_workload, Workload};
use essent::prelude::*;

fn run(asm: &str) -> u64 {
    let program = Workload {
        name: "t".into(),
        words: assemble(&format!(
            "    lui t6, 0x80000\n{asm}    sw a0, 0(t6)\nhalt:\n    j halt\n"
        ))
        .unwrap(),
    };
    let netlist = essent::compile(&generate_soc(&SocConfig::tiny())).unwrap();
    let mut sim = EssentSim::new(&netlist, &EngineConfig::default());
    let result = run_workload(&mut sim, &program, 500_000);
    assert!(result.finished, "program did not reach tohost");
    result.tohost
}

#[test]
fn alu_register_ops() {
    assert_eq!(
        run("    li t0, 12\n    li t1, 10\n    add a0, t0, t1\n"),
        22
    );
    assert_eq!(run("    li t0, 12\n    li t1, 10\n    sub a0, t0, t1\n"), 2);
    assert_eq!(
        run("    li t0, 0b1100\n    li t1, 0b1010\n    and a0, t0, t1\n"),
        0b1000
    );
    assert_eq!(
        run("    li t0, 0b1100\n    li t1, 0b1010\n    or a0, t0, t1\n"),
        0b1110
    );
    assert_eq!(
        run("    li t0, 0b1100\n    li t1, 0b1010\n    xor a0, t0, t1\n"),
        0b0110
    );
}

#[test]
fn shifts_and_comparisons() {
    assert_eq!(
        run("    li t0, 1\n    li t1, 12\n    sll a0, t0, t1\n"),
        1 << 12
    );
    assert_eq!(run("    li t0, 0x80\n    srli a0, t0, 3\n"), 0x10);
    // sra on a negative value keeps the sign.
    assert_eq!(
        run("    li t0, -16\n    srai a0, t0, 2\n") as u32,
        (-4i32) as u32
    );
    assert_eq!(run("    li t0, -1\n    li t1, 1\n    slt a0, t0, t1\n"), 1);
    assert_eq!(run("    li t0, -1\n    li t1, 1\n    sltu a0, t0, t1\n"), 0);
}

#[test]
fn upper_immediates_and_jumps() {
    assert_eq!(run("    lui a0, 0x12345\n    srli a0, a0, 12\n"), 0x12345);
    // auipc at pc=8 (after the 2-instruction prologue... lui t6 is 1 instr):
    // just check auipc+jal linkage round-trips through a function.
    assert_eq!(
        run("    li a0, 5\n    jal ra, f\n    j after\nf:\n    addi a0, a0, 7\n    ret\nafter:\n"),
        12
    );
}

#[test]
fn mult_div_semantics() {
    assert_eq!(
        run("    li t0, -7\n    li t1, 6\n    mul a0, t0, t1\n") as u32,
        (-42i32) as u32
    );
    // mulh of two large signed values.
    assert_eq!(
        run("    li t0, 0x10000\n    li t1, 0x10000\n    mulh a0, t0, t1\n"),
        1
    );
    assert_eq!(
        run("    li t0, 100\n    li t1, 7\n    divu a0, t0, t1\n"),
        14
    );
    assert_eq!(
        run("    li t0, 100\n    li t1, 7\n    remu a0, t0, t1\n"),
        2
    );
    // RISC-V: division by zero yields all ones.
    assert_eq!(
        run("    li t0, 5\n    li t1, 0\n    div a0, t0, t1\n") as u32,
        u32::MAX
    );
    assert_eq!(run("    li t0, 5\n    li t1, 0\n    rem a0, t0, t1\n"), 5);
}

#[test]
fn branch_directions() {
    // Loop with bge exit and bltu wraparound check.
    assert_eq!(
        run("    li a0, 0\n    li t0, 0\nl:\n    addi a0, a0, 2\n    addi t0, t0, 1\n    li t1, 5\n    blt t0, t1, l\n"),
        10
    );
    assert_eq!(
        run("    li t0, -1\n    li t1, 1\n    bltu t1, t0, u_taken\n    li a0, 0\n    j done\nu_taken:\n    li a0, 1\ndone:\n"),
        1
    );
}

#[test]
fn memory_word_ops_and_x0() {
    assert_eq!(
        run("    li t0, 0xabc\n    sw t0, 0x100(zero)\n    lw a0, 0x100(zero)\n"),
        0xabc
    );
    // Writes to x0 are discarded.
    assert_eq!(run("    li x0, 99\n    mv a0, x0\n"), 0);
}

#[test]
fn engines_agree_on_every_instruction_program() {
    // One mixed program under all engines, comparing cycles and result.
    let asm = "    li a0, 1\n    li t0, 10\nl:\n    mul a0, a0, t0\n    srli a0, a0, 1\n    addi t0, t0, -1\n    sw a0, 0x40(zero)\n    lw a0, 0x40(zero)\n    bnez t0, l\n";
    let program = Workload {
        name: "mix".into(),
        words: assemble(&format!(
            "    lui t6, 0x80000\n{asm}    sw a0, 0(t6)\nhalt:\n    j halt\n"
        ))
        .unwrap(),
    };
    let netlist = essent::compile(&generate_soc(&SocConfig::tiny())).unwrap();
    let config = EngineConfig::default();
    let mut results = Vec::new();
    let engines: Vec<Box<dyn Simulator>> = vec![
        Box::new(FullCycleSim::new(&netlist, &config)),
        Box::new(EssentSim::new(&netlist, &config)),
        Box::new(EventDrivenSim::new(&netlist, &config)),
        Box::new(essent::sim::ParEssentSim::new(&netlist, &config, 2)),
    ];
    for mut sim in engines {
        let r = run_workload(sim.as_mut(), &program, 500_000);
        assert!(r.finished);
        results.push((r.cycles, r.instret, r.tohost));
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}
