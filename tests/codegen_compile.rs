//! Integration test of the C++ emitter: golden structure checks always
//! run; when a host C++ compiler is available the generated simulator is
//! compiled and executed and must reproduce the interpreter's results.

use essent::designs::small;
use essent::prelude::*;
use essent::sim::codegen::emit_cpp;
use std::process::Command;

fn find_cxx() -> Option<&'static str> {
    ["c++", "g++", "clang++"]
        .into_iter()
        .find(|&cxx| {
            Command::new(cxx)
                .arg("--version")
                .output()
                .map(|o| o.status.success())
                .unwrap_or(false)
        })
        .map(|v| v as _)
}

#[test]
fn generated_cpp_has_ccss_structure() {
    let netlist = essent::compile(&small::gcd(16)).unwrap();
    let cpp = emit_cpp(&netlist, &EngineConfig::default()).unwrap();
    for needle in ["struct gcd", "void eval()", "void cycle()", "bool flags["] {
        assert!(cpp.contains(needle), "missing `{needle}`:\n{cpp}");
    }
}

#[test]
fn generated_cpp_compiles_and_matches_interpreter() {
    let Some(cxx) = find_cxx() else {
        eprintln!("no C++ compiler found; skipping compile-and-run check");
        return;
    };
    // Counter with a stop at 42: the C++ simulator must halt at the same
    // cycle with the same architectural state.
    let src = "circuit cnt :\n  module cnt :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n    stop(clock, eq(r, UInt<8>(42)), 3)\n";
    let netlist = essent::compile(src).unwrap();
    let cpp = emit_cpp(&netlist, &EngineConfig::default()).unwrap();

    let dir = std::env::temp_dir().join("essent_codegen_test");
    std::fs::create_dir_all(&dir).unwrap();
    let header = dir.join("cnt.h");
    std::fs::write(&header, &cpp).unwrap();
    let main_cpp = dir.join("main.cpp");
    std::fs::write(
        &main_cpp,
        r#"#include "cnt.h"
#include <cstdio>
int main() {
    cnt dut;
    dut.poke_reset(0);
    for (int i = 0; i < 1000 && !dut.done; i++) dut.cycle();
    printf("cycles=%llu q=%llu code=%llu\n",
        (unsigned long long)dut.cycles,
        (unsigned long long)dut.q,
        (unsigned long long)dut.stop_code);
    return 0;
}
"#,
    )
    .unwrap();
    let binary = dir.join("cnt_sim");
    let compile = Command::new(cxx)
        .args(["-std=c++20", "-O1", "-o"])
        .arg(&binary)
        .arg(&main_cpp)
        .output()
        .expect("compiler invocation");
    assert!(
        compile.status.success(),
        "C++ compile failed:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );
    let run = Command::new(&binary).output().expect("run generated sim");
    let stdout = String::from_utf8_lossy(&run.stdout);

    // Reference run.
    let mut sim = EssentSim::new(&netlist, &EngineConfig::default());
    sim.poke("reset", Bits::from_u64(0, 1));
    let ran = sim.step(1000);
    assert_eq!(sim.halted(), Some(3));
    let expected = format!(
        "cycles={} q={} code=3\n",
        ran,
        sim.peek("q").to_u64().unwrap()
    );
    assert_eq!(stdout, expected, "generated C++ diverges from the engine");
}
