//! Profile a design's per-cycle activity factor (the quantity of paper
//! Figure 5) and dump a VCD waveform of a short window.
//!
//! Run with: `cargo run --release --example activity_waves`

use essent::designs::soc::{generate_soc, SocConfig};
use essent::designs::workloads::{pchase, run_workload, Workload};
use essent::prelude::*;
use essent::sim::activity::ActivityProbe;
use essent::sim::vcd::VcdWriter;
use std::fs::File;
use std::io::BufWriter;

fn profile(netlist: &essent::netlist::Netlist, workload: &Workload, cycles: u64) -> ActivityProbe {
    let mut sim = FullCycleSim::new(netlist, &EngineConfig::default());
    for (i, &word) in workload.words.iter().enumerate() {
        sim.write_mem("imem", i, Bits::from_u64(word as u64, 32));
    }
    sim.poke("reset", Bits::from_u64(1, 1));
    sim.step(2);
    sim.poke("reset", Bits::from_u64(0, 1));
    let mut probe = ActivityProbe::new(sim.machine());
    for _ in 0..cycles {
        if sim.halted().is_some() {
            break;
        }
        sim.step(1);
        probe.sample(sim.machine());
    }
    probe
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::tiny();
    let netlist = essent::compile(&generate_soc(&config))?;
    println!("design: {}", netlist.stats());

    let workload = pchase(256, 2_000)?;
    let probe = profile(&netlist, &workload, 20_000);
    println!(
        "pchase activity over {} cycles: mean {:.2}% of {} signals",
        probe.samples().len(),
        100.0 * probe.mean(),
        probe.tracked_signals()
    );
    let (edges, counts) = probe.histogram(20, 0.5);
    println!("\nactivity-factor histogram (Figure 5 style):");
    for (edge, count) in edges.iter().zip(&counts) {
        let bar: String =
            std::iter::repeat_n('#', ((*count as f64 + 1.0).log2() as usize).min(60)).collect();
        println!("  <= {:>5.1}% : {:>6} {}", edge * 100.0, count, bar);
    }

    // Dump a short VCD window of the same run.
    let path = std::env::temp_dir().join("essent_soc.vcd");
    let file = BufWriter::new(File::create(&path)?);
    let mut sim = FullCycleSim::new(&netlist, &EngineConfig::default());
    let mut vcd = VcdWriter::new(file, &netlist, "soc")?;
    for (i, &word) in workload.words.iter().enumerate() {
        sim.write_mem("imem", i, Bits::from_u64(word as u64, 32));
    }
    sim.poke("reset", Bits::from_u64(1, 1));
    sim.step(2);
    sim.poke("reset", Bits::from_u64(0, 1));
    for t in 0..500 {
        sim.step(1);
        vcd.sample(sim.machine(), t)?;
    }
    println!(
        "\nwrote a 500-cycle waveform of {} signals to {}",
        vcd.tracked_signals(),
        path.display()
    );

    // The headline check: run the same workload under ESSENT and report
    // the effective activity factor it achieved.
    let mut essent = EssentSim::new(
        &netlist,
        &EngineConfig {
            capture_printf: false,
            ..EngineConfig::default()
        },
    );
    let run = run_workload(&mut essent, &workload, 1_000_000);
    let c = essent.counters();
    let effective =
        c.ops_evaluated as f64 / (c.cycles as f64 * essent.full_steps_per_cycle() as f64);
    println!(
        "ESSENT ran {} cycles evaluating only {:.2}% of the design per cycle (effective activity factor)",
        run.cycles,
        100.0 * effective
    );
    Ok(())
}
