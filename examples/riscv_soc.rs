//! Run a RISC-V program on the generated SoC under all three engines and
//! compare wall-clock simulation speed — a miniature of the paper's
//! Table III.
//!
//! Run with: `cargo run --release --example riscv_soc`

use essent::designs::soc::{generate_soc, SocConfig};
use essent::designs::workloads::{dhrystone, run_workload};
use essent::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::r16();
    println!("generating the `{}` SoC ...", config.name);
    let firrtl = generate_soc(&config);
    let netlist = essent::compile(&firrtl)?;
    println!("  {}", netlist.stats());

    let workload = dhrystone(50)?;
    println!(
        "workload: {} ({} instructions)",
        workload.name,
        workload.words.len()
    );

    let engine_config = EngineConfig {
        capture_printf: false,
        ..EngineConfig::default()
    };

    let mut results = Vec::new();
    for engine in ["event-driven", "full-cycle", "essent"] {
        let mut sim: Box<dyn Simulator> = match engine {
            "event-driven" => Box::new(EventDrivenSim::new(&netlist, &engine_config)),
            "full-cycle" => Box::new(FullCycleSim::new(&netlist, &engine_config)),
            _ => Box::new(EssentSim::new(&netlist, &engine_config)),
        };
        let start = Instant::now();
        let run = run_workload(sim.as_mut(), &workload, 10_000_000);
        let elapsed = start.elapsed();
        assert!(run.finished, "workload must reach tohost");
        let khz = run.cycles as f64 / elapsed.as_secs_f64() / 1e3;
        println!(
            "  {:>12}: {:>8} cycles in {:>8.1?}  ({khz:>7.1} kHz)  tohost={}",
            engine, run.cycles, elapsed, run.tohost
        );
        results.push((engine, elapsed, run.tohost, run.cycles));
    }

    // All engines agree on architectural results.
    assert!(results
        .windows(2)
        .all(|w| w[0].2 == w[1].2 && w[0].3 == w[1].3));
    let full = results[1].1.as_secs_f64();
    let essent = results[2].1.as_secs_f64();
    println!("\nESSENT speedup over full-cycle: {:.2}x", full / essent);
    Ok(())
}
