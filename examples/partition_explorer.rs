//! Explore how the acyclic partitioner coarsens a design as `C_p` sweeps —
//! the structural counterpart of the paper's Figure 6/7 tradeoff.
//!
//! Run with: `cargo run --release --example partition_explorer`

use essent::core::plan::extended_dag;
use essent::core::{partition, CcssPlan};
use essent::designs::soc::{generate_soc, SocConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = essent::compile(&generate_soc(&SocConfig::r16()))?;
    println!("design: {}\n", netlist.stats());
    println!(
        "{:>5} {:>11} {:>10} {:>9} {:>10} {:>9} {:>11}",
        "C_p", "partitions", "mean size", "largest", "cut edges", "triggers", "elided regs"
    );
    let (dag, writes) = extended_dag(&netlist);
    for c_p in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let parts = partition(&dag, c_p);
        parts.validate(&dag).expect("partitioning invariants");
        let stats = parts.stats();
        let plan = CcssPlan::from_partitioning(&netlist, &dag, &writes, &parts, Default::default());
        let elided = plan.reg_plans.iter().filter(|r| r.elided).count();
        println!(
            "{:>5} {:>11} {:>10.1} {:>9} {:>10} {:>9} {:>8}/{}",
            c_p,
            stats.partitions,
            stats.mean_size,
            stats.largest,
            stats.cut_edges,
            plan.trigger_count(),
            elided,
            plan.reg_plans.len()
        );
    }
    println!(
        "\nLarger C_p merges more aggressively: fewer partitions (lower static\n\
         overhead) but coarser activity tracking (higher effective activity).\n\
         The paper selects C_p = 8 as the host-tuned balance (Figure 6)."
    );
    Ok(())
}
