//! Compare the sequential and thread-parallel CCSS engines on a large
//! SoC.
//!
//! The parallel engine levelizes the acyclic partition schedule and
//! evaluates each level with a worker pool — the direction of the
//! follow-on research building on ESSENT. Its speedup depends on having
//! real cores: on a single-CPU machine the barriers can only cost, so
//! this example reports what it measures honestly rather than promising
//! a win.
//!
//! Run with: `cargo run --release --example parallel_soc`

use essent::designs::soc::{generate_soc, SocConfig};
use essent::designs::workloads::{dhrystone, run_workload};
use essent::prelude::*;
use essent::sim::ParEssentSim;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");

    let config = SocConfig::boom();
    let netlist = essent::compile(&generate_soc(&config))?;
    println!("design `{}`: {}", config.name, netlist.stats());
    let workload = dhrystone(40)?;
    let quiet = EngineConfig {
        capture_printf: false,
        ..EngineConfig::default()
    };

    let t0 = Instant::now();
    let mut seq = EssentSim::new(&netlist, &quiet);
    let r_seq = run_workload(&mut seq, &workload, 10_000_000);
    let t_seq = t0.elapsed();
    println!(
        "sequential ESSENT : {:>8.1?} for {} cycles",
        t_seq, r_seq.cycles
    );

    let threads = cores.clamp(2, 8);
    let t1 = Instant::now();
    let mut par = ParEssentSim::new(&netlist, &quiet, threads);
    let r_par = run_workload(&mut par, &workload, 10_000_000);
    let t_par = t1.elapsed();
    assert_eq!((r_seq.cycles, r_seq.tohost), (r_par.cycles, r_par.tohost));
    println!(
        "parallel  ESSENT : {:>8.1?} with {} threads over {} levels",
        t_par,
        threads,
        par.level_count()
    );
    let ratio = t_seq.as_secs_f64() / t_par.as_secs_f64();
    println!("speedup: {ratio:.2}x");
    if cores == 1 {
        println!(
            "\n(single-core host: the level barriers can only add overhead here —\n\
             the engines agree cycle-for-cycle, which is what this run verifies;\n\
             run on a multi-core machine to see the parallel win)"
        );
    }
    Ok(())
}
