//! Quickstart: compile a hand-written FIRRTL design and simulate it with
//! the ESSENT (CCSS) engine, watching the activity counters.
//!
//! Run with: `cargo run --release --example quickstart`

use essent::prelude::*;

/// A peripheral-flavored design: a busy heartbeat counter next to a large
/// accumulator block that only wakes up when `enable` is high — the
/// low-activity structure essential signal simulation exploits.
const DESIGN: &str = r#"
circuit demo :
  module demo :
    input clock : Clock
    input reset : UInt<1>
    input enable : UInt<1>
    input data : UInt<16>
    output heartbeat : UInt<8>
    output acc : UInt<32>

    reg beat : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    beat <= tail(add(beat, UInt<8>(1)), 1)
    heartbeat <= beat

    reg total : UInt<32>, clock with : (reset => (reset, UInt<32>(0)))
    when enable :
      node squared = mul(data, data)
      node mixed = xor(squared, bits(shl(squared, 7), 31, 0))
      node folded = bits(add(mixed, bits(mul(mixed, UInt<16>("h9e37")), 31, 0)), 31, 0)
      total <= bits(add(total, folded), 31, 0)
    acc <= total
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = essent::compile(DESIGN)?;
    println!("compiled `demo`: {}", netlist.stats());

    let mut sim = EssentSim::new(
        &netlist,
        &EngineConfig {
            c_p: 4,
            ..EngineConfig::default()
        },
    );
    println!(
        "partitioned into {} conditionally-executed partitions",
        sim.partition_count()
    );

    // Reset, then run with the accumulator disabled: only the heartbeat
    // partition stays active.
    sim.poke("reset", Bits::from_u64(1, 1));
    sim.step(2);
    sim.poke("reset", Bits::from_u64(0, 1));
    sim.poke("enable", Bits::from_u64(0, 1));
    sim.poke("data", Bits::from_u64(3, 16));
    let before = sim.counters().ops_evaluated;
    sim.step(1000);
    let idle_ops = sim.counters().ops_evaluated - before;

    // Now enable the accumulator: its partition wakes every cycle.
    sim.poke("enable", Bits::from_u64(1, 1));
    let before = sim.counters().ops_evaluated;
    sim.step(1000);
    let busy_ops = sim.counters().ops_evaluated - before;

    println!("heartbeat = {}", sim.peek("heartbeat"));
    println!("acc       = {}", sim.peek("acc"));
    println!("ops evaluated over 1000 cycles: idle={idle_ops}, busy={busy_ops}");
    println!(
        "the idle phase skipped {:.1}% of the busy phase's work",
        100.0 * (1.0 - idle_ops as f64 / busy_ops as f64)
    );
    assert!(idle_ops < busy_ops);
    Ok(())
}
