//! A minimal, dependency-free stand-in for the `proptest` crate, vendored
//! so the workspace's property tests build and run fully offline.
//!
//! Compared to upstream proptest this stub:
//!
//! * generates deterministic pseudo-random cases (no shrinking — a
//!   failing case prints its `Debug` form so it can be minimized by
//!   hand or replayed);
//! * supports the strategy combinators this repository uses: integer
//!   ranges, [`strategy::Just`], tuples, [`arbitrary::any`],
//!   `prop_map` / `prop_flat_map`, [`collection::vec`], and
//!   [`sample::subsequence`];
//! * provides the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   and [`prop_assume!`] macros with compatible syntax.
//!
//! `*.proptest-regressions` files are ignored (there is no persistence).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Alias of the crate root so `prop::collection::vec(..)`-style paths
/// from the prelude resolve as they do with upstream proptest.
pub mod prop {
    pub use crate::arbitrary;
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs `cases` deterministic cases of one property (the engine behind
/// [`proptest!`]; exposed for direct use).
pub fn run_cases<S: strategy::Strategy>(
    config: &test_runner::ProptestConfig,
    test_name: &str,
    strat: &S,
    mut body: impl FnMut(S::Value),
) {
    // Deterministic per-test seed: stable across runs, different between
    // differently named tests.
    let mut seed = 0x00E5_5E17_u64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
    }
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let value = strat.generate(&mut rng);
        let shown = format!("{value:?}");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(value);
        }));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest stub: `{test_name}` failed at case {case}/{} with input:\n  {shown}",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strat = ($($strat,)+);
                $crate::run_cases(&config, stringify!($name), &strat, |value| {
                    let ($($pat,)+) = value;
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption does not hold.
///
/// Expands to an early `return` from the case closure, so the case
/// counts as run but performs no checks (no retry, unlike upstream).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
