//! Test-run configuration (`ProptestConfig`).

/// Per-`proptest!`-block configuration. Only `cases` is honored by the
/// stub; construct with [`ProptestConfig::with_cases`] or struct-update
/// syntax over `default()`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}
