//! Sampling strategies (`sample::subsequence`).

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;

/// Strategy producing order-preserving subsequences of `values` whose
/// length falls in `size` (clamped to the available element count).
pub fn subsequence<T: Clone + Debug>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        values,
        size: size.into(),
    }
}

/// See [`subsequence`].
pub struct Subsequence<T> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone + Debug> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut StdRng) -> Vec<T> {
        let max = self.size.max.min(self.values.len());
        let min = self.size.min.min(max);
        let take = rng.gen_range(min..=max);
        // Reservoir-style index selection, then emit in original order.
        let mut picked: Vec<usize> = (0..self.values.len()).collect();
        // Partial Fisher-Yates: choose `take` distinct indices.
        for i in 0..take {
            let j = rng.gen_range(i..picked.len());
            picked.swap(i, j);
        }
        let mut chosen = picked[..take].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.values[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = subsequence((0..20).collect::<Vec<i32>>(), 0..=10);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() <= 10);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "not ordered: {v:?}");
        }
    }
}
