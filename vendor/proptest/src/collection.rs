//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive element-count range (upstream proptest's `SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing vectors of `element` values with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let exact = vec(any::<u64>(), 3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
        let ranged = vec(0u32..5, 1..=4);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
        }
    }
}
