//! `any::<T>()` — whole-type strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
