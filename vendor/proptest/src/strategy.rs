//! The [`Strategy`] trait and the combinators this workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values (upstream proptest's `Strategy`,
/// without the shrinking half).
pub trait Strategy {
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing the predicate (bounded retry).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive cases",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = (1u32..=8).prop_flat_map(|w| (0u64..(1u64 << w), Just(w)));
        for _ in 0..200 {
            let (v, w) = strat.generate(&mut rng);
            assert!((1..=8).contains(&w) && v < (1 << w));
        }
        let mapped = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(mapped.generate(&mut rng) % 2, 0);
        }
    }
}
