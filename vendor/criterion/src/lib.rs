//! A minimal, dependency-free stand-in for the `criterion` crate,
//! vendored so the workspace's benchmarks build and run fully offline.
//!
//! Semantics follow criterion's calling convention:
//!
//! * under `cargo bench`, cargo passes `--bench` and every benchmark is
//!   timed (fixed warmup + measurement budget, median-of-samples
//!   reporting to stdout);
//! * under `cargo test` (no `--bench` argument), each benchmark body
//!   runs **once** as a smoke test, keeping the tier-1 suite fast.
//!
//! No statistics beyond min/median/max, no HTML reports, no comparison
//! against saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching criterion's rendering.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The top-level harness handle passed to every benchmark function.
pub struct Criterion {
    /// `true` under `cargo bench` (cargo passes `--bench`).
    timing: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            timing: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let timing = self.timing;
        run_one(id, None, 20, timing, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.throughput,
            self.sample_size,
            self.criterion.timing,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        run_one(
            &full,
            self.throughput,
            self.sample_size,
            self.criterion.timing,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the body.
pub struct Bencher {
    timing: bool,
    samples: usize,
    /// Set by `iter`: median/min/max nanoseconds per iteration.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measures the closure (or, in test mode, runs it once).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        if !self.timing {
            black_box(body());
            return;
        }
        // Calibrate iterations-per-sample to roughly 5ms.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            per_iter.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        self.result = Some((median, per_iter[0], per_iter[per_iter.len() - 1]));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    timing: bool,
    mut f: F,
) {
    let mut bencher = Bencher {
        timing,
        samples,
        result: None,
    };
    f(&mut bencher);
    if !timing {
        println!("test {name} ... ok (smoke)");
        return;
    }
    match bencher.result {
        Some((median, min, max)) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!(" {:>12.1} elem/s", n as f64 * 1e9 / median),
                Throughput::Bytes(n) => format!(" {:>12.1} B/s", n as f64 * 1e9 / median),
            });
            println!(
                "{name:<48} time: [{} {} {}]{}",
                fmt_ns(min),
                fmt_ns(median),
                fmt_ns(max),
                rate.unwrap_or_default()
            );
        }
        None => println!("{name:<48} (no measurement: iter was never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
