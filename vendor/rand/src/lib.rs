//! A minimal, dependency-free stand-in for the `rand` crate (0.8 API
//! subset), vendored so the workspace builds and tests fully offline.
//!
//! Only the surface this repository actually uses is provided:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (xoshiro256**,
//!   seeded via splitmix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`], [`Rng::gen_range`] (over integer `Range` /
//!   `RangeInclusive`), and [`Rng::gen_bool`].
//!
//! The stream differs from upstream `rand`'s `StdRng` (which is
//! ChaCha-based); seeds recorded against the real crate reproduce
//! different cases here. All uses in this repository treat seeds as
//! opaque, so only determinism matters, not the exact stream.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut |bound| self.next_u64() % bound)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        // 53 random bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

/// Types producible from a single uniform 64-bit draw
/// (stand-in for `rand::distributions::Standard` sampling).
pub trait Standard {
    fn sample(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples via a closure mapping an exclusive upper bound to a draw
    /// in `0..bound` (bound is never 0).
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + draw(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end as u128 - start as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every draw is already uniform.
                    return draw(u64::MAX) as $t;
                }
                start + draw(span as u64) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + draw(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return draw(u64::MAX) as $t;
                }
                (start as i128 + draw(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&v));
            let w: u32 = rng.gen_range(1..24);
            assert!((1..24).contains(&w));
            let x: u64 = rng.gen_range(0..=u64::MAX);
            let _ = x;
            let y: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
