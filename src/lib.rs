//! # essent — essential signal simulation in Rust
//!
//! A from-scratch Rust reproduction of *"Efficiently Exploiting Low
//! Activity Factors to Accelerate RTL Simulation"* (Beamer & Donofrio,
//! DAC 2020): the ESSENT simulator generator, its novel acyclic graph
//! partitioner, and the full evaluation infrastructure.
//!
//! Most signals in a digital design rarely change, yet leading simulators
//! re-evaluate everything every cycle. ESSENT's *essential signal
//! simulation* coarsens the design into acyclic partitions, attaches
//! activation flags, and evaluates — under a static, singular schedule —
//! only the partitions whose inputs changed.
//!
//! This crate is a facade over the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`bits`] | arbitrary-width two's-complement arithmetic |
//! | [`firrtl`] | FIRRTL parser, AST, lowering passes |
//! | [`netlist`] | flat design graph, optimizations, reference interpreter |
//! | [`core`] | **the acyclic partitioner** (MFFC + merge phases) and CCSS plan |
//! | [`sim`] | the engines: full-cycle, ESSENT (CCSS), event-driven; activity probe; VCD; C++ codegen |
//! | [`designs`] | RV32IM SoC generator, assembler, the three paper workloads |
//!
//! # Quickstart
//!
//! ```
//! use essent::prelude::*;
//!
//! let src = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";
//! let netlist = essent::compile(src)?;
//! let mut sim = EssentSim::new(&netlist, &EngineConfig::default());
//! sim.poke("reset", Bits::from_u64(0, 1));
//! sim.step(42);
//! assert_eq!(sim.peek("q").to_u64(), Some(41));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use essent_bits as bits;
pub use essent_core as core;
pub use essent_designs as designs;
pub use essent_firrtl as firrtl;
pub use essent_netlist as netlist;
pub use essent_sim as sim;

use std::error::Error;

/// Parses, lowers, builds, and optimizes a FIRRTL design in one call.
///
/// # Errors
///
/// Propagates parse, lowering, and netlist-construction errors.
pub fn compile(source: &str) -> Result<essent_netlist::Netlist, Box<dyn Error>> {
    let circuit = essent_firrtl::parse(source)?;
    let lowered = essent_firrtl::passes::lower(circuit)?;
    let mut netlist = essent_netlist::Netlist::from_circuit(&lowered)?;
    essent_netlist::opt::optimize(&mut netlist, &essent_netlist::opt::OptConfig::default());
    Ok(netlist)
}

/// Like [`compile`] but without netlist optimizations (the paper's
/// Baseline tool flow).
///
/// # Errors
///
/// Propagates parse, lowering, and netlist-construction errors.
pub fn compile_unoptimized(source: &str) -> Result<essent_netlist::Netlist, Box<dyn Error>> {
    let circuit = essent_firrtl::parse(source)?;
    let lowered = essent_firrtl::passes::lower(circuit)?;
    Ok(essent_netlist::Netlist::from_circuit(&lowered)?)
}

/// The things nearly every user needs.
pub mod prelude {
    pub use essent_bits::Bits;
    pub use essent_netlist::Netlist;
    pub use essent_sim::{
        EngineConfig, EssentSim, EventDrivenSim, FullCycleSim, Simulator, WorkCounters,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn compile_pipeline_roundtrip() {
        let src = "circuit T :\n  module T :\n    input a : UInt<4>\n    output o : UInt<4>\n    o <= not(a)\n";
        let n = crate::compile(src).unwrap();
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        sim.poke("a", Bits::from_u64(0b1010, 4));
        sim.step(1);
        assert_eq!(sim.peek("o").to_u64(), Some(0b0101));
    }
}
