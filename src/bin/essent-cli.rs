//! `essent-cli` — command-line front door to the simulator generator.
//!
//! ```text
//! essent-cli stats <design.fir>                     design + partition statistics
//! essent-cli partition <design.fir> [--cp N]        C_p sweep table
//! essent-cli sim <design.fir> [options]             run the simulation
//!     --cycles N          cycles to run (default 1000, stops early on `stop`)
//!     --engine E          essent | full | event | parallel (default essent)
//!     --cp N              partitioning threshold (default 8)
//!     --poke NAME=VALUE   hold an input at a value (repeatable; default all 0,
//!                         reset pulsed for 2 cycles when present)
//!     --vcd FILE          dump a waveform
//!     --peek NAME         print a signal at the end (repeatable)
//! essent-cli codegen <design.fir> [-o out.h]        emit the C++ simulator
//! ```

use essent::prelude::*;
use essent::sim::vcd::VcdWriter;
use essent::sim::ParEssentSim;
use std::error::Error;
use std::fs;
use std::io::BufWriter;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("essent-cli: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first() else {
        return Err(
            "usage: essent-cli <stats|partition|sim|codegen> <design.fir> [options]".into(),
        );
    };
    let file = args
        .get(1)
        .ok_or("missing FIRRTL input file (second argument)")?;
    let source = fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let rest = &args[2..];
    match command.as_str() {
        "stats" => stats(&source),
        "partition" => partition_sweep(&source, rest),
        "sim" => sim(&source, rest),
        "codegen" => codegen(&source, rest),
        other => Err(format!("unknown command `{other}`").into()),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn stats(source: &str) -> Result<(), Box<dyn Error>> {
    let unopt = essent::compile_unoptimized(source)?;
    let opt = essent::compile(source)?;
    println!("raw netlist      : {}", unopt.stats());
    println!("optimized netlist: {}", opt.stats());
    let sim = EssentSim::new(&opt, &EngineConfig::default());
    println!(
        "CCSS plan (C_p=8): {} partitions, {} trigger pairs, {}/{} registers elided",
        sim.partition_count(),
        sim.plan().trigger_count(),
        sim.plan().reg_plans.iter().filter(|r| r.elided).count(),
        sim.plan().reg_plans.len()
    );
    Ok(())
}

fn partition_sweep(source: &str, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let netlist = essent::compile(source)?;
    let cps: Vec<usize> = match flag_value(rest, "--cp") {
        Some(v) => vec![v.parse()?],
        None => vec![1, 2, 4, 8, 16, 32, 64, 128],
    };
    println!(
        "{:>5} {:>11} {:>10} {:>9} {:>10}",
        "C_p", "partitions", "mean size", "largest", "cut edges"
    );
    let (dag, _writes) = essent::core::plan::extended_dag(&netlist);
    for cp in cps {
        let parts = essent::core::partition::partition(&dag, cp);
        let s = parts.stats();
        println!(
            "{:>5} {:>11} {:>10.1} {:>9} {:>10}",
            cp, s.partitions, s.mean_size, s.largest, s.cut_edges
        );
    }
    Ok(())
}

fn sim(source: &str, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let netlist = essent::compile(source)?;
    let cycles: u64 = flag_value(rest, "--cycles").unwrap_or("1000").parse()?;
    let c_p: usize = flag_value(rest, "--cp").unwrap_or("8").parse()?;
    let config = EngineConfig {
        c_p,
        ..EngineConfig::default()
    };
    let engine = flag_value(rest, "--engine").unwrap_or("essent");
    let mut sim: Box<dyn Simulator> = match engine {
        "essent" => Box::new(EssentSim::new(&netlist, &config)),
        "full" => Box::new(FullCycleSim::new(&netlist, &config)),
        "event" => Box::new(EventDrivenSim::new(&netlist, &config)),
        "parallel" => Box::new(ParEssentSim::new(&netlist, &config, 0)),
        other => return Err(format!("unknown engine `{other}`").into()),
    };

    // Default stimulus: everything 0; pulse reset if the design has one.
    let has_reset = netlist.find("reset").is_some();
    if has_reset {
        sim.poke("reset", Bits::from_u64(1, 1));
        sim.step(2);
        sim.poke("reset", Bits::from_u64(0, 1));
    }
    for poke in flag_values(rest, "--poke") {
        let (name, value) = poke
            .split_once('=')
            .ok_or_else(|| format!("--poke expects NAME=VALUE, got `{poke}`"))?;
        let id = sim
            .find(name)
            .ok_or_else(|| format!("no signal named `{name}`"))?;
        let width = netlist.signal(id).width;
        let bits = if let Some(hex) = value.strip_prefix("0x") {
            Bits::parse(&format!("h{hex}"), width)?
        } else {
            Bits::parse(value, width)?
        };
        sim.poke(name, bits);
    }

    let mut vcd = match flag_value(rest, "--vcd") {
        Some(path) => {
            let file = BufWriter::new(fs::File::create(path)?);
            Some(VcdWriter::new(file, &netlist, &netlist.name)?)
        }
        None => None,
    };

    let ran = if let Some(v) = vcd.as_mut() {
        // VCD sampling requires per-cycle stepping and machine access:
        // use a dedicated full-cycle engine mirror for dumping.
        let mut mirror = FullCycleSim::new(&netlist, &config);
        if has_reset {
            mirror.poke("reset", Bits::from_u64(1, 1));
            mirror.step(2);
            mirror.poke("reset", Bits::from_u64(0, 1));
        }
        for poke in flag_values(rest, "--poke") {
            if let Some((name, _)) = poke.split_once('=') {
                let id = mirror.find(name).expect("validated above");
                let width = netlist.signal(id).width;
                let value = poke.split_once('=').expect("validated").1;
                let bits = if let Some(hex) = value.strip_prefix("0x") {
                    Bits::parse(&format!("h{hex}"), width)?
                } else {
                    Bits::parse(value, width)?
                };
                mirror.poke(name, bits);
            }
        }
        let mut t = 0;
        while t < cycles && mirror.halted().is_none() {
            mirror.step(1);
            v.sample(mirror.machine(), t)?;
            t += 1;
        }
        sim.step(t)
    } else {
        sim.step(cycles)
    };

    println!("ran {ran} cycles on `{}` engine", sim.engine_name());
    if let Some(code) = sim.halted() {
        println!("design stopped with code {code}");
    }
    for line in sim.printf_log() {
        print!("{line}");
    }
    for name in flag_values(rest, "--peek") {
        println!("{name} = {}", sim.peek(name));
    }
    if flag_values(rest, "--peek").is_empty() {
        for &out in netlist.outputs() {
            let s = netlist.signal(out);
            println!("{} = {}", s.name, sim.peek_id(out));
        }
    }
    let c = sim.counters();
    println!(
        "work: {} ops, {} static checks, {} dynamic checks",
        c.ops_evaluated, c.static_checks, c.dynamic_checks
    );
    Ok(())
}

fn codegen(source: &str, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let netlist = essent::compile(source)?;
    let cpp = essent::sim::codegen::emit_cpp(&netlist, &EngineConfig::default())?;
    match flag_value(rest, "-o") {
        Some(path) => {
            fs::write(path, cpp)?;
            println!("wrote {path}");
        }
        None => print!("{cpp}"),
    }
    Ok(())
}
