//! Cross-engine equivalence: on randomly generated synchronous circuits
//! driven by random stimulus, every engine (full-cycle, ESSENT at several
//! `C_p` values, event-driven) must agree with the reference interpreter
//! on every output, every cycle — with and without netlist optimizations.
//!
//! This is the central correctness argument of the repository: the CCSS
//! machinery (partitioning, activity flags, push triggers, state update
//! elision, conditional mux ways) is pure optimization and can never
//! change observable behavior.

use essent_bits::Bits;
use essent_netlist::{interp::Interpreter, opt, Netlist};
use essent_sim::testgen::gen_circuit;
use essent_sim::{EngineConfig, EssentSim, EventDrivenSim, FullCycleSim, ParEssentSim, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(source: &str) -> Netlist {
    let parsed = essent_firrtl::parse(source)
        .unwrap_or_else(|e| panic!("generated FIRRTL must parse: {e}\n{source}"));
    let lowered = essent_firrtl::passes::lower(parsed)
        .unwrap_or_else(|e| panic!("generated FIRRTL must lower: {e}\n{source}"));
    Netlist::from_circuit(&lowered)
        .unwrap_or_else(|e| panic!("generated FIRRTL must build: {e}\n{source}"))
}

/// Drives all engines with identical stimulus and compares every output
/// every cycle against the interpreter.
fn check_equivalence(seed: u64, optimize: bool) {
    let circuit = gen_circuit(seed);
    let mut netlist = build(&circuit.source);
    if optimize {
        opt::optimize(&mut netlist, &opt::OptConfig::default());
    }
    let config = EngineConfig::default();
    let mut golden = Interpreter::new(&netlist);
    let mut engines: Vec<Box<dyn Simulator>> = vec![
        Box::new(FullCycleSim::new(&netlist, &config)),
        Box::new(FullCycleSim::new(&netlist, &EngineConfig::baseline())),
        Box::new(EventDrivenSim::new(&netlist, &config)),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                c_p: 1,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                c_p: 4,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                c_p: 8,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                c_p: 64,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                elide_state: false,
                mux_conditional: false,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                trigger_push: false,
                ..config.clone()
            },
        )),
        Box::new(EventDrivenSim::new(
            &netlist,
            &EngineConfig {
                event_levelized: false,
                ..config.clone()
            },
        )),
        Box::new(ParEssentSim::new(&netlist, &config, 3)),
    ];

    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    for cycle in 0..40u64 {
        for (name, width) in &circuit.inputs {
            // Hold reset high for the first two cycles, then random.
            let value = if name == "reset" {
                Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
            } else {
                let lo = rng.gen::<u64>();
                let hi = rng.gen::<u64>();
                Bits::from_limbs(vec![lo, hi], *width)
            };
            golden.poke(name, value.clone());
            for e in engines.iter_mut() {
                e.poke(name, value.clone());
            }
        }
        golden.step(1);
        for e in engines.iter_mut() {
            e.step(1);
        }
        for out in &circuit.outputs {
            let expect = golden.peek(out);
            for e in engines.iter() {
                let got = e.peek(out);
                assert_eq!(
                    got,
                    expect,
                    "seed {seed} opt={optimize} cycle {cycle}: engine {} disagrees on {out}\n{}",
                    e.engine_name(),
                    circuit.source
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_match_interpreter_unoptimized(seed in any::<u64>()) {
        check_equivalence(seed, false);
    }

    #[test]
    fn engines_match_interpreter_optimized(seed in any::<u64>()) {
        check_equivalence(seed, true);
    }
}

/// A couple of fixed seeds as plain tests so failures are easy to rerun.
#[test]
fn equivalence_fixed_seeds() {
    for seed in [0u64, 1, 2, 42, 0xE55E] {
        check_equivalence(seed, false);
        check_equivalence(seed, true);
    }
}

// --- Config-matrix sweep: profiling must be a pure observer -------------
//
// For every point of the optimization switch matrix, run two twin
// engines — identical except `profile` — against the golden interpreter.
// Profiling is only telemetry: the twins must agree with the golden on
// every output every cycle, AND their deterministic work counters must
// be bit-identical (a profiler that perturbs evaluation order, trigger
// decisions, or elision shows up here even when outputs happen to
// match).

/// Drives a profiled/unprofiled engine pair plus the interpreter over
/// shared stimulus; returns nothing, panics with full context on any
/// divergence.
fn check_profile_twins(
    seed: u64,
    label: &str,
    golden: &mut Interpreter,
    off: &mut dyn Simulator,
    on: &mut dyn Simulator,
    circuit: &essent_sim::testgen::GenCircuit,
) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    for cycle in 0..30u64 {
        for (name, width) in &circuit.inputs {
            let value = if name == "reset" {
                Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
            } else {
                Bits::from_limbs(vec![rng.gen(), rng.gen()], *width)
            };
            golden.poke(name, value.clone());
            off.poke(name, value.clone());
            on.poke(name, value);
        }
        golden.step(1);
        off.step(1);
        on.step(1);
        for out in &circuit.outputs {
            let expect = golden.peek(out);
            for (which, e) in [("profile-off", &*off), ("profile-on", &*on)] {
                assert_eq!(
                    e.peek(out),
                    expect,
                    "seed {seed} [{label}] cycle {cycle}: {which} {} disagrees on {out}\n{}",
                    e.engine_name(),
                    circuit.source
                );
            }
        }
        assert_eq!(
            off.counters(),
            on.counters(),
            "seed {seed} [{label}] cycle {cycle}: profiling perturbed {}'s work counters\n{}",
            off.engine_name(),
            circuit.source
        );
    }
    let report = on
        .profile_report()
        .expect("profiled engine must produce a report");
    assert_eq!(report.cycles, on.cycle(), "[{label}] report cycle count");
    assert!(
        report.total_evals() + report.total_skips() > 0,
        "[{label}] report saw no activity at all"
    );
}

/// The full 2^5 switch matrix for the CCSS engine, each point run as
/// profiled/unprofiled twins.
fn check_config_matrix(seed: u64) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    for bits in 0..32u32 {
        let config = EngineConfig {
            trigger_push: bits & 1 != 0,
            mux_conditional: bits & 2 != 0,
            elide_state: bits & 4 != 0,
            tier1: bits & 8 != 0,
            fuse_triggers: bits & 16 != 0,
            c_p: 4,
            ..EngineConfig::default()
        };
        let mut golden = Interpreter::new(&netlist);
        let mut off = EssentSim::new(&netlist, &config);
        let mut on = EssentSim::new(
            &netlist,
            &EngineConfig {
                profile: true,
                ..config.clone()
            },
        );
        check_profile_twins(
            seed,
            &format!("essent bits={bits:05b}"),
            &mut golden,
            &mut off,
            &mut on,
            &circuit,
        );
    }
}

/// Profiled twins for the other engines: full-cycle (± tier1),
/// event-driven (± levelized), and the parallel engine at one
/// representative config.
type TwinCase = (String, Box<dyn Simulator>, Box<dyn Simulator>);

fn check_other_engine_twins(seed: u64) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    let base = EngineConfig::default();
    let mut cases: Vec<TwinCase> = Vec::new();
    for tier1 in [false, true] {
        let cfg = EngineConfig {
            tier1,
            ..base.clone()
        };
        let on = EngineConfig {
            profile: true,
            ..cfg.clone()
        };
        cases.push((
            format!("full-cycle tier1={tier1}"),
            Box::new(FullCycleSim::new(&netlist, &cfg)),
            Box::new(FullCycleSim::new(&netlist, &on)),
        ));
    }
    for levelized in [false, true] {
        let cfg = EngineConfig {
            event_levelized: levelized,
            ..base.clone()
        };
        let on = EngineConfig {
            profile: true,
            ..cfg.clone()
        };
        cases.push((
            format!("event levelized={levelized}"),
            Box::new(EventDrivenSim::new(&netlist, &cfg)),
            Box::new(EventDrivenSim::new(&netlist, &on)),
        ));
    }
    {
        let on = EngineConfig {
            profile: true,
            ..base.clone()
        };
        cases.push((
            "par".to_string(),
            Box::new(ParEssentSim::new(&netlist, &base, 3)),
            Box::new(ParEssentSim::new(&netlist, &on, 3)),
        ));
    }
    for (label, mut off, mut on) in cases {
        let mut golden = Interpreter::new(&netlist);
        check_profile_twins(seed, &label, &mut golden, &mut *off, &mut *on, &circuit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn profile_is_pure_observer_across_config_matrix(seed in any::<u64>()) {
        check_config_matrix(seed);
    }

    #[test]
    fn profile_is_pure_observer_other_engines(seed in any::<u64>()) {
        check_other_engine_twins(seed);
    }
}

/// Fixed seeds for the matrix, trivially re-runnable on failure.
#[test]
fn config_matrix_fixed_seeds() {
    for seed in [0u64, 42] {
        check_config_matrix(seed);
        check_other_engine_twins(seed);
    }
}
