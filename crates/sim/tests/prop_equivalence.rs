//! Cross-engine equivalence: on randomly generated synchronous circuits
//! driven by random stimulus, every engine (full-cycle, ESSENT at several
//! `C_p` values, event-driven) must agree with the reference interpreter
//! on every output, every cycle — with and without netlist optimizations.
//!
//! This is the central correctness argument of the repository: the CCSS
//! machinery (partitioning, activity flags, push triggers, state update
//! elision, conditional mux ways) is pure optimization and can never
//! change observable behavior.

use essent_bits::Bits;
use essent_netlist::{interp::Interpreter, opt, Netlist};
use essent_sim::testgen::gen_circuit;
use essent_sim::{EngineConfig, EssentSim, EventDrivenSim, FullCycleSim, ParEssentSim, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(source: &str) -> Netlist {
    let parsed = essent_firrtl::parse(source)
        .unwrap_or_else(|e| panic!("generated FIRRTL must parse: {e}\n{source}"));
    let lowered = essent_firrtl::passes::lower(parsed)
        .unwrap_or_else(|e| panic!("generated FIRRTL must lower: {e}\n{source}"));
    Netlist::from_circuit(&lowered)
        .unwrap_or_else(|e| panic!("generated FIRRTL must build: {e}\n{source}"))
}

/// Drives all engines with identical stimulus and compares every output
/// every cycle against the interpreter.
fn check_equivalence(seed: u64, optimize: bool) {
    let circuit = gen_circuit(seed);
    let mut netlist = build(&circuit.source);
    if optimize {
        opt::optimize(&mut netlist, &opt::OptConfig::default());
    }
    let config = EngineConfig::default();
    let mut golden = Interpreter::new(&netlist);
    let mut engines: Vec<Box<dyn Simulator>> = vec![
        Box::new(FullCycleSim::new(&netlist, &config)),
        Box::new(FullCycleSim::new(&netlist, &EngineConfig::baseline())),
        Box::new(EventDrivenSim::new(&netlist, &config)),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                c_p: 1,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                c_p: 4,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                c_p: 8,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                c_p: 64,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                elide_state: false,
                mux_conditional: false,
                ..config.clone()
            },
        )),
        Box::new(EssentSim::new(
            &netlist,
            &EngineConfig {
                trigger_push: false,
                ..config.clone()
            },
        )),
        Box::new(EventDrivenSim::new(
            &netlist,
            &EngineConfig {
                event_levelized: false,
                ..config.clone()
            },
        )),
        Box::new(ParEssentSim::new(&netlist, &config, 3)),
    ];

    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    for cycle in 0..40u64 {
        for (name, width) in &circuit.inputs {
            // Hold reset high for the first two cycles, then random.
            let value = if name == "reset" {
                Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
            } else {
                let lo = rng.gen::<u64>();
                let hi = rng.gen::<u64>();
                Bits::from_limbs(vec![lo, hi], *width)
            };
            golden.poke(name, value.clone());
            for e in engines.iter_mut() {
                e.poke(name, value.clone());
            }
        }
        golden.step(1);
        for e in engines.iter_mut() {
            e.step(1);
        }
        for out in &circuit.outputs {
            let expect = golden.peek(out);
            for e in engines.iter() {
                let got = e.peek(out);
                assert_eq!(
                    got,
                    expect,
                    "seed {seed} opt={optimize} cycle {cycle}: engine {} disagrees on {out}\n{}",
                    e.engine_name(),
                    circuit.source
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_match_interpreter_unoptimized(seed in any::<u64>()) {
        check_equivalence(seed, false);
    }

    #[test]
    fn engines_match_interpreter_optimized(seed in any::<u64>()) {
        check_equivalence(seed, true);
    }
}

/// A couple of fixed seeds as plain tests so failures are easy to rerun.
#[test]
fn equivalence_fixed_seeds() {
    for seed in [0u64, 1, 2, 42, 0xE55E] {
        check_equivalence(seed, false);
        check_equivalence(seed, true);
    }
}
