//! Lane-equivalence differential suite: lane `i` of an N-lane batched
//! run must be indistinguishable — arena words, outputs, work counters,
//! cycle counts, halt codes — from an independent single-instance
//! [`EssentSim`] run over the same per-lane stimulus, across the full
//! engine config matrix, under divergent per-lane halts, and across
//! forced lane compactions.
//!
//! This is the batch engine's central correctness argument: lane
//! batching (strided arena, wake masks, SIMD lane loops, compaction
//! remaps) is pure throughput mechanics and can never change what any
//! single lane computes or how much work it is accounted.

use essent_bits::Bits;
use essent_netlist::Netlist;
use essent_sim::batch::BatchSim;
use essent_sim::testgen::gen_circuit;
use essent_sim::{EngineConfig, EssentSim, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Five lanes: enough for the AVX2 fast path (4-wide) plus a scalar
// tail lane, so the differential proof covers both evaluation routes.
const LANES: usize = 5;

fn build(source: &str) -> Netlist {
    let parsed = essent_firrtl::parse(source)
        .unwrap_or_else(|e| panic!("generated FIRRTL must parse: {e}\n{source}"));
    let lowered = essent_firrtl::passes::lower(parsed)
        .unwrap_or_else(|e| panic!("generated FIRRTL must lower: {e}\n{source}"));
    Netlist::from_circuit(&lowered)
        .unwrap_or_else(|e| panic!("generated FIRRTL must build: {e}\n{source}"))
}

/// One per-lane stimulus stream, reproducible from `(seed, lane)` — the
/// same derivation the batch bench's `--seed-stride` flag uses.
fn lane_rng(seed: u64, lane: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0xD1CE ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Drives an N-lane batch engine and N independent single-instance
/// engines with identical per-lane stimulus and requires bit- and
/// counter-exact agreement every cycle; optionally forces a lane
/// compaction mid-run (which must be invisible to every lane).
fn check_lanes(
    seed: u64,
    label: &str,
    netlist: &Netlist,
    config: &EngineConfig,
    circuit: &essent_sim::testgen::GenCircuit,
    compact_at: Option<u64>,
) {
    let batch_config = EngineConfig {
        lanes: LANES,
        ..config.clone()
    };
    let mut batch = BatchSim::new(netlist, &batch_config);
    let mut singles: Vec<EssentSim> = (0..LANES)
        .map(|_| EssentSim::new(netlist, config))
        .collect();
    let mut rngs: Vec<StdRng> = (0..LANES).map(|l| lane_rng(seed, l)).collect();

    for cycle in 0..30u64 {
        if compact_at == Some(cycle) {
            batch.force_compact();
        }
        for (lane, rng) in rngs.iter_mut().enumerate() {
            for (name, width) in &circuit.inputs {
                let value = if name == "reset" {
                    Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
                } else {
                    Bits::from_limbs(vec![rng.gen(), rng.gen()], *width)
                };
                batch.poke_lane(lane, name, value.clone());
                singles[lane].poke(name, value);
            }
        }
        batch.step(1);
        for s in singles.iter_mut() {
            s.step(1);
        }
        for (lane, single) in singles.iter().enumerate() {
            for out in &circuit.outputs {
                assert_eq!(
                    batch.peek_lane(lane, out),
                    single.peek(out),
                    "seed {seed} [{label}] cycle {cycle} lane {lane}: \
                     batch disagrees on {out}\n{}",
                    circuit.source
                );
            }
            assert_eq!(
                batch.counters_of(lane),
                single.counters(),
                "seed {seed} [{label}] cycle {cycle} lane {lane}: work counters diverged\n{}",
                circuit.source
            );
        }
    }
    for (lane, single) in singles.iter().enumerate() {
        assert_eq!(
            batch.cycle_of(lane),
            single.cycle(),
            "[{label}] lane {lane}"
        );
        assert_eq!(
            batch.halted_of(lane),
            single.halted(),
            "[{label}] lane {lane}"
        );
        assert_eq!(
            batch.lane_arena(lane),
            single.machine().arena,
            "seed {seed} [{label}] lane {lane}: final arena images diverged\n{}",
            circuit.source
        );
        for (bank, sbank) in batch.lane_banks(lane).iter().zip(&single.machine().mems) {
            assert_eq!(
                bank.data, sbank.data,
                "seed {seed} [{label}] lane {lane}: memory banks diverged\n{}",
                circuit.source
            );
        }
    }
}

/// The full 2^5 engine switch matrix, batched vs single per lane. The
/// compaction is forced on half the points (it must be a no-op for
/// observable behavior everywhere).
fn check_lane_matrix(seed: u64) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    for bits in 0..32u32 {
        let config = EngineConfig {
            trigger_push: bits & 1 != 0,
            mux_conditional: bits & 2 != 0,
            elide_state: bits & 4 != 0,
            tier1: bits & 8 != 0,
            fuse_triggers: bits & 16 != 0,
            c_p: 4,
            ..EngineConfig::default()
        };
        let compact_at = (bits % 2 == 0).then_some(11u64);
        check_lanes(
            seed,
            &format!("bits={bits:05b}"),
            &netlist,
            &config,
            &circuit,
            compact_at,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lanes_match_singles_across_config_matrix(seed in any::<u64>()) {
        check_lane_matrix(seed);
    }
}

/// Fixed seeds for the matrix, trivially re-runnable on failure.
#[test]
fn lane_matrix_fixed_seeds() {
    for seed in [0u64, 42] {
        check_lane_matrix(seed);
    }
}

// --- Divergent activity: lanes halt at different cycles ------------------

/// A counter that `stop`s when it reaches a per-lane threshold input:
/// lane `l` halts at a different cycle than lane `l+1`, so the batch
/// run exercises partial run masks, frozen-lane state, and the
/// halt-triggered compaction path.
const HALTER: &str = "circuit H :\n  module H :\n    input clock : Clock\n    input reset : UInt<1>\n    input t : UInt<8>\n    output q : UInt<8>\n    reg c : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    c <= tail(add(c, UInt<8>(1)), 1)\n    q <= c\n    stop(clock, eq(c, t), 7)\n";

#[test]
fn divergent_halts_match_singles() {
    let netlist = build(HALTER);
    for bits in 0..32u32 {
        let config = EngineConfig {
            trigger_push: bits & 1 != 0,
            mux_conditional: bits & 2 != 0,
            elide_state: bits & 4 != 0,
            tier1: bits & 8 != 0,
            fuse_triggers: bits & 16 != 0,
            c_p: 4,
            ..EngineConfig::default()
        };
        let lanes = 4usize;
        let batch_config = EngineConfig {
            lanes,
            ..config.clone()
        };
        let mut batch = BatchSim::new(&netlist, &batch_config);
        let mut singles: Vec<EssentSim> = (0..lanes)
            .map(|_| EssentSim::new(&netlist, &config))
            .collect();
        // Lane l halts once the counter reaches 3 + 4*l; lane 3 never
        // halts inside the run.
        for (lane, single) in singles.iter_mut().enumerate() {
            let t = 3 + 4 * lane as u64;
            batch.poke_lane(lane, "t", Bits::from_u64(t, 8));
            single.poke("t", Bits::from_u64(t, 8));
            batch.poke_lane(lane, "reset", Bits::from_u64(0, 1));
            single.poke("reset", Bits::from_u64(0, 1));
        }
        batch.step(14);
        for s in singles.iter_mut() {
            s.step(14);
        }
        for (lane, single) in singles.iter().enumerate() {
            assert_eq!(
                batch.cycle_of(lane),
                single.cycle(),
                "bits={bits:05b} lane {lane} cycle count"
            );
            assert_eq!(
                batch.halted_of(lane),
                single.halted(),
                "bits={bits:05b} lane {lane} halt code"
            );
            assert_eq!(
                batch.peek_lane(lane, "q"),
                single.peek("q"),
                "bits={bits:05b} lane {lane} frozen output"
            );
            assert_eq!(
                batch.counters_of(lane),
                single.counters(),
                "bits={bits:05b} lane {lane} work counters"
            );
            assert_eq!(
                batch.lane_arena(lane),
                single.machine().arena,
                "bits={bits:05b} lane {lane} arena"
            );
        }
        // Lanes 0..3 halted at distinct cycles; the halt compactions
        // re-packed the stride at least once.
        assert!(
            batch.halted_of(0).is_some()
                && batch.halted_of(2).is_some()
                && batch.halted_of(3).is_none(),
            "bits={bits:05b}: expected divergent halts"
        );
        assert!(
            batch.compactions() > 0,
            "bits={bits:05b}: halts must trigger lane compaction"
        );
    }
}
