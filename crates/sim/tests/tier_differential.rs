//! Differential testing of the word-specialized tier: on randomly
//! generated circuits under random stimulus, the tiered CCSS engines
//! (specialized instructions, fused trigger writes) must be *bit- and
//! work-identical* to the same engines running the generic interpreter —
//! same outputs every cycle, same arena contents, and the same
//! `ops_evaluated` count after the run. Counter identity is the strong
//! claim: the tier is a pure re-encoding of the schedule, so it must
//! evaluate exactly the operations the generic path evaluates, never
//! more (no speculation) and never fewer (no lost wake-ups).

use essent_bits::Bits;
use essent_netlist::Netlist;
use essent_sim::testgen::gen_circuit;
use essent_sim::{EngineConfig, EssentSim, ParEssentSim, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(source: &str) -> Netlist {
    let parsed = essent_firrtl::parse(source)
        .unwrap_or_else(|e| panic!("generated FIRRTL must parse: {e}\n{source}"));
    let lowered = essent_firrtl::passes::lower(parsed)
        .unwrap_or_else(|e| panic!("generated FIRRTL must lower: {e}\n{source}"));
    Netlist::from_circuit(&lowered)
        .unwrap_or_else(|e| panic!("generated FIRRTL must build: {e}\n{source}"))
}

fn check_tier_differential(seed: u64) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    let on = EngineConfig::default();
    assert!(on.tier1 && on.fuse_triggers, "default config runs the tier");
    let unfused = EngineConfig {
        fuse_triggers: false,
        ..on.clone()
    };
    let off = EngineConfig {
        tier1: false,
        fuse_triggers: false,
        ..on.clone()
    };

    let mut seq_on = EssentSim::new(&netlist, &on);
    let mut seq_unfused = EssentSim::new(&netlist, &unfused);
    let mut seq_off = EssentSim::new(&netlist, &off);
    let mut par_on = ParEssentSim::new(&netlist, &on, 3);
    let mut par_off = ParEssentSim::new(&netlist, &off, 3);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x71E2);
    for cycle in 0..40u64 {
        for (name, width) in &circuit.inputs {
            let value = if name == "reset" {
                Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
            } else {
                let lo = rng.gen::<u64>();
                let hi = rng.gen::<u64>();
                Bits::from_limbs(vec![lo, hi], *width)
            };
            for e in [&mut seq_on, &mut seq_unfused, &mut seq_off] {
                e.poke(name, value.clone());
            }
            for e in [&mut par_on, &mut par_off] {
                e.poke(name, value.clone());
            }
        }
        seq_on.step(1);
        seq_unfused.step(1);
        seq_off.step(1);
        par_on.step(1);
        par_off.step(1);
        for out in &circuit.outputs {
            let expect = seq_off.peek(out);
            for (label, got) in [
                ("tier+fuse", seq_on.peek(out)),
                ("tier", seq_unfused.peek(out)),
                ("par tier+fuse", par_on.peek(out)),
                ("par generic", par_off.peek(out)),
            ] {
                assert_eq!(
                    got, expect,
                    "seed {seed} cycle {cycle}: {label} disagrees on {out}\n{}",
                    circuit.source
                );
            }
        }
    }

    // Arena identity: the tier writes exactly the slots the generic
    // interpreter writes, with exactly the same normalized values.
    let golden = &seq_off.machine().arena;
    assert_eq!(&seq_on.machine().arena, golden, "seed {seed}: tiered arena");
    assert_eq!(
        &seq_unfused.machine().arena,
        golden,
        "seed {seed}: unfused tiered arena"
    );
    assert_eq!(
        &par_on.machine().arena,
        &par_off.machine().arena,
        "seed {seed}: parallel tiered arena"
    );

    // Work identity: same number of operations evaluated (the tier may
    // never skip or duplicate work), and the fused compare-and-wake tail
    // accounts for exactly the dynamic checks the engine loop performs.
    let base = seq_off.counters();
    for (label, c) in [
        ("tier+fuse", seq_on.counters()),
        ("tier", seq_unfused.counters()),
    ] {
        assert_eq!(
            c.ops_evaluated, base.ops_evaluated,
            "seed {seed}: {label} ops_evaluated"
        );
        assert_eq!(
            c.dynamic_checks, base.dynamic_checks,
            "seed {seed}: {label} dynamic_checks"
        );
        assert_eq!(c.static_checks, base.static_checks, "seed {seed}: {label}");
    }
    assert_eq!(
        par_on.counters().ops_evaluated,
        par_off.counters().ops_evaluated,
        "seed {seed}: parallel ops_evaluated"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tiered_engines_match_generic(seed in any::<u64>()) {
        check_tier_differential(seed);
    }
}

/// Fixed seeds as plain tests so failures are easy to rerun.
#[test]
fn tier_differential_fixed_seeds() {
    for seed in [0u64, 1, 2, 42, 0xE55E] {
        check_tier_differential(seed);
    }
}
