//! Steady-state allocation audit: after warm-up, stepping a sequential
//! engine must not allocate at all. The hot path is pre-resolved at
//! compile time — tiered instructions, preallocated snapshots, in-place
//! mem-write compare — and sharing the netlist behind an `Arc` removed
//! the historical per-engine deep clone and per-firing `Printf` clone.
//!
//! This file holds exactly one `#[test]` so no concurrent test can
//! allocate through the counting global allocator mid-measurement.

use essent_bits::Bits;
use essent_netlist::Netlist;
use essent_sim::{EngineConfig, EssentSim, FullCycleSim, Simulator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts every allocation (alloc, alloc_zeroed, realloc) on top of the
/// system allocator; frees are not counted — growth is what we forbid.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A register-fed design exercising every per-cycle path: combinational
/// logic, a register commit, a memory read, and a memory write that
/// fires every cycle.
const SRC: &str = "circuit A :\n  module A :\n    input clock : Clock\n    input reset : UInt<1>\n    output o : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    node waddr = bits(r, 2, 0)\n    mem m :\n      data-type => UInt<8>\n      depth => 8\n      read-latency => 0\n      write-latency => 1\n      reader => rd\n      writer => wr\n    m.rd.clk <= clock\n    m.rd.en <= UInt<1>(1)\n    m.rd.addr <= waddr\n    m.wr.clk <= clock\n    m.wr.en <= UInt<1>(1)\n    m.wr.addr <= waddr\n    m.wr.mask <= UInt<1>(1)\n    m.wr.data <= r\n    o <= xor(m.rd.data, r)\n";

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_cycles_do_not_allocate() {
    let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(SRC).unwrap()).unwrap();
    let netlist = Arc::new(Netlist::from_circuit(&lowered).unwrap());
    // Printf capture buffers sim-side log lines; the allocation-free
    // contract only holds with it off (the bench configuration).
    let config = EngineConfig {
        capture_printf: false,
        ..EngineConfig::default()
    };

    // Engine construction shares the netlist instead of deep-cloning it.
    let mut essent = EssentSim::new_shared(Arc::clone(&netlist), &config);
    let mut full = FullCycleSim::new_shared(Arc::clone(&netlist), &config);
    assert_eq!(
        Arc::strong_count(&netlist),
        3,
        "engines must share the netlist, not clone it"
    );

    for sim in [
        &mut essent as &mut dyn Simulator,
        &mut full as &mut dyn Simulator,
    ] {
        sim.poke("reset", Bits::from_u64(1, 1));
        sim.step(2);
        sim.poke("reset", Bits::from_u64(0, 1));
        // Warm-up: first activity can fault in lazily-built state.
        sim.step(10);

        let before = allocations();
        let ran = sim.step(200);
        let delta = allocations() - before;
        assert_eq!(ran, 200);
        assert_eq!(
            delta,
            0,
            "{} allocated {delta} time(s) across 200 steady-state cycles",
            sim.engine_name()
        );
    }

    // The work actually happened: the counter runs and writes memory.
    assert_eq!(essent.peek("o"), full.peek("o"));
    assert!(essent.counters().ops_evaluated > 0);
}
