//! Native-tier (JIT) equivalence and deopt coverage.
//!
//! The compiled bodies must be drop-in replacements for the tier-1
//! interpreter: on randomly generated circuits with every partition
//! force-compiled, the ESSENT and parallel engines must agree with the
//! golden interpreter on every output every cycle, their deterministic
//! work counters must match a JIT-free twin bit-for-bit, and forcibly
//! deoptimizing any subset of partitions *mid-run* must change nothing.
//!
//! On targets where the JIT is unsupported these tests degrade to plain
//! tier-1 equivalence runs (compile-all returns 0 bodies) and still
//! pass — the gating itself is part of what is under test.

use essent_bits::Bits;
use essent_netlist::{interp::Interpreter, Netlist};
use essent_sim::testgen::gen_circuit;
use essent_sim::{EngineConfig, EssentSim, ParEssentSim, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(source: &str) -> Netlist {
    let parsed = essent_firrtl::parse(source)
        .unwrap_or_else(|e| panic!("generated FIRRTL must parse: {e}\n{source}"));
    let lowered = essent_firrtl::passes::lower(parsed)
        .unwrap_or_else(|e| panic!("generated FIRRTL must lower: {e}\n{source}"));
    Netlist::from_circuit(&lowered)
        .unwrap_or_else(|e| panic!("generated FIRRTL must build: {e}\n{source}"))
}

/// One random stimulus vector per input, shared across all engines.
fn poke_all(
    rng: &mut StdRng,
    cycle: u64,
    inputs: &[(String, u32)],
    golden: &mut Interpreter,
    engines: &mut [&mut dyn Simulator],
) {
    for (name, width) in inputs {
        let value = if name == "reset" {
            Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
        } else {
            Bits::from_limbs(vec![rng.gen(), rng.gen()], *width)
        };
        golden.poke(name, value.clone());
        for e in engines.iter_mut() {
            e.poke(name, value.clone());
        }
    }
}

/// Sequential engine, every partition force-compiled, vs golden and a
/// JIT-free twin; deopts a pseudo-random subset mid-run (including a
/// full deopt near the end) and checks outputs + counters every cycle.
fn check_jit_essent(seed: u64, config: &EngineConfig) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    let mut golden = Interpreter::new(&netlist);
    let mut plain = EssentSim::new(&netlist, config);
    let mut jitted = EssentSim::new(&netlist, config);
    let compiled = jitted.jit_compile_all();
    let parts = jitted.partition_count();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x717);
    for cycle in 0..40u64 {
        poke_all(
            &mut rng,
            cycle,
            &circuit.inputs,
            &mut golden,
            &mut [&mut plain, &mut jitted],
        );
        golden.step(1);
        plain.step(1);
        jitted.step(1);
        for out in &circuit.outputs {
            let expect = golden.peek(out);
            assert_eq!(
                jitted.peek(out),
                expect,
                "seed {seed} cycle {cycle} ({compiled}/{parts} compiled): \
                 jitted essent disagrees with golden on {out}\n{}",
                circuit.source
            );
        }
        assert_eq!(
            jitted.counters(),
            plain.counters(),
            "seed {seed} cycle {cycle}: JIT perturbed work counters\n{}",
            circuit.source
        );
        // Mid-run deopt: drop one pseudo-random partition every few
        // cycles, and everything at cycle 30.
        if parts > 0 && cycle % 5 == 4 {
            jitted.force_deopt(rng.gen_range(0..parts));
        }
        if cycle == 30 {
            jitted.force_deopt_all();
            assert_eq!(jitted.jit_compiled_count(), 0);
        }
    }
}

/// Parallel engine (3 workers), every partition force-compiled, vs
/// golden; mid-run deopt subset as above. Covers both the LPT level
/// sweep and the dataflow schedule via `config`.
fn check_jit_par(seed: u64, config: &EngineConfig) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    let mut golden = Interpreter::new(&netlist);
    let mut jitted = ParEssentSim::new(&netlist, config, 3);
    let compiled = jitted.jit_compiled_count();
    let forced = jitted.jit_compile_all();
    let parts = jitted.partition_count();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x939);
    for cycle in 0..40u64 {
        poke_all(
            &mut rng,
            cycle,
            &circuit.inputs,
            &mut golden,
            &mut [&mut jitted],
        );
        golden.step(1);
        jitted.step(1);
        for out in &circuit.outputs {
            let expect = golden.peek(out);
            assert_eq!(
                jitted.peek(out),
                expect,
                "seed {seed} cycle {cycle} (cost-selected {compiled}, forced {forced}/{parts}, \
                 dataflow={}): jitted par disagrees with golden on {out}\n{}",
                config.par_dataflow,
                circuit.source
            );
        }
        if parts > 0 && cycle % 5 == 4 {
            jitted.force_deopt(rng.gen_range(0..parts));
        }
        if cycle == 30 {
            jitted.force_deopt_all();
        }
    }
}

/// The tier-relevant switch matrix for the JIT path: everything that
/// changes what the compiled body must replicate (mux lowering, state
/// elision, trigger direction, fusion) at two partition sizes.
fn check_jit_config_matrix(seed: u64) {
    for bits in 0..32u32 {
        let config = EngineConfig {
            trigger_push: bits & 1 != 0,
            mux_conditional: bits & 2 != 0,
            elide_state: bits & 4 != 0,
            fuse_triggers: bits & 8 != 0,
            c_p: if bits & 16 != 0 { 64 } else { 4 },
            tier1: true,
            jit: true,
            ..EngineConfig::default()
        };
        check_jit_essent(seed, &config);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn jit_matches_golden_across_config_matrix(seed in any::<u64>()) {
        check_jit_config_matrix(seed);
    }

    #[test]
    fn jit_par_matches_golden(seed in any::<u64>()) {
        check_jit_par(
            seed,
            &EngineConfig {
                jit: true,
                ..EngineConfig::default()
            },
        );
        check_jit_par(
            seed,
            &EngineConfig {
                jit: true,
                par_dataflow: true,
                ..EngineConfig::default()
            },
        );
    }
}

/// Fixed seeds, trivially re-runnable on failure.
#[test]
fn jit_fixed_seeds() {
    for seed in [0u64, 1, 42, 0xE55E] {
        check_jit_config_matrix(seed);
        check_jit_par(
            seed,
            &EngineConfig {
                jit: true,
                ..EngineConfig::default()
            },
        );
        check_jit_par(
            seed,
            &EngineConfig {
                jit: true,
                par_dataflow: true,
                ..EngineConfig::default()
            },
        );
    }
}

/// Under the race sanitizer the dynamic oracle instruments the tier-1
/// interpreter loop, so `jit: true` must be silently ignored — even the
/// force-compile testing hook must refuse — while equivalence with the
/// golden interpreter still holds.
#[cfg(feature = "race-sanitizer")]
#[test]
fn jit_stays_disabled_under_sanitizer() {
    for seed in [0u64, 42, 0xE55E] {
        let circuit = gen_circuit(seed);
        let netlist = build(&circuit.source);
        let config = EngineConfig {
            jit: true,
            ..EngineConfig::default()
        };
        let mut golden = Interpreter::new(&netlist);
        let mut sim = EssentSim::new(&netlist, &config);
        assert_eq!(
            sim.jit_compiled_count(),
            0,
            "seed {seed}: sanitizer must gate JIT"
        );
        assert_eq!(
            sim.jit_compile_all(),
            0,
            "seed {seed}: force-compile must refuse"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for cycle in 0..20u64 {
            poke_all(
                &mut rng,
                cycle,
                &circuit.inputs,
                &mut golden,
                &mut [&mut sim],
            );
            golden.step(1);
            sim.step(1);
            for out in &circuit.outputs {
                assert_eq!(
                    sim.peek(out),
                    golden.peek(out),
                    "seed {seed} cycle {cycle} {out}"
                );
            }
        }
        assert_eq!(
            sim.jit_compiled_count(),
            0,
            "seed {seed}: JIT appeared mid-run"
        );
    }
}

/// The cost-threshold path itself (no force-compile): default configs
/// with `jit: true` must behave identically to `jit: false`.
#[test]
fn jit_threshold_selection_is_transparent() {
    for seed in [7u64, 0xBEE] {
        let circuit = gen_circuit(seed);
        let netlist = build(&circuit.source);
        let mut golden = Interpreter::new(&netlist);
        let off = EngineConfig::default();
        let on = EngineConfig {
            jit: true,
            ..off.clone()
        };
        let mut plain = EssentSim::new(&netlist, &off);
        let mut jitted = EssentSim::new(&netlist, &on);
        let mut rng = StdRng::seed_from_u64(seed);
        for cycle in 0..30u64 {
            poke_all(
                &mut rng,
                cycle,
                &circuit.inputs,
                &mut golden,
                &mut [&mut plain, &mut jitted],
            );
            golden.step(1);
            plain.step(1);
            jitted.step(1);
            for out in &circuit.outputs {
                assert_eq!(jitted.peek(out), golden.peek(out), "seed {seed} {out}");
            }
            assert_eq!(jitted.counters(), plain.counters(), "seed {seed} counters");
        }
    }
}
