//! Properties of the profile-feedback loop: the activity-guided merge
//! phase is pure scheduling — it may regroup partitions but can never
//! break the exact-cover/acyclicity invariants or change observable
//! behavior — and the LPT level scheduler is execution-equivalent to
//! the original uniform level sweep, cycle for cycle, counter for
//! counter.

use essent_bits::Bits;
use essent_core::partition::{partition, partition_with_prior, ActivityMergeParams, ActivityPrior};
use essent_core::plan::{extended_dag, CcssPlan};
use essent_netlist::{interp::Interpreter, Netlist};
use essent_sim::testgen::gen_circuit;
use essent_sim::{activity_prior, EngineConfig, EssentSim, ParEssentSim, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(source: &str) -> Netlist {
    let parsed = essent_firrtl::parse(source)
        .unwrap_or_else(|e| panic!("generated FIRRTL must parse: {e}\n{source}"));
    let lowered = essent_firrtl::passes::lower(parsed)
        .unwrap_or_else(|e| panic!("generated FIRRTL must lower: {e}\n{source}"));
    Netlist::from_circuit(&lowered)
        .unwrap_or_else(|e| panic!("generated FIRRTL must build: {e}\n{source}"))
}

/// A prior with arbitrary known/unknown rates and costs, seeded.
fn random_prior(nodes: usize, seed: u64) -> ActivityPrior {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9A17);
    let mut prior = ActivityPrior::neutral(nodes);
    for node in 0..nodes {
        if rng.gen_bool(0.7) {
            let rate = rng.gen_range(0u32..=100) as f64 / 100.0;
            let cost = rng.gen_range(0u32..50) as f64;
            prior.set_node(node, rate, cost);
        }
    }
    prior
}

/// The merge phase must preserve exact cover and partition-graph
/// acyclicity for any prior — neutral, all-cold, all-hot, or arbitrary —
/// at every `C_p`; and the neutral prior must be a strict no-op.
fn check_merge_invariants(seed: u64) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    let (dag, _) = extended_dag(&netlist);
    let n = dag.node_count();
    for c_p in [1usize, 4, 8] {
        let params = ActivityMergeParams::for_cp(c_p);
        let baseline = partition(&dag, c_p);
        for (label, prior) in [
            ("neutral", ActivityPrior::neutral(n)),
            ("all-cold", ActivityPrior::uniform(n, 0.0)),
            ("all-hot", ActivityPrior::uniform(n, 1.0)),
            ("random", random_prior(n, seed)),
        ] {
            let (merged, log) = partition_with_prior(&dag, c_p, &prior, &params);
            merged.validate(&dag).unwrap_or_else(|e| {
                panic!("seed {seed} c_p={c_p} [{label}]: merged partitioning invalid: {e}")
            });
            match label {
                // Unknown (or cold) rates never clear the hot threshold:
                // the structural partitioning must come through unchanged.
                "neutral" | "all-cold" => {
                    assert!(
                        log.is_empty(),
                        "seed {seed} c_p={c_p} [{label}]: merged anyway"
                    );
                    assert_eq!(
                        merged.assignment(),
                        baseline.assignment(),
                        "seed {seed} c_p={c_p} [{label}]: assignment drifted"
                    );
                }
                _ => {
                    let before = baseline.live_partitions().count();
                    let after = merged.live_partitions().count();
                    assert_eq!(
                        before - after,
                        log.len(),
                        "seed {seed} c_p={c_p} [{label}]: log disagrees with partition count"
                    );
                }
            }
        }
    }
}

/// Closes the loop end-to-end on a random circuit: profile a run,
/// convert the report to a prior, rebuild with `new_with_prior`, and
/// require golden-equivalence of the repartitioned engine.
fn check_feedback_loop(seed: u64) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    let config = EngineConfig {
        c_p: 4,
        ..EngineConfig::default()
    };

    // Seeding run.
    let mut profiled = EssentSim::new(
        &netlist,
        &EngineConfig {
            profile: true,
            ..config.clone()
        },
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    for cycle in 0..30u64 {
        for (name, width) in &circuit.inputs {
            let value = if name == "reset" {
                Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
            } else {
                Bits::from_limbs(vec![rng.gen(), rng.gen()], *width)
            };
            profiled.poke(name, value);
        }
        profiled.step(1);
    }
    let report = profiled.profile_report().expect("profile config is on");
    let plan = CcssPlan::build(&netlist, config.c_p);
    let prior = activity_prior(&netlist, &plan, &report);

    // The feedback-guided engine must still match the interpreter.
    let mut golden = Interpreter::new(&netlist);
    let mut fb = EssentSim::new_with_prior(&netlist, &config, &prior);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    for cycle in 0..40u64 {
        for (name, width) in &circuit.inputs {
            let value = if name == "reset" {
                Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
            } else {
                Bits::from_limbs(vec![rng.gen(), rng.gen()], *width)
            };
            golden.poke(name, value.clone());
            fb.poke(name, value);
        }
        golden.step(1);
        fb.step(1);
        for out in &circuit.outputs {
            assert_eq!(
                fb.peek(out),
                golden.peek(out),
                "seed {seed} cycle {cycle}: feedback engine disagrees on {out}\n{}",
                circuit.source
            );
        }
    }
}

/// LPT bins vs. the uniform level sweep across the full optimization
/// switch matrix: identical outputs *and* identical work counters every
/// cycle — the scheduler may only change who runs a partition, never
/// whether or how it runs.
fn check_lpt_differential(seed: u64) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    for bits in 0..32u32 {
        let sweep_cfg = EngineConfig {
            trigger_push: bits & 1 != 0,
            mux_conditional: bits & 2 != 0,
            elide_state: bits & 4 != 0,
            tier1: bits & 8 != 0,
            fuse_triggers: bits & 16 != 0,
            c_p: 4,
            par_lpt: false,
            ..EngineConfig::default()
        };
        let lpt_cfg = EngineConfig {
            par_lpt: true,
            ..sweep_cfg.clone()
        };
        let mut golden = Interpreter::new(&netlist);
        let mut sweep = ParEssentSim::new(&netlist, &sweep_cfg, 3);
        let mut lpt = ParEssentSim::new(&netlist, &lpt_cfg, 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1B7);
        for cycle in 0..25u64 {
            for (name, width) in &circuit.inputs {
                let value = if name == "reset" {
                    Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
                } else {
                    Bits::from_limbs(vec![rng.gen(), rng.gen()], *width)
                };
                golden.poke(name, value.clone());
                sweep.poke(name, value.clone());
                lpt.poke(name, value);
            }
            golden.step(1);
            sweep.step(1);
            lpt.step(1);
            for out in &circuit.outputs {
                let expect = golden.peek(out);
                for (which, e) in [("sweep", &sweep), ("lpt", &lpt)] {
                    assert_eq!(
                        e.peek(out),
                        expect,
                        "seed {seed} bits={bits:05b} cycle {cycle}: {which} disagrees on {out}\n{}",
                        circuit.source
                    );
                }
            }
            assert_eq!(
                sweep.counters(),
                lpt.counters(),
                "seed {seed} bits={bits:05b} cycle {cycle}: LPT changed the work done\n{}",
                circuit.source
            );
        }
    }
}

/// The static dataflow schedule vs. the LPT level sweep vs. the golden
/// interpreter across the optimization matrix: the dataflow engine may
/// only change *when* a partition runs relative to others (ready-flag
/// waits instead of level barriers, cycle-boundary overlap for exempt
/// partitions), never whether it runs or what it computes. Outputs and
/// [`WorkCounters`] must agree cycle for cycle, and again over a
/// batched `step(16)` — the only place cross-cycle overlap actually
/// engages, since a `step(1)` drains the pipeline every call.
fn check_dataflow_differential(seed: u64) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    for bits in 0..32u32 {
        // Rotate the worker count through the matrix so every flag
        // combination sees single-, dual-, and quad-worker schedules.
        let threads = [1usize, 2, 4][(bits % 3) as usize];
        let lpt_cfg = EngineConfig {
            trigger_push: bits & 1 != 0,
            mux_conditional: bits & 2 != 0,
            elide_state: bits & 4 != 0,
            tier1: bits & 8 != 0,
            fuse_triggers: bits & 16 != 0,
            c_p: 4,
            par_lpt: true,
            ..EngineConfig::default()
        };
        let df_cfg = EngineConfig {
            par_dataflow: true,
            ..lpt_cfg.clone()
        };
        let mut golden = Interpreter::new(&netlist);
        let mut lpt = ParEssentSim::new(&netlist, &lpt_cfg, threads);
        let mut df = ParEssentSim::new(&netlist, &df_cfg, threads);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A);
        for cycle in 0..20u64 {
            for (name, width) in &circuit.inputs {
                let value = if name == "reset" {
                    Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
                } else {
                    Bits::from_limbs(vec![rng.gen(), rng.gen()], *width)
                };
                golden.poke(name, value.clone());
                lpt.poke(name, value.clone());
                df.poke(name, value);
            }
            golden.step(1);
            lpt.step(1);
            df.step(1);
            for out in &circuit.outputs {
                let expect = golden.peek(out);
                assert_eq!(
                    df.peek(out),
                    expect,
                    "seed {seed} bits={bits:05b} threads={threads} cycle {cycle}: \
                     dataflow disagrees on {out}\n{}",
                    circuit.source
                );
                assert_eq!(
                    lpt.peek(out),
                    expect,
                    "seed {seed} bits={bits:05b} threads={threads} cycle {cycle}: \
                     lpt disagrees on {out}\n{}",
                    circuit.source
                );
            }
            assert_eq!(
                df.counters(),
                lpt.counters(),
                "seed {seed} bits={bits:05b} threads={threads} cycle {cycle}: \
                 dataflow changed the work done\n{}",
                circuit.source
            );
        }

        // Batched phase: fresh twins, one poke, sixteen cycles in a
        // single engine call so exempt partitions overlap the boundary.
        let mut golden = Interpreter::new(&netlist);
        let mut lpt = ParEssentSim::new(&netlist, &lpt_cfg, threads);
        let mut df = ParEssentSim::new(&netlist, &df_cfg, threads);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
        for (phase, n) in [(0u32, 2u64), (1, 16)] {
            for (name, width) in &circuit.inputs {
                let value = if name == "reset" {
                    Bits::from_u64((phase == 0) as u64, 1)
                } else {
                    Bits::from_limbs(vec![rng.gen(), rng.gen()], *width)
                };
                golden.poke(name, value.clone());
                lpt.poke(name, value.clone());
                df.poke(name, value);
            }
            golden.step(n);
            lpt.step(n);
            df.step(n);
        }
        for out in &circuit.outputs {
            let expect = golden.peek(out);
            assert_eq!(
                df.peek(out),
                expect,
                "seed {seed} bits={bits:05b} threads={threads}: batched dataflow \
                 disagrees on {out}\n{}",
                circuit.source
            );
        }
        assert_eq!(
            df.counters(),
            lpt.counters(),
            "seed {seed} bits={bits:05b} threads={threads}: batched dataflow \
             changed the work done\n{}",
            circuit.source
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merge_preserves_cover_and_acyclicity(seed in any::<u64>()) {
        check_merge_invariants(seed);
    }

    #[test]
    fn feedback_loop_stays_golden(seed in any::<u64>()) {
        check_feedback_loop(seed);
    }
}

proptest! {
    // The matrix is 32 configs deep per case; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn lpt_matches_level_sweep(seed in any::<u64>()) {
        check_lpt_differential(seed);
    }

    #[test]
    fn dataflow_matches_lpt_and_golden(seed in any::<u64>()) {
        check_dataflow_differential(seed);
    }
}

/// Fixed seeds as plain tests so failures are easy to rerun.
#[test]
fn feedback_fixed_seeds() {
    for seed in [0u64, 1, 42, 0xE55E] {
        check_merge_invariants(seed);
        check_feedback_loop(seed);
    }
}

#[test]
fn lpt_fixed_seeds() {
    for seed in [0u64, 7, 0xC0FFEE] {
        check_lpt_differential(seed);
    }
}

#[test]
fn dataflow_fixed_seeds() {
    for seed in [0u64, 7, 0xDF10] {
        check_dataflow_differential(seed);
    }
}
