//! Differential oracle for the race sanitizer: with the
//! `race-sanitizer` feature enabled, a [`ParEssentSim`] built with
//! `race_sanitizer: true` must (a) never panic — the static footprint
//! proof (`essent-verify` `R0501`–`R0504`) claims the parallel schedule
//! is race-free, and the sanitizer panics exactly on races — and
//! (b) behave identically to the sanitizer-off twin: same outputs every
//! cycle, same [`WorkCounters`] at the end, across the full 32-config
//! engine matrix at 1, 2, and 3 worker threads.
//!
//! Without the feature the test still runs (both twins are plain
//! parallel engines), keeping the harness itself under test.

use essent_bits::Bits;
use essent_netlist::{interp::Interpreter, Netlist};
use essent_sim::testgen::gen_circuit;
use essent_sim::{EngineConfig, ParEssentSim, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(source: &str) -> Netlist {
    let parsed = essent_firrtl::parse(source)
        .unwrap_or_else(|e| panic!("generated FIRRTL must parse: {e}\n{source}"));
    let lowered = essent_firrtl::passes::lower(parsed)
        .unwrap_or_else(|e| panic!("generated FIRRTL must lower: {e}\n{source}"));
    Netlist::from_circuit(&lowered)
        .unwrap_or_else(|e| panic!("generated FIRRTL must build: {e}\n{source}"))
}

/// Sanitizer-on vs sanitizer-off parallel twins over the 32-config
/// matrix (same bit layout as `prop_equivalence::check_config_matrix`),
/// each checked against the reference interpreter.
fn check_sanitizer_twins(seed: u64, threads: usize) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    for bits in 0..32u32 {
        let config = EngineConfig {
            trigger_push: bits & 1 != 0,
            mux_conditional: bits & 2 != 0,
            elide_state: bits & 4 != 0,
            tier1: bits & 8 != 0,
            fuse_triggers: bits & 16 != 0,
            c_p: 4,
            ..EngineConfig::default()
        };
        let mut golden = Interpreter::new(&netlist);
        let mut off = ParEssentSim::new(&netlist, &config, threads);
        let mut on = ParEssentSim::new(
            &netlist,
            &EngineConfig {
                race_sanitizer: true,
                ..config.clone()
            },
            threads,
        );

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A17);
        for cycle in 0..25u64 {
            for (name, width) in &circuit.inputs {
                let value = if name == "reset" {
                    Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
                } else {
                    let lo = rng.gen::<u64>();
                    let hi = rng.gen::<u64>();
                    Bits::from_limbs(vec![lo, hi], *width)
                };
                golden.poke(name, value.clone());
                off.poke(name, value.clone());
                on.poke(name, value);
            }
            golden.step(1);
            off.step(1);
            on.step(1);
            for out in &circuit.outputs {
                let expect = golden.peek(out);
                assert_eq!(
                    off.peek(out),
                    expect,
                    "sanitizer-off `{out}` diverged (seed={seed} bits={bits:05b} \
                     threads={threads} cycle={cycle})"
                );
                assert_eq!(
                    on.peek(out),
                    expect,
                    "sanitizer-on `{out}` diverged (seed={seed} bits={bits:05b} \
                     threads={threads} cycle={cycle})"
                );
            }
        }
        assert_eq!(
            on.counters(),
            off.counters(),
            "sanitizer changed work counters (seed={seed} bits={bits:05b} threads={threads})"
        );
    }
}

/// The same twin discipline over the dataflow engine: ready-flag waits
/// and cycle-boundary overlap replace the level barriers, and the
/// sanitizer's epoch windows must still see every access as ordered.
/// The batched `step(16)` leg is the one that actually overlaps
/// cycles — a `step(1)` drains the pipeline every call.
fn check_dataflow_sanitizer_twins(seed: u64, threads: usize) {
    let circuit = gen_circuit(seed);
    let netlist = build(&circuit.source);
    for bits in 0..32u32 {
        let config = EngineConfig {
            trigger_push: bits & 1 != 0,
            mux_conditional: bits & 2 != 0,
            elide_state: bits & 4 != 0,
            tier1: bits & 8 != 0,
            fuse_triggers: bits & 16 != 0,
            c_p: 4,
            par_dataflow: true,
            ..EngineConfig::default()
        };
        let mut golden = Interpreter::new(&netlist);
        let mut off = ParEssentSim::new(&netlist, &config, threads);
        let mut on = ParEssentSim::new(
            &netlist,
            &EngineConfig {
                race_sanitizer: true,
                ..config.clone()
            },
            threads,
        );

        let mut rng = StdRng::seed_from_u64(seed ^ 0xDF5A);
        for (phase, n) in [(0u32, 2u64), (1, 16), (2, 16)] {
            for (name, width) in &circuit.inputs {
                let value = if name == "reset" {
                    Bits::from_u64((phase == 0) as u64, 1)
                } else {
                    let lo = rng.gen::<u64>();
                    let hi = rng.gen::<u64>();
                    Bits::from_limbs(vec![lo, hi], *width)
                };
                golden.poke(name, value.clone());
                off.poke(name, value.clone());
                on.poke(name, value);
            }
            golden.step(n);
            off.step(n);
            on.step(n);
            for out in &circuit.outputs {
                let expect = golden.peek(out);
                assert_eq!(
                    off.peek(out),
                    expect,
                    "dataflow sanitizer-off `{out}` diverged (seed={seed} bits={bits:05b} \
                     threads={threads} phase={phase})"
                );
                assert_eq!(
                    on.peek(out),
                    expect,
                    "dataflow sanitizer-on `{out}` diverged (seed={seed} bits={bits:05b} \
                     threads={threads} phase={phase})"
                );
            }
        }
        assert_eq!(
            on.counters(),
            off.counters(),
            "dataflow sanitizer changed work counters (seed={seed} bits={bits:05b} \
             threads={threads})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sanitizer_is_pure_observer(seed in any::<u64>()) {
        for threads in [1usize, 2, 3] {
            check_sanitizer_twins(seed, threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn dataflow_sanitizer_is_pure_observer(seed in any::<u64>()) {
        for threads in [1usize, 2, 4] {
            check_dataflow_sanitizer_twins(seed, threads);
        }
    }
}

/// Fixed seeds, trivially re-runnable on failure.
#[test]
fn sanitizer_twins_fixed_seeds() {
    for seed in [0u64, 42] {
        for threads in [1usize, 2, 3] {
            check_sanitizer_twins(seed, threads);
        }
    }
}

#[test]
fn dataflow_sanitizer_fixed_seeds() {
    for seed in [0u64, 42] {
        for threads in [1usize, 2, 4] {
            check_dataflow_sanitizer_twins(seed, threads);
        }
    }
}
