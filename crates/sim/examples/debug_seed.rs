//! Debug harness: rebuilds a failing equivalence seed and reports the
//! first divergent memory contents / computed signals for the ESSENT
//! engine against the interpreter.
use essent_bits::Bits;
use essent_netlist::{interp::Interpreter, opt, Netlist, SignalDef};
use essent_sim::testgen::gen_circuit;
use essent_sim::{EngineConfig, EssentSim, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7575557336991094114);
    let circuit = gen_circuit(seed);
    let parsed = essent_firrtl::parse(&circuit.source).unwrap();
    let lowered = essent_firrtl::passes::lower(parsed).unwrap();
    let mut netlist = Netlist::from_circuit(&lowered).unwrap();
    opt::optimize(&mut netlist, &opt::OptConfig::default());
    let mut golden = Interpreter::new(&netlist);
    let mut es = EssentSim::new(&netlist, &EngineConfig::default());
    println!(
        "plan: {} partitions; elided regs: {:?}; elided writes: {:?}",
        es.partition_count(),
        es.plan()
            .reg_plans
            .iter()
            .map(|r| r.elided)
            .collect::<Vec<_>>(),
        es.plan()
            .mem_write_plans
            .iter()
            .map(|w| w.elided)
            .collect::<Vec<_>>()
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    'outer: for cycle in 0..40u64 {
        for (name, width) in &circuit.inputs {
            let value = if name == "reset" {
                Bits::from_u64((cycle < 2 || rng.gen_bool(0.05)) as u64, 1)
            } else {
                let lo = rng.gen::<u64>();
                let hi = rng.gen::<u64>();
                Bits::from_limbs(vec![lo, hi], *width)
            };
            golden.poke(name, value.clone());
            es.poke(name, value.clone());
        }
        golden.step(1);
        es.step(1);
        let mut bad = false;
        for (i, sg) in netlist.signals().iter().enumerate() {
            if !matches!(sg.def, SignalDef::Op(_) | SignalDef::MemRead { .. }) {
                continue;
            }
            let id = essent_netlist::SignalId(i as u32);
            let g = golden.peek_id(id).clone();
            let f = es.peek_id(id);
            if g != f {
                // absorbed mux-way signals are legitimately stale; report
                // only engine-visible ones
                println!(
                    "cycle {cycle}: {} = {:?} golden={g:?} essent={f:?}",
                    sg.name, sg.def
                );
                bad = true;
            }
        }
        for m in netlist.mems() {
            for a in 0..m.depth {
                let g = golden.read_mem(&m.name, a).expect("golden mem ref");
                let f = es.read_mem(&m.name, a);
                if g != f {
                    println!(
                        "cycle {cycle}: mem {}[{a}] golden={g:?} essent={f:?}",
                        m.name
                    );
                    bad = true;
                }
            }
        }
        if bad {
            println!("--- writer fields:");
            for m in netlist.mems() {
                for w in &m.writers {
                    println!(
                        "  {} writer: addr={} en={} mask={} data={}",
                        m.name,
                        netlist.signal(w.addr).name,
                        netlist.signal(w.en).name,
                        netlist.signal(w.mask).name,
                        netlist.signal(w.data).name
                    );
                }
            }
            break 'outer;
        }
    }
}
