//! Batched multi-instance CCSS simulation: one compiled schedule, N
//! lane-masked machines in lockstep.
//!
//! The production workload for an RTL simulator is rarely one run — it
//! is thousands of seeds/stimuli over the same design (fuzzing farms,
//! CI regression matrices, parameter sweeps). [`BatchSim`] evaluates N
//! instances of one compiled plan data-parallel:
//!
//! - the value arena becomes an **N-lane SoA**: word `w` of lane `l`
//!   lives at `w * lanes + l`, so one instruction's operand values for
//!   all lanes are contiguous and a per-op lane loop auto-vectorizes
//!   (with an explicit AVX2 path for the hot unsigned ALU/mux ops,
//!   [`crate::step1`]);
//! - every CCSS activity flag becomes a **per-lane wake mask**
//!   (`u64`, one bit per lane): a partition evaluates only the union
//!   of awake lanes and a single word test skips it for all lanes at
//!   once — the paper's low-activity bet, multiplied across lanes;
//! - each lane keeps its own memory banks, work counters, halt state,
//!   and printf log, so lane `i` of a batched run is bit- and
//!   counter-identical to an independent single-instance
//!   [`crate::EssentSim`] run over the same stimulus (the property
//!   `tests/batch_props.rs` proves differentially and the X08xx verify
//!   layer audits structurally);
//! - **divergence-aware lane compaction** remaps cold/halted lanes out
//!   of the hot stride: lanes are addressed logically through a
//!   physical permutation, and when per-lane activity drifts (or a
//!   lane halts) the running lanes are re-packed into a dense prefix
//!   so the dense lane loops stay contiguous.
//!
//! The JIT and profiler tiers are intentionally not threaded through
//! the batch engine: the native bodies are compiled against the scalar
//! arena stride and the profiler's attribution arena is single-lane.
//! `EngineConfig::jit` / `profile` are ignored here (documented in
//! DESIGN.md §14); every other ablation switch — `c_p`, mux
//! conditionalization, state elision, push/pull triggering, tier-1,
//! trigger fusion — behaves per lane exactly as in [`crate::EssentSim`].

use crate::compile::{compile_plan, Block, Layout};
use crate::engine::EngineConfig;
use crate::machine::{run_items_raw, MemBank, WorkCounters};
use crate::step1::{
    item_rw, lower_tier1, run_tier1_lanes, ItemRw, OutSpec, Tier1Program, TierStats, NO_FUSE,
};
use essent_bits::{kernels, Bits};
use essent_core::partition::partition;
use essent_core::plan::{extended_dag, CcssPlan, PlanOptions};
use essent_netlist::interp::format_printf;
use essent_netlist::{Netlist, SignalDef, SignalId};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Re-pack lanes by activity at most this often (a halted lane
/// triggers compaction immediately).
const COMPACT_INTERVAL: u64 = 1024;

/// Flattened per-output snapshot-compare tables, lane-strided: word `k`
/// of output snapshot `o` for lane `l` lives at
/// `(old_off[o] + k) * lanes + l`.
#[derive(Debug, Default)]
struct Triggers {
    out_off: Vec<u32>,
    out_words: Vec<u16>,
    old_off: Vec<u32>,
    cons_start: Vec<u32>,
    cons_end: Vec<u32>,
    consumers: Vec<u32>,
    part_start: Vec<u32>,
    part_end: Vec<u32>,
    /// Snapshot storage, lane-strided.
    old_vals: Vec<u64>,
}

/// Pull-direction snapshot tables (lane-strided storage).
#[derive(Debug, Default)]
struct PullInputs {
    in_off: Vec<u32>,
    in_words: Vec<u16>,
    snap_off: Vec<u32>,
    part_start: Vec<u32>,
    part_end: Vec<u32>,
    snapshots: Vec<u64>,
}

/// Everything the X08xx verify layer audits about a live batch engine:
/// the stride geometry, the wake routing its runtime tables actually
/// encode (snapshot-compare triggers ∪ fused tier-1 ranges, by arena
/// offset), the lane permutation, and each lane's bank shapes. Captured
/// by [`BatchSim::batch_audit`]; re-proven from an independently built
/// plan by `essent-verify::check_batch`.
#[derive(Debug, Clone)]
pub struct BatchAudit {
    pub lanes: usize,
    /// Arena lane stride in words (must equal `lanes`).
    pub stride: usize,
    /// Scalar layout size the stride multiplies.
    pub total_words: usize,
    pub arena_len: usize,
    pub scratch_len: usize,
    /// Per scheduled partition: `(output arena offset, wake consumers)`,
    /// sorted, consumers sorted and deduplicated — the union of the
    /// engine's snapshot-compare tables and fused instruction ranges.
    pub out_routes: Vec<Vec<(u32, Vec<u32>)>>,
    /// Per register plan: sorted wake-on-change consumers.
    pub reg_wakes: Vec<Vec<u32>>,
    /// Per memory-write plan: sorted wake-on-change consumers.
    pub mem_wakes: Vec<Vec<u32>>,
    /// Per external input (sorted by signal id): wake consumers.
    pub input_wakes: Vec<(u32, Vec<u32>)>,
    /// Logical lane → physical stride slot.
    pub phys_of_log: Vec<u32>,
    /// Physical stride slot → logical lane.
    pub log_of_phys: Vec<u32>,
    /// Per physical lane, per bank: `(words_per_entry, depth)`.
    pub bank_shapes: Vec<Vec<(usize, usize)>>,
}

/// The batched CCSS simulator. Lane arguments on the public API are
/// **logical** lane indices (stable across compaction).
pub struct BatchSim {
    netlist: Arc<Netlist>,
    layout: Layout,
    plan: CcssPlan,
    blocks: Vec<Block>,
    programs: Option<Vec<Tier1Program>>,
    /// Per partition: footprints of its generic-fallback items
    /// (parallel to each program's `generic` vector).
    generic_rw: Vec<Vec<ItemRw>>,
    /// Tier-off path: per partition, the merged footprint of its whole
    /// block (gathered/scattered around the generic interpreter).
    block_rw: Vec<ItemRw>,
    lanes: usize,
    /// Lane-strided SoA value arena: `total_words * lanes` words.
    arena: Vec<u64>,
    /// Scalar scratch arena (`total_words`) for generic-fallback items.
    scratch: Vec<u64>,
    /// Per physical lane: memory banks.
    mems: Vec<Vec<MemBank>>,
    /// Per partition: lane wake mask (bit `l` = physical lane `l` awake).
    flags: Vec<u64>,
    triggers: Triggers,
    input_wake: HashMap<SignalId, Vec<u32>>,
    commit_regs: Vec<usize>,
    commit_writes: Vec<usize>,
    push: bool,
    pull: PullInputs,
    capture_printf: bool,
    // --- per physical lane state ------------------------------------
    counters: Vec<WorkCounters>,
    cycles: Vec<u64>,
    halted: Vec<Option<u64>>,
    printf_log: Vec<Vec<String>>,
    // --- lane compaction ---------------------------------------------
    phys_of_log: Vec<u32>,
    log_of_phys: Vec<u32>,
    evals_since_compact: Vec<u64>,
    cycles_since_compact: u64,
    compactions: u64,
    full_steps: usize,
}

impl BatchSim {
    /// Partitions the netlist at `config.c_p` and compiles the batched
    /// simulator with `config.lanes` lanes.
    ///
    /// # Panics
    ///
    /// Panics unless `config.lanes` is in `1..=64` (one `u64` wake-mask
    /// word).
    pub fn new(netlist: &Netlist, config: &EngineConfig) -> BatchSim {
        BatchSim::new_shared(Arc::new(netlist.clone()), config)
    }

    /// [`BatchSim::new`] over an already-shared netlist (no deep clone).
    pub fn new_shared(netlist: Arc<Netlist>, config: &EngineConfig) -> BatchSim {
        let (dag, writes) = extended_dag(&netlist);
        let parts = partition(&dag, config.c_p);
        let plan = CcssPlan::from_partitioning(
            &netlist,
            &dag,
            &writes,
            &parts,
            PlanOptions {
                elide_state: config.elide_state,
                elide_mem: config.elide_state,
            },
        );
        BatchSim::from_plan_shared(netlist, plan, config)
    }

    /// Builds the batched simulator from a pre-computed plan. The plan
    /// must have been built the way [`BatchSim::new`] builds it for
    /// lane-equivalence with [`crate::EssentSim`] to hold.
    pub fn from_plan_shared(
        netlist: Arc<Netlist>,
        plan: CcssPlan,
        config: &EngineConfig,
    ) -> BatchSim {
        let lanes = config.lanes;
        assert!(
            (1..=64).contains(&lanes),
            "batch lanes must be 1..=64, got {lanes}"
        );
        let layout = Layout::new(&netlist);
        let blocks = compile_plan(&netlist, &layout, &plan, config);
        let fuse = config.tier1 && config.fuse_triggers && config.trigger_push;
        let programs: Option<Vec<Tier1Program>> = config.tier1.then(|| {
            plan.partitions
                .iter()
                .zip(&blocks)
                .map(|(part, block)| {
                    let outs: Vec<OutSpec> = part
                        .outputs
                        .iter()
                        .map(|o| OutSpec {
                            sig: o.signal,
                            consumers: o.consumers.clone(),
                        })
                        .collect();
                    lower_tier1(&netlist, block, &outs, fuse)
                })
                .collect()
        });
        let generic_rw: Vec<Vec<ItemRw>> = match &programs {
            Some(progs) => progs
                .iter()
                .map(|p| p.generic.iter().map(item_rw).collect())
                .collect(),
            None => vec![Vec::new(); blocks.len()],
        };
        let block_rw: Vec<ItemRw> = blocks
            .iter()
            .map(|b| {
                let mut rw = ItemRw::default();
                for item in &b.items {
                    rw.absorb(item);
                }
                rw
            })
            .collect();

        // Snapshot-compare tables cover only the outputs the tier did
        // not fuse (all of them when the tier is off); storage strided.
        let mut triggers = Triggers::default();
        for (sched, part) in plan.partitions.iter().enumerate() {
            triggers.part_start.push(triggers.out_off.len() as u32);
            for (oi, out) in part.outputs.iter().enumerate() {
                if let Some(progs) = &programs {
                    if !progs[sched].unfused.contains(&oi) {
                        continue;
                    }
                }
                let off = layout.offset(out.signal) as u32;
                let words = layout.words(out.signal) as u16;
                triggers.out_off.push(off);
                triggers.out_words.push(words);
                triggers
                    .old_off
                    .push((triggers.old_vals.len() / lanes) as u32);
                triggers
                    .old_vals
                    .extend(std::iter::repeat_n(0, words as usize * lanes));
                triggers.cons_start.push(triggers.consumers.len() as u32);
                triggers.consumers.extend(out.consumers.iter().copied());
                triggers.cons_end.push(triggers.consumers.len() as u32);
            }
            triggers.part_end.push(triggers.out_off.len() as u32);
        }

        let input_wake = plan
            .input_wakes
            .iter()
            .map(|(sig, wakes)| (*sig, wakes.clone()))
            .collect();
        let commit_regs = plan
            .reg_plans
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.elided)
            .map(|(i, _)| i)
            .collect();
        let commit_writes = plan
            .mem_write_plans
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.elided)
            .map(|(i, _)| i)
            .collect();
        let full_steps = blocks
            .iter()
            .flat_map(|b| b.items.iter())
            .map(crate::compile::Item::step_count)
            .sum();

        // Pull-direction tables, derived exactly as the single-instance
        // engine derives them; snapshot storage strided.
        let mut pull = PullInputs::default();
        if !config.trigger_push {
            for (sched, part) in plan.partitions.iter().enumerate() {
                pull.part_start.push(pull.in_off.len() as u32);
                let mut seen = BTreeSet::new();
                for &m in &part.members {
                    for dep in netlist.deps(m) {
                        if plan.sched_of_signal[dep.index()] as usize != sched
                            || !matches!(
                                netlist.signal(dep).def,
                                SignalDef::Op(_) | SignalDef::MemRead { .. }
                            )
                        {
                            seen.insert(dep);
                        }
                    }
                }
                for dep in seen {
                    pull.in_off.push(layout.offset(dep) as u32);
                    let words = layout.words(dep) as u16;
                    pull.in_words.push(words);
                    pull.snap_off.push((pull.snapshots.len() / lanes) as u32);
                    pull.snapshots
                        .extend(std::iter::repeat_n(0, words as usize * lanes));
                }
                pull.part_end.push(pull.in_off.len() as u32);
            }
        }

        // Strided arena with constants materialized into every lane.
        let total = layout.total_words();
        let mut arena = vec![0u64; total * lanes];
        for (i, s) in netlist.signals().iter().enumerate() {
            if let SignalDef::Const(c) = &s.def {
                let sig = SignalId(i as u32);
                let off = layout.offset(sig);
                for (k, &limb) in c.limbs().iter().enumerate() {
                    for l in 0..lanes {
                        arena[(off + k) * lanes + l] = limb;
                    }
                }
            }
        }
        let bank_proto: Vec<MemBank> = netlist
            .mems()
            .iter()
            .map(|m| MemBank {
                words_per: essent_bits::words(m.width),
                depth: m.depth,
                width: m.width,
                data: vec![0; essent_bits::words(m.width) * m.depth],
            })
            .collect();
        let np = plan.partitions.len();
        let full_mask = mask_of(lanes);
        BatchSim {
            layout,
            plan,
            blocks,
            programs,
            generic_rw,
            block_rw,
            lanes,
            arena,
            scratch: vec![0u64; total],
            mems: vec![bank_proto; lanes],
            flags: vec![full_mask; np],
            triggers,
            input_wake,
            commit_regs,
            commit_writes,
            push: config.trigger_push,
            pull,
            capture_printf: config.capture_printf,
            counters: vec![WorkCounters::default(); lanes],
            cycles: vec![0; lanes],
            halted: vec![None; lanes],
            printf_log: vec![Vec::new(); lanes],
            phys_of_log: (0..lanes as u32).collect(),
            log_of_phys: (0..lanes as u32).collect(),
            evals_since_compact: vec![0; lanes],
            cycles_since_compact: 0,
            compactions: 0,
            full_steps,
            netlist,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of partitions in the schedule.
    pub fn partition_count(&self) -> usize {
        self.plan.partitions.len()
    }

    /// The compiled plan (reports, tests).
    pub fn plan(&self) -> &CcssPlan {
        &self.plan
    }

    /// Steps a full-cycle evaluation would run per cycle per lane.
    pub fn full_steps_per_cycle(&self) -> usize {
        self.full_steps
    }

    /// Aggregated word-specialization coverage (`None` when tier off).
    pub fn tier_stats(&self) -> Option<TierStats> {
        self.programs.as_ref().map(|ps| {
            ps.iter()
                .fold(TierStats::default(), |acc, p| acc.merged(&p.stats))
        })
    }

    /// How many lane compactions have re-packed the stride so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The live lane permutation: `(phys_of_log, log_of_phys)`.
    pub fn lane_permutation(&self) -> (&[u32], &[u32]) {
        (&self.phys_of_log, &self.log_of_phys)
    }

    /// Looks up a signal id for id-based peeks in hot testbench loops.
    pub fn find(&self, name: &str) -> Option<SignalId> {
        self.netlist.find(name)
    }

    #[inline]
    fn phys(&self, lane: usize) -> usize {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        self.phys_of_log[lane] as usize
    }

    /// Sets an external input on **every** lane.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not an input signal.
    pub fn poke(&mut self, name: &str, value: Bits) {
        let id = self.input_id(name);
        for phys in 0..self.lanes {
            self.poke_phys(phys, id, &value);
        }
    }

    /// Sets an external input on one lane (per-lane stimulus).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not an input signal or `lane` is out of range.
    pub fn poke_lane(&mut self, lane: usize, name: &str, value: Bits) {
        let id = self.input_id(name);
        let phys = self.phys(lane);
        self.poke_phys(phys, id, &value);
    }

    fn input_id(&self, name: &str) -> SignalId {
        let id = self.netlist.expect_signal(name);
        assert!(
            matches!(self.netlist.signal(id).def, SignalDef::Input),
            "`{name}` is not an input"
        );
        id
    }

    fn poke_phys(&mut self, phys: usize, id: SignalId, value: &Bits) {
        if self.set_value_phys(phys, id, value) {
            if let Some(wakes) = self.input_wake.get(&id) {
                for &c in wakes {
                    self.flags[c as usize] |= 1u64 << phys;
                }
            }
        }
    }

    fn set_value_phys(&mut self, phys: usize, sig: SignalId, value: &Bits) -> bool {
        let width = self.netlist.signal(sig).width;
        let adapted = value.extend(width, false);
        let off = self.layout.offset(sig);
        let w = self.layout.words(sig);
        let mut changed = false;
        for (k, &limb) in adapted.limbs().iter().take(w).enumerate() {
            let slot = &mut self.arena[(off + k) * self.lanes + phys];
            if *slot != limb {
                *slot = limb;
                changed = true;
            }
        }
        changed
    }

    /// Reads any surviving signal on one lane.
    ///
    /// # Panics
    ///
    /// Panics if `name` is unknown or `lane` out of range.
    pub fn peek_lane(&self, lane: usize, name: &str) -> Bits {
        let id = self.netlist.expect_signal(name);
        self.peek_id_lane(lane, id)
    }

    /// Reads a signal by id on one lane.
    pub fn peek_id_lane(&self, lane: usize, id: SignalId) -> Bits {
        let phys = self.phys(lane);
        self.value_phys(phys, id)
    }

    fn value_phys(&self, phys: usize, sig: SignalId) -> Bits {
        let off = self.layout.offset(sig);
        let w = self.layout.words(sig);
        let limbs: Vec<u64> = (0..w)
            .map(|k| self.arena[(off + k) * self.lanes + phys])
            .collect();
        Bits::from_limbs(limbs, self.netlist.signal(sig).width)
    }

    /// One lane's full scalar arena image (differential tests): word `w`
    /// of the returned vector equals `machine.arena[w]` of an equivalent
    /// single-instance run.
    pub fn lane_arena(&self, lane: usize) -> Vec<u64> {
        let phys = self.phys(lane);
        let total = self.layout.total_words();
        (0..total)
            .map(|w| self.arena[w * self.lanes + phys])
            .collect()
    }

    /// One lane's memory banks (differential tests).
    pub fn lane_banks(&self, lane: usize) -> &[MemBank] {
        &self.mems[self.phys(lane)]
    }

    /// Cycles simulated by one lane (lanes freeze when they halt).
    pub fn cycle_of(&self, lane: usize) -> u64 {
        self.cycles[self.phys(lane)]
    }

    /// One lane's `stop` code, once fired.
    pub fn halted_of(&self, lane: usize) -> Option<u64> {
        self.halted[self.phys(lane)]
    }

    /// One lane's work counters.
    pub fn counters_of(&self, lane: usize) -> WorkCounters {
        self.counters[self.phys(lane)]
    }

    /// One lane's captured printf output.
    pub fn printf_log_of(&self, lane: usize) -> &[String] {
        &self.printf_log[self.phys(lane)]
    }

    /// Back-door memory write on one lane (program loading).
    ///
    /// # Panics
    ///
    /// Panics on unknown memory or out-of-range address.
    pub fn write_mem_lane(&mut self, lane: usize, mem: &str, addr: usize, value: &Bits) {
        let phys = self.phys(lane);
        let id = self
            .netlist
            .find_mem(mem)
            .unwrap_or_else(|| panic!("unknown memory `{mem}`"));
        let bank = &mut self.mems[phys][id.index()];
        assert!(
            addr < bank.depth,
            "address {addr} out of range for `{mem}` (depth {})",
            bank.depth
        );
        let adapted = value.extend(bank.width, false);
        bank.entry_mut(addr).copy_from_slice(adapted.limbs());
    }

    /// Back-door memory read on one lane.
    ///
    /// # Panics
    ///
    /// Panics on unknown memory or out-of-range address.
    pub fn read_mem_lane(&self, lane: usize, mem: &str, addr: usize) -> Bits {
        let phys = self.phys(lane);
        let id = self
            .netlist
            .find_mem(mem)
            .unwrap_or_else(|| panic!("unknown memory `{mem}`"));
        let bank = &self.mems[phys][id.index()];
        assert!(addr < bank.depth);
        Bits::from_limbs(bank.entry(addr).to_vec(), bank.width)
    }

    fn running_mask(&self) -> u64 {
        let mut m = 0u64;
        for (l, h) in self.halted.iter().enumerate() {
            if h.is_none() {
                m |= 1u64 << l;
            }
        }
        m
    }

    /// Runs up to `n` cycles; lanes that halt freeze (cycle, counters,
    /// and state stop advancing) while the rest continue. Returns how
    /// many cycles ran with at least one live lane.
    pub fn step(&mut self, n: u64) -> u64 {
        for i in 0..n {
            let run = self.running_mask();
            if run == 0 {
                return i;
            }
            self.run_cycle(run);
            self.maybe_compact();
        }
        n
    }

    fn run_cycle(&mut self, run: u64) {
        let BatchSim {
            netlist,
            layout,
            plan,
            blocks,
            programs,
            generic_rw,
            block_rw,
            lanes,
            arena,
            scratch,
            mems,
            flags,
            triggers: tr,
            commit_regs,
            commit_writes,
            push,
            pull,
            capture_printf,
            counters,
            cycles,
            halted,
            printf_log,
            evals_since_compact,
            ..
        } = self;
        let lanes = *lanes;
        let push = *push;
        let np = plan.partitions.len();
        // Interior-mutable view of the wake masks so fused trigger
        // writes inside the lane interpreter can set lane bits while
        // the mask slice stays borrowed here.
        let flags = Cell::from_mut(flags.as_mut_slice()).as_slice_of_cells();

        if push {
            // One wake-mask test per partition per cycle covers every
            // lane at once; each running lane is accounted the same
            // `np` flag tests its single-instance run would pay.
            for_lanes(run, |l| counters[l].static_checks += np as u64);
        }

        for sched in 0..np {
            let mut eval = flags[sched].get() & run;
            if !push {
                // Pull direction, per lane: every partition is visited;
                // sleeping lanes compare their cross-partition input
                // snapshots (stopping at the first mismatch).
                let (i0, i1) = (
                    pull.part_start[sched] as usize,
                    pull.part_end[sched] as usize,
                );
                for_lanes(run, |l| {
                    counters[l].static_checks += 1;
                    if eval & (1u64 << l) != 0 {
                        return;
                    }
                    for i in i0..i1 {
                        counters[l].static_checks += 1;
                        let off = pull.in_off[i] as usize;
                        let w = pull.in_words[i] as usize;
                        let snap = pull.snap_off[i] as usize;
                        let diff = (0..w).any(|k| {
                            arena[(off + k) * lanes + l] != pull.snapshots[(snap + k) * lanes + l]
                        });
                        if diff {
                            eval |= 1u64 << l;
                            break;
                        }
                    }
                });
            }
            if eval == 0 {
                continue;
            }
            for_lanes(eval, |l| evals_since_compact[l] += 1);

            // 1. Deactivate the evaluated lanes for the next cycle.
            flags[sched].set(flags[sched].get() & !eval);
            if !push {
                // Refresh the evaluated lanes' input snapshots.
                let (i0, i1) = (
                    pull.part_start[sched] as usize,
                    pull.part_end[sched] as usize,
                );
                for i in i0..i1 {
                    let off = pull.in_off[i] as usize;
                    let w = pull.in_words[i] as usize;
                    let snap = pull.snap_off[i] as usize;
                    for k in 0..w {
                        for_lanes(eval, |l| {
                            pull.snapshots[(snap + k) * lanes + l] = arena[(off + k) * lanes + l];
                        });
                    }
                }
            }

            // 2. Snapshot old output values (unfused outputs only).
            let (o0, o1) = (tr.part_start[sched] as usize, tr.part_end[sched] as usize);
            for o in o0..o1 {
                let off = tr.out_off[o] as usize;
                let w = tr.out_words[o] as usize;
                let old = tr.old_off[o] as usize;
                for k in 0..w {
                    for_lanes(eval, |l| {
                        tr.old_vals[(old + k) * lanes + l] = arena[(off + k) * lanes + l];
                    });
                }
            }

            // 3. Evaluate members across the awake lanes.
            match programs {
                Some(progs) => {
                    // SAFETY: exclusive access to the strided arena and
                    // scratch through `&mut self`; `generic_rw[sched]`
                    // parallels the program's generic items; `eval` is
                    // non-zero with bits only below `lanes`; `mems` and
                    // `counters` hold `lanes` entries.
                    unsafe {
                        run_tier1_lanes(
                            &progs[sched],
                            &generic_rw[sched],
                            arena.as_mut_ptr(),
                            lanes,
                            eval,
                            mems,
                            scratch,
                            flags,
                            counters,
                        );
                    }
                }
                None => {
                    // Generic tier: gather the block's whole footprint
                    // into the scalar scratch arena, run the item
                    // interpreter, scatter the writes back — per lane.
                    let rw = &block_rw[sched];
                    let items = &blocks[sched].items;
                    for_lanes(eval, |l| {
                        for &(off, w) in rw.reads.iter().chain(rw.writes.iter()) {
                            for k in 0..w as usize {
                                scratch[off as usize + k] = arena[(off as usize + k) * lanes + l];
                            }
                        }
                        // SAFETY: `scratch` covers the scalar layout and
                        // every word the block touches was just
                        // gathered; exclusive access through &mut self.
                        unsafe {
                            run_items_raw(
                                items,
                                scratch.as_mut_ptr(),
                                &mems[l],
                                &mut counters[l].ops_evaluated,
                            );
                        }
                        for &(off, w) in &rw.writes {
                            for k in 0..w as usize {
                                arena[(off as usize + k) * lanes + l] = scratch[off as usize + k];
                            }
                        }
                    });
                }
            }

            // 4. Elided state updates per lane: write in place, wake
            //    next-cycle consumers' lane bits. Memory writes before
            //    register updates (write fields may alias register
            //    outputs of this partition).
            let part = &plan.partitions[sched];
            for &wi in &part.elided_writes {
                let wp = &plan.mem_write_plans[wi];
                for_lanes(eval, |l| {
                    counters[l].dynamic_checks += 1;
                    let bank = &mut mems[l][wp.mem.index()];
                    if mem_write_lane(netlist, layout, arena, bank, lanes, l, wp) {
                        for &c in &wp.wake_on_change {
                            let f = &flags[c as usize];
                            f.set(f.get() | (1u64 << l));
                        }
                    }
                });
            }
            for &ri in &part.elided_regs {
                let rp = &plan.reg_plans[ri];
                for_lanes(eval, |l| {
                    counters[l].dynamic_checks += 1;
                    if commit_reg_lane(netlist, layout, arena, lanes, l, rp.reg.index()) {
                        for &c in &rp.wake_on_change {
                            let f = &flags[c as usize];
                            f.set(f.get() | (1u64 << l));
                        }
                    }
                });
            }

            // 5. Push direction: per-output, per-lane change detection.
            if push {
                for o in o0..o1 {
                    let off = tr.out_off[o] as usize;
                    let w = tr.out_words[o] as usize;
                    let old = tr.old_off[o] as usize;
                    for_lanes(eval, |l| {
                        counters[l].dynamic_checks += 1;
                        let diff = (0..w).any(|k| {
                            arena[(off + k) * lanes + l] != tr.old_vals[(old + k) * lanes + l]
                        });
                        if diff {
                            for ci in tr.cons_start[o]..tr.cons_end[o] {
                                let f = &flags[tr.consumers[ci as usize] as usize];
                                f.set(f.get() | (1u64 << l));
                            }
                        }
                    });
                }
            }
        }

        // Side effects observe end-of-cycle values, per lane.
        for_lanes(run, |l| {
            if *capture_printf {
                for p in netlist.printfs() {
                    if arena[layout.offset(p.en) * lanes + l] & 1 == 1 {
                        let args: Vec<Bits> = p
                            .args
                            .iter()
                            .map(|&a| value_strided(netlist, layout, arena, lanes, l, a))
                            .collect();
                        printf_log[l].push(format_printf(&p.fmt, &args));
                    }
                }
            }
            for s in netlist.stops() {
                if arena[layout.offset(s.en) * lanes + l] & 1 == 1 && halted[l].is_none() {
                    halted[l] = Some(s.code);
                }
            }
        });

        // Non-elided state: end-of-cycle commit with change detection,
        // memory writes first (as in the single-instance engine).
        for &wi in commit_writes.iter() {
            let wp = &plan.mem_write_plans[wi];
            for_lanes(run, |l| {
                counters[l].static_checks += 1;
                let bank = &mut mems[l][wp.mem.index()];
                if mem_write_lane(netlist, layout, arena, bank, lanes, l, wp) {
                    for &c in &wp.wake_on_change {
                        let f = &flags[c as usize];
                        f.set(f.get() | (1u64 << l));
                    }
                }
            });
        }
        for &ri in commit_regs.iter() {
            let rp = &plan.reg_plans[ri];
            for_lanes(run, |l| {
                counters[l].static_checks += 1;
                if commit_reg_lane(netlist, layout, arena, lanes, l, rp.reg.index()) {
                    for &c in &rp.wake_on_change {
                        let f = &flags[c as usize];
                        f.set(f.get() | (1u64 << l));
                    }
                }
            });
        }
        for_lanes(run, |l| {
            cycles[l] += 1;
            counters[l].cycles += 1;
        });
        self.cycles_since_compact += 1;
    }

    fn maybe_compact(&mut self) {
        let run = self.running_mask();
        let dense = run & run.wrapping_add(1) == 0;
        if !dense || self.cycles_since_compact >= COMPACT_INTERVAL {
            self.compact();
        }
    }

    /// Re-packs lanes: running lanes first (most active first), halted
    /// lanes last — so partial eval masks cluster into the dense-prefix
    /// shape the vector loops want. A no-op when already in order.
    /// Public as a test hook; `step` triggers it automatically on lane
    /// halt and on activity drift every [`COMPACT_INTERVAL`] cycles.
    pub fn force_compact(&mut self) {
        self.compact();
    }

    fn compact(&mut self) {
        self.cycles_since_compact = 0;
        let lanes = self.lanes;
        // order[new_phys] = old_phys.
        let mut order: Vec<u32> = (0..lanes as u32).collect();
        order.sort_by_key(|&p| {
            (
                self.halted[p as usize].is_some(),
                std::cmp::Reverse(self.evals_since_compact[p as usize]),
                p,
            )
        });
        for v in self.evals_since_compact.iter_mut() {
            *v = 0;
        }
        if order.iter().enumerate().all(|(i, &p)| i == p as usize) {
            return;
        }
        self.apply_perm(&order);
        self.compactions += 1;
    }

    fn apply_perm(&mut self, order: &[u32]) {
        let lanes = self.lanes;
        permute_strided(&mut self.arena, lanes, order);
        permute_strided(&mut self.triggers.old_vals, lanes, order);
        permute_strided(&mut self.pull.snapshots, lanes, order);
        for f in self.flags.iter_mut() {
            let old = *f;
            let mut new = 0u64;
            for (nl, &op) in order.iter().enumerate() {
                if old >> op & 1 == 1 {
                    new |= 1u64 << nl;
                }
            }
            *f = new;
        }
        permute_vec(&mut self.mems, order);
        permute_vec(&mut self.counters, order);
        permute_vec(&mut self.cycles, order);
        permute_vec(&mut self.halted, order);
        permute_vec(&mut self.printf_log, order);
        permute_vec(&mut self.evals_since_compact, order);
        let mut inv = vec![0u32; lanes];
        for (nl, &op) in order.iter().enumerate() {
            inv[op as usize] = nl as u32;
        }
        for pl in self.phys_of_log.iter_mut() {
            *pl = inv[*pl as usize];
        }
        for (log, &phys) in self.phys_of_log.iter().enumerate() {
            self.log_of_phys[phys as usize] = log as u32;
        }
    }

    /// Captures the engine's stride geometry, wake routing, lane
    /// permutation, and bank shapes for the X08xx verify layer.
    pub fn batch_audit(&self) -> BatchAudit {
        let np = self.plan.partitions.len();
        let mut out_routes: Vec<Vec<(u32, Vec<u32>)>> = Vec::with_capacity(np);
        for sched in 0..np {
            let mut routes: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
            let tr = &self.triggers;
            for o in tr.part_start[sched] as usize..tr.part_end[sched] as usize {
                let entry = routes.entry(tr.out_off[o]).or_default();
                for ci in tr.cons_start[o]..tr.cons_end[o] {
                    entry.insert(tr.consumers[ci as usize]);
                }
            }
            if let Some(progs) = &self.programs {
                for inst in &progs[sched].code {
                    if inst.ws != NO_FUSE {
                        let entry = routes.entry(inst.dst).or_default();
                        for &c in &progs[sched].consumers[inst.ws as usize..inst.we as usize] {
                            entry.insert(c);
                        }
                    }
                }
            }
            out_routes.push(
                routes
                    .into_iter()
                    .map(|(o, s)| (o, s.into_iter().collect()))
                    .collect(),
            );
        }
        let canon = |v: &[u32]| {
            let mut s: Vec<u32> = v.to_vec();
            s.sort_unstable();
            s.dedup();
            s
        };
        let mut input_wakes: Vec<(u32, Vec<u32>)> = self
            .input_wake
            .iter()
            .map(|(sig, wakes)| (sig.0, canon(wakes)))
            .collect();
        input_wakes.sort_unstable();
        BatchAudit {
            lanes: self.lanes,
            stride: self.lanes,
            total_words: self.layout.total_words(),
            arena_len: self.arena.len(),
            scratch_len: self.scratch.len(),
            out_routes,
            reg_wakes: self
                .plan
                .reg_plans
                .iter()
                .map(|r| canon(&r.wake_on_change))
                .collect(),
            mem_wakes: self
                .plan
                .mem_write_plans
                .iter()
                .map(|w| canon(&w.wake_on_change))
                .collect(),
            input_wakes,
            phys_of_log: self.phys_of_log.clone(),
            log_of_phys: self.log_of_phys.clone(),
            bank_shapes: self
                .mems
                .iter()
                .map(|banks| banks.iter().map(|b| (b.words_per, b.depth)).collect())
                .collect(),
        }
    }
}

/// All-lanes mask for `lanes` in `1..=64`.
fn mask_of(lanes: usize) -> u64 {
    if lanes == 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Calls `f` for every set lane bit, lowest first.
#[inline]
fn for_lanes(mask: u64, mut f: impl FnMut(usize)) {
    let mut m = mask;
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        f(l);
    }
}

/// Permutes the lane columns of a lane-strided buffer:
/// `new[base + nl] = old[base + order[nl]]` for every word stripe.
fn permute_strided(buf: &mut [u64], lanes: usize, order: &[u32]) {
    let mut tmp = [0u64; 64];
    for base in (0..buf.len()).step_by(lanes) {
        for (nl, &op) in order.iter().enumerate() {
            tmp[nl] = buf[base + op as usize];
        }
        buf[base..base + lanes].copy_from_slice(&tmp[..lanes]);
    }
}

/// Permutes a per-lane vector: `new[nl] = old[order[nl]]`.
fn permute_vec<T: Default>(v: &mut [T], order: &[u32]) {
    let mut out: Vec<T> = order
        .iter()
        .map(|&op| std::mem::take(&mut v[op as usize]))
        .collect();
    for (slot, val) in v.iter_mut().zip(out.drain(..)) {
        *slot = val;
    }
}

/// Reads one lane's value of a (possibly multi-word) signal out of the
/// strided arena.
fn value_strided(
    netlist: &Netlist,
    layout: &Layout,
    arena: &[u64],
    lanes: usize,
    lane: usize,
    sig: SignalId,
) -> Bits {
    let off = layout.offset(sig);
    let w = layout.words(sig);
    let limbs: Vec<u64> = (0..w).map(|k| arena[(off + k) * lanes + lane]).collect();
    Bits::from_limbs(limbs, netlist.signal(sig).width)
}

/// One lane's register commit (copy next → out, strided); `true` on
/// change.
fn commit_reg_lane(
    netlist: &Netlist,
    layout: &Layout,
    arena: &mut [u64],
    lanes: usize,
    lane: usize,
    reg_index: usize,
) -> bool {
    let reg = &netlist.regs()[reg_index];
    let next = layout.offset(reg.next);
    let out = layout.offset(reg.out);
    let w = layout.words(reg.out);
    let mut changed = false;
    for k in 0..w {
        let nv = arena[(next + k) * lanes + lane];
        let slot = &mut arena[(out + k) * lanes + lane];
        if *slot != nv {
            *slot = nv;
            changed = true;
        }
    }
    changed
}

/// One lane's memory write port execution (strided field reads, lane
/// bank storage); `true` when the stored contents changed. Mirrors
/// `Machine::run_mem_write` including width adaption.
fn mem_write_lane(
    netlist: &Netlist,
    layout: &Layout,
    arena: &[u64],
    bank: &mut MemBank,
    lanes: usize,
    lane: usize,
    wp: &essent_core::plan::MemWritePlan,
) -> bool {
    let port = &netlist.mems()[wp.mem.index()].writers[wp.writer];
    let ld1 = |sig: SignalId| arena[layout.offset(sig) * lanes + lane];
    if ld1(port.en) & 1 != 1 || ld1(port.mask) & 1 != 1 {
        return false;
    }
    let addr = ld1(port.addr) as usize;
    if addr >= bank.depth {
        return false;
    }
    let data_sig = netlist.signal(port.data);
    let doff = layout.offset(port.data);
    let dw = layout.words(port.data);
    let mut src_st = [0u64; 8];
    let src_vec: Vec<u64>;
    let src: &[u64] = if dw <= 8 {
        for (k, slot) in src_st.iter_mut().take(dw).enumerate() {
            *slot = arena[(doff + k) * lanes + lane];
        }
        &src_st[..dw]
    } else {
        src_vec = (0..dw).map(|k| arena[(doff + k) * lanes + lane]).collect();
        &src_vec
    };
    let width = bank.width;
    let wp_words = bank.words_per;
    let mut ad_st = [0u64; 8];
    let mut ad_vec: Vec<u64>;
    let adapted: &mut [u64] = if wp_words <= 8 {
        &mut ad_st[..wp_words]
    } else {
        ad_vec = vec![0u64; wp_words];
        &mut ad_vec
    };
    kernels::extend(adapted, width, src, data_sig.width, data_sig.signed);
    let entry = bank.entry_mut(addr);
    if entry != &*adapted {
        entry.copy_from_slice(adapted);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::EssentSim;

    fn netlist_of(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    const COUNTER: &str = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";

    #[test]
    fn lanes_count_independently() {
        let n = netlist_of(COUNTER);
        let config = EngineConfig {
            lanes: 4,
            ..EngineConfig::default()
        };
        let mut sim = BatchSim::new(&n, &config);
        sim.poke("reset", Bits::from_u64(1, 1));
        sim.step(2);
        sim.poke("reset", Bits::from_u64(0, 1));
        // Release lane 2 three cycles later than the rest.
        sim.poke_lane(2, "reset", Bits::from_u64(1, 1));
        sim.step(3);
        sim.poke_lane(2, "reset", Bits::from_u64(0, 1));
        sim.step(10);
        assert_eq!(sim.peek_lane(0, "q").to_u64(), Some(12));
        assert_eq!(sim.peek_lane(1, "q").to_u64(), Some(12));
        assert_eq!(sim.peek_lane(2, "q").to_u64(), Some(9));
        assert_eq!(sim.peek_lane(3, "q").to_u64(), Some(12));
    }

    #[test]
    fn matches_single_instance_per_lane() {
        let n = netlist_of(COUNTER);
        let config = EngineConfig {
            lanes: 3,
            ..EngineConfig::default()
        };
        let mut batch = BatchSim::new(&n, &config);
        let mut singles: Vec<EssentSim> = (0..3).map(|_| EssentSim::new(&n, &config)).collect();
        for cycle in 0..40u64 {
            for (lane, single) in singles.iter_mut().enumerate() {
                // Per-lane stimulus: different reset pulse positions.
                let rst = (cycle < 2 || cycle == 11 + 3 * lane as u64) as u64;
                batch.poke_lane(lane, "reset", Bits::from_u64(rst, 1));
                single.poke("reset", Bits::from_u64(rst, 1));
            }
            batch.step(1);
            for s in singles.iter_mut() {
                s.step(1);
            }
            for (lane, single) in singles.iter().enumerate() {
                assert_eq!(
                    batch.peek_lane(lane, "q"),
                    single.peek("q"),
                    "cycle {cycle} lane {lane}"
                );
            }
        }
        for (lane, single) in singles.iter().enumerate() {
            assert_eq!(batch.counters_of(lane), single.counters(), "{lane}");
            assert_eq!(batch.lane_arena(lane), single.machine().arena);
        }
    }

    #[test]
    fn compaction_preserves_logical_lanes() {
        let n = netlist_of(COUNTER);
        let config = EngineConfig {
            lanes: 4,
            ..EngineConfig::default()
        };
        let mut sim = BatchSim::new(&n, &config);
        sim.poke("reset", Bits::from_u64(0, 1));
        // Give every lane a distinct count by pulsing reset at
        // different times.
        for lane in 0..4 {
            sim.poke_lane(lane, "reset", Bits::from_u64(1, 1));
            sim.step(1);
            sim.poke_lane(lane, "reset", Bits::from_u64(0, 1));
        }
        // Settle: with reset low everywhere `q` advances 1/cycle.
        sim.step(2);
        let before: Vec<_> = (0..4).map(|l| sim.peek_lane(l, "q").to_u64()).collect();
        assert_eq!(before.iter().collect::<BTreeSet<_>>().len(), 4);
        sim.force_compact();
        let after: Vec<_> = (0..4).map(|l| sim.peek_lane(l, "q").to_u64()).collect();
        assert_eq!(before, after);
        sim.step(5);
        let stepped: Vec<_> = (0..4).map(|l| sim.peek_lane(l, "q").to_u64()).collect();
        for (a, s) in after.iter().zip(&stepped) {
            assert_eq!(s.unwrap(), a.unwrap() + 5);
        }
    }
}
