//! The word-specialized tier of the two-tier bytecode backend.
//!
//! After dataflow narrowing, the overwhelming majority of signals fit a
//! single `u64` word, yet the generic interpreter still dispatches every
//! step through width-generic multi-word kernels. This module lowers
//! every step whose operands and result are all single-word into a dense
//! one-word ISA ([`Inst1`]) with pre-resolved arena offsets, pre-computed
//! sign-extension shifts, and pre-computed result masks — no `Bits`
//! values, no slice bounds checks, no per-operand `Operand` construction
//! in the hot loop. Multi-word steps fall back to the generic path via
//! [`Op1::Generic`] so semantics are untouched.
//!
//! The lowering also *fuses* the CCSS tail sequence: when a lowered
//! instruction defines a partition output, the instruction carries the
//! output's consumer list, and the kernel performs
//! *evaluate → compare-against-previous-value → conditionally write and
//! wake consumers* in one dispatch. This is sound because a partition
//! output is written by exactly one instruction per evaluation (outputs
//! are never absorbed into conditional mux ways), so the arena value
//! *before* the write is exactly the value the generic engine snapshots
//! at partition entry.
//!
//! Conditional mux ways compile to a forward-jump diamond:
//!
//! ```text
//!     JmpIf0 sel -> L
//!     ...high way...
//!     Ext dst <- high      ; counts as the mux's one op
//!     Jmp -> E
//! L:  ...low way...
//!     Ext dst <- low
//! E:
//! ```
//!
//! All jumps are strictly forward, so every program trivially terminates —
//! a property `essent-verify` re-proves (`B0212`).

use crate::compile::{ArgRef, Block, DstRef, Item, Step, StepKind};
use crate::machine::{run_items_raw, MemBank, WorkCounters};
use essent_bits::top_mask;
use essent_netlist::{Netlist, OpKind, SignalId};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// One-word opcodes. Binary operations read `a` and `b`, unary ones read
/// `a`; `sxa`/`sxb`/`sxc` are sign-extension shift counts (`64 - width`
/// for signed operands, `0` for unsigned), `mask` clears bits at and
/// above the destination width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op1 {
    /// `dst = (sext(a) + sext(b)) & mask`
    Add,
    /// `dst = (sext(a) - sext(b)) & mask`
    Sub,
    /// `dst = (sext(a) * sext(b)) & mask`
    Mul,
    /// `dst = b == 0 ? 0 : a / b` (unsigned)
    DivU,
    /// Signed division via `i128` (truncating; `MIN / -1` cannot overflow)
    DivS,
    /// `dst = b == 0 ? a & mask : a % b` (unsigned)
    RemU,
    /// Signed remainder (sign of the dividend)
    RemS,
    /// `dst = a < b` (unsigned)
    LtU,
    /// `dst = sext(a) < sext(b)` (signed)
    LtS,
    /// `dst = a <= b` (unsigned)
    LeqU,
    /// `dst = sext(a) <= sext(b)` (signed)
    LeqS,
    /// `dst = sext(a) == sext(b)`
    Eq,
    /// `dst = sext(a) != sext(b)`
    Neq,
    /// `dst = sh >= dst_w ? 0 : (a << sh) & mask`; `sh = imm`, `dst_w = sxc`
    Shl,
    /// `dst = sh >= 64 ? 0 : (a >> sh) & mask`; `sh = imm`
    ShrU,
    /// `dst = (sext(a) >> min(sh, 63)) & mask`; `sh = imm`
    ShrS,
    /// Dynamic [`Op1::Shl`]: `sh` read from slot `b`
    Dshl,
    /// Dynamic [`Op1::ShrU`]: `sh` read from slot `b`
    DshrU,
    /// Dynamic [`Op1::ShrS`]: `sh` read from slot `b`
    DshrS,
    /// `dst = (-sext(a)) & mask`
    Neg,
    /// `dst = !sext(a) & mask`
    Not,
    /// `dst = (sext(a) & sext(b)) & mask`
    And,
    /// `dst = (sext(a) | sext(b)) & mask`
    Or,
    /// `dst = (sext(a) ^ sext(b)) & mask`
    Xor,
    /// `dst = a == imm` (`imm` = the operand's full-width mask)
    Andr,
    /// `dst = a != 0`
    Orr,
    /// `dst = popcount(a) & 1`
    Xorr,
    /// `dst = ((a << imm) | b) & mask` (`imm` = width of `b`)
    Cat,
    /// `dst = (a >> imm) & mask` (`imm` = the extract's low bit)
    Bits,
    /// `dst = sext(a) & mask` (copy / pad / reinterpret)
    Ext,
    /// `dst = (a & 1 ? sext(b) : sext(c)) & mask` (`sxb`/`sxc` per way)
    Mux,
    /// `dst = en && addr < depth ? mem[addr] : 0`; `a` = addr slot,
    /// `b` = en slot, `c` = bank index, `imm` = depth
    MemRead,
    /// Unconditional forward jump to instruction `a`
    Jmp,
    /// Jump to instruction `a` when `arena[b] & 1 == 0`
    JmpIf0,
    /// Fall back to the generic interpreter for item `generic[a]`
    Generic,
}

/// Sentinel for the fused-trigger range: "this instruction wakes nobody".
pub const NO_FUSE: u32 = u32::MAX;

/// One decoded instruction (fixed-size, cache-friendly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst1 {
    pub op: Op1,
    /// Sign-extension shift for operand `a` (0 = unsigned / raw).
    pub sxa: u8,
    /// Sign-extension shift for operand `b` (Mux: the high way).
    pub sxb: u8,
    /// Sign-extension shift for operand `c` (Mux: the low way); shift
    /// opcodes reuse this slot for the destination width.
    pub sxc: u8,
    /// First operand arena offset; jump target for `Jmp`/`JmpIf0`;
    /// generic item index for `Generic`.
    pub a: u32,
    /// Second operand arena offset; selector slot for `JmpIf0`.
    pub b: u32,
    /// Third operand arena offset; bank index for `MemRead`.
    pub c: u32,
    /// Destination arena offset.
    pub dst: u32,
    /// Static parameter (shift amount, extract low bit, cat low width,
    /// and-reduce mask, memory depth).
    pub imm: u64,
    /// Result mask: `top_mask(dst_width)`.
    pub mask: u64,
    /// Fused-trigger consumer range `[ws..we)` into
    /// [`Tier1Program::consumers`]; [`NO_FUSE`] when unfused.
    pub ws: u32,
    pub we: u32,
}

/// A partition output eligible for trigger fusion.
#[derive(Debug, Clone)]
pub struct OutSpec {
    pub sig: SignalId,
    /// Scheduled indices of the partitions reading this output.
    pub consumers: Vec<u32>,
}

/// Tier coverage statistics for one lowered block.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierStats {
    /// Steps in the source block (counting nested mux ways).
    pub total_steps: usize,
    /// Steps lowered into the one-word tier.
    pub tier1_steps: usize,
    /// Partition outputs with fused trigger writes.
    pub fused_outputs: usize,
    /// Partition outputs overall.
    pub total_outputs: usize,
}

impl TierStats {
    /// Component-wise sum (whole-design aggregation).
    pub fn merged(&self, other: &TierStats) -> TierStats {
        TierStats {
            total_steps: self.total_steps + other.total_steps,
            tier1_steps: self.tier1_steps + other.tier1_steps,
            fused_outputs: self.fused_outputs + other.fused_outputs,
            total_outputs: self.total_outputs + other.total_outputs,
        }
    }

    /// Fraction of steps executing in the one-word tier.
    pub fn coverage(&self) -> f64 {
        if self.total_steps == 0 {
            1.0
        } else {
            self.tier1_steps as f64 / self.total_steps as f64
        }
    }
}

/// A lowered block: the specialized instruction stream plus the generic
/// items it falls back to.
#[derive(Debug, Clone)]
pub struct Tier1Program {
    pub code: Vec<Inst1>,
    /// Defined signal per instruction (`u32::MAX` for `Jmp`/`JmpIf0`);
    /// diagnostics and verification only.
    pub sigs: Vec<u32>,
    /// Fallback items referenced by [`Op1::Generic`].
    pub generic: Vec<Item>,
    /// Flattened fused-trigger consumer lists.
    pub consumers: Vec<u32>,
    /// Indices into the `outs` passed to [`lower_tier1`] whose triggers
    /// were *not* fused (the engine must keep snapshot-compare for them).
    pub unfused: Vec<usize>,
    pub stats: TierStats,
}

/// Where fused trigger writes land. The sequential engine passes interior-
/// mutable flag cells, the parallel engine atomics, and the full-cycle
/// engine (no triggers) a sink that ignores wakes.
pub trait FlagSink {
    fn wake(&self, consumer: u32);
}

/// No-op sink for engines without activity flags.
pub struct NoWake;

impl FlagSink for NoWake {
    #[inline(always)]
    fn wake(&self, _consumer: u32) {}
}

/// Single-threaded flag writes through `Cell`s.
pub struct CellFlags<'a>(pub &'a [Cell<bool>]);

impl FlagSink for CellFlags<'_> {
    #[inline(always)]
    fn wake(&self, consumer: u32) {
        self.0[consumer as usize].set(true);
    }
}

/// Cross-thread flag writes with relaxed atomics (the flags are only
/// consumed at the next level/cycle boundary, which synchronizes).
pub struct AtomicFlags<'a>(pub &'a [AtomicBool]);

impl FlagSink for AtomicFlags<'_> {
    #[inline(always)]
    fn wake(&self, consumer: u32) {
        self.0[consumer as usize].store(true, Ordering::Relaxed);
    }
}

/// [`CellFlags`] plus wake attribution: charges each fused wake to the
/// producing partition (`caused`) and the woken consumer (`woke`). The
/// enabled arm of the profiler's monomorphized tier dispatch.
pub struct ProfCellFlags<'a> {
    pub flags: &'a [Cell<bool>],
    pub caused: &'a Cell<u64>,
    pub woke: &'a [Cell<u64>],
}

impl FlagSink for ProfCellFlags<'_> {
    #[inline(always)]
    fn wake(&self, consumer: u32) {
        self.flags[consumer as usize].set(true);
        self.caused.set(self.caused.get() + 1);
        let w = &self.woke[consumer as usize];
        w.set(w.get() + 1);
    }
}

/// [`AtomicFlags`] plus wake attribution, for the parallel engine's
/// profiled tier path.
pub struct ProfAtomicFlags<'a> {
    pub flags: &'a [AtomicBool],
    pub caused: &'a std::sync::atomic::AtomicU64,
    pub woke: &'a [std::sync::atomic::AtomicU64],
}

impl FlagSink for ProfAtomicFlags<'_> {
    #[inline(always)]
    fn wake(&self, consumer: u32) {
        self.flags[consumer as usize].store(true, Ordering::Relaxed);
        self.caused.fetch_add(1, Ordering::Relaxed);
        self.woke[consumer as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Sign-extension shift for an operand reference (0 when unsigned).
#[inline]
fn sx_of(width: u32, signed: bool) -> u8 {
    if signed {
        (64 - width) as u8
    } else {
        0
    }
}

/// A reference the one-word tier can load directly: exactly one arena
/// word holding a 1..=64-bit value (zero-width signals keep the generic
/// path — their `64 - width` shift would be undefined).
#[inline]
fn one_word(r: &ArgRef) -> bool {
    r.words == 1 && r.width >= 1
}

#[inline]
fn one_word_dst(r: &DstRef) -> bool {
    r.words == 1 && r.width >= 1
}

/// Lowers a single step into a one-word instruction; `None` when any
/// operand or the result needs the generic path.
fn lower_step(netlist: &Netlist, step: &Step) -> Option<Inst1> {
    if !one_word_dst(&step.dst) || !step.args.iter().all(one_word) {
        return None;
    }
    let mask = top_mask(step.dst.width);
    let mut inst = Inst1 {
        op: Op1::Ext,
        sxa: 0,
        sxb: 0,
        sxc: 0,
        a: 0,
        b: 0,
        c: 0,
        dst: step.dst.off,
        imm: 0,
        mask,
        ws: NO_FUSE,
        we: NO_FUSE,
    };
    match &step.kind {
        StepKind::MemRead { mem, .. } => {
            let bank = &netlist.mems()[*mem as usize];
            if essent_bits::words(bank.width) != 1 {
                return None;
            }
            inst.op = Op1::MemRead;
            inst.a = step.args[0].off; // addr
            inst.b = step.args[1].off; // en
            inst.c = *mem;
            inst.imm = bank.depth as u64;
            // The generic path copies the raw entry without re-masking.
            inst.mask = u64::MAX;
        }
        StepKind::Op(kind) => {
            use OpKind::*;
            let a = &step.args[0];
            // Binary ops share the first operand's signedness (the
            // builder guarantees matching operand types).
            let s = a.signed;
            let set_ab = |inst: &mut Inst1, x: &ArgRef, y: &ArgRef, signed: bool| {
                inst.a = x.off;
                inst.b = y.off;
                inst.sxa = sx_of(x.width, signed);
                inst.sxb = sx_of(y.width, signed);
            };
            match kind {
                Add | Sub | Mul | Div | Rem | And | Or | Xor | Eq | Neq | Lt | Leq => {
                    set_ab(&mut inst, a, &step.args[1], s);
                    inst.op = match (kind, s) {
                        (Add, _) => Op1::Add,
                        (Sub, _) => Op1::Sub,
                        (Mul, _) => Op1::Mul,
                        (Div, false) => Op1::DivU,
                        (Div, true) => Op1::DivS,
                        (Rem, false) => Op1::RemU,
                        (Rem, true) => Op1::RemS,
                        (And, _) => Op1::And,
                        (Or, _) => Op1::Or,
                        (Xor, _) => Op1::Xor,
                        (Eq, _) => Op1::Eq,
                        (Neq, _) => Op1::Neq,
                        (Lt, false) => Op1::LtU,
                        (Lt, true) => Op1::LtS,
                        (Leq, false) => Op1::LeqU,
                        (Leq, true) => Op1::LeqS,
                        _ => unreachable!(),
                    };
                }
                Gt | Geq => {
                    // a > b  <=>  b < a (swap operands, keep the shared
                    // signedness of the *original* first operand).
                    set_ab(&mut inst, &step.args[1], a, s);
                    inst.op = match (kind, s) {
                        (Gt, false) => Op1::LtU,
                        (Gt, true) => Op1::LtS,
                        (Geq, false) => Op1::LeqU,
                        (Geq, true) => Op1::LeqS,
                        _ => unreachable!(),
                    };
                }
                Shl => {
                    inst.op = Op1::Shl;
                    inst.a = a.off;
                    inst.imm = step.params[0];
                    inst.sxc = step.dst.width as u8;
                }
                Shr => {
                    inst.op = if s { Op1::ShrS } else { Op1::ShrU };
                    inst.a = a.off;
                    inst.sxa = sx_of(a.width, s);
                    inst.imm = step.params[0];
                }
                Dshl => {
                    inst.op = Op1::Dshl;
                    inst.a = a.off;
                    inst.b = step.args[1].off;
                    inst.sxc = step.dst.width as u8;
                }
                Dshr => {
                    inst.op = if s { Op1::DshrS } else { Op1::DshrU };
                    inst.a = a.off;
                    inst.b = step.args[1].off;
                    inst.sxa = sx_of(a.width, s);
                }
                Neg => {
                    inst.op = Op1::Neg;
                    inst.a = a.off;
                    inst.sxa = sx_of(a.width, s);
                }
                Not => {
                    inst.op = Op1::Not;
                    inst.a = a.off;
                    inst.sxa = sx_of(a.width, s);
                }
                Andr => {
                    inst.op = Op1::Andr;
                    inst.a = a.off;
                    inst.imm = top_mask(a.width);
                }
                Orr => {
                    inst.op = Op1::Orr;
                    inst.a = a.off;
                }
                Xorr => {
                    inst.op = Op1::Xorr;
                    inst.a = a.off;
                }
                Cat => {
                    let b = &step.args[1];
                    debug_assert_eq!(step.dst.width, a.width + b.width);
                    inst.op = Op1::Cat;
                    inst.a = a.off;
                    inst.b = b.off;
                    inst.imm = b.width as u64;
                }
                Bits => {
                    inst.op = Op1::Bits;
                    inst.a = a.off;
                    inst.imm = step.params[1];
                }
                Mux => {
                    let (high, low) = (&step.args[1], &step.args[2]);
                    inst.op = Op1::Mux;
                    inst.a = a.off;
                    inst.b = high.off;
                    inst.c = low.off;
                    // The generic mux extends the *picked way* by that
                    // way's own signedness.
                    inst.sxb = sx_of(high.width, high.signed);
                    inst.sxc = sx_of(low.width, low.signed);
                }
                Copy => {
                    inst.op = Op1::Ext;
                    inst.a = a.off;
                    inst.sxa = sx_of(a.width, a.signed);
                }
            }
        }
    }
    Some(inst)
}

struct Lowerer<'a> {
    netlist: &'a Netlist,
    fuse: bool,
    code: Vec<Inst1>,
    sigs: Vec<u32>,
    generic: Vec<Item>,
    consumers: Vec<u32>,
    out_index: HashMap<SignalId, usize>,
    fuse_range: HashMap<SignalId, (u32, u32)>,
    fused: Vec<bool>,
}

impl Lowerer<'_> {
    /// Attaches the fused consumer range when `sig` is a fusable output;
    /// both arms of a mux diamond reuse the same range.
    fn attach_fuse(&mut self, inst: &mut Inst1, sig: SignalId, outs: &[OutSpec]) {
        if !self.fuse {
            return;
        }
        let Some(&oi) = self.out_index.get(&sig) else {
            return;
        };
        let (ws, we) = *self.fuse_range.entry(sig).or_insert_with(|| {
            let ws = self.consumers.len() as u32;
            self.consumers.extend(outs[oi].consumers.iter().copied());
            (ws, self.consumers.len() as u32)
        });
        inst.ws = ws;
        inst.we = we;
        self.fused[oi] = true;
    }

    fn push(&mut self, inst: Inst1, sig: Option<SignalId>) -> usize {
        let at = self.code.len();
        self.code.push(inst);
        self.sigs.push(sig.map_or(u32::MAX, |s| s.0));
        at
    }

    fn emit_generic(&mut self, item: &Item, sig: SignalId) {
        let idx = self.generic.len() as u32;
        self.generic.push(item.clone());
        let inst = Inst1 {
            op: Op1::Generic,
            sxa: 0,
            sxb: 0,
            sxc: 0,
            a: idx,
            b: 0,
            c: 0,
            dst: 0,
            imm: 0,
            mask: 0,
            ws: NO_FUSE,
            we: NO_FUSE,
        };
        self.push(inst, Some(sig));
    }

    fn emit_items(&mut self, items: &[Item], outs: &[OutSpec]) {
        for item in items {
            match item {
                Item::Step(step) => match lower_step(self.netlist, step) {
                    Some(mut inst) => {
                        self.attach_fuse(&mut inst, step.sig, outs);
                        self.push(inst, Some(step.sig));
                    }
                    None => self.emit_generic(item, step.sig),
                },
                Item::CondMux {
                    sel,
                    dst,
                    high_items,
                    high,
                    low_items,
                    low,
                    sig,
                } => {
                    if !one_word(sel) || !one_word_dst(dst) || !one_word(high) || !one_word(low) {
                        self.emit_generic(item, *sig);
                        continue;
                    }
                    let blank = Inst1 {
                        op: Op1::JmpIf0,
                        sxa: 0,
                        sxb: 0,
                        sxc: 0,
                        a: 0,
                        b: sel.off,
                        c: 0,
                        dst: 0,
                        imm: 0,
                        mask: 0,
                        ws: NO_FUSE,
                        we: NO_FUSE,
                    };
                    let jif = self.push(blank, None);
                    self.emit_items(high_items, outs);
                    let mut ext_hi = Inst1 {
                        op: Op1::Ext,
                        sxa: sx_of(high.width, high.signed),
                        a: high.off,
                        b: 0,
                        dst: dst.off,
                        mask: top_mask(dst.width),
                        ..blank
                    };
                    self.attach_fuse(&mut ext_hi, *sig, outs);
                    self.push(ext_hi, Some(*sig));
                    let jmp = self.push(
                        Inst1 {
                            op: Op1::Jmp,
                            b: 0,
                            ..blank
                        },
                        None,
                    );
                    self.code[jif].a = self.code.len() as u32;
                    self.emit_items(low_items, outs);
                    let mut ext_lo = Inst1 {
                        op: Op1::Ext,
                        sxa: sx_of(low.width, low.signed),
                        a: low.off,
                        b: 0,
                        dst: dst.off,
                        mask: top_mask(dst.width),
                        ..blank
                    };
                    self.attach_fuse(&mut ext_lo, *sig, outs);
                    self.push(ext_lo, Some(*sig));
                    self.code[jmp].a = self.code.len() as u32;
                }
            }
        }
    }
}

/// Lowers a compiled block into a [`Tier1Program`].
///
/// `outs` lists the block's partition outputs with their trigger
/// consumers; when `fuse` is set, outputs defined by specialized
/// instructions get fused compare-and-wake tails (the rest are reported
/// via [`Tier1Program::unfused`] and must keep the engine's
/// snapshot-compare path). Pass an empty `outs` / `fuse = false` for
/// engines without triggers.
pub fn lower_tier1(netlist: &Netlist, block: &Block, outs: &[OutSpec], fuse: bool) -> Tier1Program {
    let mut low = Lowerer {
        netlist,
        fuse,
        code: Vec::new(),
        sigs: Vec::new(),
        generic: Vec::new(),
        consumers: Vec::new(),
        out_index: outs.iter().enumerate().map(|(i, o)| (o.sig, i)).collect(),
        fuse_range: HashMap::new(),
        fused: vec![false; outs.len()],
    };
    low.emit_items(&block.items, outs);
    let total_steps: usize = block.items.iter().map(Item::step_count).sum();
    let generic_steps: usize = low.generic.iter().map(Item::step_count).sum();
    let unfused: Vec<usize> = low
        .fused
        .iter()
        .enumerate()
        .filter(|(_, &f)| !f)
        .map(|(i, _)| i)
        .collect();
    let stats = TierStats {
        total_steps,
        tier1_steps: total_steps - generic_steps,
        fused_outputs: outs.len() - unfused.len(),
        total_outputs: outs.len(),
    };
    Tier1Program {
        code: low.code,
        sigs: low.sigs,
        generic: low.generic,
        consumers: low.consumers,
        unfused,
        stats,
    }
}

/// Sign-extends a normalized one-word value by shift `s` (0 = identity).
#[inline(always)]
fn sext(v: u64, s: u8) -> u64 {
    (((v << s) as i64) >> s) as u64
}

/// Arena word footprint of one generic-fallback [`Item`]: the batched
/// engine gathers these strided words into a scalar scratch arena, runs
/// the item through [`run_items_raw`] per lane, and scatters the writes
/// back. Writes are gathered too: a `CondMux` way not taken this cycle
/// leaves its destination untouched, and the scatter must not smear a
/// stale scratch word over a live lane value.
#[derive(Debug, Clone, Default)]
pub struct ItemRw {
    /// `(offset, words)` ranges the item may read.
    pub reads: Vec<(u32, u16)>,
    /// `(offset, words)` ranges the item may write.
    pub writes: Vec<(u32, u16)>,
}

impl ItemRw {
    /// Accumulates `item`'s accesses (recursing into mux ways).
    pub fn absorb(&mut self, item: &Item) {
        match item {
            Item::Step(step) => {
                for a in &step.args {
                    self.reads.push((a.off, a.words));
                }
                self.writes.push((step.dst.off, step.dst.words));
            }
            Item::CondMux {
                sel,
                dst,
                high_items,
                high,
                low_items,
                low,
                ..
            } => {
                self.reads.push((sel.off, sel.words));
                self.reads.push((high.off, high.words));
                self.reads.push((low.off, low.words));
                self.writes.push((dst.off, dst.words));
                for it in high_items.iter().chain(low_items.iter()) {
                    self.absorb(it);
                }
            }
        }
    }
}

/// The word footprint of a single item (see [`ItemRw`]).
pub fn item_rw(item: &Item) -> ItemRw {
    let mut rw = ItemRw::default();
    rw.absorb(item);
    rw
}

/// Executes a lowered program over every lane in `eval_mask` of an
/// N-lane batched arena (word-major SoA: word `w` of lane `l` lives at
/// `w * lanes + l`, so one instruction's operand values for all lanes
/// are contiguous and the dense lane loops auto-vectorize; hot
/// unsigned ALU/mux ops additionally take an explicit AVX2 path when
/// the host supports it).
///
/// Control-flow divergence uses per-lane resume points: lane `l`
/// executes instruction `pc` iff `resume[l] <= pc`, which is sound
/// because every jump is strictly forward (re-proven by `B0212`) — a
/// diverged lane simply waits for `pc` to reach its target, and
/// `next_join`, the nearest pending target, is the only pc where the
/// active mask can grow back.
///
/// Work accounting per lane matches [`run_tier1_raw`] exactly: one
/// `ops_evaluated` per value-producing instruction a lane executes
/// (jumps free, the taken `Ext` stands in for a mux diamond), one
/// `dynamic_checks` per fused trigger compare. Fused trigger wakes set
/// the lane's bit in the consumers' wake masks.
///
/// # Safety
///
/// `arena` must point at the batched strided arena sized
/// `layout.total_words() * lanes` for the layout `prog` was lowered
/// from, with no concurrent access; `scratch` must be a scalar arena of
/// `layout.total_words()` words; `generic_rw` must parallel
/// `prog.generic`; `lane_mems` and `counters` must have at least
/// `lanes` entries; `eval_mask` must be non-zero with no bit at or
/// above `lanes`, and `lanes` in `1..=64`.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn run_tier1_lanes(
    prog: &Tier1Program,
    generic_rw: &[ItemRw],
    arena: *mut u64,
    lanes: usize,
    eval_mask: u64,
    lane_mems: &[Vec<MemBank>],
    scratch: &mut [u64],
    flags: &[Cell<u64>],
    counters: &mut [WorkCounters],
) {
    debug_assert!(eval_mask != 0 && (1..=64).contains(&lanes));
    let code = prog.code.as_slice();
    // SAFETY (both closures): `off` is an in-bounds layout slot — the
    // same B0210/R05xx-audited offsets `run_tier1_raw` dereferences —
    // and `lane < lanes`, so `off * lanes + lane` stays inside the
    // strided arena; the caller holds exclusive arena access.
    let ld = move |off: u32, lane: usize| -> u64 {
        // SAFETY: see above.
        unsafe { *arena.add(off as usize * lanes + lane) }
    };
    let st = move |off: u32, lane: usize, v: u64| {
        // SAFETY: see above.
        unsafe { *arena.add(off as usize * lanes + lane) = v }
    };

    #[cfg(target_arch = "x86_64")]
    let avx2 = lanes >= 4 && std::arch::is_x86_feature_detected!("avx2");

    let mut resume = [0u32; 64];
    let mut active = eval_mask;
    let mut next_join = u32::MAX;
    // Specialized instructions executed since the active mask last
    // changed; each is worth one `ops_evaluated` for every active lane.
    let mut seg: u64 = 0;

    macro_rules! flush_seg {
        () => {
            if seg != 0 {
                let mut m = active;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    counters[l].ops_evaluated += seg;
                }
                // The final flush's reset is dead by construction; kept
                // so every flush leaves the counter consistent.
                #[allow(unused_assignments)]
                {
                    seg = 0;
                }
            }
        };
    }

    /// Dense-prefix-aware lane loop with the fused-tail branch: the
    /// plain store path runs a contiguous `0..n` loop whenever the
    /// active lanes form a prefix (the shape compaction maintains).
    macro_rules! lanes_op {
        ($inst:expr, |$l:ident| $val:expr) => {{
            seg += 1;
            if $inst.ws == NO_FUSE {
                if active & active.wrapping_add(1) == 0 {
                    let n = active.count_ones() as usize;
                    for $l in 0..n {
                        let v = $val;
                        st($inst.dst, $l, v & $inst.mask);
                    }
                } else {
                    let mut m = active;
                    while m != 0 {
                        let $l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let v = $val;
                        st($inst.dst, $l, v & $inst.mask);
                    }
                }
            } else {
                // Fused CCSS tail, per lane: the pre-write slot value is
                // last cycle's output, so the compare is exactly the
                // engine's snapshot compare; wakes set the lane's bit.
                let mut m = active;
                while m != 0 {
                    let $l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let v = ($val) & $inst.mask;
                    counters[$l].dynamic_checks += 1;
                    if ld($inst.dst, $l) != v {
                        st($inst.dst, $l, v);
                        for &c in &prog.consumers[$inst.ws as usize..$inst.we as usize] {
                            let f = &flags[c as usize];
                            f.set(f.get() | (1u64 << $l));
                        }
                    }
                }
            }
        }};
    }

    let mut pc = 0usize;
    while pc < code.len() {
        if pc as u32 == next_join {
            // Reconvergence: rejoin every waiting lane whose resume pc
            // has arrived.
            flush_seg!();
            active = 0;
            next_join = u32::MAX;
            let mut m = eval_mask;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                if resume[l] <= pc as u32 {
                    active |= 1 << l;
                } else {
                    next_join = next_join.min(resume[l]);
                }
            }
        }
        // SAFETY: the loop condition bounds `pc` on every iteration,
        // including after jump fast-forwards.
        let inst = unsafe { code.get_unchecked(pc) };
        pc += 1;

        match inst.op {
            Op1::Jmp => {
                flush_seg!();
                let mut m = active;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    resume[l] = inst.a;
                }
                next_join = next_join.min(inst.a);
                active = 0;
                // Every lane is waiting; skip straight to the nearest
                // resume point.
                pc = next_join as usize;
                continue;
            }
            Op1::JmpIf0 => {
                let mut taken = 0u64;
                let mut m = active;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if ld(inst.b, l) & 1 == 0 {
                        taken |= 1 << l;
                        resume[l] = inst.a;
                    }
                }
                if taken != 0 {
                    flush_seg!();
                    active &= !taken;
                    next_join = next_join.min(inst.a);
                    if active == 0 {
                        pc = next_join as usize;
                    }
                }
                continue;
            }
            Op1::Generic => {
                // Gather → scalar interpreter → scatter, per lane. The
                // gather covers writes too: a mux way not taken leaves
                // its destination untouched, and the scatter must not
                // smear a stale scratch word over a live lane value.
                let item = &prog.generic[inst.a as usize];
                let rw = &generic_rw[inst.a as usize];
                let sp = scratch.as_mut_ptr();
                let mut m = active;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    for &(off, w) in rw.reads.iter().chain(rw.writes.iter()) {
                        for k in 0..w as u32 {
                            // SAFETY: `off + k` is an in-bounds layout
                            // slot (B02xx), hence inside the
                            // `total_words`-sized scratch.
                            unsafe { *sp.add((off + k) as usize) = ld(off + k, lane) };
                        }
                    }
                    // SAFETY: `scratch` is an exclusively-borrowed
                    // scalar arena covering the layout; every word the
                    // item touches was just gathered, and `inst.a`
                    // indexes `prog.generic` by construction (B0210).
                    unsafe {
                        run_items_raw(
                            std::slice::from_ref(item),
                            sp,
                            &lane_mems[lane],
                            &mut counters[lane].ops_evaluated,
                        );
                    }
                    for &(off, w) in &rw.writes {
                        for k in 0..w as u32 {
                            // SAFETY: in-bounds as above.
                            st(off + k, lane, unsafe { *sp.add((off + k) as usize) });
                        }
                    }
                }
                continue;
            }
            _ => {}
        }

        #[cfg(target_arch = "x86_64")]
        if avx2 && inst.ws == NO_FUSE && active & active.wrapping_add(1) == 0 {
            let n = active.count_ones() as usize;
            if n >= 4 {
                // SAFETY: AVX2 detected above; `inst` offsets and the
                // strided arena satisfy this function's contract, and
                // `n <= lanes` because `active ⊆ eval_mask`.
                if unsafe { lanes_simd::dispatch(inst, arena, lanes, n) } {
                    seg += 1;
                    continue;
                }
            }
        }

        match inst.op {
            Op1::Add => {
                lanes_op!(inst, |l| sext(ld(inst.a, l), inst.sxa)
                    .wrapping_add(sext(ld(inst.b, l), inst.sxb)))
            }
            Op1::Sub => {
                lanes_op!(inst, |l| sext(ld(inst.a, l), inst.sxa)
                    .wrapping_sub(sext(ld(inst.b, l), inst.sxb)))
            }
            Op1::Mul => {
                lanes_op!(inst, |l| sext(ld(inst.a, l), inst.sxa)
                    .wrapping_mul(sext(ld(inst.b, l), inst.sxb)))
            }
            Op1::DivU => lanes_op!(inst, |l| ld(inst.a, l)
                .checked_div(ld(inst.b, l))
                .unwrap_or(0)),
            Op1::DivS => lanes_op!(inst, |l| {
                let b = ld(inst.b, l);
                if b == 0 {
                    0
                } else {
                    let x = sext(ld(inst.a, l), inst.sxa) as i64 as i128;
                    let y = sext(b, inst.sxb) as i64 as i128;
                    (x / y) as u64
                }
            }),
            Op1::RemU => lanes_op!(inst, |l| {
                let a = ld(inst.a, l);
                a.checked_rem(ld(inst.b, l)).unwrap_or(a)
            }),
            Op1::RemS => lanes_op!(inst, |l| {
                let b = ld(inst.b, l);
                if b == 0 {
                    sext(ld(inst.a, l), inst.sxa)
                } else {
                    let x = sext(ld(inst.a, l), inst.sxa) as i64 as i128;
                    let y = sext(b, inst.sxb) as i64 as i128;
                    (x % y) as u64
                }
            }),
            Op1::LtU => lanes_op!(inst, |l| (ld(inst.a, l) < ld(inst.b, l)) as u64),
            Op1::LtS => lanes_op!(inst, |l| ((sext(ld(inst.a, l), inst.sxa) as i64)
                < (sext(ld(inst.b, l), inst.sxb) as i64))
                as u64),
            Op1::LeqU => lanes_op!(inst, |l| (ld(inst.a, l) <= ld(inst.b, l)) as u64),
            Op1::LeqS => lanes_op!(inst, |l| ((sext(ld(inst.a, l), inst.sxa) as i64)
                <= (sext(ld(inst.b, l), inst.sxb) as i64))
                as u64),
            Op1::Eq => {
                lanes_op!(
                    inst,
                    |l| (sext(ld(inst.a, l), inst.sxa) == sext(ld(inst.b, l), inst.sxb)) as u64
                )
            }
            Op1::Neq => {
                lanes_op!(
                    inst,
                    |l| (sext(ld(inst.a, l), inst.sxa) != sext(ld(inst.b, l), inst.sxb)) as u64
                )
            }
            Op1::Shl => lanes_op!(inst, |l| {
                if inst.imm >= inst.sxc as u64 {
                    0
                } else {
                    ld(inst.a, l) << inst.imm
                }
            }),
            Op1::ShrU => lanes_op!(inst, |l| {
                if inst.imm >= 64 {
                    0
                } else {
                    ld(inst.a, l) >> inst.imm
                }
            }),
            Op1::ShrS => lanes_op!(inst, |l| {
                let sh = inst.imm.min(63);
                ((sext(ld(inst.a, l), inst.sxa) as i64) >> sh) as u64
            }),
            Op1::Dshl => lanes_op!(inst, |l| {
                let sh = ld(inst.b, l);
                if sh >= inst.sxc as u64 {
                    0
                } else {
                    ld(inst.a, l) << sh
                }
            }),
            Op1::DshrU => lanes_op!(inst, |l| {
                let sh = ld(inst.b, l);
                if sh >= 64 {
                    0
                } else {
                    ld(inst.a, l) >> sh
                }
            }),
            Op1::DshrS => lanes_op!(inst, |l| {
                let sh = ld(inst.b, l).min(63);
                ((sext(ld(inst.a, l), inst.sxa) as i64) >> sh) as u64
            }),
            Op1::Neg => lanes_op!(inst, |l| sext(ld(inst.a, l), inst.sxa).wrapping_neg()),
            Op1::Not => lanes_op!(inst, |l| !sext(ld(inst.a, l), inst.sxa)),
            Op1::And => {
                lanes_op!(inst, |l| sext(ld(inst.a, l), inst.sxa)
                    & sext(ld(inst.b, l), inst.sxb))
            }
            Op1::Or => {
                lanes_op!(inst, |l| sext(ld(inst.a, l), inst.sxa)
                    | sext(ld(inst.b, l), inst.sxb))
            }
            Op1::Xor => {
                lanes_op!(inst, |l| sext(ld(inst.a, l), inst.sxa)
                    ^ sext(ld(inst.b, l), inst.sxb))
            }
            Op1::Andr => lanes_op!(inst, |l| (ld(inst.a, l) == inst.imm) as u64),
            Op1::Orr => lanes_op!(inst, |l| (ld(inst.a, l) != 0) as u64),
            Op1::Xorr => lanes_op!(inst, |l| (ld(inst.a, l).count_ones() & 1) as u64),
            Op1::Cat => lanes_op!(inst, |l| (ld(inst.a, l) << inst.imm) | ld(inst.b, l)),
            Op1::Bits => lanes_op!(inst, |l| ld(inst.a, l) >> inst.imm),
            Op1::Ext => lanes_op!(inst, |l| sext(ld(inst.a, l), inst.sxa)),
            Op1::Mux => lanes_op!(inst, |l| {
                if ld(inst.a, l) & 1 == 1 {
                    sext(ld(inst.b, l), inst.sxb)
                } else {
                    sext(ld(inst.c, l), inst.sxc)
                }
            }),
            Op1::MemRead => lanes_op!(inst, |l| {
                let bank = &lane_mems[l][inst.c as usize];
                let addr = ld(inst.a, l);
                if ld(inst.b, l) & 1 == 1 && addr < inst.imm {
                    bank.data[addr as usize]
                } else {
                    0
                }
            }),
            // Handled above.
            Op1::Jmp | Op1::JmpIf0 | Op1::Generic => unreachable!(),
        }
    }
    flush_seg!();
}

/// AVX2 lane kernels for the hot unsigned single-word ops: four lanes
/// per vector over the contiguous per-word lane stripes of the batched
/// arena. Anything signed, fused, or exotic falls back to the scalar
/// lane loop (which the compiler auto-vectorizes anyway — this path
/// pins the vector shape for the ops that dominate ALU-heavy designs).
#[cfg(target_arch = "x86_64")]
mod lanes_simd {
    use super::{Inst1, Op1};
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Evaluates `inst` across dense lanes `0..n`; returns `false` when
    /// the op/operand shape has no vector form (caller falls back to
    /// the scalar lane loop, which must then execute the instruction).
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 is available, `arena` is the exclusively
    /// accessed strided batch arena, `inst` carries in-bounds layout
    /// offsets, and `n <= lanes`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dispatch(inst: &Inst1, arena: *mut u64, lanes: usize, n: usize) -> bool {
        // SAFETY: `off * lanes .. off * lanes + n` is inside the strided
        // arena for every operand offset (caller contract); unaligned
        // vector loads/stores are used throughout.
        unsafe {
            let pa = arena.add(inst.a as usize * lanes).cast_const();
            let pb = arena.add(inst.b as usize * lanes).cast_const();
            let pc_ = arena.add(inst.c as usize * lanes).cast_const();
            let pd = arena.add(inst.dst as usize * lanes);
            let vmask = _mm256_set1_epi64x(inst.mask as i64);
            let mut i = 0usize;
            macro_rules! bin {
                ($f:ident, $scalar:expr) => {{
                    if inst.sxa != 0 || inst.sxb != 0 {
                        return false;
                    }
                    while i + 4 <= n {
                        let va = _mm256_loadu_si256(pa.add(i).cast());
                        let vb = _mm256_loadu_si256(pb.add(i).cast());
                        let v = _mm256_and_si256($f(va, vb), vmask);
                        _mm256_storeu_si256(pd.add(i).cast(), v);
                        i += 4;
                    }
                    while i < n {
                        let f: fn(u64, u64) -> u64 = $scalar;
                        *pd.add(i) = f(*pa.add(i), *pb.add(i)) & inst.mask;
                        i += 1;
                    }
                }};
            }
            // 0/1 predicate results from a lane-wide compare mask.
            macro_rules! pred {
                (|$va:ident, $vb:ident| $vec:expr, |$a:ident, $b:ident| $scalar:expr) => {{
                    if inst.sxa != 0 || inst.sxb != 0 {
                        return false;
                    }
                    let one = _mm256_set1_epi64x(1);
                    while i + 4 <= n {
                        let $va = _mm256_loadu_si256(pa.add(i).cast());
                        let $vb = _mm256_loadu_si256(pb.add(i).cast());
                        let full: __m256i = $vec;
                        _mm256_storeu_si256(pd.add(i).cast(), _mm256_and_si256(full, one));
                        i += 4;
                    }
                    while i < n {
                        let $a = *pa.add(i);
                        let $b = *pb.add(i);
                        *pd.add(i) = ($scalar) as u64;
                        i += 1;
                    }
                }};
            }
            // Uniform-count shifts: the count comes from the instruction,
            // not the lanes, so the `_mm256_sll/srl_epi64` forms (count in
            // the low xmm lane) apply. Callers guard `count < 64`.
            let vcount = |c: u64| _mm_cvtsi64_si128(c as i64);
            match inst.op {
                Op1::Add => bin!(_mm256_add_epi64, u64::wrapping_add),
                Op1::Sub => bin!(_mm256_sub_epi64, u64::wrapping_sub),
                Op1::And => bin!(_mm256_and_si256, |a, b| a & b),
                Op1::Or => bin!(_mm256_or_si256, |a, b| a | b),
                Op1::Xor => bin!(_mm256_xor_si256, |a, b| a ^ b),
                Op1::Eq => pred!(|va, vb| _mm256_cmpeq_epi64(va, vb), |a, b| a == b),
                Op1::Neq => pred!(
                    |va, vb| {
                        let ones = _mm256_set1_epi64x(-1);
                        _mm256_xor_si256(_mm256_cmpeq_epi64(va, vb), ones)
                    },
                    |a, b| a != b
                ),
                Op1::LtU => pred!(
                    |va, vb| {
                        let flip = _mm256_set1_epi64x(i64::MIN);
                        _mm256_cmpgt_epi64(_mm256_xor_si256(vb, flip), _mm256_xor_si256(va, flip))
                    },
                    |a, b| a < b
                ),
                Op1::LeqU => pred!(
                    |va, vb| {
                        let flip = _mm256_set1_epi64x(i64::MIN);
                        let gt = _mm256_cmpgt_epi64(
                            _mm256_xor_si256(va, flip),
                            _mm256_xor_si256(vb, flip),
                        );
                        _mm256_xor_si256(gt, _mm256_set1_epi64x(-1))
                    },
                    |a, b| a <= b
                ),
                Op1::Orr => {
                    let one = _mm256_set1_epi64x(1);
                    let zero = _mm256_setzero_si256();
                    while i + 4 <= n {
                        let va = _mm256_loadu_si256(pa.add(i).cast());
                        let nz = _mm256_andnot_si256(_mm256_cmpeq_epi64(va, zero), one);
                        _mm256_storeu_si256(pd.add(i).cast(), nz);
                        i += 4;
                    }
                    while i < n {
                        *pd.add(i) = (*pa.add(i) != 0) as u64;
                        i += 1;
                    }
                }
                Op1::Andr => {
                    let one = _mm256_set1_epi64x(1);
                    let all = _mm256_set1_epi64x(inst.imm as i64);
                    while i + 4 <= n {
                        let va = _mm256_loadu_si256(pa.add(i).cast());
                        let eq = _mm256_and_si256(_mm256_cmpeq_epi64(va, all), one);
                        _mm256_storeu_si256(pd.add(i).cast(), eq);
                        i += 4;
                    }
                    while i < n {
                        *pd.add(i) = (*pa.add(i) == inst.imm) as u64;
                        i += 1;
                    }
                }
                Op1::Bits => {
                    if inst.imm >= 64 {
                        return false;
                    }
                    let c = vcount(inst.imm);
                    while i + 4 <= n {
                        let va = _mm256_loadu_si256(pa.add(i).cast());
                        let v = _mm256_and_si256(_mm256_srl_epi64(va, c), vmask);
                        _mm256_storeu_si256(pd.add(i).cast(), v);
                        i += 4;
                    }
                    while i < n {
                        *pd.add(i) = (*pa.add(i) >> inst.imm) & inst.mask;
                        i += 1;
                    }
                }
                Op1::ShrU => {
                    if inst.imm >= 64 {
                        // Scalar path stores a masked zero; mirror it here.
                        while i < n {
                            *pd.add(i) = 0;
                            i += 1;
                        }
                        return true;
                    }
                    let c = vcount(inst.imm);
                    while i + 4 <= n {
                        let va = _mm256_loadu_si256(pa.add(i).cast());
                        let v = _mm256_and_si256(_mm256_srl_epi64(va, c), vmask);
                        _mm256_storeu_si256(pd.add(i).cast(), v);
                        i += 4;
                    }
                    while i < n {
                        *pd.add(i) = (*pa.add(i) >> inst.imm) & inst.mask;
                        i += 1;
                    }
                }
                Op1::Shl => {
                    if inst.imm >= inst.sxc as u64 {
                        while i < n {
                            *pd.add(i) = 0;
                            i += 1;
                        }
                        return true;
                    }
                    if inst.imm >= 64 {
                        return false;
                    }
                    let c = vcount(inst.imm);
                    while i + 4 <= n {
                        let va = _mm256_loadu_si256(pa.add(i).cast());
                        let v = _mm256_and_si256(_mm256_sll_epi64(va, c), vmask);
                        _mm256_storeu_si256(pd.add(i).cast(), v);
                        i += 4;
                    }
                    while i < n {
                        *pd.add(i) = (*pa.add(i) << inst.imm) & inst.mask;
                        i += 1;
                    }
                }
                Op1::Cat => {
                    if inst.imm >= 64 {
                        return false;
                    }
                    let c = vcount(inst.imm);
                    while i + 4 <= n {
                        let va = _mm256_loadu_si256(pa.add(i).cast());
                        let vb = _mm256_loadu_si256(pb.add(i).cast());
                        let v = _mm256_or_si256(_mm256_sll_epi64(va, c), vb);
                        _mm256_storeu_si256(pd.add(i).cast(), _mm256_and_si256(v, vmask));
                        i += 4;
                    }
                    while i < n {
                        *pd.add(i) = ((*pa.add(i) << inst.imm) | *pb.add(i)) & inst.mask;
                        i += 1;
                    }
                }
                Op1::Ext => {
                    if inst.sxa != 0 {
                        return false;
                    }
                    while i + 4 <= n {
                        let va = _mm256_loadu_si256(pa.add(i).cast());
                        _mm256_storeu_si256(pd.add(i).cast(), _mm256_and_si256(va, vmask));
                        i += 4;
                    }
                    while i < n {
                        *pd.add(i) = *pa.add(i) & inst.mask;
                        i += 1;
                    }
                }
                Op1::Mux => {
                    // `a` is the selector, `b`/`c` the high/low ways.
                    if inst.sxb != 0 || inst.sxc != 0 {
                        return false;
                    }
                    let one = _mm256_set1_epi64x(1);
                    while i + 4 <= n {
                        let vs = _mm256_and_si256(_mm256_loadu_si256(pa.add(i).cast()), one);
                        let hi = _mm256_cmpeq_epi64(vs, one);
                        let vb = _mm256_loadu_si256(pb.add(i).cast());
                        let vc = _mm256_loadu_si256(pc_.add(i).cast());
                        let v = _mm256_and_si256(_mm256_blendv_epi8(vc, vb, hi), vmask);
                        _mm256_storeu_si256(pd.add(i).cast(), v);
                        i += 4;
                    }
                    while i < n {
                        let v = if *pa.add(i) & 1 == 1 {
                            *pb.add(i)
                        } else {
                            *pc_.add(i)
                        };
                        *pd.add(i) = v & inst.mask;
                        i += 1;
                    }
                }
                _ => return false,
            }
            true
        }
    }
}

/// Executes a lowered program over the arena.
///
/// Work accounting matches the generic interpreter exactly: every
/// value-producing instruction adds one to `ops` (jumps are free; a mux
/// diamond's taken `Ext` stands in for the `CondMux` item), and every
/// fused trigger adds one to `dynamic` (standing in for the engine's
/// per-output snapshot compare).
///
/// # Safety
///
/// `arena` must point at the machine's arena, sized per the layout the
/// program was lowered from; no other thread may concurrently access any
/// slot this program writes, nor write any slot it reads. The engines
/// uphold this with exclusive borrows (sequential) or disjoint partition
/// memberships plus level barriers (parallel).
pub(crate) unsafe fn run_tier1_raw<F: FlagSink>(
    prog: &Tier1Program,
    arena: *mut u64,
    mems: &[MemBank],
    flags: &F,
    ops: &mut u64,
    dynamic: &mut u64,
) {
    let code = prog.code.as_slice();
    let mut pc = 0usize;
    while pc < code.len() {
        // SAFETY: the loop condition bounds `pc` on every iteration,
        // including after jumps.
        let inst = unsafe { code.get_unchecked(pc) };
        pc += 1;
        #[cfg(feature = "race-sanitizer")]
        crate::sanitizer::note_inst1(inst);
        // SAFETY: operand offsets are in-bounds layout slots that no
        // other thread concurrently writes — the footprint layer proves
        // the lowered operand offsets match the generic block's reads
        // (R0501) and that no co-leveled partition writes them (R0503).
        let ld = |off: u32| unsafe { *arena.add(off as usize) };
        let val = match inst.op {
            Op1::Add => sext(ld(inst.a), inst.sxa).wrapping_add(sext(ld(inst.b), inst.sxb)),
            Op1::Sub => sext(ld(inst.a), inst.sxa).wrapping_sub(sext(ld(inst.b), inst.sxb)),
            Op1::Mul => sext(ld(inst.a), inst.sxa).wrapping_mul(sext(ld(inst.b), inst.sxb)),
            Op1::DivU => ld(inst.a).checked_div(ld(inst.b)).unwrap_or(0),
            Op1::DivS => {
                let b = ld(inst.b);
                if b == 0 {
                    0
                } else {
                    let x = sext(ld(inst.a), inst.sxa) as i64 as i128;
                    let y = sext(b, inst.sxb) as i64 as i128;
                    (x / y) as u64
                }
            }
            Op1::RemU => {
                let a = ld(inst.a);
                a.checked_rem(ld(inst.b)).unwrap_or(a)
            }
            Op1::RemS => {
                let b = ld(inst.b);
                if b == 0 {
                    sext(ld(inst.a), inst.sxa)
                } else {
                    let x = sext(ld(inst.a), inst.sxa) as i64 as i128;
                    let y = sext(b, inst.sxb) as i64 as i128;
                    (x % y) as u64
                }
            }
            Op1::LtU => (ld(inst.a) < ld(inst.b)) as u64,
            Op1::LtS => {
                ((sext(ld(inst.a), inst.sxa) as i64) < (sext(ld(inst.b), inst.sxb) as i64)) as u64
            }
            Op1::LeqU => (ld(inst.a) <= ld(inst.b)) as u64,
            Op1::LeqS => {
                ((sext(ld(inst.a), inst.sxa) as i64) <= (sext(ld(inst.b), inst.sxb) as i64)) as u64
            }
            Op1::Eq => (sext(ld(inst.a), inst.sxa) == sext(ld(inst.b), inst.sxb)) as u64,
            Op1::Neq => (sext(ld(inst.a), inst.sxa) != sext(ld(inst.b), inst.sxb)) as u64,
            Op1::Shl => {
                if inst.imm >= inst.sxc as u64 {
                    0
                } else {
                    ld(inst.a) << inst.imm
                }
            }
            Op1::ShrU => {
                if inst.imm >= 64 {
                    0
                } else {
                    ld(inst.a) >> inst.imm
                }
            }
            Op1::ShrS => {
                let sh = inst.imm.min(63);
                ((sext(ld(inst.a), inst.sxa) as i64) >> sh) as u64
            }
            Op1::Dshl => {
                let sh = ld(inst.b);
                if sh >= inst.sxc as u64 {
                    0
                } else {
                    ld(inst.a) << sh
                }
            }
            Op1::DshrU => {
                let sh = ld(inst.b);
                if sh >= 64 {
                    0
                } else {
                    ld(inst.a) >> sh
                }
            }
            Op1::DshrS => {
                let sh = ld(inst.b).min(63);
                ((sext(ld(inst.a), inst.sxa) as i64) >> sh) as u64
            }
            Op1::Neg => sext(ld(inst.a), inst.sxa).wrapping_neg(),
            Op1::Not => !sext(ld(inst.a), inst.sxa),
            Op1::And => sext(ld(inst.a), inst.sxa) & sext(ld(inst.b), inst.sxb),
            Op1::Or => sext(ld(inst.a), inst.sxa) | sext(ld(inst.b), inst.sxb),
            Op1::Xor => sext(ld(inst.a), inst.sxa) ^ sext(ld(inst.b), inst.sxb),
            Op1::Andr => (ld(inst.a) == inst.imm) as u64,
            Op1::Orr => (ld(inst.a) != 0) as u64,
            Op1::Xorr => (ld(inst.a).count_ones() & 1) as u64,
            Op1::Cat => (ld(inst.a) << inst.imm) | ld(inst.b),
            Op1::Bits => ld(inst.a) >> inst.imm,
            Op1::Ext => sext(ld(inst.a), inst.sxa),
            Op1::Mux => {
                if ld(inst.a) & 1 == 1 {
                    sext(ld(inst.b), inst.sxb)
                } else {
                    sext(ld(inst.c), inst.sxc)
                }
            }
            Op1::MemRead => {
                // SAFETY: `inst.c` indexes a lowered bank (B0210 audits
                // it against the netlist) and `addr < imm = depth`
                // bounds the entry; single-word banks store one word
                // per entry.
                unsafe {
                    let bank = mems.get_unchecked(inst.c as usize);
                    let addr = ld(inst.a);
                    if ld(inst.b) & 1 == 1 && addr < inst.imm {
                        *bank.data.get_unchecked(addr as usize)
                    } else {
                        0
                    }
                }
            }
            Op1::Jmp => {
                pc = inst.a as usize;
                continue;
            }
            Op1::JmpIf0 => {
                if ld(inst.b) & 1 == 0 {
                    pc = inst.a as usize;
                }
                continue;
            }
            Op1::Generic => {
                // SAFETY: `inst.a` indexes `prog.generic` by
                // construction (audited by B0210); the recursive call
                // forwards this function's contract.
                unsafe {
                    let item = prog.generic.get_unchecked(inst.a as usize);
                    run_items_raw(std::slice::from_ref(item), arena, mems, ops);
                }
                continue;
            }
        };
        *ops += 1;
        let val = val & inst.mask;
        // SAFETY: `inst.dst` is a declared write of this partition
        // (R0501 proves it equals the generic block's write set, R0504
        // bounds it, R0502 proves no co-leveled partition shares it);
        // the fused-tail pre-write read touches the same exclusive slot.
        unsafe {
            let slot = arena.add(inst.dst as usize);
            if inst.ws == NO_FUSE {
                *slot = val;
            } else {
                // Fused CCSS tail: the pre-write slot value is last cycle's
                // output (single writer), so this compare is exactly the
                // engine's snapshot compare.
                *dynamic += 1;
                if *slot != val {
                    *slot = val;
                    for &c in prog
                        .consumers
                        .get_unchecked(inst.ws as usize..inst.we as usize)
                    {
                        flags.wake(c);
                    }
                }
            }
        }
    }
}
