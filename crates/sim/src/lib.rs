//! The simulation engines: the paper's generated simulators, realized as
//! compiled-to-bytecode interpreters over the netlist.
//!
//! Three engines share one compiled representation and one set of value
//! kernels, so cross-engine equivalence is a meaningful test and
//! cross-engine *timing* is a meaningful benchmark:
//!
//! * [`FullCycleSim`] — evaluates the entire design every cycle from a
//!   static schedule. With netlist optimizations disabled this is the
//!   paper's **Baseline**; with them enabled it plays the **Verilator**
//!   row (the paper notes both are full-cycle and comparable).
//! * [`EssentSim`] — the paper's contribution: **CCSS execution**
//!   (conditional, coarsened, singular, static). Partitions produced by
//!   `essent-core` carry activation flags; an active partition
//!   deactivates itself, snapshots its outputs, evaluates its members,
//!   updates elided state in place, and wakes the consumers of every
//!   output that changed (push-direction, branchless OR-style flag
//!   writes — Figure 1).
//! * [`EventDrivenSim`] — a classic levelized event-driven simulator
//!   (signal-granularity change propagation), the stand-in for the
//!   commercial event-driven simulator ("CommVer") in Table III.
//!
//! Supporting modules: [`compile`] (bytecode, including the conditional
//! multiplexer-way optimization of Section III-B), [`machine`] (arena,
//! memory banks, commit logic, work counters for the Figure 7 overhead
//! decomposition), [`activity`] (per-cycle activity-factor measurement
//! for Figure 5), [`vcd`] (waveform dumping), and [`codegen`] (a C++
//! emitter mirroring ESSENT's generated code).
//!
//! # Examples
//!
//! ```
//! use essent_sim::{EngineConfig, EssentSim, Simulator};
//! use essent_bits::Bits;
//!
//! let src = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";
//! let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src)?)?;
//! let netlist = essent_netlist::Netlist::from_circuit(&lowered)?;
//! let mut sim = EssentSim::new(&netlist, &EngineConfig::default());
//! sim.poke("reset", Bits::from_u64(0, 1));
//! sim.step(10);
//! assert_eq!(sim.peek("q").to_u64(), Some(9));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Unsafe code
//!
//! Every `unsafe` block in this crate is a raw-pointer arena access
//! whose soundness rests on one invariant: **partitions co-scheduled in
//! a dependency level have disjoint write footprints, and never write
//! what a co-leveled partition reads**. The invariant is not assumed —
//! it is statically proven per design by the `essent-verify` footprint
//! layer (`R0501`–`R0504`), and dynamically cross-checked by the
//! `race-sanitizer` feature ([`sanitizer`]).

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod activity;
pub mod batch;
pub mod codegen;
pub mod compile;
pub mod engine;
pub mod essent;
pub mod event;
pub mod full_cycle;
pub mod jit;
pub mod machine;
pub mod par;
pub mod profile;
#[cfg(feature = "race-sanitizer")]
pub mod sanitizer;
pub mod step1;
pub mod testbench;
pub mod testgen;
pub mod vcd;

pub use batch::{BatchAudit, BatchSim};
pub use engine::{EngineConfig, Simulator};
pub use essent::EssentSim;
pub use event::EventDrivenSim;
pub use full_cycle::FullCycleSim;
pub use machine::WorkCounters;
pub use par::{plan_levels, CostModel, LevelPlan, LevelSchedule, ParEssentSim};
pub use profile::{activity_prior, ProfileReport, ProfileWiring};
