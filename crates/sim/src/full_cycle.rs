//! The full-cycle engine: a single static schedule evaluating the entire
//! design every cycle (paper Section II).
//!
//! With an unoptimized netlist and all [`EngineConfig`] switches off this
//! is the paper's **Baseline**; with optimizations on it corresponds to a
//! leading full-cycle compiled simulator (the "Verilator" row of Table
//! III — the paper observes the two are performance-comparable because
//! both are full-cycle).

use crate::compile::{compile_full, Block, Item};
use crate::engine::{delegate_simulator_basics, EngineConfig, Simulator};
use crate::machine::Machine;
use crate::profile::{NoProfile, ProfileArena, ProfileReport, ProfileWiring, Profiler};
use crate::step1::{lower_tier1, run_tier1_raw, NoWake, Tier1Program};
use essent_bits::Bits;
use essent_netlist::Netlist;
use std::sync::Arc;

/// Full-cycle simulator: activity-oblivious, minimum per-cycle overhead.
pub struct FullCycleSim {
    machine: Machine,
    block: Block,
    /// Word-specialized program (`config.tier1`); no triggers to fuse in
    /// a full-cycle schedule.
    program: Option<Tier1Program>,
    /// Telemetry arena ([`EngineConfig::profile`]): one unit covering
    /// the whole schedule (full-cycle has no partitions to attribute).
    profile: Option<Box<ProfileArena>>,
}

impl FullCycleSim {
    /// Compiles the netlist for full-cycle execution.
    pub fn new(netlist: &Netlist, config: &EngineConfig) -> FullCycleSim {
        FullCycleSim::new_shared(Arc::new(netlist.clone()), config)
    }

    /// [`FullCycleSim::new`] over an already-shared netlist (no deep
    /// clone).
    pub fn new_shared(netlist: Arc<Netlist>, config: &EngineConfig) -> FullCycleSim {
        let mut machine = Machine::from_arc(Arc::clone(&netlist));
        machine.capture_printf = config.capture_printf;
        let block = compile_full(&netlist, &machine.layout.clone(), config);
        let program = config
            .tier1
            .then(|| lower_tier1(&netlist, &block, &[], false));
        let profile = config
            .profile
            .then(|| Box::new(ProfileArena::new(ProfileWiring::single("full"))));
        FullCycleSim {
            machine,
            block,
            program,
            profile,
        }
    }

    /// The number of bytecode steps evaluated per cycle (for reports).
    pub fn steps_per_cycle(&self) -> usize {
        self.block.items.iter().map(Item::step_count).sum()
    }

    /// Borrow of the underlying machine (testing, activity profiling).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl Simulator for FullCycleSim {
    fn poke(&mut self, name: &str, value: Bits) {
        let id = self.machine.netlist.expect_signal(name);
        assert!(
            matches!(
                self.machine.netlist.signal(id).def,
                essent_netlist::SignalDef::Input
            ),
            "`{name}` is not an input"
        );
        self.machine.set_value(id, &value);
    }

    fn step(&mut self, n: u64) -> u64 {
        match self.profile.take() {
            Some(mut p) => {
                let ran = self.step_profiled(n, &mut *p);
                self.profile = Some(p);
                ran
            }
            None => self.step_profiled(n, &mut NoProfile),
        }
    }

    fn engine_name(&self) -> &'static str {
        "full-cycle"
    }

    fn profile_report(&self) -> Option<ProfileReport> {
        self.profile.as_ref().map(|p| p.report("full-cycle"))
    }

    delegate_simulator_basics!();
}

impl FullCycleSim {
    fn step_profiled<P: Profiler>(&mut self, n: u64, prof: &mut P) -> u64 {
        for i in 0..n {
            if self.machine.halted.is_some() {
                return i;
            }
            prof.begin_cycle();
            let ops_before = self.machine.counters.ops_evaluated;
            let t0 = prof.eval_begin(0);
            match &self.program {
                Some(prog) => {
                    let machine = &mut self.machine;
                    let arena = machine.arena.as_mut_ptr();
                    let mut dynamic = 0u64;
                    // SAFETY: exclusive machine access through &mut self.
                    unsafe {
                        run_tier1_raw(
                            prog,
                            arena,
                            &machine.mems,
                            &NoWake,
                            &mut machine.counters.ops_evaluated,
                            &mut dynamic,
                        )
                    }
                }
                None => self.machine.run_items(&self.block.items),
            }
            self.machine.side_effects();
            // Commit every memory write, then every register, every
            // cycle. Memory writes go first: a write port's fields can
            // alias a register output after copy forwarding, and the
            // write must observe the value the register held *during*
            // the cycle.
            for m in 0..self.machine.netlist.mems().len() {
                for w in 0..self.machine.netlist.mems()[m].writers.len() {
                    self.machine.counters.static_checks += 1;
                    self.machine.run_mem_write(m, w);
                }
            }
            for r in 0..self.machine.netlist.regs().len() {
                self.machine.counters.static_checks += 1;
                self.machine.commit_reg(r);
            }
            prof.eval_end(0, t0, self.machine.counters.ops_evaluated - ops_before);
            self.machine.cycle += 1;
            self.machine.counters.cycles += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_of(src: &str, config: &EngineConfig) -> FullCycleSim {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        let netlist = Netlist::from_circuit(&lowered).unwrap();
        FullCycleSim::new(&netlist, config)
    }

    const COUNTER: &str = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";

    #[test]
    fn counter_counts() {
        let mut sim = sim_of(COUNTER, &EngineConfig::default());
        sim.poke("reset", Bits::from_u64(1, 1));
        sim.step(3);
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.step(7);
        assert_eq!(sim.peek("q").to_u64(), Some(6));
        assert_eq!(sim.cycle(), 10);
    }

    #[test]
    fn baseline_config_matches_default_behavior() {
        let mut a = sim_of(COUNTER, &EngineConfig::default());
        let mut b = sim_of(COUNTER, &EngineConfig::baseline());
        a.poke("reset", Bits::from_u64(0, 1));
        b.poke("reset", Bits::from_u64(0, 1));
        a.step(20);
        b.step(20);
        assert_eq!(a.peek("q"), b.peek("q"));
    }

    #[test]
    fn stop_halts_and_reports_code() {
        let src = "circuit S :\n  module S :\n    input clock : Clock\n    input reset : UInt<1>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    stop(clock, eq(r, UInt<4>(3)), 7)\n";
        let mut sim = sim_of(src, &EngineConfig::default());
        sim.poke("reset", Bits::from_u64(0, 1));
        let ran = sim.step(100);
        assert_eq!(sim.halted(), Some(7));
        assert!(ran < 100);
    }

    #[test]
    fn counters_accumulate() {
        let mut sim = sim_of(COUNTER, &EngineConfig::default());
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.step(5);
        let c = sim.counters();
        assert_eq!(c.cycles, 5);
        assert!(c.ops_evaluated >= 5);
        assert!(c.static_checks >= 5, "one commit check per reg per cycle");
    }
}
