//! A small testbench DSL over any [`Simulator`]: fluent poke / step /
//! expect with accumulated failure reporting.
//!
//! # Examples
//!
//! ```
//! use essent_sim::{testbench::Testbench, EngineConfig, EssentSim};
//!
//! let src = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";
//! let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src)?)?;
//! let netlist = essent_netlist::Netlist::from_circuit(&lowered)?;
//! let mut tb = Testbench::new(EssentSim::new(&netlist, &EngineConfig::default()));
//! tb.poke("reset", 1).step(2)
//!   .poke("reset", 0).step(5)
//!   .expect("q", 4)
//!   .step(1)
//!   .expect("q", 5);
//! tb.finish()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::engine::Simulator;
use essent_bits::Bits;
use std::error::Error;
use std::fmt;

/// Accumulated expectation failures from a [`Testbench`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestbenchError {
    pub failures: Vec<String>,
}

impl fmt::Display for TestbenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} expectation(s) failed:", self.failures.len())?;
        for failure in &self.failures {
            writeln!(f, "  {failure}")?;
        }
        Ok(())
    }
}

impl Error for TestbenchError {}

/// Fluent driver around a simulator. Failed expectations are recorded
/// (not panicked) so a whole scenario reports at once via
/// [`Testbench::finish`].
pub struct Testbench<S: Simulator> {
    sim: S,
    failures: Vec<String>,
}

impl<S: Simulator> Testbench<S> {
    /// Wraps a simulator.
    pub fn new(sim: S) -> Testbench<S> {
        Testbench {
            sim,
            failures: Vec::new(),
        }
    }

    /// Sets an input (value truncated to the signal's width).
    pub fn poke(&mut self, name: &str, value: u64) -> &mut Self {
        let width = self
            .sim
            .find(name)
            .map(|_| 64)
            .expect("poke of unknown signal");
        self.sim.poke(name, Bits::from_u64(value, width));
        self
    }

    /// Sets an input from a [`Bits`] value.
    pub fn poke_bits(&mut self, name: &str, value: Bits) -> &mut Self {
        self.sim.poke(name, value);
        self
    }

    /// Advances `n` cycles.
    pub fn step(&mut self, n: u64) -> &mut Self {
        self.sim.step(n);
        self
    }

    /// Records a failure unless `name` currently equals `expected`.
    pub fn expect(&mut self, name: &str, expected: u64) -> &mut Self {
        let got = self.sim.peek(name);
        if got.to_u64() != Some(expected) {
            self.failures.push(format!(
                "cycle {}: {} = {} (expected {})",
                self.sim.cycle(),
                name,
                got,
                expected
            ));
        }
        self
    }

    /// Runs until `name` equals `expected` or `max_cycles` elapse.
    pub fn wait_for(&mut self, name: &str, expected: u64, max_cycles: u64) -> &mut Self {
        for _ in 0..max_cycles {
            if self.sim.peek(name).to_u64() == Some(expected) {
                return self;
            }
            if self.sim.halted().is_some() {
                break;
            }
            self.sim.step(1);
        }
        if self.sim.peek(name).to_u64() != Some(expected) {
            self.failures.push(format!(
                "cycle {}: timed out waiting for {} == {expected}",
                self.sim.cycle(),
                name
            ));
        }
        self
    }

    /// The wrapped simulator.
    pub fn sim(&self) -> &S {
        &self.sim
    }

    /// Mutable access to the wrapped simulator.
    pub fn sim_mut(&mut self) -> &mut S {
        &mut self.sim
    }

    /// Returns `Ok` when every expectation held.
    ///
    /// # Errors
    ///
    /// Returns [`TestbenchError`] listing every failed expectation.
    pub fn finish(&self) -> Result<(), TestbenchError> {
        if self.failures.is_empty() {
            Ok(())
        } else {
            Err(TestbenchError {
                failures: self.failures.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, EssentSim};

    fn counter() -> essent_netlist::Netlist {
        let src = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        essent_netlist::Netlist::from_circuit(&lowered).unwrap()
    }

    #[test]
    fn fluent_scenario_passes() {
        let n = counter();
        let mut tb = Testbench::new(EssentSim::new(&n, &EngineConfig::default()));
        tb.poke("reset", 1)
            .step(2)
            .poke("reset", 0)
            .step(3)
            .expect("q", 2)
            .wait_for("q", 10, 20);
        tb.finish().unwrap();
    }

    #[test]
    fn failures_accumulate_with_context() {
        let n = counter();
        let mut tb = Testbench::new(EssentSim::new(&n, &EngineConfig::default()));
        tb.poke("reset", 0).step(3).expect("q", 99).expect("q", 2);
        let err = tb.finish().unwrap_err();
        assert_eq!(err.failures.len(), 1, "{err}");
        assert!(err.failures[0].contains("expected 99"));
    }

    #[test]
    fn wait_for_times_out() {
        let n = counter();
        let mut tb = Testbench::new(EssentSim::new(&n, &EngineConfig::default()));
        tb.poke("reset", 1).wait_for("q", 5, 10);
        assert!(tb.finish().is_err());
    }
}
