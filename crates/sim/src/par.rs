//! A parallel CCSS engine: partition-level parallelism over the acyclic
//! schedule.
//!
//! The acyclic partitioning that makes singular *sequential* schedules
//! possible also exposes parallelism — partitions at the same dependency
//! depth touch disjoint output slots and can evaluate concurrently. This
//! engine levelizes the partition DAG (including the elision ordering
//! edges) and sweeps it level by level with a worker pool; activation
//! flags become atomics, so the conditional-execution benefit of CCSS is
//! preserved: an inactive partition costs one relaxed atomic load.
//!
//! This is the direction of the follow-on research building on ESSENT
//! (thread-parallel simulation over replication-free partitionings); it
//! is not part of the DAC 2020 evaluation and is benchmarked separately.
//!
//! Memory-write elision is disabled here (concurrent in-partition writes
//! to a shared bank would race — see [`PlanOptions::elide_mem`]); register
//! elision is kept, since each register is written by exactly one
//! partition into a private slot and all readers are at strictly earlier
//! levels.
//!
//! Level barriers cost microseconds, so speedups appear only on designs
//! wide enough to fill each level with real work; tiny designs are slower
//! than [`EssentSim`](crate::EssentSim) — measure before adopting.
//!
//! # Cost-model level scheduling
//!
//! With [`EngineConfig::par_lpt`] (the default) the uniform level sweep
//! is replaced by a static **LPT bin-packing** schedule: each level's
//! partitions are packed into per-thread bins, heaviest first onto the
//! least-loaded bin, using a per-partition [`CostModel`] — profiled mean
//! eval ticks when an [`ActivityPrior`] is supplied
//! ([`ParEssentSim::new_with_prior`]), static single-word step counts
//! otherwise. Levels whose total cost cannot amortize a barrier run
//! *serially* on the main thread with no barrier round-trip at all. The
//! resulting [`LevelSchedule`] is a pure function of (levels, costs,
//! threads) and is independently audited by `essent-verify`
//! (F0402/F0403).

use crate::compile::{compile_plan, Block, Item};
use crate::engine::{delegate_simulator_basics, EngineConfig, Simulator};
use crate::machine::{self, Machine};
use crate::profile::{AtomicProfile, ProfileReport, ProfileWiring};
use crate::step1::{
    lower_tier1, run_tier1_raw, AtomicFlags, OutSpec, ProfAtomicFlags, Tier1Program,
};
use essent_bits::Bits;
use essent_core::partition::{partition, partition_with_prior, ActivityMergeParams, ActivityPrior};
use essent_core::plan::{extended_dag, CcssPlan, PlanOptions};
use essent_netlist::{Netlist, SignalId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

/// Per-partition cost estimates feeding the LPT packer, plus the
/// threshold below which a level is not worth a barrier round-trip.
///
/// Units are *approximately nanoseconds per simulated cycle*: measured
/// priors record expected eval time per cycle, and the static fallback
/// counts single-word steps (~1 ns each). The unit only weighs bins
/// against each other and against `serial_floor`, so the approximation
/// is harmless.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Estimated cost per scheduled partition (always ≥ 1).
    pub costs: Vec<u64>,
    /// Levels with total cost below this run serially on the main
    /// thread.
    pub serial_floor: u64,
}

/// A level's total work must be worth roughly a barrier wake-up
/// (single-digit microseconds) before fanning out pays.
const SERIAL_FLOOR: u64 = 3000;

impl CostModel {
    /// Builds the cost table for a plan: measured per-cycle eval cost
    /// where `prior` covers a partition's members, static step counts
    /// elsewhere.
    pub fn build(plan: &CcssPlan, blocks: &[Block], prior: Option<&ActivityPrior>) -> CostModel {
        let costs = plan
            .partitions
            .iter()
            .zip(blocks)
            .map(|(part, block)| {
                let measured: f64 = prior
                    .map(|pr| {
                        part.members
                            .iter()
                            .filter(|s| s.index() < pr.len())
                            .map(|s| pr.node_cost(s.index()))
                            .sum()
                    })
                    .unwrap_or(0.0);
                let cost = if measured > 0.0 {
                    measured.round() as u64
                } else {
                    block.items.iter().map(Item::step_count).sum::<usize>() as u64
                };
                cost.max(1)
            })
            .collect();
        CostModel {
            costs,
            serial_floor: SERIAL_FLOOR,
        }
    }
}

/// One dependency level's execution shape.
#[derive(Debug, Clone)]
pub struct LevelPlan {
    /// Run on the main thread without a barrier round-trip (`bins` then
    /// holds exactly one bin).
    pub serial: bool,
    /// Per-worker partition lists; worker `t` evaluates `bins[t]`.
    /// Workers beyond `bins.len()` idle at the barrier for this level.
    pub bins: Vec<Vec<u32>>,
}

/// The full static level schedule: an exact cover of the scheduled
/// partitions, level-faithful, built by LPT packing over a [`CostModel`].
#[derive(Debug, Clone)]
pub struct LevelSchedule {
    pub levels: Vec<LevelPlan>,
}

impl LevelSchedule {
    /// Packs each level's partitions into at most `threads` bins:
    /// heaviest partition first, each onto the currently least-loaded
    /// bin (ties to the lowest bin index; cost ties broken by schedule
    /// index — the build is deterministic). Levels below the cost
    /// model's serial floor, or with nothing to share, fall back to one
    /// serial bin.
    pub fn build(levels: &[Vec<u32>], cost: &CostModel, threads: usize) -> LevelSchedule {
        let levels = levels
            .iter()
            .map(|level| {
                let total: u64 = level.iter().map(|&s| cost.costs[s as usize]).sum();
                let nbins = threads.min(level.len()).max(1);
                if nbins < 2 || total < cost.serial_floor {
                    return LevelPlan {
                        serial: true,
                        bins: vec![level.clone()],
                    };
                }
                let mut order = level.clone();
                order.sort_by_key(|&s| (std::cmp::Reverse(cost.costs[s as usize]), s));
                let mut bins = vec![Vec::new(); nbins];
                let mut load = vec![0u64; nbins];
                for s in order {
                    let t = (0..nbins)
                        .min_by_key(|&t| (load[t], t))
                        .expect("nbins >= 1");
                    load[t] += cost.costs[s as usize];
                    bins[t].push(s);
                }
                LevelPlan {
                    serial: false,
                    bins,
                }
            })
            .collect();
        LevelSchedule { levels }
    }
}

/// Groups a plan's scheduled partitions by dependency level: the
/// partition-level edges are combinational triggers (always forward in
/// schedule order) plus elision ordering (reader -> writer), and a
/// partition's level is one past its deepest predecessor.
pub fn plan_levels(plan: &CcssPlan) -> Vec<Vec<u32>> {
    let np = plan.partitions.len();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); np];
    for (sched, part) in plan.partitions.iter().enumerate() {
        for o in &part.outputs {
            for &c in &o.consumers {
                if (c as usize) > sched {
                    preds[c as usize].push(sched as u32);
                }
            }
        }
        for &ri in &part.elided_regs {
            for &reader in &plan.reg_plans[ri].wake_on_change {
                if (reader as usize) != sched {
                    preds[sched].push(reader);
                }
            }
        }
    }
    let mut level_of = vec![0u32; np];
    // Scheduled order is a topological order of this graph.
    for sched in 0..np {
        let lvl = preds[sched]
            .iter()
            .map(|&p| level_of[p as usize] + 1)
            .max()
            .unwrap_or(0);
        level_of[sched] = lvl;
    }
    let max_level = level_of.iter().copied().max().unwrap_or(0) as usize;
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
    for (sched, &lvl) in level_of.iter().enumerate() {
        levels[lvl as usize].push(sched as u32);
    }
    levels
}

/// Shared arena pointer that workers may dereference under the engine's
/// disjointness discipline.
#[derive(Clone, Copy)]
struct ArenaPtr(*mut u64);
// SAFETY: workers only touch disjoint slots within a level (each signal
// is written by exactly one partition; reads target earlier levels or
// state), enforced by the level barriers and proven statically by the
// `essent-verify` footprint layer (R0502/R0503).
unsafe impl Send for ArenaPtr {}
// SAFETY: same disjointness discipline as the `Send` impl above —
// concurrent `&ArenaPtr` access only ever dereferences level-disjoint
// word ranges (R0502/R0503).
unsafe impl Sync for ArenaPtr {}

impl ArenaPtr {
    /// Accessor (closures must capture the Sync wrapper, not the raw
    /// pointer field — Rust 2021 captures precise paths).
    #[inline]
    fn get(&self) -> *mut u64 {
        self.0
    }
}

/// One partition's flattened trigger table entry.
struct PartTriggers {
    /// (arena offset, words, old-value offset) per output.
    outs: Vec<(u32, u16, u32)>,
    /// (consumer range) per output into `consumers`.
    cons: Vec<(u32, u32)>,
    consumers: Vec<u32>,
    /// Elided registers: (next offset, out offset, words, register plan
    /// index, wake list).
    regs: Vec<(u32, u32, u16, u32, Vec<u32>)>,
}

/// Thread-parallel CCSS simulator.
pub struct ParEssentSim {
    machine: Machine,
    plan: CcssPlan,
    blocks: Vec<Block>,
    /// Word-specialized programs per partition (`config.tier1`); fused
    /// trigger writes go through the atomic flag sink.
    programs: Option<Vec<Tier1Program>>,
    flags: Vec<AtomicBool>,
    /// Scheduled partition indices grouped by dependency level.
    levels: Vec<Vec<u32>>,
    /// Static per-thread bin schedule ([`EngineConfig::par_lpt`]).
    sched: LevelSchedule,
    /// Use `sched` (LPT bins + serial fallback) instead of the dynamic
    /// cursor sweep over `levels`.
    lpt: bool,
    part_triggers: Vec<PartTriggers>,
    /// Per-partition private snapshot storage, indexed by the offsets in
    /// `part_triggers[p].outs`.
    old_vals: Vec<u64>,
    input_wake: HashMap<SignalId, Vec<u32>>,
    commit_regs: Vec<usize>,
    threads: usize,
    /// Telemetry counters ([`EngineConfig::profile`]); atomic because
    /// workers update them concurrently through `&self`.
    profile: Option<Box<AtomicProfile>>,
    /// Shadow memory for the dynamic race oracle
    /// ([`EngineConfig::race_sanitizer`]).
    #[cfg(feature = "race-sanitizer")]
    shadow: Option<Box<crate::sanitizer::ShadowMem>>,
}

impl ParEssentSim {
    /// Partitions the design and builds the parallel simulator with
    /// `threads` workers (0 = available parallelism).
    pub fn new(netlist: &Netlist, config: &EngineConfig, threads: usize) -> ParEssentSim {
        ParEssentSim::new_shared(Arc::new(netlist.clone()), config, threads)
    }

    /// [`ParEssentSim::new`] with a measured activity prior: the
    /// partitioning gains the profile-guided merge phase and the LPT
    /// bins pack by measured cost instead of static step counts.
    pub fn new_with_prior(
        netlist: &Netlist,
        config: &EngineConfig,
        threads: usize,
        prior: &ActivityPrior,
    ) -> ParEssentSim {
        ParEssentSim::new_shared_with_prior(Arc::new(netlist.clone()), config, threads, Some(prior))
    }

    /// [`ParEssentSim::new`] over an already-shared netlist (no deep
    /// clone).
    pub fn new_shared(
        netlist: Arc<Netlist>,
        config: &EngineConfig,
        threads: usize,
    ) -> ParEssentSim {
        ParEssentSim::new_shared_with_prior(netlist, config, threads, None)
    }

    /// The general constructor behind [`ParEssentSim::new_shared`] and
    /// [`ParEssentSim::new_with_prior`].
    pub fn new_shared_with_prior(
        netlist: Arc<Netlist>,
        config: &EngineConfig,
        threads: usize,
        prior: Option<&ActivityPrior>,
    ) -> ParEssentSim {
        let (dag, writes) = extended_dag(&netlist);
        let parts = match prior {
            Some(pr) => {
                partition_with_prior(
                    &dag,
                    config.c_p,
                    pr,
                    &ActivityMergeParams::for_cp(config.c_p),
                )
                .0
            }
            None => partition(&dag, config.c_p),
        };
        let plan = CcssPlan::from_partitioning(
            &netlist,
            &dag,
            &writes,
            &parts,
            PlanOptions {
                elide_state: config.elide_state,
                elide_mem: false,
            },
        );
        let mut machine = Machine::from_arc(Arc::clone(&netlist));
        machine.capture_printf = config.capture_printf;
        let blocks = compile_plan(&netlist, &machine.layout, &plan, config);

        let fuse = config.tier1 && config.fuse_triggers && config.trigger_push;
        let programs: Option<Vec<Tier1Program>> = config.tier1.then(|| {
            plan.partitions
                .iter()
                .zip(&blocks)
                .map(|(part, block)| {
                    let outs: Vec<OutSpec> = part
                        .outputs
                        .iter()
                        .map(|o| OutSpec {
                            sig: o.signal,
                            consumers: o.consumers.clone(),
                        })
                        .collect();
                    lower_tier1(&netlist, block, &outs, fuse)
                })
                .collect()
        });

        let np = plan.partitions.len();
        let levels = plan_levels(&plan);

        // Flattened per-partition trigger + elided-register tables,
        // covering only the outputs the tier did not fuse.
        let mut old_vals = Vec::new();
        let mut part_triggers = Vec::with_capacity(np);
        for (sched, part) in plan.partitions.iter().enumerate() {
            let mut outs = Vec::new();
            let mut cons = Vec::new();
            let mut consumers = Vec::new();
            for (oi, o) in part.outputs.iter().enumerate() {
                if let Some(progs) = &programs {
                    if !progs[sched].unfused.contains(&oi) {
                        continue;
                    }
                }
                let off = machine.layout.offset(o.signal) as u32;
                let w = machine.layout.words(o.signal) as u16;
                outs.push((off, w, old_vals.len() as u32));
                old_vals.extend(std::iter::repeat_n(0, w as usize));
                let start = consumers.len() as u32;
                consumers.extend(o.consumers.iter().copied());
                cons.push((start, consumers.len() as u32));
            }
            let regs = part
                .elided_regs
                .iter()
                .map(|&ri| {
                    let reg = &netlist.regs()[ri];
                    (
                        machine.layout.offset(reg.next) as u32,
                        machine.layout.offset(reg.out) as u32,
                        machine.layout.words(reg.out) as u16,
                        ri as u32,
                        plan.reg_plans[ri].wake_on_change.clone(),
                    )
                })
                .collect();
            part_triggers.push(PartTriggers {
                outs,
                cons,
                consumers,
                regs,
            });
        }

        let input_wake = plan
            .input_wakes
            .iter()
            .map(|(sig, wakes)| (*sig, wakes.clone()))
            .collect();
        let commit_regs = plan
            .reg_plans
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.elided)
            .map(|(i, _)| i)
            .collect();
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let cost = CostModel::build(&plan, &blocks, prior);
        let sched = LevelSchedule::build(&levels, &cost, threads);
        let profile = config
            .profile
            .then(|| Box::new(AtomicProfile::new(ProfileWiring::for_plan(&netlist, &plan))));
        #[cfg(feature = "race-sanitizer")]
        let total_words = machine.layout.total_words();
        ParEssentSim {
            machine,
            plan,
            blocks,
            programs,
            flags: (0..np).map(|_| AtomicBool::new(true)).collect(),
            levels,
            sched,
            lpt: config.par_lpt,
            part_triggers,
            old_vals,
            input_wake,
            commit_regs,
            threads,
            profile,
            #[cfg(feature = "race-sanitizer")]
            shadow: config
                .race_sanitizer
                .then(|| Box::new(crate::sanitizer::ShadowMem::new(total_words))),
        }
    }

    /// Number of dependency levels in the parallel schedule.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Borrow of the underlying machine (testing, activity profiling).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.plan.partitions.len()
    }

    /// Worker routine: evaluate one partition (flag already claimed).
    ///
    /// # Safety
    ///
    /// Caller must guarantee level-disjointness: no partition
    /// co-scheduled with `sched` in the current dependency level may
    /// write any arena word this partition reads or writes. That is
    /// exactly the property `essent-verify`'s footprint layer proves
    /// statically per design (`R0501`–`R0504`), and that the
    /// `race-sanitizer` feature checks dynamically.
    unsafe fn eval_partition(
        &self,
        sched: usize,
        arena: ArenaPtr,
        mems: &[crate::machine::MemBank],
        old_vals: *mut u64,
        ops: &mut u64,
        prof: Option<&AtomicProfile>,
    ) {
        let tr = &self.part_triggers[sched];
        // Snapshot outputs.
        for &(off, w, old) in &tr.outs {
            #[cfg(feature = "race-sanitizer")]
            crate::sanitizer::note_read(off, w as u32);
            // SAFETY: `off..off+w` are this partition's own output
            // slots (no co-leveled writer per R0502/R0503); the `old`
            // range is this partition's private snapshot storage.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    arena.get().add(off as usize),
                    old_vals.add(old as usize),
                    w as usize,
                );
            }
        }
        match &self.programs {
            Some(progs) => {
                // Fused trigger writes go straight to the atomic flags;
                // this engine does not track dynamic-check counts.
                let mut dynamic = 0u64;
                match prof {
                    // SAFETY: the tier-1 program's footprint equals the
                    // generic block's (R0501), which the footprint
                    // layer proved level-disjoint and in-bounds
                    // (R0502–R0504); banks are read-only here.
                    Some(p) => unsafe {
                        run_tier1_raw(
                            &progs[sched],
                            arena.get(),
                            mems,
                            &ProfAtomicFlags {
                                flags: &self.flags,
                                caused: p.caused_cell(sched),
                                woke: p.woke_output_cells(),
                            },
                            ops,
                            &mut dynamic,
                        )
                    },
                    // SAFETY: as above (R0501–R0504 footprint proof).
                    None => unsafe {
                        run_tier1_raw(
                            &progs[sched],
                            arena.get(),
                            mems,
                            &AtomicFlags(&self.flags),
                            ops,
                            &mut dynamic,
                        )
                    },
                }
            }
            // SAFETY: the generic block's footprint is exactly what the
            // footprint layer analyzed and proved level-disjoint and
            // in-bounds (R0502–R0504); banks are read-only here.
            None => unsafe {
                machine::run_items_raw(&self.blocks[sched].items, arena.get(), mems, ops)
            },
        }
        // Elided registers: private slots, single writer.
        for (next_off, out_off, w, ri, wake) in &tr.regs {
            // SAFETY: the elided register's `next` and `out` slots are
            // in this partition's footprint (counted by the footprint
            // layer's engine-access pass), hence level-exclusive.
            let changed = unsafe {
                machine::commit_state_raw(
                    arena.get(),
                    *next_off as usize,
                    *out_off as usize,
                    *w as usize,
                )
            };
            if changed {
                for &c in wake {
                    self.flags[c as usize].store(true, Ordering::Relaxed);
                    if let Some(p) = prof {
                        p.wake_state_reg(*ri as usize, c);
                    }
                }
            }
        }
        // Output triggers.
        for (oi, &(off, w, old)) in tr.outs.iter().enumerate() {
            #[cfg(feature = "race-sanitizer")]
            crate::sanitizer::note_read(off, w as u32);
            // SAFETY: output slots are written only by this partition
            // within the level (R0502/R0503); the snapshot range is
            // private. Both ranges are in-bounds by construction.
            let (cur, snap) = unsafe {
                (
                    std::slice::from_raw_parts(arena.get().add(off as usize), w as usize),
                    std::slice::from_raw_parts(old_vals.add(old as usize), w as usize),
                )
            };
            if cur != snap {
                let (s, e) = tr.cons[oi];
                for ci in s..e {
                    self.flags[tr.consumers[ci as usize] as usize].store(true, Ordering::Relaxed);
                    if let Some(p) = prof {
                        p.wake_output(sched, tr.consumers[ci as usize]);
                    }
                }
            }
        }
    }

    fn run_cycles(&mut self, n: u64) -> u64 {
        let threads = self.threads;
        // Raw views of the machine's storage for the scope's duration.
        // SAFETY invariants (upheld below): within a level, every arena
        // slot is written by at most one worker (unique partition
        // membership) and read slots were finalized at earlier levels or
        // are state; memory banks are only *read* by workers and only
        // *written* in the serial phase while workers are parked at the
        // cycle barrier.
        let arena = ArenaPtr(self.machine.arena.as_mut_ptr());
        struct MemsPtr(*mut crate::machine::MemBank, usize);
        // SAFETY: workers only *read* the banks during parallel levels;
        // the banks are written exclusively in the serial phase while
        // every worker is parked at the cycle barrier.
        unsafe impl Send for MemsPtr {}
        // SAFETY: same read-only-during-levels discipline as `Send`.
        unsafe impl Sync for MemsPtr {}
        impl MemsPtr {
            #[inline]
            fn get(&self) -> (*mut crate::machine::MemBank, usize) {
                (self.0, self.1)
            }
        }
        let mems = MemsPtr(self.machine.mems.as_mut_ptr(), self.machine.mems.len());
        struct OldPtr(*mut u64);
        // SAFETY: the snapshot buffer is partitioned by construction —
        // each partition owns a private, pre-assigned range (the `old`
        // offsets in `part_triggers`), so workers never alias.
        unsafe impl Send for OldPtr {}
        // SAFETY: same private-per-partition ranges as the `Send` impl.
        unsafe impl Sync for OldPtr {}
        impl OldPtr {
            #[inline]
            fn get(&self) -> *mut u64 {
                self.0
            }
        }
        let old_ptr = OldPtr(self.old_vals.as_mut_ptr());

        let barrier = Barrier::new(threads);
        let cursor = AtomicUsize::new(0);
        let level_idx = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let total_ops = AtomicUsize::new(0);

        // Serial-phase state kept in locals (merged back after the scope).
        let netlist = self.machine.netlist.clone();
        let layout = self.machine.layout.clone();
        let capture_printf = self.machine.capture_printf;
        let mut halted = self.machine.halted;
        let mut printf_log: Vec<String> = Vec::new();
        let mut static_checks = 0u64;
        let mut ran = 0u64;

        let this = &*self;
        // Claim-and-evaluate for one scheduled partition; shared by the
        // parallel workers and the serial-level fast path.
        let eval_claimed = |sched: usize, banks: &[crate::machine::MemBank], ops: &mut u64| {
            if this.flags[sched].swap(false, Ordering::Relaxed) {
                // Record this thread's arena accesses as `sched` for the
                // duration of the evaluation (no-op without the feature).
                #[cfg(feature = "race-sanitizer")]
                let _sanitizer_scope = this
                    .shadow
                    .as_deref()
                    .map(|s| crate::sanitizer::enter(s, sched as u32));
                match this.profile.as_deref() {
                    Some(p) => {
                        let t0 = p.eval_begin(sched);
                        let mut part_ops = 0u64;
                        // SAFETY: level barriers + disjoint slots.
                        unsafe {
                            this.eval_partition(
                                sched,
                                arena,
                                banks,
                                old_ptr.get(),
                                &mut part_ops,
                                Some(p),
                            )
                        };
                        p.eval_end(sched, t0, part_ops);
                        *ops += part_ops;
                    }
                    // SAFETY: level barriers + disjoint slots.
                    None => unsafe {
                        this.eval_partition(sched, arena, banks, old_ptr.get(), ops, None)
                    },
                }
            } else if let Some(p) = this.profile.as_deref() {
                p.unit_skip(sched);
            }
        };
        // Declared before the scope so spawned threads can borrow it for
        // the scope's full lifetime. Worker 0 is the main thread.
        let worker = |tid: usize| -> u64 {
            let mut ops = 0u64;
            loop {
                barrier.wait();
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let lvl = level_idx.load(Ordering::Acquire);
                let (mptr, mlen) = mems.get();
                // SAFETY: read-only view; banks are written only while
                // workers are parked (see above).
                let banks = unsafe { std::slice::from_raw_parts(mptr, mlen) };
                if this.lpt {
                    // Static LPT bins: worker `tid` owns bin `tid`.
                    if let Some(bin) = this.sched.levels[lvl].bins.get(tid) {
                        for &s in bin {
                            eval_claimed(s as usize, banks, &mut ops);
                        }
                    }
                } else {
                    // Uniform sweep: dynamic work-stealing via the cursor.
                    let level = &this.levels[lvl];
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= level.len() {
                            break;
                        }
                        eval_claimed(level[i] as usize, banks, &mut ops);
                    }
                }
                barrier.wait();
                if tid == 0 {
                    return ops;
                }
            }
            ops
        };
        std::thread::scope(|scope| {
            let worker = &worker;
            let handles: Vec<_> = (1..threads)
                .map(|t| scope.spawn(move || worker(t)))
                .collect();

            'cycles: for _ in 0..n {
                if halted.is_some() {
                    break 'cycles;
                }
                if let Some(p) = this.profile.as_deref() {
                    p.begin_cycle();
                }
                for lvl in 0..this.levels.len() {
                    // New dependency level: all prior sanitizer tags go
                    // stale (cross-level sharing is legal).
                    #[cfg(feature = "race-sanitizer")]
                    if let Some(s) = this.shadow.as_deref() {
                        s.next_epoch();
                    }
                    if this.lpt && this.sched.levels[lvl].serial {
                        // Too little work to amortize a barrier: run the
                        // level inline while workers stay parked.
                        let (mptr, mlen) = mems.get();
                        // SAFETY: workers are parked at the cycle
                        // barrier; the main thread has exclusive use.
                        let banks = unsafe { std::slice::from_raw_parts(mptr, mlen) };
                        let mut ops = 0u64;
                        for &s in &this.sched.levels[lvl].bins[0] {
                            eval_claimed(s as usize, banks, &mut ops);
                        }
                        total_ops.fetch_add(ops as usize, Ordering::Relaxed);
                        continue;
                    }
                    level_idx.store(lvl, Ordering::Release);
                    cursor.store(0, Ordering::Release);
                    let ops = worker(0);
                    total_ops.fetch_add(ops as usize, Ordering::Relaxed);
                }
                // Serial phase (workers parked at the cycle barrier).
                // Side effects:
                for p in netlist.printfs() {
                    // SAFETY: workers are parked at the cycle barrier —
                    // the main thread has exclusive arena access, and
                    // layout offsets are in-bounds by construction.
                    let en = unsafe { *arena.get().add(layout.offset(p.en)) } & 1 == 1;
                    if en && capture_printf {
                        let args: Vec<Bits> = p
                            .args
                            .iter()
                            .map(|&a| {
                                let w = layout.words(a);
                                // SAFETY: exclusive serial-phase access,
                                // in-bounds layout range (as above).
                                let slice = unsafe {
                                    std::slice::from_raw_parts(arena.get().add(layout.offset(a)), w)
                                };
                                Bits::from_limbs(slice.to_vec(), netlist.signal(a).width)
                            })
                            .collect();
                        printf_log.push(essent_netlist::interp::format_printf(&p.fmt, &args));
                    }
                }
                for st in netlist.stops() {
                    // SAFETY: exclusive serial-phase access, in-bounds
                    // layout offset (as above).
                    let en = unsafe { *arena.get().add(layout.offset(st.en)) } & 1 == 1;
                    if en && halted.is_none() {
                        halted = Some(st.code);
                    }
                }
                // Memory writes (all serial in this engine), then register
                // commits.
                for m in 0..netlist.mems().len() {
                    for w in 0..netlist.mems()[m].writers.len() {
                        static_checks += 1;
                        // SAFETY: exclusive access during the serial phase.
                        let bank = unsafe { &mut *mems.get().0.add(m) };
                        // SAFETY: exclusive serial-phase access; `m`/`w`
                        // index real mems/writers, layout is in-bounds.
                        let changed = unsafe {
                            machine::run_mem_write_raw(&netlist, &layout, arena.get(), bank, m, w)
                        };
                        if changed {
                            for (wi, wp) in this.plan.mem_write_plans.iter().enumerate() {
                                if wp.mem.index() == m && wp.writer == w {
                                    for &c in &wp.wake_on_change {
                                        this.flags[c as usize].store(true, Ordering::Relaxed);
                                        if let Some(p) = this.profile.as_deref() {
                                            p.wake_state_mem(wi, c);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                for &ri in &this.commit_regs {
                    static_checks += 1;
                    let reg = &netlist.regs()[ri];
                    // SAFETY: exclusive serial-phase access; `next` and
                    // `out` are distinct in-bounds layout ranges.
                    let changed = unsafe {
                        machine::commit_state_raw(
                            arena.get(),
                            layout.offset(reg.next),
                            layout.offset(reg.out),
                            layout.words(reg.out),
                        )
                    };
                    if changed {
                        for &c in &this.plan.reg_plans[ri].wake_on_change {
                            this.flags[c as usize].store(true, Ordering::Relaxed);
                            if let Some(p) = this.profile.as_deref() {
                                p.wake_state_reg(ri, c);
                            }
                        }
                    }
                }
                ran += 1;
            }
            stop.store(true, Ordering::Release);
            barrier.wait();
            for h in handles {
                total_ops.fetch_add(h.join().expect("worker join") as usize, Ordering::Relaxed);
            }
        });

        self.machine.counters.ops_evaluated += total_ops.load(Ordering::Relaxed) as u64;
        self.machine.counters.static_checks += static_checks;
        self.machine.counters.cycles += ran;
        self.machine.cycle += ran;
        self.machine.halted = halted;
        self.machine.printf_log.extend(printf_log);
        ran
    }
}

impl Simulator for ParEssentSim {
    fn poke(&mut self, name: &str, value: Bits) {
        let id = self.machine.netlist.expect_signal(name);
        assert!(
            matches!(
                self.machine.netlist.signal(id).def,
                essent_netlist::SignalDef::Input
            ),
            "`{name}` is not an input"
        );
        if self.machine.set_value(id, &value) {
            if let Some(wakes) = self.input_wake.get(&id) {
                for &c in wakes {
                    self.flags[c as usize].store(true, Ordering::Relaxed);
                    if let Some(p) = self.profile.as_deref() {
                        p.wake_input(id, c);
                    }
                }
            }
        }
    }

    fn step(&mut self, n: u64) -> u64 {
        if self.machine.halted.is_some() {
            return 0;
        }
        self.run_cycles(n)
    }

    fn engine_name(&self) -> &'static str {
        "essent-parallel"
    }

    fn profile_report(&self) -> Option<ProfileReport> {
        self.profile.as_ref().map(|p| p.report("essent-parallel"))
    }

    delegate_simulator_basics!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EssentSim, FullCycleSim};

    fn netlist_of(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    const COUNTER: &str = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";

    #[test]
    fn parallel_counter_counts() {
        let n = netlist_of(COUNTER);
        for threads in [1, 2, 4] {
            let mut sim = ParEssentSim::new(&n, &EngineConfig::default(), threads);
            sim.poke("reset", Bits::from_u64(0, 1));
            sim.step(10);
            assert_eq!(sim.peek("q").to_u64(), Some(9), "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_sequential_on_wide_design() {
        // Many independent register pipelines: real level-parallel work.
        let mut body = String::new();
        use std::fmt::Write;
        for i in 0..16 {
            let _ = writeln!(body, "    reg a{i} : UInt<16>, clock");
            let _ = writeln!(body, "    reg b{i} : UInt<16>, clock");
            let _ = writeln!(body, "    a{i} <= bits(add(x, UInt<16>({i})), 15, 0)");
            let _ = writeln!(
                body,
                "    b{i} <= xor(a{i}, bits(mul(a{i}, UInt<8>(37)), 15, 0))"
            );
        }
        let mut xorall = String::from("b0");
        for i in 1..16 {
            xorall = format!("xor({xorall}, b{i})");
        }
        let _ = writeln!(body, "    o <= {xorall}");
        let src = format!(
            "circuit W :\n  module W :\n    input clock : Clock\n    input x : UInt<16>\n    output o : UInt<16>\n{body}"
        );
        let n = netlist_of(&src);
        let mut par = ParEssentSim::new(
            &n,
            &EngineConfig {
                c_p: 2,
                ..EngineConfig::default()
            },
            4,
        );
        let mut seq = EssentSim::new(
            &n,
            &EngineConfig {
                c_p: 2,
                ..EngineConfig::default()
            },
        );
        let mut full = FullCycleSim::new(&n, &EngineConfig::default());
        for cycle in 0..60u64 {
            let x = Bits::from_u64((cycle * 2654435761) & 0xffff, 16);
            par.poke("x", x.clone());
            seq.poke("x", x.clone());
            full.poke("x", x);
            par.step(1);
            seq.step(1);
            full.step(1);
            assert_eq!(par.peek("o"), seq.peek("o"), "cycle {cycle}");
            assert_eq!(par.peek("o"), full.peek("o"), "cycle {cycle}");
        }
    }

    #[test]
    fn parallel_respects_stop() {
        let src = "circuit S :\n  module S :\n    input clock : Clock\n    input reset : UInt<1>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    stop(clock, eq(r, UInt<4>(5)), 9)\n";
        let n = netlist_of(src);
        let mut sim = ParEssentSim::new(&n, &EngineConfig::default(), 2);
        sim.poke("reset", Bits::from_u64(0, 1));
        let ran = sim.step(100);
        assert_eq!(sim.halted(), Some(9));
        assert!(ran < 100);
    }

    #[test]
    fn levels_respect_dependencies() {
        let n = netlist_of(COUNTER);
        let sim = ParEssentSim::new(
            &n,
            &EngineConfig {
                c_p: 1,
                ..EngineConfig::default()
            },
            1,
        );
        assert!(sim.level_count() >= 1);
        assert_eq!(
            sim.levels.iter().map(Vec::len).sum::<usize>(),
            sim.partition_count()
        );
    }
}
