//! A parallel CCSS engine: partition-level parallelism over the acyclic
//! schedule.
//!
//! The acyclic partitioning that makes singular *sequential* schedules
//! possible also exposes parallelism — partitions at the same dependency
//! depth touch disjoint output slots and can evaluate concurrently. This
//! engine levelizes the partition DAG (including the elision ordering
//! edges) and sweeps it level by level with a worker pool; activation
//! flags become atomics, so the conditional-execution benefit of CCSS is
//! preserved: an inactive partition costs one relaxed atomic load.
//!
//! This is the direction of the follow-on research building on ESSENT
//! (thread-parallel simulation over replication-free partitionings); it
//! is not part of the DAC 2020 evaluation and is benchmarked separately.
//!
//! Memory-write elision is disabled here (concurrent in-partition writes
//! to a shared bank would race — see [`PlanOptions::elide_mem`]); register
//! elision is kept, since each register is written by exactly one
//! partition into a private slot and all readers are at strictly earlier
//! levels.
//!
//! Level barriers cost microseconds, so speedups appear only on designs
//! wide enough to fill each level with real work; tiny designs are slower
//! than [`EssentSim`](crate::EssentSim) — measure before adopting.
//!
//! # Cost-model level scheduling
//!
//! With [`EngineConfig::par_lpt`] (the default) the uniform level sweep
//! is replaced by a static **LPT bin-packing** schedule: each level's
//! partitions are packed into per-thread bins, heaviest first onto the
//! least-loaded bin, using a per-partition [`CostModel`] — profiled mean
//! eval ticks when an [`ActivityPrior`] is supplied
//! ([`ParEssentSim::new_with_prior`]), static single-word step counts
//! otherwise. Levels whose total cost cannot amortize a barrier run
//! *serially* on the main thread with no barrier round-trip at all. The
//! resulting [`LevelSchedule`] is a pure function of (levels, costs,
//! threads) and is independently audited by `essent-verify`
//! (F0402/F0403).

use crate::compile::{compile_plan, Block, Item};
use crate::engine::{delegate_simulator_basics, EngineConfig, Simulator};
use crate::jit;
use crate::machine::{self, Machine};
use crate::profile::{AtomicProfile, ProfileReport, ProfileWiring};
use crate::step1::{
    lower_tier1, run_tier1_raw, AtomicFlags, OutSpec, ProfAtomicFlags, Tier1Program,
};
use essent_bits::Bits;
use essent_core::depgraph::{synthesize_dataflow, DataflowSchedule, DepGraph};
use essent_core::partition::{partition, partition_with_prior, ActivityMergeParams, ActivityPrior};
use essent_core::plan::{extended_dag, CcssPlan, PlanOptions};
use essent_netlist::{Netlist, SignalDef, SignalId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

// The runtime's level derivation lives in `essent_core::plan` (shared
// with the LPT packer and the bench tooling); re-exported so existing
// `essent_sim::par::plan_levels` users keep working. `essent-verify`
// keeps its own independent re-derivation.
pub use essent_core::plan::plan_levels;

/// Per-partition cost estimates feeding the LPT packer, plus the
/// threshold below which a level is not worth a barrier round-trip.
///
/// Units are *approximately nanoseconds per simulated cycle*: measured
/// priors record expected eval time per cycle, and the static fallback
/// counts single-word steps (~1 ns each). The unit only weighs bins
/// against each other and against `serial_floor`, so the approximation
/// is harmless.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Estimated cost per scheduled partition (always ≥ 1).
    pub costs: Vec<u64>,
    /// Levels with total cost below this run serially on the main
    /// thread.
    pub serial_floor: u64,
}

/// A level's total work must be worth roughly a barrier wake-up
/// (single-digit microseconds) before fanning out pays.
const SERIAL_FLOOR: u64 = 3000;

impl CostModel {
    /// Builds the cost table for a plan: measured per-cycle eval cost
    /// where `prior` covers a partition's members, static step counts
    /// elsewhere.
    pub fn build(plan: &CcssPlan, blocks: &[Block], prior: Option<&ActivityPrior>) -> CostModel {
        let costs = plan
            .partitions
            .iter()
            .zip(blocks)
            .map(|(part, block)| {
                let measured: f64 = prior
                    .map(|pr| {
                        part.members
                            .iter()
                            .filter(|s| s.index() < pr.len())
                            .map(|s| pr.node_cost(s.index()))
                            .sum()
                    })
                    .unwrap_or(0.0);
                let cost = if measured > 0.0 {
                    measured.round() as u64
                } else {
                    block.items.iter().map(Item::step_count).sum::<usize>() as u64
                };
                cost.max(1)
            })
            .collect();
        CostModel {
            costs,
            serial_floor: SERIAL_FLOOR,
        }
    }
}

/// One dependency level's execution shape.
#[derive(Debug, Clone)]
pub struct LevelPlan {
    /// Run on the main thread without a barrier round-trip (`bins` then
    /// holds exactly one bin).
    pub serial: bool,
    /// Per-worker partition lists; worker `t` evaluates `bins[t]`.
    /// Workers beyond `bins.len()` idle at the barrier for this level.
    pub bins: Vec<Vec<u32>>,
}

/// The full static level schedule: an exact cover of the scheduled
/// partitions, level-faithful, built by LPT packing over a [`CostModel`].
#[derive(Debug, Clone)]
pub struct LevelSchedule {
    pub levels: Vec<LevelPlan>,
}

impl LevelSchedule {
    /// Packs each level's partitions into at most `threads` bins:
    /// heaviest partition first, each onto the currently least-loaded
    /// bin (ties to the lowest bin index; cost ties broken by schedule
    /// index — the build is deterministic). Levels below the cost
    /// model's serial floor, or with nothing to share, fall back to one
    /// serial bin.
    pub fn build(levels: &[Vec<u32>], cost: &CostModel, threads: usize) -> LevelSchedule {
        let levels = levels
            .iter()
            .map(|level| {
                let total: u64 = level.iter().map(|&s| cost.costs[s as usize]).sum();
                let nbins = threads.min(level.len()).max(1);
                if nbins < 2 || total < cost.serial_floor {
                    return LevelPlan {
                        serial: true,
                        bins: vec![level.clone()],
                    };
                }
                let mut order = level.clone();
                order.sort_by_key(|&s| (std::cmp::Reverse(cost.costs[s as usize]), s));
                let mut bins = vec![Vec::new(); nbins];
                let mut load = vec![0u64; nbins];
                for s in order {
                    let t = (0..nbins)
                        .min_by_key(|&t| (load[t], t))
                        .expect("nbins >= 1");
                    load[t] += cost.costs[s as usize];
                    bins[t].push(s);
                }
                LevelPlan {
                    serial: false,
                    bins,
                }
            })
            .collect();
        LevelSchedule { levels }
    }
}

/// Shared arena pointer that workers may dereference under the engine's
/// disjointness discipline.
#[derive(Clone, Copy)]
struct ArenaPtr(*mut u64);
// SAFETY: workers only touch disjoint slots while running concurrently
// (each signal is written by exactly one partition; reads target
// finished producers or state), enforced by the level barriers or the
// dataflow wait protocol and proven statically by the `essent-verify`
// footprint layer (R0502/R0503) and dependence-cover layer (S0601).
unsafe impl Send for ArenaPtr {}
// SAFETY: same disjointness discipline as the `Send` impl above —
// concurrent `&ArenaPtr` access only ever dereferences
// schedule-disjoint word ranges (R0502/R0503, S0601).
unsafe impl Sync for ArenaPtr {}

impl ArenaPtr {
    /// Accessor (closures must capture the Sync wrapper, not the raw
    /// pointer field — Rust 2021 captures precise paths).
    #[inline]
    fn get(&self) -> *mut u64 {
        self.0
    }
}

/// Shared memory-bank pointer for the worker closures.
struct MemsPtr(*mut crate::machine::MemBank, usize);
// SAFETY: workers only *read* the banks during partition evaluation;
// the banks are written exclusively in the serial phase, which runs
// while workers are parked at the cycle barrier (level sweep) or —
// under the dataflow schedule — concurrently only with partitions whose
// exemption proof includes bank-read disjointness (S0602).
unsafe impl Send for MemsPtr {}
// SAFETY: same read-only-during-evaluation discipline as `Send`.
unsafe impl Sync for MemsPtr {}
impl MemsPtr {
    #[inline]
    fn get(&self) -> (*mut crate::machine::MemBank, usize) {
        (self.0, self.1)
    }
}

/// Shared snapshot-buffer pointer for the worker closures.
struct OldPtr(*mut u64);
// SAFETY: the snapshot buffer is partitioned by construction — each
// partition owns a private, pre-assigned range (the `old` offsets in
// `part_triggers`), so workers never alias.
unsafe impl Send for OldPtr {}
// SAFETY: same private-per-partition ranges as the `Send` impl.
unsafe impl Sync for OldPtr {}
impl OldPtr {
    #[inline]
    fn get(&self) -> *mut u64 {
        self.0
    }
}

/// One partition's flattened trigger table entry.
struct PartTriggers {
    /// (arena offset, words, old-value offset) per output.
    outs: Vec<(u32, u16, u32)>,
    /// (consumer range) per output into `consumers`.
    cons: Vec<(u32, u32)>,
    consumers: Vec<u32>,
    /// Elided registers: (next offset, out offset, words, register plan
    /// index, wake list).
    regs: Vec<(u32, u32, u16, u32, Vec<u32>)>,
}

/// Thread-parallel CCSS simulator.
pub struct ParEssentSim {
    machine: Machine,
    plan: CcssPlan,
    blocks: Vec<Block>,
    /// Word-specialized programs per partition (`config.tier1`); fused
    /// trigger writes go through the atomic flag sink.
    programs: Option<Vec<Tier1Program>>,
    /// Native-compiled partitions (`config.jit`): entries are `Some` for
    /// partitions whose cost estimate cleared
    /// [`jit::JIT_MIN_COST`] and whose program was eligible.
    jit: Option<jit::JitParts>,
    flags: Vec<AtomicBool>,
    /// Scheduled partition indices grouped by dependency level.
    levels: Vec<Vec<u32>>,
    /// Static per-thread bin schedule ([`EngineConfig::par_lpt`]).
    sched: LevelSchedule,
    /// Use `sched` (LPT bins + serial fallback) instead of the dynamic
    /// cursor sweep over `levels`.
    lpt: bool,
    /// Statically synthesized dataflow schedule
    /// ([`EngineConfig::par_dataflow`]); when present the engine runs
    /// [`ParEssentSim::run_cycles_dataflow`] instead of the level sweep.
    dsched: Option<DataflowSchedule>,
    /// Per-partition arena offsets of the stop-condition bits the
    /// partition computes (dataflow mode): after evaluating, the owner
    /// probes these and publishes an early halt bound so speculative
    /// next-cycle work never outruns a firing `stop`.
    stop_probe: Vec<Vec<u32>>,
    part_triggers: Vec<PartTriggers>,
    /// Per-partition private snapshot storage, indexed by the offsets in
    /// `part_triggers[p].outs`.
    old_vals: Vec<u64>,
    input_wake: HashMap<SignalId, Vec<u32>>,
    commit_regs: Vec<usize>,
    threads: usize,
    /// Telemetry counters ([`EngineConfig::profile`]); atomic because
    /// workers update them concurrently through `&self`.
    profile: Option<Box<AtomicProfile>>,
    /// Shadow memory for the dynamic race oracle
    /// ([`EngineConfig::race_sanitizer`]).
    #[cfg(feature = "race-sanitizer")]
    shadow: Option<Box<crate::sanitizer::ShadowMem>>,
}

impl ParEssentSim {
    /// Partitions the design and builds the parallel simulator with
    /// `threads` workers (0 = available parallelism).
    pub fn new(netlist: &Netlist, config: &EngineConfig, threads: usize) -> ParEssentSim {
        ParEssentSim::new_shared(Arc::new(netlist.clone()), config, threads)
    }

    /// [`ParEssentSim::new`] with a measured activity prior: the
    /// partitioning gains the profile-guided merge phase and the LPT
    /// bins pack by measured cost instead of static step counts.
    pub fn new_with_prior(
        netlist: &Netlist,
        config: &EngineConfig,
        threads: usize,
        prior: &ActivityPrior,
    ) -> ParEssentSim {
        ParEssentSim::new_shared_with_prior(Arc::new(netlist.clone()), config, threads, Some(prior))
    }

    /// [`ParEssentSim::new`] over an already-shared netlist (no deep
    /// clone).
    pub fn new_shared(
        netlist: Arc<Netlist>,
        config: &EngineConfig,
        threads: usize,
    ) -> ParEssentSim {
        ParEssentSim::new_shared_with_prior(netlist, config, threads, None)
    }

    /// The general constructor behind [`ParEssentSim::new_shared`] and
    /// [`ParEssentSim::new_with_prior`].
    pub fn new_shared_with_prior(
        netlist: Arc<Netlist>,
        config: &EngineConfig,
        threads: usize,
        prior: Option<&ActivityPrior>,
    ) -> ParEssentSim {
        let (dag, writes) = extended_dag(&netlist);
        let parts = match prior {
            Some(pr) => {
                partition_with_prior(
                    &dag,
                    config.c_p,
                    pr,
                    &ActivityMergeParams::for_cp(config.c_p),
                )
                .0
            }
            None => partition(&dag, config.c_p),
        };
        let plan = CcssPlan::from_partitioning(
            &netlist,
            &dag,
            &writes,
            &parts,
            PlanOptions {
                elide_state: config.elide_state,
                elide_mem: false,
            },
        );
        let mut machine = Machine::from_arc(Arc::clone(&netlist));
        machine.capture_printf = config.capture_printf;
        let blocks = compile_plan(&netlist, &machine.layout, &plan, config);

        let fuse = config.tier1 && config.fuse_triggers && config.trigger_push;
        let programs: Option<Vec<Tier1Program>> = config.tier1.then(|| {
            plan.partitions
                .iter()
                .zip(&blocks)
                .map(|(part, block)| {
                    let outs: Vec<OutSpec> = part
                        .outputs
                        .iter()
                        .map(|o| OutSpec {
                            sig: o.signal,
                            consumers: o.consumers.clone(),
                        })
                        .collect();
                    lower_tier1(&netlist, block, &outs, fuse)
                })
                .collect()
        });

        let np = plan.partitions.len();
        let levels = plan_levels(&plan);

        // Flattened per-partition trigger + elided-register tables,
        // covering only the outputs the tier did not fuse.
        let mut old_vals = Vec::new();
        let mut part_triggers = Vec::with_capacity(np);
        for (sched, part) in plan.partitions.iter().enumerate() {
            let mut outs = Vec::new();
            let mut cons = Vec::new();
            let mut consumers = Vec::new();
            for (oi, o) in part.outputs.iter().enumerate() {
                if let Some(progs) = &programs {
                    if !progs[sched].unfused.contains(&oi) {
                        continue;
                    }
                }
                let off = machine.layout.offset(o.signal) as u32;
                let w = machine.layout.words(o.signal) as u16;
                outs.push((off, w, old_vals.len() as u32));
                old_vals.extend(std::iter::repeat_n(0, w as usize));
                let start = consumers.len() as u32;
                consumers.extend(o.consumers.iter().copied());
                cons.push((start, consumers.len() as u32));
            }
            let regs = part
                .elided_regs
                .iter()
                .map(|&ri| {
                    let reg = &netlist.regs()[ri];
                    (
                        machine.layout.offset(reg.next) as u32,
                        machine.layout.offset(reg.out) as u32,
                        machine.layout.words(reg.out) as u16,
                        ri as u32,
                        plan.reg_plans[ri].wake_on_change.clone(),
                    )
                })
                .collect();
            part_triggers.push(PartTriggers {
                outs,
                cons,
                consumers,
                regs,
            });
        }

        let input_wake = plan
            .input_wakes
            .iter()
            .map(|(sig, wakes)| (*sig, wakes.clone()))
            .collect();
        let commit_regs = plan
            .reg_plans
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.elided)
            .map(|(i, _)| i)
            .collect();
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let cost = CostModel::build(&plan, &blocks, prior);
        let sched = LevelSchedule::build(&levels, &cost, threads);

        // Native tier (`config.jit`): compile partitions whose cost
        // estimate clears the threshold. Skipped when profiling (wake
        // attribution needs the interpreter's flag sinks) and under the
        // race sanitizer (the dynamic oracle instruments the
        // interpreter loop).
        let jit = (config.jit
            && !config.profile
            && !cfg!(feature = "race-sanitizer")
            && jit::supported())
        .then(|| {
            programs
                .as_ref()
                .map(|progs| jit::JitParts::build(progs, &cost.costs, &machine.mems))
        })
        .flatten();

        // Dataflow mode: derive the dependence graph, synthesize the
        // static worker schedule, and build the stop-probe table.
        let graph_and_sched = config.par_dataflow.then(|| {
            let graph = DepGraph::derive(&netlist, &plan);
            let ds = synthesize_dataflow(&plan, &graph, &cost.costs, threads);
            (graph, ds)
        });
        let mut stop_probe = vec![Vec::new(); np];
        if graph_and_sched.is_some() {
            for st in netlist.stops() {
                if matches!(
                    netlist.signal(st.en).def,
                    SignalDef::Op(_) | SignalDef::MemRead { .. }
                ) {
                    let owner = plan.sched_of_signal[st.en.index()] as usize;
                    stop_probe[owner].push(machine.layout.offset(st.en) as u32);
                }
            }
        }
        // The sanitizer's dataflow mode needs the schedule's same-cycle
        // ordering relation to tell legal handoffs from races.
        #[cfg(feature = "race-sanitizer")]
        let sanitizer_edges: Option<std::collections::HashSet<u64>> =
            graph_and_sched.as_ref().map(|(graph, _)| {
                let mut edges = std::collections::HashSet::new();
                for (p, preds) in graph.preds.iter().enumerate() {
                    for &q in preds {
                        edges.insert(((q as u64) << 32) | p as u64);
                    }
                }
                edges
            });
        let dsched = graph_and_sched.map(|(_, ds)| ds);
        let mut plan = plan;
        if let Some(ds) = &dsched {
            plan.attach_dataflow(ds.clone());
        }

        let profile = config
            .profile
            .then(|| Box::new(AtomicProfile::new(ProfileWiring::for_plan(&netlist, &plan))));
        #[cfg(feature = "race-sanitizer")]
        let total_words = machine.layout.total_words();
        ParEssentSim {
            machine,
            plan,
            blocks,
            programs,
            jit,
            flags: (0..np).map(|_| AtomicBool::new(true)).collect(),
            levels,
            sched,
            lpt: config.par_lpt,
            dsched,
            stop_probe,
            part_triggers,
            old_vals,
            input_wake,
            commit_regs,
            threads,
            profile,
            #[cfg(feature = "race-sanitizer")]
            shadow: config.race_sanitizer.then(|| {
                Box::new(crate::sanitizer::ShadowMem::new_with_edges(
                    total_words,
                    sanitizer_edges,
                ))
            }),
        }
    }

    /// Number of dependency levels in the parallel schedule.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Borrow of the underlying machine (testing, activity profiling).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.plan.partitions.len()
    }

    /// Number of partitions currently running native-compiled bodies
    /// (0 when the JIT is off or unsupported on this target).
    pub fn jit_compiled_count(&self) -> usize {
        self.jit.as_ref().map_or(0, |j| j.compiled_count())
    }

    /// Discards the compiled body for one partition, forcing it back to
    /// the tier-1 interpreter (deopt testing). Returns whether a body
    /// was actually dropped.
    pub fn force_deopt(&mut self, sched: usize) -> bool {
        self.jit.as_mut().is_some_and(|j| j.deopt(sched))
    }

    /// Discards every compiled body; returns how many were dropped.
    pub fn force_deopt_all(&mut self) -> usize {
        self.jit.as_mut().map_or(0, |j| j.deopt_all())
    }

    /// Testing hook: compiles every eligible partition regardless of the
    /// cost threshold, so deopt tests cover partitions the threshold
    /// would leave interpreted. Returns how many bodies now exist; 0 on
    /// unsupported targets or when the tier/profile gating forbids JIT.
    pub fn jit_compile_all(&mut self) -> usize {
        if self.profile.is_some() || cfg!(feature = "race-sanitizer") || !jit::supported() {
            return 0;
        }
        match &self.programs {
            Some(progs) => {
                let j = jit::JitParts::build_all(progs, &self.machine.mems);
                let n = j.compiled_count();
                self.jit = Some(j);
                n
            }
            None => 0,
        }
    }

    /// Borrow of the compiled partitions (verification, tests).
    pub fn jit_parts(&self) -> Option<&jit::JitParts> {
        self.jit.as_ref()
    }

    /// Worker routine: evaluate one partition (flag already claimed).
    ///
    /// # Safety
    ///
    /// Caller must guarantee level-disjointness: no partition
    /// co-scheduled with `sched` in the current dependency level may
    /// write any arena word this partition reads or writes. That is
    /// exactly the property `essent-verify`'s footprint layer proves
    /// statically per design (`R0501`–`R0504`), and that the
    /// `race-sanitizer` feature checks dynamically.
    unsafe fn eval_partition(
        &self,
        sched: usize,
        arena: ArenaPtr,
        mems: &[crate::machine::MemBank],
        old_vals: *mut u64,
        ops: &mut u64,
        prof: Option<&AtomicProfile>,
    ) {
        let tr = &self.part_triggers[sched];
        // Snapshot outputs.
        for &(off, w, old) in &tr.outs {
            #[cfg(feature = "race-sanitizer")]
            crate::sanitizer::note_read(off, w as u32);
            // SAFETY: `off..off+w` are this partition's own output
            // slots (no co-leveled writer per R0502/R0503); the `old`
            // range is this partition's private snapshot storage.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    arena.get().add(off as usize),
                    old_vals.add(old as usize),
                    w as usize,
                );
            }
        }
        match &self.programs {
            Some(_)
                if prof.is_none() && self.jit.as_ref().is_some_and(|j| j.part(sched).is_some()) =>
            {
                let j = self.jit.as_ref().expect("jit checked above");
                let part = j.part(sched).expect("part checked above");
                // SAFETY: the compiled body touches only arena offsets
                // lowered from this partition's tier-1 program, whose
                // footprint equals the generic block's (R0501) — proved
                // level-disjoint and in-bounds (R0502–R0504) — and is
                // independently audited against the emitted bytes by
                // the J07xx verify layer. Wakes are 1-byte stores of
                // `true` into the `AtomicBool` flags (one byte each;
                // single-byte stores are hardware-atomic on the
                // supported targets, matching the relaxed atomic sink).
                // Banks are read-only here, through the pinned bank
                // table built from this machine's mems.
                let (o, _d) = unsafe {
                    part.run(
                        arena.get(),
                        self.flags.as_ptr().cast::<u8>().cast_mut(),
                        j.banks(),
                    )
                };
                *ops += o;
            }
            Some(progs) => {
                // Fused trigger writes go straight to the atomic flags;
                // this engine does not track dynamic-check counts.
                let mut dynamic = 0u64;
                match prof {
                    // SAFETY: the tier-1 program's footprint equals the
                    // generic block's (R0501), which the footprint
                    // layer proved level-disjoint and in-bounds
                    // (R0502–R0504); banks are read-only here.
                    Some(p) => unsafe {
                        run_tier1_raw(
                            &progs[sched],
                            arena.get(),
                            mems,
                            &ProfAtomicFlags {
                                flags: &self.flags,
                                caused: p.caused_cell(sched),
                                woke: p.woke_output_cells(),
                            },
                            ops,
                            &mut dynamic,
                        )
                    },
                    // SAFETY: as above (R0501–R0504 footprint proof).
                    None => unsafe {
                        run_tier1_raw(
                            &progs[sched],
                            arena.get(),
                            mems,
                            &AtomicFlags(&self.flags),
                            ops,
                            &mut dynamic,
                        )
                    },
                }
            }
            // SAFETY: the generic block's footprint is exactly what the
            // footprint layer analyzed and proved level-disjoint and
            // in-bounds (R0502–R0504); banks are read-only here.
            None => unsafe {
                machine::run_items_raw(&self.blocks[sched].items, arena.get(), mems, ops)
            },
        }
        // Elided registers: private slots, single writer.
        for (next_off, out_off, w, ri, wake) in &tr.regs {
            // SAFETY: the elided register's `next` and `out` slots are
            // in this partition's footprint (counted by the footprint
            // layer's engine-access pass), hence level-exclusive.
            let changed = unsafe {
                machine::commit_state_raw(
                    arena.get(),
                    *next_off as usize,
                    *out_off as usize,
                    *w as usize,
                )
            };
            if changed {
                for &c in wake {
                    self.flags[c as usize].store(true, Ordering::Relaxed);
                    if let Some(p) = prof {
                        p.wake_state_reg(*ri as usize, c);
                    }
                }
            }
        }
        // Output triggers.
        for (oi, &(off, w, old)) in tr.outs.iter().enumerate() {
            #[cfg(feature = "race-sanitizer")]
            crate::sanitizer::note_read(off, w as u32);
            // SAFETY: output slots are written only by this partition
            // within the level (R0502/R0503); the snapshot range is
            // private. Both ranges are in-bounds by construction.
            let (cur, snap) = unsafe {
                (
                    std::slice::from_raw_parts(arena.get().add(off as usize), w as usize),
                    std::slice::from_raw_parts(old_vals.add(old as usize), w as usize),
                )
            };
            if cur != snap {
                let (s, e) = tr.cons[oi];
                for ci in s..e {
                    self.flags[tr.consumers[ci as usize] as usize].store(true, Ordering::Relaxed);
                    if let Some(p) = prof {
                        p.wake_output(sched, tr.consumers[ci as usize]);
                    }
                }
            }
        }
    }

    /// End-of-cycle serial phase: printf/stop sampling, memory writes,
    /// and non-elided register commits, with their wake flags.
    ///
    /// # Safety
    ///
    /// No concurrently running partition evaluation may touch any arena
    /// word or memory bank this phase accesses. The level engine parks
    /// every worker at the cycle barrier; the dataflow engine lets only
    /// *exempt* partitions run concurrently, whose footprints the
    /// dependence analysis proves disjoint from the serial footprint
    /// (verified as S0602).
    #[allow(clippy::too_many_arguments)]
    unsafe fn serial_phase(
        &self,
        netlist: &Netlist,
        layout: &crate::compile::Layout,
        arena: ArenaPtr,
        mems: &MemsPtr,
        capture_printf: bool,
        halted: &mut Option<u64>,
        printf_log: &mut Vec<String>,
        static_checks: &mut u64,
    ) {
        for p in netlist.printfs() {
            // SAFETY: serial-footprint word (caller's contract), layout
            // offsets in-bounds by construction.
            let en = unsafe { *arena.get().add(layout.offset(p.en)) } & 1 == 1;
            if en && capture_printf {
                let args: Vec<Bits> = p
                    .args
                    .iter()
                    .map(|&a| {
                        let w = layout.words(a);
                        // SAFETY: serial-footprint words, in-bounds
                        // layout range (as above).
                        let slice = unsafe {
                            std::slice::from_raw_parts(arena.get().add(layout.offset(a)), w)
                        };
                        Bits::from_limbs(slice.to_vec(), netlist.signal(a).width)
                    })
                    .collect();
                printf_log.push(essent_netlist::interp::format_printf(&p.fmt, &args));
            }
        }
        for st in netlist.stops() {
            // SAFETY: serial-footprint word, in-bounds layout offset.
            let en = unsafe { *arena.get().add(layout.offset(st.en)) } & 1 == 1;
            if en && halted.is_none() {
                *halted = Some(st.code);
            }
        }
        // Memory writes (all serial in this engine), then register
        // commits.
        for m in 0..netlist.mems().len() {
            for w in 0..netlist.mems()[m].writers.len() {
                *static_checks += 1;
                // SAFETY: the banks are serial-phase-exclusive (caller's
                // contract: workers parked or bank-disjoint by S0602).
                let bank = unsafe { &mut *mems.get().0.add(m) };
                // SAFETY: serial-footprint words; `m`/`w` index real
                // mems/writers, layout is in-bounds.
                let changed =
                    unsafe { machine::run_mem_write_raw(netlist, layout, arena.get(), bank, m, w) };
                if changed {
                    for (wi, wp) in self.plan.mem_write_plans.iter().enumerate() {
                        if wp.mem.index() == m && wp.writer == w {
                            for &c in &wp.wake_on_change {
                                self.flags[c as usize].store(true, Ordering::Relaxed);
                                if let Some(p) = self.profile.as_deref() {
                                    p.wake_state_mem(wi, c);
                                }
                            }
                        }
                    }
                }
            }
        }
        for &ri in &self.commit_regs {
            *static_checks += 1;
            let reg = &netlist.regs()[ri];
            // SAFETY: `next` and `out` are distinct in-bounds layout
            // ranges in the serial footprint (non-elided registers).
            let changed = unsafe {
                machine::commit_state_raw(
                    arena.get(),
                    layout.offset(reg.next),
                    layout.offset(reg.out),
                    layout.words(reg.out),
                )
            };
            if changed {
                for &c in &self.plan.reg_plans[ri].wake_on_change {
                    self.flags[c as usize].store(true, Ordering::Relaxed);
                    if let Some(p) = self.profile.as_deref() {
                        p.wake_state_reg(ri, c);
                    }
                }
            }
        }
    }

    fn run_cycles(&mut self, n: u64) -> u64 {
        if self.dsched.is_some() {
            return self.run_cycles_dataflow(n);
        }
        let threads = self.threads;
        // Raw views of the machine's storage for the scope's duration.
        // SAFETY invariants (upheld below): within a level, every arena
        // slot is written by at most one worker (unique partition
        // membership) and read slots were finalized at earlier levels or
        // are state; memory banks are only *read* by workers and only
        // *written* in the serial phase while workers are parked at the
        // cycle barrier.
        let arena = ArenaPtr(self.machine.arena.as_mut_ptr());
        let mems = MemsPtr(self.machine.mems.as_mut_ptr(), self.machine.mems.len());
        let old_ptr = OldPtr(self.old_vals.as_mut_ptr());

        let barrier = Barrier::new(threads);
        let cursor = AtomicUsize::new(0);
        let level_idx = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let total_ops = AtomicUsize::new(0);

        // Serial-phase state kept in locals (merged back after the scope).
        let netlist = self.machine.netlist.clone();
        let layout = self.machine.layout.clone();
        let capture_printf = self.machine.capture_printf;
        let mut halted = self.machine.halted;
        let mut printf_log: Vec<String> = Vec::new();
        let mut static_checks = 0u64;
        let mut ran = 0u64;

        let this = &*self;
        // Claim-and-evaluate for one scheduled partition; shared by the
        // parallel workers and the serial-level fast path.
        let eval_claimed =
            |sched: usize, tid: usize, banks: &[crate::machine::MemBank], ops: &mut u64| {
                if this.flags[sched].swap(false, Ordering::Relaxed) {
                    // Record this thread's arena accesses as `sched` for the
                    // duration of the evaluation (no-op without the feature).
                    #[cfg(feature = "race-sanitizer")]
                    let _sanitizer_scope = this
                        .shadow
                        .as_deref()
                        .map(|s| crate::sanitizer::enter(s, sched as u32));
                    match this.profile.as_deref() {
                        Some(p) => {
                            let t0 = p.eval_begin(sched);
                            let mut part_ops = 0u64;
                            // SAFETY: level barriers + disjoint slots.
                            unsafe {
                                this.eval_partition(
                                    sched,
                                    arena,
                                    banks,
                                    old_ptr.get(),
                                    &mut part_ops,
                                    Some(p),
                                )
                            };
                            p.eval_end_on(sched, tid as u32, t0, part_ops);
                            *ops += part_ops;
                        }
                        // SAFETY: level barriers + disjoint slots.
                        None => unsafe {
                            this.eval_partition(sched, arena, banks, old_ptr.get(), ops, None)
                        },
                    }
                } else if let Some(p) = this.profile.as_deref() {
                    p.unit_skip(sched);
                }
            };
        // Declared before the scope so spawned threads can borrow it for
        // the scope's full lifetime. Worker 0 is the main thread.
        let worker = |tid: usize| -> u64 {
            let mut ops = 0u64;
            loop {
                barrier.wait();
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let lvl = level_idx.load(Ordering::Acquire);
                let (mptr, mlen) = mems.get();
                // SAFETY: read-only view; banks are written only while
                // workers are parked (see above).
                let banks = unsafe { std::slice::from_raw_parts(mptr, mlen) };
                if this.lpt {
                    // Static LPT bins: worker `tid` owns bin `tid`.
                    if let Some(bin) = this.sched.levels[lvl].bins.get(tid) {
                        for &s in bin {
                            eval_claimed(s as usize, tid, banks, &mut ops);
                        }
                    }
                } else {
                    // Uniform sweep: dynamic work-stealing via the cursor.
                    let level = &this.levels[lvl];
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= level.len() {
                            break;
                        }
                        eval_claimed(level[i] as usize, tid, banks, &mut ops);
                    }
                }
                barrier.wait();
                if tid == 0 {
                    return ops;
                }
            }
            ops
        };
        std::thread::scope(|scope| {
            let worker = &worker;
            let handles: Vec<_> = (1..threads)
                .map(|t| scope.spawn(move || worker(t)))
                .collect();

            'cycles: for _ in 0..n {
                if halted.is_some() {
                    break 'cycles;
                }
                if let Some(p) = this.profile.as_deref() {
                    p.begin_cycle();
                }
                for lvl in 0..this.levels.len() {
                    // New dependency level: all prior sanitizer tags go
                    // stale (cross-level sharing is legal).
                    #[cfg(feature = "race-sanitizer")]
                    if let Some(s) = this.shadow.as_deref() {
                        s.next_epoch();
                    }
                    if this.lpt && this.sched.levels[lvl].serial {
                        // Too little work to amortize a barrier: run the
                        // level inline while workers stay parked.
                        let (mptr, mlen) = mems.get();
                        // SAFETY: workers are parked at the cycle
                        // barrier; the main thread has exclusive use.
                        let banks = unsafe { std::slice::from_raw_parts(mptr, mlen) };
                        let mut ops = 0u64;
                        for &s in &this.sched.levels[lvl].bins[0] {
                            eval_claimed(s as usize, 0, banks, &mut ops);
                        }
                        total_ops.fetch_add(ops as usize, Ordering::Relaxed);
                        continue;
                    }
                    level_idx.store(lvl, Ordering::Release);
                    cursor.store(0, Ordering::Release);
                    let ops = worker(0);
                    total_ops.fetch_add(ops as usize, Ordering::Relaxed);
                }
                // Serial phase (workers parked at the cycle barrier, so
                // the main thread has exclusive arena and bank access).
                // SAFETY: the cycle barrier above parked every worker.
                unsafe {
                    this.serial_phase(
                        &netlist,
                        &layout,
                        arena,
                        &mems,
                        capture_printf,
                        &mut halted,
                        &mut printf_log,
                        &mut static_checks,
                    )
                };
                ran += 1;
            }
            stop.store(true, Ordering::Release);
            barrier.wait();
            for h in handles {
                total_ops.fetch_add(h.join().expect("worker join") as usize, Ordering::Relaxed);
            }
        });

        self.machine.counters.ops_evaluated += total_ops.load(Ordering::Relaxed) as u64;
        self.machine.counters.static_checks += static_checks;
        self.machine.counters.cycles += ran;
        self.machine.cycle += ran;
        self.machine.halted = halted;
        self.machine.printf_log.extend(printf_log);
        ran
    }

    /// The dataflow (BSP) runtime: no barriers — each worker walks its
    /// static partition list every cycle, synchronizing through
    /// per-partition `done` cycle counters.
    ///
    /// Protocol, per worker `t`, cycle `k` (1-based), partition `p`:
    ///
    /// 1. wait `done[q] >= k` for `q` in `waits_same[p]` (same-cycle
    ///    producers and elision anti-edges, reduced per foreign worker);
    /// 2. if `p` is *exempt* (footprint-disjoint from the serial
    ///    phase): wait `serial_done >= k-2` (one cycle of skew) and
    ///    `done[q] >= k-1` for `q` in `waits_prev[p]` (p's same-cycle
    ///    successors — whose cycle-`k-1` reads and flag claims p must
    ///    not outrun — plus the stop owners, so a published halt is
    ///    visible before speculating); otherwise wait
    ///    `serial_done >= k-1` (cycle `k-1` fully closed);
    /// 3. bail if a halt at a cycle before `k` was published (before
    ///    touching the activity flag, so poke/wake state survives for a
    ///    later `step` exactly as in the level engine);
    /// 4. claim the flag and evaluate (or skip); probe any owned stop
    ///    bits and publish `halt_at = min(halt_at, k)` *before* step 5,
    ///    so no cycle `k+1` evaluation can start once a stop fired;
    /// 5. publish `done[p] = k` (release).
    ///
    /// The main worker additionally closes each cycle: waits every
    /// worker's tail `done >= k`, runs the serial phase (concurrent
    /// only with exempt partitions — disjoint by S0602), and publishes
    /// `serial_done = k`. Deadlock freedom: `waits_same` targets are
    /// schedule-order predecessors and worker lists ascend in schedule
    /// order, so all same-cycle waiting follows a total order; `waits_prev`
    /// and `serial_done` waits reference strictly earlier cycles
    /// (verified as S0603/S0605).
    fn run_cycles_dataflow(&mut self, n: u64) -> u64 {
        let arena = ArenaPtr(self.machine.arena.as_mut_ptr());
        let mems = MemsPtr(self.machine.mems.as_mut_ptr(), self.machine.mems.len());
        let old_ptr = OldPtr(self.old_vals.as_mut_ptr());
        let ds = self.dsched.as_ref().expect("dataflow schedule");
        let nworkers = ds.worker_count();
        let np = self.plan.partitions.len();

        let done: Vec<AtomicU64> = (0..np).map(|_| AtomicU64::new(0)).collect();
        let serial_done = AtomicU64::new(0);
        // First cycle (exclusive) every worker must bail before; a stop
        // at cycle `k` halts the run after cycle `k` completes.
        let halt_at = AtomicU64::new(u64::MAX);
        let total_ops = AtomicUsize::new(0);

        let netlist = self.machine.netlist.clone();
        let layout = self.machine.layout.clone();
        let capture_printf = self.machine.capture_printf;
        let mut halted = self.machine.halted;
        let mut printf_log: Vec<String> = Vec::new();
        let mut static_checks = 0u64;
        let mut ran = 0u64;

        // Reserve one epoch per cycle so the sanitizer can tell
        // overlapping cycles apart (no-op without the feature).
        #[cfg(feature = "race-sanitizer")]
        let epoch_base = self
            .shadow
            .as_deref()
            .map(|s| s.advance_base(n + 2))
            .unwrap_or(0);

        let this = &*self;

        if nworkers == 1 {
            // Single-worker schedule: the worker-list order alone
            // carries every dependence (the S0603 worker-prefix edges),
            // so no signaling is needed — a barrier-free sequential
            // sweep with the serial phase run inline each cycle.
            let (mptr, mlen) = mems.get();
            // SAFETY: one worker; this thread has exclusive access.
            let banks = unsafe { std::slice::from_raw_parts(mptr, mlen) };
            let mut ops0 = 0u64;
            for _k in 1..=n {
                if halted.is_some() {
                    break;
                }
                if let Some(p) = this.profile.as_deref() {
                    p.begin_cycle();
                }
                for &p in &ds.workers[0] {
                    let p = p as usize;
                    // Cheap activity test before the claiming RMW: only
                    // this worker clears the flag, so a relaxed load
                    // cannot miss a wake the wait edges ordered before
                    // this cycle (the RMW on every idle partition is
                    // what the level engines pay the sweep for).
                    if this.flags[p].load(Ordering::Relaxed)
                        && this.flags[p].swap(false, Ordering::Relaxed)
                    {
                        #[cfg(feature = "race-sanitizer")]
                        let _sanitizer_scope = this
                            .shadow
                            .as_deref()
                            .map(|s| crate::sanitizer::enter_at(s, p as u32, epoch_base + _k));
                        match this.profile.as_deref() {
                            Some(prof) => {
                                let t0 = prof.eval_begin(p);
                                let mut part_ops = 0u64;
                                // SAFETY: exclusive access, schedule order.
                                unsafe {
                                    this.eval_partition(
                                        p,
                                        arena,
                                        banks,
                                        old_ptr.get(),
                                        &mut part_ops,
                                        Some(prof),
                                    )
                                };
                                prof.eval_end_on(p, 0, t0, part_ops);
                                ops0 += part_ops;
                            }
                            // SAFETY: exclusive access, schedule order.
                            None => unsafe {
                                this.eval_partition(p, arena, banks, old_ptr.get(), &mut ops0, None)
                            },
                        }
                    } else if let Some(prof) = this.profile.as_deref() {
                        prof.unit_skip(p);
                    }
                }
                // SAFETY: no other worker exists.
                unsafe {
                    this.serial_phase(
                        &netlist,
                        &layout,
                        arena,
                        &mems,
                        capture_printf,
                        &mut halted,
                        &mut printf_log,
                        &mut static_checks,
                    )
                };
                ran += 1;
            }
            self.machine.counters.ops_evaluated += ops0;
            self.machine.counters.static_checks += static_checks;
            self.machine.counters.cycles += ran;
            self.machine.cycle += ran;
            self.machine.halted = halted;
            self.machine.printf_log.extend(printf_log);
            return ran;
        }

        // Bounded-spin wait: true once `ctr >= target`, false if a halt
        // before cycle `k` is published first (the worker must bail).
        let wait = |ctr: &AtomicU64, target: u64, k: u64| -> bool {
            let mut spins = 0u32;
            loop {
                if ctr.load(Ordering::Acquire) >= target {
                    return true;
                }
                if halt_at.load(Ordering::Acquire) < k {
                    return false;
                }
                if spins < 64 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        };
        // One worker's sweep of its partition list for cycle `k`;
        // returns false when the worker must bail (halt published).
        let sweep = |tid: usize, k: u64, ops: &mut u64| -> bool {
            let (mptr, mlen) = mems.get();
            // SAFETY: banks are written only in the serial phase, which
            // runs concurrently only with exempt partitions whose bank
            // reads are disjoint from every written bank (S0602);
            // non-exempt partitions hold no bank access while the
            // serial phase runs (they wait on `serial_done`).
            let banks = unsafe { std::slice::from_raw_parts(mptr, mlen) };
            for &p in &ds.workers[tid] {
                let p = p as usize;
                for &q in &ds.waits_same[p] {
                    if !wait(&done[q as usize], k, k) {
                        return false;
                    }
                }
                if ds.exempt[p] {
                    if !wait(&serial_done, k.saturating_sub(2), k) {
                        return false;
                    }
                    for &q in &ds.waits_prev[p] {
                        if !wait(&done[q as usize], k - 1, k) {
                            return false;
                        }
                    }
                } else if !wait(&serial_done, k - 1, k) {
                    return false;
                }
                if halt_at.load(Ordering::Acquire) < k {
                    return false;
                }
                // Relaxed-load activity test before the claiming RMW
                // (see the single-worker sweep): every wake for cycle
                // `k` is ordered before this test by the wait edges
                // just passed — producer wakes before their `done`
                // stores, serial wakes before `serial_done` (and the
                // serial phase never wakes an exempt partition, S0602).
                if this.flags[p].load(Ordering::Relaxed)
                    && this.flags[p].swap(false, Ordering::Relaxed)
                {
                    // Tag accesses with this cycle's epoch (overlapping
                    // cycles are in flight at once).
                    #[cfg(feature = "race-sanitizer")]
                    let _sanitizer_scope = this
                        .shadow
                        .as_deref()
                        .map(|s| crate::sanitizer::enter_at(s, p as u32, epoch_base + k));
                    match this.profile.as_deref() {
                        Some(prof) => {
                            let t0 = prof.eval_begin(p);
                            let mut part_ops = 0u64;
                            // SAFETY: every cross-partition footprint
                            // overlap is covered by a wait edge passed
                            // above (S0601), and cross-cycle overlap
                            // only pairs footprint-disjoint partitions
                            // (S0602/S0604).
                            unsafe {
                                this.eval_partition(
                                    p,
                                    arena,
                                    banks,
                                    old_ptr.get(),
                                    &mut part_ops,
                                    Some(prof),
                                )
                            };
                            prof.eval_end_on(p, tid as u32, t0, part_ops);
                            *ops += part_ops;
                        }
                        // SAFETY: as above (S0601/S0602/S0604 cover).
                        None => unsafe {
                            this.eval_partition(p, arena, banks, old_ptr.get(), ops, None)
                        },
                    }
                } else if let Some(prof) = this.profile.as_deref() {
                    prof.unit_skip(p);
                }
                // Publish a halt bound for any owned stop bits BEFORE
                // `done[p]`, so every wait on `done[p] >= k` also sees
                // the halt (stop owners are serial-conflicting, and
                // exempt partitions wait on the owners via
                // `waits_prev`).
                for &off in &this.stop_probe[p] {
                    // SAFETY: the stop bit is `p`'s own member slot
                    // (owners are chosen by `sched_of_signal`), in
                    // bounds by construction.
                    let en = unsafe { *arena.get().add(off as usize) } & 1 == 1;
                    if en {
                        halt_at.fetch_min(k, Ordering::AcqRel);
                    }
                }
                done[p].store(k, Ordering::Release);
            }
            true
        };

        std::thread::scope(|scope| {
            let sweep = &sweep;
            let wait = &wait;
            let handles: Vec<_> = (1..nworkers)
                .map(|t| {
                    scope.spawn(move || {
                        let mut ops = 0u64;
                        for k in 1..=n {
                            if !sweep(t, k, &mut ops) {
                                break;
                            }
                        }
                        ops
                    })
                })
                .collect();

            let mut ops0 = 0u64;
            for k in 1..=n {
                if let Some(p) = this.profile.as_deref() {
                    p.begin_cycle();
                }
                if !sweep(0, k, &mut ops0) {
                    break;
                }
                // Close cycle `k`: every worker's last partition done.
                let mut bailed = false;
                for list in ds.workers.iter().skip(1) {
                    if let Some(&tail) = list.last() {
                        if !wait(&done[tail as usize], k, k) {
                            bailed = true;
                            break;
                        }
                    }
                }
                if bailed {
                    break;
                }
                // SAFETY: all workers finished cycle `k`; the only
                // evaluations that can be running concurrently are
                // exempt partitions at cycle `k+1`, whose footprints
                // the dependence analysis proves disjoint from every
                // word and bank the serial phase touches (S0602).
                unsafe {
                    this.serial_phase(
                        &netlist,
                        &layout,
                        arena,
                        &mems,
                        capture_printf,
                        &mut halted,
                        &mut printf_log,
                        &mut static_checks,
                    )
                };
                ran += 1;
                if halted.is_some() {
                    // The halting cycle still counts (it completed);
                    // everything later bails before touching flags.
                    halt_at.fetch_min(k, Ordering::AcqRel);
                    break;
                }
                serial_done.store(k, Ordering::Release);
            }
            total_ops.fetch_add(ops0 as usize, Ordering::Relaxed);
            for h in handles {
                total_ops.fetch_add(h.join().expect("worker join") as usize, Ordering::Relaxed);
            }
        });

        self.machine.counters.ops_evaluated += total_ops.load(Ordering::Relaxed) as u64;
        self.machine.counters.static_checks += static_checks;
        self.machine.counters.cycles += ran;
        self.machine.cycle += ran;
        self.machine.halted = halted;
        self.machine.printf_log.extend(printf_log);
        ran
    }

    /// The synthesized dataflow schedule, when running in dataflow mode.
    pub fn dataflow_schedule(&self) -> Option<&DataflowSchedule> {
        self.dsched.as_ref()
    }
}

impl Simulator for ParEssentSim {
    fn poke(&mut self, name: &str, value: Bits) {
        let id = self.machine.netlist.expect_signal(name);
        assert!(
            matches!(
                self.machine.netlist.signal(id).def,
                essent_netlist::SignalDef::Input
            ),
            "`{name}` is not an input"
        );
        if self.machine.set_value(id, &value) {
            if let Some(wakes) = self.input_wake.get(&id) {
                for &c in wakes {
                    self.flags[c as usize].store(true, Ordering::Relaxed);
                    if let Some(p) = self.profile.as_deref() {
                        p.wake_input(id, c);
                    }
                }
            }
        }
    }

    fn step(&mut self, n: u64) -> u64 {
        if self.machine.halted.is_some() {
            return 0;
        }
        self.run_cycles(n)
    }

    fn engine_name(&self) -> &'static str {
        "essent-parallel"
    }

    fn profile_report(&self) -> Option<ProfileReport> {
        self.profile.as_ref().map(|p| p.report("essent-parallel"))
    }

    delegate_simulator_basics!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EssentSim, FullCycleSim};

    fn netlist_of(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    const COUNTER: &str = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";

    #[test]
    fn parallel_counter_counts() {
        let n = netlist_of(COUNTER);
        for threads in [1, 2, 4] {
            let mut sim = ParEssentSim::new(&n, &EngineConfig::default(), threads);
            sim.poke("reset", Bits::from_u64(0, 1));
            sim.step(10);
            assert_eq!(sim.peek("q").to_u64(), Some(9), "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_sequential_on_wide_design() {
        // Many independent register pipelines: real level-parallel work.
        let mut body = String::new();
        use std::fmt::Write;
        for i in 0..16 {
            let _ = writeln!(body, "    reg a{i} : UInt<16>, clock");
            let _ = writeln!(body, "    reg b{i} : UInt<16>, clock");
            let _ = writeln!(body, "    a{i} <= bits(add(x, UInt<16>({i})), 15, 0)");
            let _ = writeln!(
                body,
                "    b{i} <= xor(a{i}, bits(mul(a{i}, UInt<8>(37)), 15, 0))"
            );
        }
        let mut xorall = String::from("b0");
        for i in 1..16 {
            xorall = format!("xor({xorall}, b{i})");
        }
        let _ = writeln!(body, "    o <= {xorall}");
        let src = format!(
            "circuit W :\n  module W :\n    input clock : Clock\n    input x : UInt<16>\n    output o : UInt<16>\n{body}"
        );
        let n = netlist_of(&src);
        let mut par = ParEssentSim::new(
            &n,
            &EngineConfig {
                c_p: 2,
                ..EngineConfig::default()
            },
            4,
        );
        let mut seq = EssentSim::new(
            &n,
            &EngineConfig {
                c_p: 2,
                ..EngineConfig::default()
            },
        );
        let mut full = FullCycleSim::new(&n, &EngineConfig::default());
        for cycle in 0..60u64 {
            let x = Bits::from_u64((cycle * 2654435761) & 0xffff, 16);
            par.poke("x", x.clone());
            seq.poke("x", x.clone());
            full.poke("x", x);
            par.step(1);
            seq.step(1);
            full.step(1);
            assert_eq!(par.peek("o"), seq.peek("o"), "cycle {cycle}");
            assert_eq!(par.peek("o"), full.peek("o"), "cycle {cycle}");
        }
    }

    #[test]
    fn parallel_respects_stop() {
        let src = "circuit S :\n  module S :\n    input clock : Clock\n    input reset : UInt<1>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    stop(clock, eq(r, UInt<4>(5)), 9)\n";
        let n = netlist_of(src);
        let mut sim = ParEssentSim::new(&n, &EngineConfig::default(), 2);
        sim.poke("reset", Bits::from_u64(0, 1));
        let ran = sim.step(100);
        assert_eq!(sim.halted(), Some(9));
        assert!(ran < 100);
    }

    fn dataflow_config() -> EngineConfig {
        EngineConfig {
            par_dataflow: true,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn dataflow_counter_counts() {
        let n = netlist_of(COUNTER);
        for threads in [1, 2, 4] {
            let mut sim = ParEssentSim::new(&n, &dataflow_config(), threads);
            assert!(sim.dataflow_schedule().is_some());
            sim.poke("reset", Bits::from_u64(0, 1));
            sim.step(10);
            assert_eq!(sim.peek("q").to_u64(), Some(9), "threads={threads}");
        }
    }

    /// `n` independent self-feedback registers: every register's only
    /// reader is its own next function, so all of them elide and the
    /// serial phase has (almost) nothing to do — the shape where
    /// cycle-boundary overlap exemption actually fires.
    fn register_farm(nregs: usize) -> String {
        use std::fmt::Write;
        let mut body = String::new();
        for i in 0..nregs {
            let _ = writeln!(body, "    reg r{i} : UInt<16>, clock");
            let _ = writeln!(
                body,
                "    r{i} <= bits(add(xor(r{i}, x), UInt<16>({})), 15, 0)",
                (i * 2654435761usize) & 0xffff
            );
        }
        let _ = writeln!(body, "    o <= r0");
        format!(
            "circuit F :\n  module F :\n    input clock : Clock\n    input x : UInt<16>\n    output o : UInt<16>\n{body}"
        )
    }

    #[test]
    fn dataflow_matches_sequential_on_register_farm() {
        let n = netlist_of(&register_farm(768));
        let cfg = EngineConfig {
            c_p: 2,
            par_dataflow: true,
            ..EngineConfig::default()
        };
        let mut seq = EssentSim::new(
            &n,
            &EngineConfig {
                c_p: 2,
                ..EngineConfig::default()
            },
        );
        let mut dts: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&t| ParEssentSim::new(&n, &cfg, t))
            .collect();
        // The farm has exempt partitions at 2+ workers, so the
        // cross-cycle overlap path is exercised (batched steps below).
        assert!(dts[2].dataflow_schedule().unwrap().exempt_count() > 0);
        let probes = ["r1", "r100", "r767", "o"];
        for cycle in 0..40u64 {
            let x = Bits::from_u64((cycle * 2654435761) & 0xffff, 16);
            seq.poke("x", x.clone());
            seq.step(1);
            for df in &mut dts {
                df.poke("x", x.clone());
                df.step(1);
                for p in probes {
                    assert_eq!(df.peek(p), seq.peek(p), "{p} cycle {cycle}");
                }
            }
        }
        // Batched steps keep adjacent cycles in flight simultaneously.
        let mut batched = ParEssentSim::new(&n, &cfg, 4);
        let mut seq = EssentSim::new(
            &n,
            &EngineConfig {
                c_p: 2,
                ..EngineConfig::default()
            },
        );
        batched.poke("x", Bits::from_u64(0x1234, 16));
        seq.poke("x", Bits::from_u64(0x1234, 16));
        batched.step(64);
        seq.step(64);
        for p in probes {
            assert_eq!(batched.peek(p), seq.peek(p), "{p} batched");
        }
    }

    #[test]
    fn dataflow_respects_stop() {
        let src = "circuit S :\n  module S :\n    input clock : Clock\n    input reset : UInt<1>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    stop(clock, eq(r, UInt<4>(5)), 9)\n";
        let n = netlist_of(src);
        for threads in [1, 2, 4] {
            let mut sim = ParEssentSim::new(&n, &dataflow_config(), threads);
            sim.poke("reset", Bits::from_u64(0, 1));
            let ran = sim.step(100);
            assert_eq!(sim.halted(), Some(9), "threads={threads}");
            assert!(ran < 100, "threads={threads}");
            // Post-halt steps are no-ops, exactly like the level engine.
            assert_eq!(sim.step(5), 0, "threads={threads}");
        }
    }

    /// A register farm (so 2+ dataflow workers get exempt partitions
    /// speculating one cycle ahead) plus a counter-armed stop whose fire
    /// cycle is an *input*: the stage for sweeping a halt across every
    /// offset of one batched `step`.
    fn stopping_farm(nregs: usize) -> String {
        use std::fmt::Write;
        let mut body = String::new();
        let _ = writeln!(body, "    reg c : UInt<16>, clock");
        let _ = writeln!(body, "    c <= bits(add(c, UInt<16>(1)), 15, 0)");
        let _ = writeln!(body, "    stop(clock, eq(c, t), 7)");
        for i in 0..nregs {
            let _ = writeln!(body, "    reg r{i} : UInt<16>, clock");
            let _ = writeln!(
                body,
                "    r{i} <= bits(add(xor(r{i}, x), UInt<16>({})), 15, 0)",
                (i * 2654435761usize) & 0xffff
            );
        }
        let _ = writeln!(body, "    o <= r0");
        format!(
            "circuit H :\n  module H :\n    input clock : Clock\n    input x : UInt<16>\n    input t : UInt<16>\n    output o : UInt<16>\n{body}"
        )
    }

    /// The `halt_at` publication protocol, empirically: a stop firing at
    /// *every* cycle offset inside one batched `step` must leave both
    /// parallel engines with exactly the golden sequential state — no
    /// speculated cycle may survive a halt, and the halting cycle itself
    /// must complete. Covers the level (LPT) batched path and the
    /// dataflow path where exempt partitions run a cycle ahead of the
    /// stop owner's publication.
    #[test]
    fn batched_halt_at_every_offset_matches_sequential() {
        let n = netlist_of(&stopping_farm(768));
        let cfg = EngineConfig {
            c_p: 2,
            ..EngineConfig::default()
        };
        let df_cfg = EngineConfig {
            par_dataflow: true,
            ..cfg.clone()
        };
        // The farm must actually exercise cross-cycle speculation.
        assert!(
            ParEssentSim::new(&n, &df_cfg, 4)
                .dataflow_schedule()
                .unwrap()
                .exempt_count()
                > 0
        );
        let probes = ["c", "r0", "r17", "r95", "o"];
        const BATCH: u64 = 64;
        for offset in 0..BATCH {
            let t = Bits::from_u64(offset, 16);
            let x = Bits::from_u64(0xA5C3, 16);
            let mut seq = EssentSim::new(&n, &cfg);
            seq.poke("t", t.clone());
            seq.poke("x", x.clone());
            let seq_ran = seq.step(BATCH);
            assert_eq!(seq.halted(), Some(7), "offset {offset}");
            for (threads, dcfg) in [(4, &cfg), (2, &df_cfg), (4, &df_cfg)] {
                let mut par = ParEssentSim::new(&n, dcfg, threads);
                par.poke("t", t.clone());
                par.poke("x", x.clone());
                let ran = par.step(BATCH);
                let tag = format!(
                    "offset {offset} threads {threads} dataflow {}",
                    dcfg.par_dataflow
                );
                assert_eq!(ran, seq_ran, "{tag}: cycle count");
                assert_eq!(par.halted(), Some(7), "{tag}: halt code");
                for p in probes {
                    assert_eq!(par.peek(p), seq.peek(p), "{tag}: {p}");
                }
                // Post-halt steps stay no-ops with state frozen.
                assert_eq!(par.step(3), 0, "{tag}: post-halt step");
                assert_eq!(par.peek("o"), seq.peek("o"), "{tag}: post-halt o");
            }
        }
    }

    #[test]
    fn dataflow_schedule_is_sane() {
        let n = netlist_of(COUNTER);
        let sim = ParEssentSim::new(&n, &dataflow_config(), 4);
        let ds = sim.dataflow_schedule().unwrap();
        let np = sim.partition_count();
        let mut seen = vec![false; np];
        for list in &ds.workers {
            for &p in list {
                assert!(!seen[p as usize], "partition {p} scheduled twice");
                seen[p as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every partition scheduled");
        // The stop-free counter design still has the serial register
        // commit, so its lone conflict partition must be non-exempt.
        for p in 0..np {
            if ds.exempt[p] {
                assert!(ds.worker_count() > 1);
            }
        }
    }

    #[test]
    fn levels_respect_dependencies() {
        let n = netlist_of(COUNTER);
        let sim = ParEssentSim::new(
            &n,
            &EngineConfig {
                c_p: 1,
                ..EngineConfig::default()
            },
            1,
        );
        assert!(sim.level_count() >= 1);
        assert_eq!(
            sim.levels.iter().map(Vec::len).sum::<usize>(),
            sim.partition_count()
        );
    }
}
