//! x86-64 emitter for [`Tier1Program`]s (System V AMD64 ABI).
//!
//! Register plan (fixed for the whole body, which keeps both the emitter
//! and the verify-layer decoder small):
//!
//! | register | role                                      |
//! |----------|-------------------------------------------|
//! | `rdi`    | arena base (`*mut u64`, argument 1)       |
//! | `rsi`    | activity flags base (`*mut u8`, arg 2)    |
//! | `rbx`    | bank table base (saved from `rdx`, arg 3) |
//! | `rax`    | accumulator (instruction result)          |
//! | `rcx`    | second operand / shift count / scratch    |
//! | `rdx`    | div/idiv high half                        |
//! | `r8`     | `ops` counter                             |
//! | `r9`     | `dynamic` counter                         |
//!
//! Every arena access is `mov r64, [rdi + disp32]` / `mov [rdi + disp32],
//! rax` with an always-32-bit displacement (`off * 8`), every fused wake
//! is `mov byte [rsi + disp32], 1`, and every bank access goes through
//! the per-call [`JitBank`](super::JitBank) table at `[rbx + c * 16]` —
//! uniform shapes the J07xx auditor pattern-matches exactly.
//!
//! Division avoids the two `div`/`idiv` traps by construction: a zero
//! divisor branches to the interpreter-defined result, and signed
//! division by `-1` is rewritten as negation (`i64::MIN / -1` then wraps
//! to `i64::MIN`, matching the interpreter's `i128` math truncated to a
//! word).

use super::{EmittedCode, JitArch};
use crate::step1::{Inst1, Op1, Tier1Program, NO_FUSE};

// Register numbers (REX extension handled by the helpers).
const RAX: u8 = 0;
const RCX: u8 = 1;

/// Maximum arena word offset whose byte displacement (`off * 8`) still
/// fits a signed 32-bit displacement.
const MAX_ARENA_OFF: u32 = (i32::MAX as u32) / 8;

struct Asm {
    buf: Vec<u8>,
    /// Resolved byte offsets per label (`None` until bound).
    labels: Vec<Option<usize>>,
    /// Pending rel32 patches: (offset of the rel32 field, label).
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    fn new() -> Asm {
        Asm {
            buf: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    fn put(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: usize) {
        debug_assert!(self.labels[l].is_none(), "label bound twice");
        self.labels[l] = Some(self.buf.len());
    }

    /// `mov reg, [rdi + off*8]`.
    fn load_arena(&mut self, reg: u8, off: u32) {
        let rex = 0x48 | ((reg >> 3) << 2);
        self.put(&[rex, 0x8B, 0x80 | ((reg & 7) << 3) | 7]);
        self.put(&(off.wrapping_mul(8) as i32).to_le_bytes());
    }

    /// `mov [rdi + off*8], reg`.
    fn store_arena(&mut self, reg: u8, off: u32) {
        let rex = 0x48 | ((reg >> 3) << 2);
        self.put(&[rex, 0x89, 0x80 | ((reg & 7) << 3) | 7]);
        self.put(&(off.wrapping_mul(8) as i32).to_le_bytes());
    }

    /// `mov byte [rsi + consumer], 1` — a fused trigger wake.
    fn flag_store(&mut self, consumer: u32) {
        self.put(&[0xC6, 0x86]);
        self.put(&(consumer as i32).to_le_bytes());
        self.put(&[0x01]);
    }

    /// `movabs reg, imm` (always the 10-byte form).
    fn mov_imm64(&mut self, reg: u8, imm: u64) {
        let rex = 0x48 | (reg >> 3);
        self.put(&[rex, 0xB8 + (reg & 7)]);
        self.put(&imm.to_le_bytes());
    }

    /// Sign-extension by shift pair: `shl reg, s; sar reg, s` (no-op for
    /// `s == 0`), replicating `step1::sext`.
    fn sext(&mut self, reg: u8, s: u8) {
        if s == 0 {
            return;
        }
        let rex = 0x48 | (reg >> 3);
        self.put(&[rex, 0xC1, 0xE0 | (reg & 7), s]); // shl
        self.put(&[rex, 0xC1, 0xF8 | (reg & 7), s]); // sar
    }

    /// `shl/shr/sar rax, imm8` (`ext` = 4/5/7).
    fn shift_imm(&mut self, ext: u8, imm: u8) {
        if imm == 0 {
            return;
        }
        self.put(&[0x48, 0xC1, 0xC0 | (ext << 3), imm]);
    }

    /// `jmp rel32` to a label.
    fn jmp(&mut self, l: usize) {
        self.put(&[0xE9]);
        self.fixups.push((self.buf.len(), l));
        self.put(&[0; 4]);
    }

    /// `jcc rel32` to a label (`cc` = the 0F-prefixed condition byte:
    /// 0x84 jz/je, 0x85 jnz/jne, 0x82 jb, 0x83 jae, 0x86 jbe).
    fn jcc(&mut self, cc: u8, l: usize) {
        self.put(&[0x0F, cc]);
        self.fixups.push((self.buf.len(), l));
        self.put(&[0; 4]);
    }

    /// Patches every pending rel32 fixup.
    fn finish(mut self) -> Vec<u8> {
        for (pos, l) in std::mem::take(&mut self.fixups) {
            let target = self.labels[l].expect("unbound label");
            let rel = (target as i64 - (pos as i64 + 4)) as i32;
            self.buf[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        self.buf
    }
}

/// Whether every encodable limit holds for this program; `false` routes
/// the partition back to the interpreter.
fn eligible(prog: &Tier1Program, have_popcnt: bool) -> bool {
    prog.code.iter().all(|inst| {
        if inst.op == Op1::Generic {
            return false;
        }
        if inst.op == Op1::Xorr && !have_popcnt {
            return false;
        }
        let offs_ok = match inst.op {
            Op1::Jmp => true,
            Op1::JmpIf0 => inst.b <= MAX_ARENA_OFF,
            _ => {
                inst.a <= MAX_ARENA_OFF
                    && inst.b <= MAX_ARENA_OFF
                    && inst.c <= MAX_ARENA_OFF
                    && inst.dst <= MAX_ARENA_OFF
            }
        };
        // Bank table entries are 16 bytes; consumer indices are byte
        // displacements off the flag base.
        let aux_ok = match inst.op {
            Op1::MemRead => inst.c <= (i32::MAX as u32) / 16,
            _ => true,
        };
        let fuse_ok = inst.ws == NO_FUSE
            || prog.consumers[inst.ws as usize..inst.we as usize]
                .iter()
                .all(|&c| c <= i32::MAX as u32);
        offs_ok && aux_ok && fuse_ok
    })
}

/// Emits the full x86-64 stream for `prog`; `None` when ineligible.
pub fn emit(prog: &Tier1Program, have_popcnt: bool) -> Option<EmittedCode> {
    if !eligible(prog, have_popcnt) {
        return None;
    }
    let mut a = Asm::new();
    // Labels 0..=n: instruction starts plus the epilogue (jump targets).
    let inst_labels: Vec<usize> = (0..=prog.code.len()).map(|_| a.label()).collect();

    // Prologue: save rbx, move the bank table out of rdx (div clobbers
    // it), zero the counters.
    a.put(&[0x53]); // push rbx
    a.put(&[0x48, 0x89, 0xD3]); // mov rbx, rdx
    a.put(&[0x45, 0x31, 0xC0]); // xor r8d, r8d   (ops)
    a.put(&[0x45, 0x31, 0xC9]); // xor r9d, r9d   (dynamic)

    let mut marks = Vec::with_capacity(prog.code.len());
    for (pc, inst) in prog.code.iter().enumerate() {
        a.bind(inst_labels[pc]);
        let start = a.buf.len() as u32;
        emit_inst(&mut a, prog, inst, &inst_labels);
        marks.push((start, a.buf.len() as u32));
    }
    a.bind(inst_labels[prog.code.len()]);

    // Epilogue: rax = ops | (dynamic << 32).
    a.put(&[0x4C, 0x89, 0xC8]); // mov rax, r9
    a.put(&[0x48, 0xC1, 0xE0, 0x20]); // shl rax, 32
    a.put(&[0x4C, 0x09, 0xC0]); // or rax, r8
    a.put(&[0x5B]); // pop rbx
    a.put(&[0xC3]); // ret

    Some(EmittedCode {
        arch: JitArch::X64,
        bytes: a.finish(),
        marks,
    })
}

/// Emits one instruction body plus (for value producers) the counting /
/// masking / store / fused-trigger tail.
fn emit_inst(a: &mut Asm, prog: &Tier1Program, inst: &Inst1, inst_labels: &[usize]) {
    const ADD: &[u8] = &[0x48, 0x01, 0xC8]; // add rax, rcx
    const SUB: &[u8] = &[0x48, 0x29, 0xC8]; // sub rax, rcx
    const IMUL: &[u8] = &[0x48, 0x0F, 0xAF, 0xC1]; // imul rax, rcx
    const AND: &[u8] = &[0x48, 0x21, 0xC8]; // and rax, rcx
    const OR: &[u8] = &[0x48, 0x09, 0xC8]; // or rax, rcx
    const XOR: &[u8] = &[0x48, 0x31, 0xC8]; // xor rax, rcx
    const CMP_AX_CX: &[u8] = &[0x48, 0x39, 0xC8]; // cmp rax, rcx
    const TEST_CX: &[u8] = &[0x48, 0x85, 0xC9]; // test rcx, rcx
    const TEST_AX: &[u8] = &[0x48, 0x85, 0xC0]; // test rax, rax
    const TEST_AL1: &[u8] = &[0xA8, 0x01]; // test al, 1
    const ZERO_AX: &[u8] = &[0x31, 0xC0]; // xor eax, eax
    const ZERO_DX: &[u8] = &[0x31, 0xD2]; // xor edx, edx
    const DIV_CX: &[u8] = &[0x48, 0xF7, 0xF1]; // div rcx
    const IDIV_CX: &[u8] = &[0x48, 0xF7, 0xF9]; // idiv rcx
    const CQO: &[u8] = &[0x48, 0x99]; // cqo
    const NEG_AX: &[u8] = &[0x48, 0xF7, 0xD8]; // neg rax
    const NOT_AX: &[u8] = &[0x48, 0xF7, 0xD0]; // not rax
    const MOV_AX_DX: &[u8] = &[0x48, 0x89, 0xD0]; // mov rax, rdx
    const MOVZX_AL: &[u8] = &[0x0F, 0xB6, 0xC0]; // movzx eax, al
    const POPCNT: &[u8] = &[0xF3, 0x48, 0x0F, 0xB8, 0xC0]; // popcnt rax, rax
    const AND_AX_1: &[u8] = &[0x83, 0xE0, 0x01]; // and eax, 1
    const SHL_CL: &[u8] = &[0x48, 0xD3, 0xE0]; // shl rax, cl
    const SHR_CL: &[u8] = &[0x48, 0xD3, 0xE8]; // shr rax, cl
    const SAR_CL: &[u8] = &[0x48, 0xD3, 0xF8]; // sar rax, cl

    /// `setcc al; movzx eax, al`.
    fn set_bool(a: &mut Asm, setcc: u8) {
        a.put(&[0x0F, setcc, 0xC0]);
        a.put(MOVZX_AL);
    }
    /// Loads both operands with their sign extensions.
    fn load_ab(a: &mut Asm, inst: &Inst1) {
        a.load_arena(RAX, inst.a);
        a.sext(RAX, inst.sxa);
        a.load_arena(RCX, inst.b);
        a.sext(RCX, inst.sxb);
    }

    match inst.op {
        Op1::Add => {
            load_ab(a, inst);
            a.put(ADD);
        }
        Op1::Sub => {
            load_ab(a, inst);
            a.put(SUB);
        }
        Op1::Mul => {
            load_ab(a, inst);
            a.put(IMUL);
        }
        Op1::DivU => {
            let (zero, done) = (a.label(), a.label());
            a.load_arena(RAX, inst.a);
            a.load_arena(RCX, inst.b);
            a.put(TEST_CX);
            a.jcc(0x84, zero);
            a.put(ZERO_DX);
            a.put(DIV_CX);
            a.jmp(done);
            a.bind(zero);
            a.put(ZERO_AX);
            a.bind(done);
        }
        Op1::DivS => {
            let (zero, div, done) = (a.label(), a.label(), a.label());
            a.load_arena(RCX, inst.b);
            a.sext(RCX, inst.sxb);
            a.put(TEST_CX);
            a.jcc(0x84, zero);
            a.load_arena(RAX, inst.a);
            a.sext(RAX, inst.sxa);
            a.put(&[0x48, 0x83, 0xF9, 0xFF]); // cmp rcx, -1
            a.jcc(0x85, div);
            a.put(NEG_AX); // a / -1 = -a (MIN wraps, matching i128 math)
            a.jmp(done);
            a.bind(div);
            a.put(CQO);
            a.put(IDIV_CX);
            a.jmp(done);
            a.bind(zero);
            a.put(ZERO_AX);
            a.bind(done);
        }
        Op1::RemU => {
            let done = a.label();
            a.load_arena(RAX, inst.a);
            a.load_arena(RCX, inst.b);
            a.put(TEST_CX);
            a.jcc(0x84, done); // b == 0 -> a (already in rax)
            a.put(ZERO_DX);
            a.put(DIV_CX);
            a.put(MOV_AX_DX);
            a.bind(done);
        }
        Op1::RemS => {
            let (rem, done) = (a.label(), a.label());
            a.load_arena(RAX, inst.a);
            a.sext(RAX, inst.sxa);
            a.load_arena(RCX, inst.b);
            a.sext(RCX, inst.sxb);
            a.put(TEST_CX);
            a.jcc(0x84, done); // b == 0 -> sext(a) (already in rax)
            a.put(&[0x48, 0x83, 0xF9, 0xFF]); // cmp rcx, -1
            a.jcc(0x85, rem);
            a.put(ZERO_AX); // a % -1 = 0 (idiv would trap on MIN)
            a.jmp(done);
            a.bind(rem);
            a.put(CQO);
            a.put(IDIV_CX);
            a.put(MOV_AX_DX);
            a.bind(done);
        }
        Op1::LtU | Op1::LtS | Op1::LeqU | Op1::LeqS | Op1::Eq | Op1::Neq => {
            load_ab(a, inst);
            a.put(CMP_AX_CX);
            set_bool(
                a,
                match inst.op {
                    Op1::LtU => 0x92,  // setb
                    Op1::LtS => 0x9C,  // setl
                    Op1::LeqU => 0x96, // setbe
                    Op1::LeqS => 0x9E, // setle
                    Op1::Eq => 0x94,   // sete
                    _ => 0x95,         // setne
                },
            );
        }
        Op1::Shl => {
            if inst.imm >= inst.sxc as u64 {
                a.put(ZERO_AX);
            } else {
                a.load_arena(RAX, inst.a);
                a.shift_imm(4, inst.imm as u8);
            }
        }
        Op1::ShrU => {
            if inst.imm >= 64 {
                a.put(ZERO_AX);
            } else {
                a.load_arena(RAX, inst.a);
                a.shift_imm(5, inst.imm as u8);
            }
        }
        Op1::ShrS => {
            a.load_arena(RAX, inst.a);
            a.sext(RAX, inst.sxa);
            a.shift_imm(7, inst.imm.min(63) as u8);
        }
        Op1::Dshl | Op1::DshrU => {
            let (ok, done) = (a.label(), a.label());
            let bound = if inst.op == Op1::Dshl {
                inst.sxc // destination width
            } else {
                64
            };
            a.load_arena(RCX, inst.b);
            a.load_arena(RAX, inst.a);
            a.put(&[0x48, 0x83, 0xF9, bound]); // cmp rcx, bound
            a.jcc(0x82, ok); // jb
            a.put(ZERO_AX);
            a.jmp(done);
            a.bind(ok);
            a.put(if inst.op == Op1::Dshl { SHL_CL } else { SHR_CL });
            a.bind(done);
        }
        Op1::DshrS => {
            let ok = a.label();
            a.load_arena(RCX, inst.b);
            a.put(&[0x48, 0x83, 0xF9, 0x3F]); // cmp rcx, 63
            a.jcc(0x86, ok); // jbe
            a.put(&[0xB9, 0x3F, 0x00, 0x00, 0x00]); // mov ecx, 63
            a.bind(ok);
            a.load_arena(RAX, inst.a);
            a.sext(RAX, inst.sxa);
            a.put(SAR_CL);
        }
        Op1::Neg => {
            a.load_arena(RAX, inst.a);
            a.sext(RAX, inst.sxa);
            a.put(NEG_AX);
        }
        Op1::Not => {
            a.load_arena(RAX, inst.a);
            a.sext(RAX, inst.sxa);
            a.put(NOT_AX);
        }
        Op1::And | Op1::Or | Op1::Xor => {
            load_ab(a, inst);
            a.put(match inst.op {
                Op1::And => AND,
                Op1::Or => OR,
                _ => XOR,
            });
        }
        Op1::Andr => {
            a.load_arena(RAX, inst.a);
            a.mov_imm64(RCX, inst.imm);
            a.put(CMP_AX_CX);
            set_bool(a, 0x94); // sete
        }
        Op1::Orr => {
            a.load_arena(RAX, inst.a);
            a.put(TEST_AX);
            set_bool(a, 0x95); // setne
        }
        Op1::Xorr => {
            a.load_arena(RAX, inst.a);
            a.put(POPCNT);
            a.put(AND_AX_1);
        }
        Op1::Cat => {
            a.load_arena(RAX, inst.a);
            a.shift_imm(4, inst.imm as u8);
            a.load_arena(RCX, inst.b);
            a.put(OR);
        }
        Op1::Bits => {
            a.load_arena(RAX, inst.a);
            a.shift_imm(5, inst.imm as u8);
        }
        Op1::Ext => {
            a.load_arena(RAX, inst.a);
            a.sext(RAX, inst.sxa);
        }
        Op1::Mux => {
            let (low, done) = (a.label(), a.label());
            a.load_arena(RAX, inst.a);
            a.put(TEST_AL1);
            a.jcc(0x84, low);
            a.load_arena(RAX, inst.b);
            a.sext(RAX, inst.sxb);
            a.jmp(done);
            a.bind(low);
            a.load_arena(RAX, inst.c);
            a.sext(RAX, inst.sxc);
            a.bind(done);
        }
        Op1::MemRead => {
            let (zero, done) = (a.label(), a.label());
            a.load_arena(RAX, inst.b); // en
            a.put(TEST_AL1);
            a.jcc(0x84, zero);
            a.load_arena(RAX, inst.a); // addr
            a.mov_imm64(RCX, inst.imm); // depth
            a.put(CMP_AX_CX);
            a.jcc(0x83, zero); // jae
                               // mov rcx, [rbx + c*16] (bank data pointer)
            a.put(&[0x48, 0x8B, 0x8B]);
            a.put(&(inst.c.wrapping_mul(16) as i32).to_le_bytes());
            // mov rax, [rcx + rax*8]
            a.put(&[0x48, 0x8B, 0x04, 0xC1]);
            a.jmp(done);
            a.bind(zero);
            a.put(ZERO_AX);
            a.bind(done);
        }
        Op1::Jmp => {
            a.jmp(inst_labels[inst.a as usize]);
            return;
        }
        Op1::JmpIf0 => {
            a.load_arena(RAX, inst.b);
            a.put(TEST_AL1);
            a.jcc(0x84, inst_labels[inst.a as usize]);
            return;
        }
        Op1::Generic => unreachable!("eligibility rejects Generic"),
    }

    // Tail: count the op, mask, store (with the fused CCSS trigger
    // compare-and-wake when this instruction defines a fused output).
    a.put(&[0x49, 0xFF, 0xC0]); // inc r8 (ops)
    if inst.mask != u64::MAX {
        a.mov_imm64(RCX, inst.mask);
        a.put(AND);
    }
    if inst.ws == NO_FUSE {
        a.store_arena(RAX, inst.dst);
    } else {
        let skip = a.label();
        a.put(&[0x49, 0xFF, 0xC1]); // inc r9 (dynamic)
        a.load_arena(RCX, inst.dst);
        a.put(&[0x48, 0x39, 0xC1]); // cmp rcx, rax
        a.jcc(0x84, skip); // je: unchanged, no store, no wakes
        a.store_arena(RAX, inst.dst);
        for &c in &prog.consumers[inst.ws as usize..inst.we as usize] {
            a.flag_store(c);
        }
        a.bind(skip);
    }
}
