//! Native code generation for hot partitions (`essent-jit`).
//!
//! The word-specialized tier ([`crate::step1`]) already removes `Bits`
//! allocation and bounds checks from the hot loop, but it still pays one
//! interpreter dispatch per [`Inst1`]. This module removes that last
//! overhead for the partitions where it matters: a partition whose
//! estimated eval cost clears [`JIT_MIN_COST`] has its `Inst1` sequence
//! lowered to straight-line machine code — x86-64 ([`x64`]) or aarch64
//! ([`a64`]) — with the fused CCSS trigger tail (compare-and-wake)
//! preserved as inline compare/branch/flag-store sequences.
//!
//! The emitters are *pure* byte generators compiled on every host, so
//! either instruction stream can be generated (and independently audited
//! by `essent-verify`'s J07xx layer) regardless of the build target; only
//! the execution side ([`CompiledPart`]) is target-gated. Code pages are
//! managed W^X: every selected partition's bytes are packed, in schedule
//! order, into one anonymous `mmap`ed RW mapping that is flipped to R+X
//! (`mprotect`) before the first call, via raw Linux syscalls — no
//! external dependencies, and no per-partition page rounding to thrash
//! the iTLB on designs with thousands of compiled partitions.
//!
//! Calling convention of the emitted entry point (C ABI):
//!
//! ```text
//! fn(arena: *mut u64, flags: *mut u8, banks: *const JitBank) -> u64
//! ```
//!
//! The return value packs the two work counters the interpreter would
//! have maintained: `ops | (dynamic << 32)`. Memory banks are passed as
//! a [`JitBank`] table per call rather than baking heap addresses into
//! the code, so compiled partitions stay valid across simulator moves.
//!
//! A partition is *ineligible* (and [`emit_for_host`] returns `None`, leaving
//! the tier-1 interpreter in charge) when its program contains a
//! [`Op1::Generic`](crate::step1::Op1::Generic) fallback, when an arena
//! offset or consumer index exceeds the encodable displacement range, or
//! when a required host feature (`popcnt` for `Xorr` on x86-64) is
//! missing. The engines additionally *deopt* compiled partitions on
//! request ([`JitParts::deopt`]) — the tier-1 interpreter is always a
//! drop-in fallback because the JIT replicates its semantics exactly,
//! which the J07xx audit layer and the deopt equivalence tests check.

pub mod a64;
pub mod x64;

use crate::machine::MemBank;
use crate::step1::Tier1Program;

/// Instruction-set architecture of an emitted stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitArch {
    /// x86-64 (System V AMD64 calling convention).
    X64,
    /// AArch64 (AAPCS64 calling convention).
    A64,
}

/// An emitted machine-code stream plus the metadata the verify layer
/// needs to audit it against its [`Tier1Program`] source.
#[derive(Debug, Clone)]
pub struct EmittedCode {
    pub arch: JitArch,
    pub bytes: Vec<u8>,
    /// Per-[`Inst1`](crate::step1::Inst1) byte range `[start, end)` into
    /// `bytes`; ranges are contiguous, starting after the prologue and
    /// ending at the epilogue.
    pub marks: Vec<(u32, u32)>,
}

impl EmittedCode {
    /// Byte offset where the per-instruction code begins (end of the
    /// prologue).
    pub fn body_start(&self) -> u32 {
        self.marks.first().map_or(self.bytes.len() as u32, |m| m.0)
    }

    /// Byte offset of the epilogue (end of the last instruction range).
    pub fn body_end(&self) -> u32 {
        self.marks.last().map_or(self.body_start(), |m| m.1)
    }
}

/// One memory bank as seen by compiled code: the base pointer of a
/// single-word bank plus its depth (the depth is baked into the code as
/// an immediate; the field exists for debugging and auditing).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct JitBank {
    pub data: *const u64,
    pub depth: u64,
}

/// Per-call bank table handed to compiled partitions.
///
/// Holds raw pointers into the machine's bank storage. The storage is
/// allocated once at machine construction and only ever written in
/// place, so the pointers stay valid for the simulator's lifetime even
/// as the owning struct moves.
pub struct BankTable(Vec<JitBank>);

// SAFETY: the table only holds pointers; compiled partitions read banks
// under the same discipline as the interpreter (banks are written only
// in the serial phase / end-of-cycle commit, never during partition
// evaluation — the S0602 exemption proof covers the dataflow overlap).
unsafe impl Send for BankTable {}
// SAFETY: as above — concurrent `&BankTable` access is read-only.
unsafe impl Sync for BankTable {}

impl BankTable {
    /// Builds the table over the machine's banks (index-aligned with
    /// `Inst1::c` bank references).
    pub fn new(mems: &[MemBank]) -> BankTable {
        BankTable(
            mems.iter()
                .map(|m| JitBank {
                    data: m.data.as_ptr(),
                    depth: m.depth as u64,
                })
                .collect(),
        )
    }

    /// Base pointer for the compiled call (dangling-but-unused when the
    /// design has no memories).
    pub fn ptr(&self) -> *const JitBank {
        self.0.as_ptr()
    }
}

/// Cost-model threshold (same ~ns/cycle unit as
/// [`CostModel`](crate::par::CostModel)): partitions estimated below
/// this stay on the tier-1 interpreter, where the call and code-cache
/// overhead of a native body would not pay for itself. On the paper
/// designs the static estimates sit at 1 for the trivial single-output
/// cones and 8–60 for real logic, so a threshold of 2 compiles
/// everything that does work while skipping the degenerate forwarders.
pub const JIT_MIN_COST: u64 = 2;

/// Cap on total emitted machine code per engine. Native bodies are
/// ~10–20× larger than the `Inst1` words they replace, so compiling a
/// huge design wholesale turns the interpreter's compact data stream
/// into an instruction-fetch problem and loses to tier-1 outright.
/// Selection is costliest-first under this budget, which keeps the
/// native tier's footprint within reach of the last-level cache while
/// covering the partitions where the dispatch overhead actually
/// concentrates.
pub const JIT_CODE_BUDGET: usize = 1 << 20;

/// Whether this build target can execute emitted code (Linux on x86-64
/// or aarch64). Emission and auditing work everywhere.
pub fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Emits the host-architecture stream for a program; `None` when the
/// host is not a JIT target or the program is ineligible.
pub fn emit_for_host(prog: &Tier1Program) -> Option<EmittedCode> {
    #[cfg(target_arch = "x86_64")]
    {
        x64::emit(prog, std::arch::is_x86_feature_detected!("popcnt"))
    }
    #[cfg(target_arch = "aarch64")]
    {
        a64::emit(prog)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = prog;
        None
    }
}

/// The function signature of an emitted partition body.
type EntryFn = unsafe extern "C" fn(*mut u64, *mut u8, *const JitBank) -> u64;

/// A partition compiled into the engine's shared executable arena.
///
/// `entry` points into the [`ExecBuf`] owned by the same [`JitParts`];
/// the parts vector never outlives the arena (and `CompiledPart` has no
/// `Drop`), so the pointer stays valid for as long as a caller can hold
/// a reference to this struct.
pub struct CompiledPart {
    entry: *const u8,
    code: EmittedCode,
}

// SAFETY: the mapping is immutable (R+X) after construction; calling the
// code from another thread is as safe as calling it from this one — the
// *caller* upholds the arena/bank disjointness contract of `run`.
unsafe impl Send for CompiledPart {}
// SAFETY: as above — shared access only reads the mapping pointer.
unsafe impl Sync for CompiledPart {}

impl CompiledPart {
    /// The emitted stream (audit layer, diagnostics).
    pub fn emitted(&self) -> &EmittedCode {
        &self.code
    }

    /// Evaluates the partition; returns `(ops, dynamic)` work-counter
    /// deltas, matching `run_tier1_raw`'s accounting exactly.
    ///
    /// # Safety
    ///
    /// Same contract as `run_tier1_raw`: `arena` points at the machine's
    /// arena laid out as when the program was lowered, with no concurrent
    /// writer of any slot this partition reads nor any accessor of slots
    /// it writes; `flags` points at one byte per scheduled partition
    /// (`bool` / `AtomicBool` storage — the code stores the byte `1`,
    /// which is a valid `true` for either and, at machine-code level,
    /// matches the relaxed-store discipline of the atomic sink); `banks`
    /// points at a [`BankTable`] built over the machine's banks.
    pub unsafe fn run(&self, arena: *mut u64, flags: *mut u8, banks: *const JitBank) -> (u64, u64) {
        // SAFETY: `entry` points at a complete emitted stream for the
        // host architecture (prologue..epilogue) produced by this
        // module's emitter, inside the owning `JitParts` arena mapping;
        // the caller upholds the data contract above.
        let packed = unsafe {
            let f: EntryFn = std::mem::transmute::<*const u8, EntryFn>(self.entry);
            f(arena, flags, banks)
        };
        (packed & 0xFFFF_FFFF, packed >> 32)
    }
}

/// Per-engine JIT state: one optional compiled body per scheduled
/// partition, all packed into a single shared executable arena, plus
/// the bank table.
///
/// Packing matters: with one page-rounded mapping per partition a big
/// design compiles into thousands of mostly-padding 4 KiB code pages,
/// and the per-wake iTLB/icache misses cost more than the interpreter
/// dispatch the JIT removes. One contiguous mapping, laid out
/// costliest-first, clusters the most-woken bodies on shared pages.
pub struct JitParts {
    // Declared before `arena` as a reminder that the entry pointers
    // point into it (`CompiledPart` has no `Drop`, so order is not
    // load-bearing — the invariant is that both live and die together).
    parts: Vec<Option<CompiledPart>>,
    banks: BankTable,
    /// Keep-alive backing for every `CompiledPart::entry`; never read.
    #[allow(dead_code)]
    arena: Option<ExecBuf>,
}

impl JitParts {
    /// Compiles every partition whose cost estimate clears
    /// [`JIT_MIN_COST`], costliest first until the emitted bytes reach
    /// [`JIT_CODE_BUDGET`]; everything else stays interpreted.
    pub fn build(progs: &[Tier1Program], costs: &[u64], mems: &[MemBank]) -> JitParts {
        let mut emitted: Vec<Option<EmittedCode>> = progs
            .iter()
            .enumerate()
            .map(|(p, prog)| {
                if costs.get(p).copied().unwrap_or(0) >= JIT_MIN_COST {
                    emit_for_host(prog)
                } else {
                    None
                }
            })
            .collect();
        // Budget pass: keep the costliest partitions' bodies (stable on
        // ties, so schedule order breaks them deterministically); the
        // long cheap tail goes back to the interpreter rather than
        // bloating the code arena past what the caches can hold.
        let mut order: Vec<usize> = (0..emitted.len())
            .filter(|&p| emitted[p].is_some())
            .collect();
        order.sort_by_key(|&p| std::cmp::Reverse(costs.get(p).copied().unwrap_or(0)));
        let mut spent = 0usize;
        for &p in &order {
            let size = emitted[p]
                .as_ref()
                .map_or(0, |c| c.bytes.len().next_multiple_of(16));
            if spent + size <= JIT_CODE_BUDGET {
                spent += size;
            } else {
                emitted[p] = None;
            }
        }
        // Lay the arena out costliest-first too: on a big design only a
        // small fraction of partitions wake in any given cycle, so
        // clustering the most-woken bodies beats schedule adjacency for
        // icache/iTLB locality.
        JitParts::pack(emitted, &order, mems)
    }

    /// Compiles every *eligible* partition regardless of cost (testing:
    /// deterministic deopt coverage needs bodies for tiny partitions the
    /// threshold would skip).
    pub fn build_all(progs: &[Tier1Program], mems: &[MemBank]) -> JitParts {
        let emitted: Vec<Option<EmittedCode>> = progs.iter().map(emit_for_host).collect();
        let order: Vec<usize> = (0..emitted.len()).collect();
        JitParts::pack(emitted, &order, mems)
    }

    /// Lays the emitted streams into one W^X arena (16-byte entry
    /// alignment) in the given partition order and resolves per-partition
    /// entry pointers. Mapping failure — or an empty selection — yields a
    /// JIT-free state.
    fn pack(mut emitted: Vec<Option<EmittedCode>>, order: &[usize], mems: &[MemBank]) -> JitParts {
        let banks = BankTable::new(mems);
        let mut blob: Vec<u8> = Vec::new();
        let mut offsets: Vec<Option<(usize, EmittedCode)>> = Vec::new();
        offsets.resize_with(emitted.len(), || None);
        for &p in order {
            offsets[p] = emitted[p].take().map(|code| {
                // Never-executed inter-body padding (0xCC: `int3` on
                // x86-64; arbitrary on aarch64 — every body exits via
                // its own `ret` before the pad).
                blob.resize(blob.len().next_multiple_of(16), 0xCC);
                let off = blob.len();
                blob.extend_from_slice(&code.bytes);
                (off, code)
            });
        }
        let arena = ExecBuf::new(&blob);
        let parts = match &arena {
            Some(buf) => offsets
                .into_iter()
                .map(|slot| {
                    slot.map(|(off, code)| CompiledPart {
                        // SAFETY: `off` is within the blob copied into
                        // the mapping, whose length covers the blob.
                        entry: unsafe { buf.ptr().add(off) },
                        code,
                    })
                })
                .collect(),
            None => offsets.iter().map(|_| None).collect(),
        };
        JitParts {
            parts,
            banks,
            arena,
        }
    }

    /// The compiled body for a scheduled partition, if any.
    pub fn part(&self, sched: usize) -> Option<&CompiledPart> {
        self.parts.get(sched).and_then(|p| p.as_ref())
    }

    /// The bank table pointer for compiled calls.
    pub fn banks(&self) -> *const JitBank {
        self.banks.ptr()
    }

    /// Number of partitions currently running native code.
    pub fn compiled_count(&self) -> usize {
        self.parts.iter().filter(|p| p.is_some()).count()
    }

    /// Drops one partition back to the tier-1 interpreter; returns
    /// whether a compiled body was actually discarded. The body's bytes
    /// stay mapped in the shared arena (bounded by the original compile
    /// set) — only the dispatch entry is removed.
    pub fn deopt(&mut self, sched: usize) -> bool {
        self.parts
            .get_mut(sched)
            .map(|p| p.take().is_some())
            .unwrap_or(false)
    }

    /// Deoptimizes every partition; returns how many were compiled.
    pub fn deopt_all(&mut self) -> usize {
        self.parts
            .iter_mut()
            .filter(|p| p.is_some())
            .map(|p| *p = None)
            .count()
    }
}

/// W^X executable mapping: anonymous RW pages flipped to R+X once the
/// code is in place, via raw Linux syscalls.
struct ExecBuf {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is immutable (R+X) after construction; the
// pointer is only read (and executed) until drop.
unsafe impl Send for ExecBuf {}
// SAFETY: as above — shared access only reads the mapping.
unsafe impl Sync for ExecBuf {}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    #[cfg(target_arch = "x86_64")]
    pub const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    pub const SYS_MPROTECT: usize = 10;
    #[cfg(target_arch = "x86_64")]
    pub const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_MPROTECT: usize = 226;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_MUNMAP: usize = 215;

    pub const PROT_READ: usize = 1;
    pub const PROT_WRITE: usize = 2;
    pub const PROT_EXEC: usize = 4;
    pub const MAP_PRIVATE: usize = 2;
    pub const MAP_ANONYMOUS: usize = 0x20;

    /// Raw six-argument Linux syscall.
    ///
    /// # Safety
    ///
    /// The caller must pass a valid syscall number and arguments per the
    /// kernel ABI; the syscalls used here (`mmap`/`mprotect`/`munmap`
    /// over private anonymous pages this module owns) have no
    /// preconditions beyond that.
    pub unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `syscall` clobbers rcx/r11 (declared) and returns in
        // rax; all six argument registers are passed per the ABI.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `svc 0` takes the number in x8, arguments in x0-x5,
        // and returns in x0 per the AArch64 Linux ABI.
        unsafe {
            core::arch::asm!(
                "svc 0",
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                in("x8") n,
                options(nostack),
            );
        }
        ret
    }

    /// Makes freshly written code visible to the instruction stream.
    /// x86-64 has coherent I/D caches; aarch64 needs explicit
    /// clean-to-PoU / invalidate maintenance.
    ///
    /// # Safety
    ///
    /// `start..start+len` must be a valid mapped range.
    #[allow(unused_variables)]
    pub unsafe fn sync_icache(start: *const u8, len: usize) {
        #[cfg(target_arch = "aarch64")]
        {
            // Conservative 64-byte line; CTR_EL0 could narrow this but
            // over-flushing is only a startup cost.
            let line = 64usize;
            let begin = (start as usize) & !(line - 1);
            let end = start as usize + len;
            let mut p = begin;
            while p < end {
                // SAFETY: `p` lies in the caller-guaranteed mapped range.
                unsafe {
                    core::arch::asm!("dc cvau, {0}", in(reg) p, options(nostack, preserves_flags));
                }
                p += line;
            }
            // SAFETY: barrier instructions have no memory operands.
            unsafe {
                core::arch::asm!("dsb ish", options(nostack, preserves_flags));
            }
            let mut p = begin;
            while p < end {
                // SAFETY: `p` lies in the caller-guaranteed mapped range.
                unsafe {
                    core::arch::asm!("ic ivau, {0}", in(reg) p, options(nostack, preserves_flags));
                }
                p += line;
            }
            // SAFETY: barrier instructions have no memory operands.
            unsafe {
                core::arch::asm!("dsb ish", "isb", options(nostack, preserves_flags));
            }
        }
    }
}

impl ExecBuf {
    /// Maps `code` into an executable page set; `None` on unsupported
    /// targets or syscall failure.
    #[allow(unused_variables)]
    fn new(code: &[u8]) -> Option<ExecBuf> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            if code.is_empty() {
                return None;
            }
            let len = code.len().div_ceil(4096) * 4096;
            // SAFETY: anonymous private mapping with no address hint;
            // arguments follow the mmap ABI.
            let addr = unsafe {
                sys::syscall6(
                    sys::SYS_MMAP,
                    0,
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                    usize::MAX, // fd = -1
                    0,
                )
            };
            if (-4095..=-1).contains(&addr) {
                return None;
            }
            let ptr = addr as *mut u8;
            // SAFETY: `ptr` is a fresh RW mapping of at least `code.len()`
            // bytes owned exclusively by this function.
            unsafe {
                std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
            }
            // SAFETY: flips our own mapping to R+X (the W^X handoff).
            let rc = unsafe {
                sys::syscall6(
                    sys::SYS_MPROTECT,
                    ptr as usize,
                    len,
                    sys::PROT_READ | sys::PROT_EXEC,
                    0,
                    0,
                    0,
                )
            };
            if rc != 0 {
                // SAFETY: unmaps the mapping created above.
                unsafe {
                    sys::syscall6(sys::SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
                }
                return None;
            }
            // SAFETY: the range was just mapped and written.
            unsafe { sys::sync_icache(ptr, code.len()) };
            Some(ExecBuf { ptr, len })
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            None
        }
    }

    fn ptr(&self) -> *const u8 {
        self.ptr
    }
}

impl Drop for ExecBuf {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        // SAFETY: unmaps the mapping this buffer owns; the pointer is
        // never used again (we are in drop).
        unsafe {
            sys::syscall6(sys::SYS_MUNMAP, self.ptr as usize, self.len, 0, 0, 0, 0);
        }
    }
}
