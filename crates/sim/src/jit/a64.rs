//! AArch64 emitter for [`Tier1Program`]s (AAPCS64).
//!
//! Register plan (fixed for the whole body):
//!
//! | register | role                                   |
//! |----------|----------------------------------------|
//! | `x0`     | arena base (argument 1)                |
//! | `x1`     | activity flags base (argument 2)       |
//! | `x2`     | bank table base (argument 3)           |
//! | `x9`     | accumulator (instruction result)       |
//! | `x10`    | second operand / scratch               |
//! | `x11`    | shift amounts / division quotient      |
//! | `x12`    | the constant 1 (fused flag stores)     |
//! | `x13`    | `ops` counter                          |
//! | `x14`    | `dynamic` counter                      |
//! | `x15`    | arena/flag offsets (`movz`/`movk`)     |
//!
//! Arena accesses materialize the word offset in `x15` and use the
//! register-offset form `ldr/str Xt, [x0, x15, lsl #3]`; fused wakes are
//! `strb w12, [x1, x15]`; bank pointers load from the per-call table at
//! `[x2, x15, lsl #3]` with `x15 = c * 2` (16-byte entries). These
//! uniform shapes keep the J07xx auditor's decoder small.
//!
//! AArch64's division semantics line up with the interpreter's edge
//! cases without any branching: `udiv`/`sdiv` return 0 for a zero
//! divisor (and `MIN` for `MIN / -1`, matching the interpreter's `i128`
//! math truncated to a word), and `msub` then reproduces the remainder
//! rules, so `DivU`/`DivS`/`RemU`/`RemS` are all straight-line.

use super::{EmittedCode, JitArch};
use crate::step1::{Inst1, Op1, Tier1Program, NO_FUSE};

const ARENA: u32 = 0;
const FLAGS: u32 = 1;
const BANKS: u32 = 2;
const ACC: u32 = 9;
const SEC: u32 = 10;
const TMP: u32 = 11;
const ONE: u32 = 12;
const OPS: u32 = 13;
const DYN: u32 = 14;
const OFF: u32 = 15;
const XZR: u32 = 31;

// Condition codes.
const EQ: u32 = 0;
const NE: u32 = 1;
const HS: u32 = 2;
const LO: u32 = 3;
const LS: u32 = 9;
const LT: u32 = 11;
const LE: u32 = 13;

/// Branch fixup kinds (differ in immediate field width/position).
#[derive(Clone, Copy)]
enum Fix {
    /// `b` — imm26.
    B,
    /// `b.cond` / `cbz` — imm19 at bit 5.
    Imm19,
    /// `tbz` — imm14 at bit 5.
    Imm14,
}

struct Asm {
    words: Vec<u32>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, usize, Fix)>,
}

impl Asm {
    fn new() -> Asm {
        Asm {
            words: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    fn w(&mut self, word: u32) {
        self.words.push(word);
    }

    fn label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: usize) {
        debug_assert!(self.labels[l].is_none(), "label bound twice");
        self.labels[l] = Some(self.words.len());
    }

    /// `movz rd, #imm16, lsl #(hw*16)`.
    fn movz(&mut self, rd: u32, imm16: u32, hw: u32) {
        self.w(0xD280_0000 | (hw << 21) | (imm16 << 5) | rd);
    }

    /// `movk rd, #imm16, lsl #(hw*16)`.
    fn movk(&mut self, rd: u32, imm16: u32, hw: u32) {
        self.w(0xF280_0000 | (hw << 21) | (imm16 << 5) | rd);
    }

    /// Materializes a 32-bit offset (arena word index, flag byte index,
    /// or bank table word index) in `OFF`.
    fn mov_off(&mut self, off: u32) {
        self.movz(OFF, off & 0xFFFF, 0);
        if off >> 16 != 0 {
            self.movk(OFF, off >> 16, 1);
        }
    }

    /// Materializes an arbitrary 64-bit immediate in `rd`.
    fn mov_imm64(&mut self, rd: u32, imm: u64) {
        self.movz(rd, (imm & 0xFFFF) as u32, 0);
        for hw in 1..4 {
            let part = ((imm >> (16 * hw)) & 0xFFFF) as u32;
            if part != 0 {
                self.movk(rd, part, hw);
            }
        }
    }

    /// `ldr rt, [rn, rm, lsl #3]`.
    fn ldr_idx(&mut self, rt: u32, rn: u32, rm: u32) {
        self.w(0xF860_7800 | (rm << 16) | (rn << 5) | rt);
    }

    /// `str rt, [rn, rm, lsl #3]`.
    fn str_idx(&mut self, rt: u32, rn: u32, rm: u32) {
        self.w(0xF820_7800 | (rm << 16) | (rn << 5) | rt);
    }

    /// Arena word load: `x15 = off; ldr rt, [x0, x15, lsl #3]`.
    fn ld_arena(&mut self, rt: u32, off: u32) {
        self.mov_off(off);
        self.ldr_idx(rt, ARENA, OFF);
    }

    /// Arena word store: `x15 = off; str rt, [x0, x15, lsl #3]`.
    fn st_arena(&mut self, rt: u32, off: u32) {
        self.mov_off(off);
        self.str_idx(rt, ARENA, OFF);
    }

    /// Sign-extension by shift count `s` (`sbfm rt, rt, #0, #(63-s)`,
    /// replicating `step1::sext`); no-op for `s == 0`.
    fn sext(&mut self, rt: u32, s: u8) {
        if s == 0 {
            return;
        }
        self.w(0x9340_0000 | ((63 - s as u32) << 10) | (rt << 5) | rt);
    }

    /// `cmp rn, rm`.
    fn cmp_rr(&mut self, rn: u32, rm: u32) {
        self.w(0xEB00_001F | (rm << 16) | (rn << 5));
    }

    /// `cmp rn, #imm12`.
    fn cmp_imm(&mut self, rn: u32, imm12: u32) {
        self.w(0xF100_001F | (imm12 << 10) | (rn << 5));
    }

    /// `cset rd, cond` (`csinc rd, xzr, xzr, !cond`).
    fn cset(&mut self, rd: u32, cond: u32) {
        self.w(0x9A9F_07E0 | ((cond ^ 1) << 12) | rd);
    }

    /// `csel rd, rn, rm, cond`.
    fn csel(&mut self, rd: u32, rn: u32, rm: u32, cond: u32) {
        self.w(0x9A80_0000 | (rm << 16) | (cond << 12) | (rn << 5) | rd);
    }

    /// `and rd, rn, #((1 << width) - 1)` (contiguous low mask,
    /// `width` in 1..=63).
    fn and_mask(&mut self, rd: u32, rn: u32, width: u32) {
        self.w(0x9240_0000 | ((width - 1) << 10) | (rn << 5) | rd);
    }

    /// `eor rd, rn, rm, lsr #sh` (the parity fold).
    fn eor_lsr(&mut self, rd: u32, rn: u32, rm: u32, sh: u32) {
        self.w(0xCA40_0000 | (rm << 16) | (sh << 10) | (rn << 5) | rd);
    }

    /// `add rd, rd, #1` (counter increment).
    fn inc(&mut self, rd: u32) {
        self.w(0x9100_0400 | (rd << 5) | rd);
    }

    fn b(&mut self, l: usize) {
        self.fixups.push((self.words.len(), l, Fix::B));
        self.w(0x1400_0000);
    }

    fn bcond(&mut self, cond: u32, l: usize) {
        self.fixups.push((self.words.len(), l, Fix::Imm19));
        self.w(0x5400_0000 | cond);
    }

    fn cbz(&mut self, rt: u32, l: usize) {
        self.fixups.push((self.words.len(), l, Fix::Imm19));
        self.w(0xB400_0000 | rt);
    }

    /// `tbz rt, #0, l`.
    fn tbz0(&mut self, rt: u32, l: usize) {
        self.fixups.push((self.words.len(), l, Fix::Imm14));
        self.w(0x3600_0000 | rt);
    }

    /// Patches branches; `None` when a displacement overflows its field.
    fn finish(mut self) -> Option<Vec<u8>> {
        for (pos, l, fix) in std::mem::take(&mut self.fixups) {
            let target = self.labels[l].expect("unbound label");
            let rel = target as i64 - pos as i64;
            let (bits, shift, mask) = match fix {
                Fix::B => (26, 0, 0x03FF_FFFF),
                Fix::Imm19 => (19, 5, 0x7FFFF),
                Fix::Imm14 => (14, 5, 0x3FFF),
            };
            if rel < -(1 << (bits - 1)) || rel >= (1 << (bits - 1)) {
                return None;
            }
            self.words[pos] |= ((rel as u32) & mask) << shift;
        }
        Some(self.words.iter().flat_map(|w| w.to_le_bytes()).collect())
    }
}

/// Emits the full AArch64 stream for `prog`; `None` when the program
/// contains a generic fallback or a branch overflows its range.
pub fn emit(prog: &Tier1Program) -> Option<EmittedCode> {
    if prog.code.iter().any(|i| i.op == Op1::Generic) {
        return None;
    }
    let mut a = Asm::new();
    let inst_labels: Vec<usize> = (0..=prog.code.len()).map(|_| a.label()).collect();

    // Prologue: zero the counters, materialize the flag-store constant.
    a.movz(OPS, 0, 0);
    a.movz(DYN, 0, 0);
    a.movz(ONE, 1, 0);

    let mut marks = Vec::with_capacity(prog.code.len());
    for (pc, inst) in prog.code.iter().enumerate() {
        a.bind(inst_labels[pc]);
        let start = (a.words.len() * 4) as u32;
        emit_inst(&mut a, prog, inst, &inst_labels);
        marks.push((start, (a.words.len() * 4) as u32));
    }
    a.bind(inst_labels[prog.code.len()]);

    // Epilogue: x0 = ops | (dynamic << 32); ret.
    a.w(0xAA00_0000 | (DYN << 16) | (32 << 10) | (OPS << 5)); // orr x0, x13, x14, lsl #32
    a.w(0xD65F_03C0); // ret

    Some(EmittedCode {
        arch: JitArch::A64,
        bytes: a.finish()?,
        marks,
    })
}

fn emit_inst(a: &mut Asm, prog: &Tier1Program, inst: &Inst1, inst_labels: &[usize]) {
    /// Loads both operands with their sign extensions.
    fn load_ab(a: &mut Asm, inst: &Inst1) {
        a.ld_arena(ACC, inst.a);
        a.sext(ACC, inst.sxa);
        a.ld_arena(SEC, inst.b);
        a.sext(SEC, inst.sxb);
    }

    match inst.op {
        Op1::Add => {
            load_ab(a, inst);
            a.w(0x8B00_0000 | (SEC << 16) | (ACC << 5) | ACC); // add
        }
        Op1::Sub => {
            load_ab(a, inst);
            a.w(0xCB00_0000 | (SEC << 16) | (ACC << 5) | ACC); // sub
        }
        Op1::Mul => {
            load_ab(a, inst);
            a.w(0x9B00_7C00 | (SEC << 16) | (ACC << 5) | ACC); // mul
        }
        Op1::DivU | Op1::DivS => {
            // udiv/sdiv already return 0 for b == 0, and sdiv MIN / -1
            // wraps to MIN — both exactly the interpreter's results.
            load_ab(a, inst);
            let op = if inst.op == Op1::DivU { 0x0800 } else { 0x0C00 };
            a.w(0x9AC0_0000 | op | (SEC << 16) | (ACC << 5) | ACC);
        }
        Op1::RemU | Op1::RemS => {
            // q = a / b (0 when b == 0); r = a - q*b, which yields `a`
            // for b == 0 and 0 for b == -1 — the interpreter's rules.
            load_ab(a, inst);
            let op = if inst.op == Op1::RemU { 0x0800 } else { 0x0C00 };
            a.w(0x9AC0_0000 | op | (SEC << 16) | (ACC << 5) | TMP);
            // msub acc, tmp, sec, acc
            a.w(0x9B00_8000 | (SEC << 16) | (ACC << 10) | (TMP << 5) | ACC);
        }
        Op1::LtU | Op1::LtS | Op1::LeqU | Op1::LeqS | Op1::Eq | Op1::Neq => {
            load_ab(a, inst);
            a.cmp_rr(ACC, SEC);
            a.cset(
                ACC,
                match inst.op {
                    Op1::LtU => LO,
                    Op1::LtS => LT,
                    Op1::LeqU => LS,
                    Op1::LeqS => LE,
                    Op1::Eq => EQ,
                    _ => NE,
                },
            );
        }
        Op1::Shl => {
            if inst.imm >= inst.sxc as u64 {
                a.movz(ACC, 0, 0);
            } else {
                a.ld_arena(ACC, inst.a);
                if inst.imm > 0 {
                    a.movz(TMP, inst.imm as u32, 0);
                    a.w(0x9AC0_2000 | (TMP << 16) | (ACC << 5) | ACC); // lslv
                }
            }
        }
        Op1::ShrU => {
            if inst.imm >= 64 {
                a.movz(ACC, 0, 0);
            } else {
                a.ld_arena(ACC, inst.a);
                if inst.imm > 0 {
                    a.movz(TMP, inst.imm as u32, 0);
                    a.w(0x9AC0_2400 | (TMP << 16) | (ACC << 5) | ACC); // lsrv
                }
            }
        }
        Op1::ShrS => {
            a.ld_arena(ACC, inst.a);
            a.sext(ACC, inst.sxa);
            let sh = inst.imm.min(63) as u32;
            if sh > 0 {
                a.movz(TMP, sh, 0);
                a.w(0x9AC0_2800 | (TMP << 16) | (ACC << 5) | ACC); // asrv
            }
        }
        Op1::Dshl | Op1::DshrU => {
            // Shift unconditionally (lslv/lsrv wrap mod 64), then select
            // zero for out-of-range counts — branchless.
            a.ld_arena(SEC, inst.b);
            a.ld_arena(ACC, inst.a);
            let (op, bound) = if inst.op == Op1::Dshl {
                (0x2000, inst.sxc as u32) // destination width
            } else {
                (0x2400, 64)
            };
            a.w(0x9AC0_0000 | op | (SEC << 16) | (ACC << 5) | ACC);
            a.cmp_imm(SEC, bound);
            a.csel(ACC, ACC, XZR, LO);
        }
        Op1::DshrS => {
            a.ld_arena(SEC, inst.b);
            a.movz(TMP, 63, 0);
            a.cmp_rr(SEC, TMP);
            a.csel(SEC, SEC, TMP, LS); // sh = min(sh, 63)
            a.ld_arena(ACC, inst.a);
            a.sext(ACC, inst.sxa);
            a.w(0x9AC0_2800 | (SEC << 16) | (ACC << 5) | ACC); // asrv
        }
        Op1::Neg => {
            a.ld_arena(ACC, inst.a);
            a.sext(ACC, inst.sxa);
            a.w(0xCB00_0000 | (ACC << 16) | (XZR << 5) | ACC); // neg
        }
        Op1::Not => {
            a.ld_arena(ACC, inst.a);
            a.sext(ACC, inst.sxa);
            a.w(0xAA20_0000 | (ACC << 16) | (XZR << 5) | ACC); // mvn
        }
        Op1::And | Op1::Or | Op1::Xor => {
            load_ab(a, inst);
            let op = match inst.op {
                Op1::And => 0x8A00_0000,
                Op1::Or => 0xAA00_0000,
                _ => 0xCA00_0000,
            };
            a.w(op | (SEC << 16) | (ACC << 5) | ACC);
        }
        Op1::Andr => {
            a.ld_arena(ACC, inst.a);
            a.mov_imm64(SEC, inst.imm);
            a.cmp_rr(ACC, SEC);
            a.cset(ACC, EQ);
        }
        Op1::Orr => {
            a.ld_arena(ACC, inst.a);
            a.cmp_imm(ACC, 0);
            a.cset(ACC, NE);
        }
        Op1::Xorr => {
            // Parity by xor-folding (no scalar popcount on base AArch64).
            a.ld_arena(ACC, inst.a);
            for sh in [32, 16, 8, 4, 2, 1] {
                a.eor_lsr(ACC, ACC, ACC, sh);
            }
            a.and_mask(ACC, ACC, 1);
        }
        Op1::Cat => {
            a.ld_arena(ACC, inst.a);
            a.movz(TMP, inst.imm as u32, 0);
            a.w(0x9AC0_2000 | (TMP << 16) | (ACC << 5) | ACC); // lslv
            a.ld_arena(SEC, inst.b);
            a.w(0xAA00_0000 | (SEC << 16) | (ACC << 5) | ACC); // orr
        }
        Op1::Bits => {
            a.ld_arena(ACC, inst.a);
            if inst.imm > 0 {
                a.movz(TMP, inst.imm as u32, 0);
                a.w(0x9AC0_2400 | (TMP << 16) | (ACC << 5) | ACC); // lsrv
            }
        }
        Op1::Ext => {
            a.ld_arena(ACC, inst.a);
            a.sext(ACC, inst.sxa);
        }
        Op1::Mux => {
            let (low, done) = (a.label(), a.label());
            a.ld_arena(ACC, inst.a);
            a.tbz0(ACC, low);
            a.ld_arena(ACC, inst.b);
            a.sext(ACC, inst.sxb);
            a.b(done);
            a.bind(low);
            a.ld_arena(ACC, inst.c);
            a.sext(ACC, inst.sxc);
            a.bind(done);
        }
        Op1::MemRead => {
            let (zero, done) = (a.label(), a.label());
            a.ld_arena(ACC, inst.b); // en
            a.tbz0(ACC, zero);
            a.ld_arena(ACC, inst.a); // addr
            a.mov_imm64(SEC, inst.imm); // depth
            a.cmp_rr(ACC, SEC);
            a.bcond(HS, zero);
            a.mov_off(inst.c * 2); // 16-byte table entries
            a.ldr_idx(SEC, BANKS, OFF); // bank data pointer
            a.ldr_idx(ACC, SEC, ACC); // bank[addr]
            a.b(done);
            a.bind(zero);
            a.movz(ACC, 0, 0);
            a.bind(done);
        }
        Op1::Jmp => {
            a.b(inst_labels[inst.a as usize]);
            return;
        }
        Op1::JmpIf0 => {
            a.ld_arena(ACC, inst.b);
            a.and_mask(ACC, ACC, 1);
            a.cbz(ACC, inst_labels[inst.a as usize]);
            return;
        }
        Op1::Generic => unreachable!("emit rejects Generic programs"),
    }

    // Tail: count the op, mask, store (with the fused CCSS trigger
    // compare-and-wake when this instruction defines a fused output).
    a.inc(OPS);
    if inst.mask != u64::MAX {
        // Result masks are contiguous low-bit masks by construction.
        debug_assert_eq!(inst.mask, essent_bits::top_mask(inst.mask.count_ones()));
        a.and_mask(ACC, ACC, inst.mask.count_ones());
    }
    if inst.ws == NO_FUSE {
        a.st_arena(ACC, inst.dst);
    } else {
        let skip = a.label();
        a.inc(DYN);
        a.mov_off(inst.dst);
        a.ldr_idx(SEC, ARENA, OFF);
        a.cmp_rr(ACC, SEC);
        a.bcond(EQ, skip);
        a.str_idx(ACC, ARENA, OFF); // x15 still holds dst
        for &c in &prog.consumers[inst.ws as usize..inst.we as usize] {
            a.mov_off(c);
            // strb w12, [x1, x15]
            a.w(0x3820_6800 | (OFF << 16) | (FLAGS << 5) | ONE);
        }
        a.bind(skip);
    }
}
