//! Value Change Dump (VCD) waveform writer.
//!
//! The paper points out that even the ubiquitous VCD format exploits
//! inactivity: it only records signals when they change. This writer does
//! exactly that — it tracks previous values and emits deltas — so dumping
//! a low-activity design is cheap.

use crate::machine::Machine;
use essent_netlist::{Netlist, SignalDef, SignalId};
use std::io::{self, Write};

/// Streaming VCD writer over a machine's named signals.
pub struct VcdWriter<W: Write> {
    out: W,
    tracked: Vec<Tracked>,
    started: bool,
}

struct Tracked {
    sig: SignalId,
    code: String,
    width: u32,
    prev: Option<Vec<u64>>,
}

/// Short printable-ASCII identifier codes, VCD style.
fn code_for(index: usize) -> String {
    let mut i = index;
    let mut code = String::new();
    loop {
        code.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    code
}

/// VCD identifiers cannot contain whitespace of any kind (tabs and
/// newlines are legal in FIRRTL-escaped ids and would corrupt the
/// stream); every ASCII whitespace or control character becomes `_`.
/// Dots from memory ports are kept (legal), `$` from inlining too.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_whitespace() || c.is_ascii_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

impl<W: Write> VcdWriter<W> {
    /// Creates a writer tracking every *named* signal (generated
    /// temporaries `_T*`/`_C*`/`_GEN*` are skipped) plus all ports.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut out: W, netlist: &Netlist, design_name: &str) -> io::Result<VcdWriter<W>> {
        writeln!(out, "$date\n  (essent-rs)\n$end")?;
        writeln!(out, "$version\n  essent-rs VCD dumper\n$end")?;
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", sanitize(design_name))?;
        let mut tracked = Vec::new();
        for (i, s) in netlist.signals().iter().enumerate() {
            if s.name.starts_with("_T")
                || s.name.starts_with("_C")
                || s.name.starts_with("_GEN")
                || matches!(s.def, SignalDef::Const(_))
            {
                continue;
            }
            let code = code_for(tracked.len());
            writeln!(
                out,
                "$var wire {} {} {} $end",
                s.width.max(1),
                code,
                sanitize(&s.name)
            )?;
            tracked.push(Tracked {
                sig: SignalId(i as u32),
                code,
                width: s.width,
                prev: None,
            });
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(VcdWriter {
            out,
            tracked,
            started: false,
        })
    }

    /// Number of tracked signals.
    pub fn tracked_signals(&self) -> usize {
        self.tracked.len()
    }

    /// Emits one timestep: only signals whose value changed are dumped
    /// (the first sample dumps everything under `$dumpvars`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sample(&mut self, machine: &Machine, time: u64) -> io::Result<()> {
        if !self.started {
            // Viewers expect the initial `$dumpvars` block at time zero
            // — even when sampling starts later, every variable needs a
            // defined value from #0 on.
            writeln!(self.out, "#0")?;
            writeln!(self.out, "$dumpvars")?;
            for t in &mut self.tracked {
                let cur = machine.slot(t.sig);
                write_value(&mut self.out, cur, t.width, &t.code)?;
                t.prev = Some(cur.to_vec());
            }
            writeln!(self.out, "$end")?;
            self.started = true;
            if time != 0 {
                writeln!(self.out, "#{time}")?;
            }
            return Ok(());
        }
        writeln!(self.out, "#{time}")?;
        for t in &mut self.tracked {
            let cur = machine.slot(t.sig);
            let changed = match &t.prev {
                Some(prev) => prev.as_slice() != cur,
                None => true,
            };
            if changed {
                write_value(&mut self.out, cur, t.width, &t.code)?;
                t.prev = Some(cur.to_vec());
            }
        }
        Ok(())
    }
}

fn write_value<W: Write>(out: &mut W, words: &[u64], width: u32, code: &str) -> io::Result<()> {
    if width <= 1 {
        writeln!(out, "{}{}", words[0] & 1, code)
    } else {
        let mut s = String::with_capacity(width as usize + code.len() + 2);
        s.push('b');
        for bit in (0..width).rev() {
            let w = (bit / 64) as usize;
            let set = (words.get(w).copied().unwrap_or(0) >> (bit % 64)) & 1 == 1;
            s.push(if set { '1' } else { '0' });
        }
        s.push(' ');
        s.push_str(code);
        writeln!(out, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Simulator};
    use crate::full_cycle::FullCycleSim;
    use essent_bits::Bits;

    #[test]
    fn dumps_only_changes() {
        let src = "circuit V :\n  module V :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<4>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    q <= r\n";
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        let n = essent_netlist::Netlist::from_circuit(&lowered).unwrap();
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let mut buf = Vec::new();
        let mut vcd = VcdWriter::new(&mut buf, &n, "V").unwrap();
        sim.poke("reset", Bits::from_u64(1, 1));
        for t in 0..6 {
            sim.step(1);
            vcd.sample(sim.machine(), t).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("$dumpvars"));
        // Under reset nothing changes after the first dump: later
        // timesteps are bare markers.
        let after_dump = text.split("$end").last().unwrap();
        let change_lines = after_dump
            .lines()
            .filter(|l| l.starts_with('b') || l.starts_with('0') || l.starts_with('1'))
            .count();
        assert_eq!(
            change_lines, 0,
            "reset-held design must dump nothing:\n{text}"
        );
    }

    #[test]
    fn sanitize_escapes_all_ascii_whitespace() {
        assert_eq!(sanitize("a b\tc\nd\re"), "a_b_c_d_e");
        assert_eq!(sanitize("m.r.data$0"), "m.r.data$0");
        assert_eq!(sanitize("x\u{b}y\u{c}z"), "x_y_z");
    }

    /// Id code → `(name, width)` from the header var table.
    type VcdVars = std::collections::HashMap<String, (String, u32)>;
    /// `(time, code, bits-as-string)` value changes in stream order.
    type VcdEvents = Vec<(u64, String, String)>;

    /// Minimal VCD reader: header var table, then timestamped value
    /// changes. Panics on malformed structure.
    fn parse_vcd(text: &str) -> (VcdVars, VcdEvents) {
        let mut vars = std::collections::HashMap::new();
        let mut events = Vec::new();
        let mut lines = text.lines();
        // Header.
        for line in lines.by_ref() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks.as_slice() {
                ["$var", "wire", w, code, name, "$end"] => {
                    let width: u32 = w.parse().expect("var width");
                    vars.insert(code.to_string(), (name.to_string(), width));
                }
                ["$enddefinitions", "$end"] => break,
                _ => {
                    assert!(
                        !line.contains("$var"),
                        "malformed $var line (whitespace in a name?): {line:?}"
                    );
                }
            }
        }
        // Body.
        let mut time: Option<u64> = None;
        let mut in_dump = false;
        for line in lines {
            if let Some(t) = line.strip_prefix('#') {
                time = Some(t.parse().expect("timestamp"));
            } else if line == "$dumpvars" {
                in_dump = true;
            } else if line == "$end" {
                assert!(in_dump, "stray $end");
                in_dump = false;
            } else if let Some(rest) = line.strip_prefix('b') {
                let (bits, code) = rest.split_once(' ').expect("vector change");
                events.push((
                    time.expect("change before #time"),
                    code.to_string(),
                    bits.to_string(),
                ));
            } else {
                let (v, code) = line.split_at(1);
                assert!(v == "0" || v == "1", "scalar change: {line:?}");
                events.push((
                    time.expect("change before #time"),
                    code.to_string(),
                    v.to_string(),
                ));
            }
        }
        for (_, code, _) in &events {
            assert!(
                vars.contains_key(code),
                "change for undeclared var {code:?}"
            );
        }
        (vars, events)
    }

    #[test]
    fn roundtrips_through_parser_with_hostile_names_and_late_start() {
        let src = "circuit V :\n  module V :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<4>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    q <= r\n";
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        let mut n = essent_netlist::Netlist::from_circuit(&lowered).unwrap();
        // A FIRRTL-escaped-id-style name with tabs and newlines.
        let q = n.find("q").unwrap();
        n.signal_mut(q).name = "out\tport\nq".into();
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let mut buf = Vec::new();
        let mut vcd = VcdWriter::new(&mut buf, &n, "V design").unwrap();
        sim.poke("reset", Bits::from_u64(1, 1));
        sim.step(2);
        sim.poke("reset", Bits::from_u64(0, 1));
        // First sample at a nonzero time: the writer must still open
        // with a #0 $dumpvars block.
        for t in 3..8u64 {
            sim.step(1);
            vcd.sample(sim.machine(), t).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let (vars, events) = parse_vcd(&text);
        assert!(vars
            .values()
            .any(|(name, w)| name == "out_port_q" && *w == 4));

        // Timestamps start at zero and increase monotonically.
        let times: Vec<u64> = events.iter().map(|(t, ..)| *t).collect();
        assert_eq!(times.first(), Some(&0), "initial dump must be at #0");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "non-monotonic: {times:?}"
        );

        // The #0 dump covers every declared variable.
        let at_zero: std::collections::BTreeSet<&String> = events
            .iter()
            .filter(|(t, ..)| *t == 0)
            .map(|(_, code, _)| code)
            .collect();
        assert_eq!(at_zero.len(), vars.len(), "$dumpvars must cover all vars");

        // Replaying the deltas reproduces the machine's final values.
        let mut finals: std::collections::HashMap<String, String> = Default::default();
        for (_, code, bits) in &events {
            finals.insert(code.clone(), bits.clone());
        }
        let (q_code, _) = vars
            .iter()
            .find(|(_, (name, _))| name == "out_port_q")
            .unwrap();
        let got = u64::from_str_radix(&finals[q_code], 2).unwrap();
        assert_eq!(Some(got), sim.peek_id(q).to_u64());
    }

    #[test]
    fn code_generation_is_unique() {
        let codes: Vec<String> = (0..500).map(code_for).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }
}
