//! Value Change Dump (VCD) waveform writer.
//!
//! The paper points out that even the ubiquitous VCD format exploits
//! inactivity: it only records signals when they change. This writer does
//! exactly that — it tracks previous values and emits deltas — so dumping
//! a low-activity design is cheap.

use crate::machine::Machine;
use essent_netlist::{Netlist, SignalDef, SignalId};
use std::io::{self, Write};

/// Streaming VCD writer over a machine's named signals.
pub struct VcdWriter<W: Write> {
    out: W,
    tracked: Vec<Tracked>,
    started: bool,
}

struct Tracked {
    sig: SignalId,
    code: String,
    width: u32,
    prev: Option<Vec<u64>>,
}

/// Short printable-ASCII identifier codes, VCD style.
fn code_for(index: usize) -> String {
    let mut i = index;
    let mut code = String::new();
    loop {
        code.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    code
}

/// VCD identifiers cannot contain whitespace; dots from memory ports are
/// kept (legal), `$` from inlining is kept too.
fn sanitize(name: &str) -> String {
    name.replace(' ', "_")
}

impl<W: Write> VcdWriter<W> {
    /// Creates a writer tracking every *named* signal (generated
    /// temporaries `_T*`/`_C*`/`_GEN*` are skipped) plus all ports.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut out: W, netlist: &Netlist, design_name: &str) -> io::Result<VcdWriter<W>> {
        writeln!(out, "$date\n  (essent-rs)\n$end")?;
        writeln!(out, "$version\n  essent-rs VCD dumper\n$end")?;
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", sanitize(design_name))?;
        let mut tracked = Vec::new();
        for (i, s) in netlist.signals().iter().enumerate() {
            if s.name.starts_with("_T")
                || s.name.starts_with("_C")
                || s.name.starts_with("_GEN")
                || matches!(s.def, SignalDef::Const(_))
            {
                continue;
            }
            let code = code_for(tracked.len());
            writeln!(
                out,
                "$var wire {} {} {} $end",
                s.width.max(1),
                code,
                sanitize(&s.name)
            )?;
            tracked.push(Tracked {
                sig: SignalId(i as u32),
                code,
                width: s.width,
                prev: None,
            });
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(VcdWriter {
            out,
            tracked,
            started: false,
        })
    }

    /// Number of tracked signals.
    pub fn tracked_signals(&self) -> usize {
        self.tracked.len()
    }

    /// Emits one timestep: only signals whose value changed are dumped
    /// (the first sample dumps everything under `$dumpvars`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sample(&mut self, machine: &Machine, time: u64) -> io::Result<()> {
        writeln!(self.out, "#{time}")?;
        if !self.started {
            writeln!(self.out, "$dumpvars")?;
        }
        for t in &mut self.tracked {
            let cur = machine.slot(t.sig);
            let changed = match &t.prev {
                Some(prev) => prev.as_slice() != cur,
                None => true,
            };
            if changed {
                write_value(&mut self.out, cur, t.width, &t.code)?;
                t.prev = Some(cur.to_vec());
            }
        }
        if !self.started {
            writeln!(self.out, "$end")?;
            self.started = true;
        }
        Ok(())
    }
}

fn write_value<W: Write>(out: &mut W, words: &[u64], width: u32, code: &str) -> io::Result<()> {
    if width <= 1 {
        writeln!(out, "{}{}", words[0] & 1, code)
    } else {
        let mut s = String::with_capacity(width as usize + code.len() + 2);
        s.push('b');
        for bit in (0..width).rev() {
            let w = (bit / 64) as usize;
            let set = (words.get(w).copied().unwrap_or(0) >> (bit % 64)) & 1 == 1;
            s.push(if set { '1' } else { '0' });
        }
        s.push(' ');
        s.push_str(code);
        writeln!(out, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Simulator};
    use crate::full_cycle::FullCycleSim;
    use essent_bits::Bits;

    #[test]
    fn dumps_only_changes() {
        let src = "circuit V :\n  module V :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<4>\n    reg r : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))\n    r <= tail(add(r, UInt<4>(1)), 1)\n    q <= r\n";
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        let n = essent_netlist::Netlist::from_circuit(&lowered).unwrap();
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let mut buf = Vec::new();
        let mut vcd = VcdWriter::new(&mut buf, &n, "V").unwrap();
        sim.poke("reset", Bits::from_u64(1, 1));
        for t in 0..6 {
            sim.step(1);
            vcd.sample(sim.machine(), t).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("$dumpvars"));
        // Under reset nothing changes after the first dump: later
        // timesteps are bare markers.
        let after_dump = text.split("$end").last().unwrap();
        let change_lines = after_dump
            .lines()
            .filter(|l| l.starts_with('b') || l.starts_with('0') || l.starts_with('1'))
            .count();
        assert_eq!(
            change_lines, 0,
            "reset-held design must dump nothing:\n{text}"
        );
    }

    #[test]
    fn code_generation_is_unique() {
        let codes: Vec<String> = (0..500).map(code_for).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }
}
