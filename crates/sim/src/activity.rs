//! Activity-factor measurement (paper Figure 5).
//!
//! The *activity factor* of a cycle is the fraction of design signals
//! whose value changed that cycle. The paper measures it across designs
//! and workloads and finds it is typically a few percent — the headroom
//! essential signal simulation exploits.
//!
//! [`ActivityProbe`] snapshots the whole value arena each sampled cycle
//! and counts changed signals; attach it to any engine exposing its
//! [`Machine`]. It also accumulates the Figure 5 histogram (log-scale
//! buckets are applied by the plotting harness; the probe stores exact
//! per-cycle fractions).

use crate::machine::Machine;
use essent_netlist::{SignalDef, SignalId};

/// Per-cycle activity sampler.
#[derive(Debug, Clone)]
pub struct ActivityProbe {
    prev: Vec<u64>,
    /// Indices (offset, words) of the signals counted.
    tracked: Vec<(u32, u16)>,
    /// Per-cycle fraction of tracked signals that changed.
    samples: Vec<f64>,
    first: bool,
}

impl ActivityProbe {
    /// Tracks every stateful or computed signal of the machine's design
    /// (inputs and constants are excluded — input activity is the
    /// testbench's, not the design's).
    pub fn new(machine: &Machine) -> ActivityProbe {
        let mut tracked = Vec::new();
        for (i, s) in machine.netlist.signals().iter().enumerate() {
            if matches!(
                s.def,
                SignalDef::Op(_) | SignalDef::MemRead { .. } | SignalDef::RegOut(_)
            ) {
                let sig = SignalId(i as u32);
                tracked.push((
                    machine.layout.offset(sig) as u32,
                    machine.layout.words(sig) as u16,
                ));
            }
        }
        ActivityProbe {
            prev: machine.arena.clone(),
            tracked,
            samples: Vec::new(),
            first: true,
        }
    }

    /// Number of signals tracked.
    pub fn tracked_signals(&self) -> usize {
        self.tracked.len()
    }

    /// Samples one cycle: counts signals whose value differs from the
    /// previous sample and records the fraction. Call once per simulated
    /// cycle, after `step(1)`.
    pub fn sample(&mut self, machine: &Machine) -> f64 {
        if self.first {
            // The first sample has no predecessor; treat as full activity
            // (everything was just initialized/evaluated).
            self.first = false;
            self.prev.copy_from_slice(&machine.arena);
            self.samples.push(1.0);
            return 1.0;
        }
        let mut changed = 0usize;
        for &(off, words) in &self.tracked {
            let (o, w) = (off as usize, words as usize);
            if machine.arena[o..o + w] != self.prev[o..o + w] {
                changed += 1;
            }
        }
        self.prev.copy_from_slice(&machine.arena);
        let frac = if self.tracked.is_empty() {
            0.0
        } else {
            changed as f64 / self.tracked.len() as f64
        };
        self.samples.push(frac);
        frac
    }

    /// All recorded per-cycle activity fractions.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean activity factor over all sampled cycles (excluding the
    /// all-active first sample).
    pub fn mean(&self) -> f64 {
        if self.samples.len() <= 1 {
            return 0.0;
        }
        let body = &self.samples[1..];
        body.iter().sum::<f64>() / body.len() as f64
    }

    /// Histogram of activity fractions over `bins` equal-width buckets of
    /// `[0, max]`; returns (bucket upper bounds, counts). The Figure 5
    /// reproduction plots this with a logarithmic count axis.
    pub fn histogram(&self, bins: usize, max: f64) -> (Vec<f64>, Vec<u64>) {
        let mut counts = vec![0u64; bins];
        let edges: Vec<f64> = (1..=bins).map(|i| max * i as f64 / bins as f64).collect();
        for &s in self.samples.iter().skip(1) {
            let mut b = ((s / max) * bins as f64) as usize;
            if b >= bins {
                b = bins - 1;
            }
            counts[b] += 1;
        }
        (edges, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Simulator};
    use crate::full_cycle::FullCycleSim;
    use essent_bits::Bits;

    fn netlist_of(src: &str) -> essent_netlist::Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        essent_netlist::Netlist::from_circuit(&lowered).unwrap()
    }

    #[test]
    fn quiescent_design_has_zero_activity() {
        let n = netlist_of("circuit Q :\n  module Q :\n    input clock : Clock\n    input a : UInt<8>\n    output o : UInt<8>\n    reg r : UInt<8>, clock\n    r <= a\n    o <= r\n");
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let mut probe = ActivityProbe::new(sim.machine());
        sim.poke("a", Bits::from_u64(5, 8));
        for _ in 0..5 {
            sim.step(1);
            probe.sample(sim.machine());
        }
        // After settling, nothing changes.
        assert_eq!(*probe.samples().last().unwrap(), 0.0);
    }

    /// Exact per-cycle fractions on a hand-traced four-signal circuit:
    /// `t` (toggle register), `nt = not(t)`, `c` (register fed
    /// `xor(c, t)`), `xc = xor(c, t)`. Lowering expands each named
    /// signal into a small copy chain, but every tracked signal still
    /// carries one of exactly two values, so the trace stays
    /// hand-computable:
    ///
    /// * group A (4 signals: `t`, `t$next`, `nt`, `_T0`) — all hold
    ///   `not(t_old)`, which flips **every** cycle;
    /// * group B (5 signals: `c`, `c$next`, `xc`, `_T1`, `o`) — all hold
    ///   `xor(c_old, t_old)`, whose sequence from `(t,c) = (0,0)` is
    ///   `0, 1, 1, 0, 0, 1, 1, 0…` — it changes only on even cycles.
    ///
    /// | cycle | changed        | fraction |
    /// |-------|----------------|----------|
    /// | 1     | (first sample) | 1.0      |
    /// | 2     | A and B        | 1.0      |
    /// | 3     | A only         | 4/9      |
    /// | 4     | A and B        | 1.0      |
    ///
    /// …then period-2: 4/9, 1.0, 4/9, 1.0.
    #[test]
    fn hand_computed_four_signal_fractions() {
        let n = netlist_of(
            "circuit H :\n  module H :\n    input clock : Clock\n    output o : UInt<1>\n    reg t : UInt<1>, clock\n    reg c : UInt<1>, clock\n    node nt = not(t)\n    node xc = xor(c, t)\n    t <= nt\n    c <= xc\n    o <= xc\n",
        );
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let mut probe = ActivityProbe::new(sim.machine());
        assert_eq!(
            probe.tracked_signals(),
            9,
            "group A (t, t$next, nt, _T0) plus group B (c, c$next, xc, _T1, o)"
        );
        for _ in 0..8 {
            sim.step(1);
            probe.sample(sim.machine());
        }
        let b = 4.0 / 9.0;
        assert_eq!(
            probe.samples(),
            &[1.0, 1.0, b, 1.0, b, 1.0, b, 1.0],
            "per-cycle activity fractions must match the hand trace"
        );
        let expect_mean = (4.0 + 3.0 * b) / 7.0;
        assert!((probe.mean() - expect_mean).abs() < 1e-12);
    }

    #[test]
    fn counter_has_nonzero_activity() {
        let n = netlist_of("circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n");
        let mut sim = FullCycleSim::new(&n, &EngineConfig::default());
        let mut probe = ActivityProbe::new(sim.machine());
        sim.poke("reset", Bits::from_u64(0, 1));
        for _ in 0..10 {
            sim.step(1);
            probe.sample(sim.machine());
        }
        assert!(
            probe.mean() > 0.5,
            "a free-running counter changes most signals"
        );
        let (_edges, counts) = probe.histogram(10, 1.0);
        assert_eq!(
            counts.iter().sum::<u64>() as usize,
            probe.samples().len() - 1
        );
    }
}
