//! Random synchronous-circuit generation for differential testing.
//!
//! Produces valid FIRRTL text with registers, memories, `when` blocks,
//! and a spread of primitive operations — the stimulus source for the
//! cross-engine equivalence suite and for debugging miscompares.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// A generated circuit: FIRRTL source plus its interface.
pub struct GenCircuit {
    pub source: String,
    pub inputs: Vec<(String, u32)>,
    pub outputs: Vec<String>,
}

/// Generates a random synchronous circuit as FIRRTL text.
///
/// The generator tracks widths so every op application is well-typed by
/// the FIRRTL rules; connects rely on the frontend's width adaptation.
pub fn gen_circuit(seed: u64) -> GenCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = String::new();
    // (name, width) pool of unsigned signals usable as operands.
    let mut pool: Vec<(String, u32)> = Vec::new();

    let n_inputs = rng.gen_range(2..=4);
    let mut inputs = Vec::new();
    let mut ports = String::new();
    ports.push_str("    input clock : Clock\n    input reset : UInt<1>\n");
    inputs.push(("reset".to_string(), 1));
    for i in 0..n_inputs {
        let w = *[1u32, 4, 8, 13, 20, 33, 65]
            .get(rng.gen_range(0usize..7))
            .unwrap();
        let name = format!("in{i}");
        let _ = writeln!(ports, "    input {name} : UInt<{w}>");
        inputs.push((name.clone(), w));
        pool.push((name, w));
    }

    // Registers (declared up front, driven later).
    let n_regs = rng.gen_range(1..=4);
    let mut regs = Vec::new();
    for i in 0..n_regs {
        let w: u32 = rng.gen_range(1..=24);
        let name = format!("r{i}");
        let init = rng.gen_range(0..(1u64 << w.min(30)));
        let _ = writeln!(
            body,
            "    reg {name} : UInt<{w}>, clock with : (reset => (reset, UInt<{w}>({init})))"
        );
        regs.push((name.clone(), w));
        pool.push((name, w));
    }

    // Optional memory.
    let has_mem = rng.gen_bool(0.5);
    if has_mem {
        body.push_str("    mem m :\n      data-type => UInt<8>\n      depth => 8\n      read-latency => 0\n      write-latency => 1\n      reader => rd\n      writer => wr\n      read-under-write => undefined\n");
    }

    // Random expression nodes.
    let n_nodes = rng.gen_range(5..=25);
    for i in 0..n_nodes {
        let pick = |rng: &mut StdRng, pool: &[(String, u32)]| -> (String, u32) {
            pool[rng.gen_range(0..pool.len())].clone()
        };
        let (a, aw) = pick(&mut rng, &pool);
        let (b, bw) = pick(&mut rng, &pool);
        let name = format!("n{i}");
        let (expr, w) = match rng.gen_range(0..20) {
            0 => (format!("add({a}, {b})"), aw.max(bw) + 1),
            1 => (format!("sub({a}, {b})"), aw.max(bw) + 1),
            2 if aw + bw <= 70 => (format!("mul({a}, {b})"), aw + bw),
            3 => (format!("and({a}, {b})"), aw.max(bw)),
            4 => (format!("or({a}, {b})"), aw.max(bw)),
            5 => (format!("xor({a}, {b})"), aw.max(bw)),
            6 if aw + bw <= 70 => (format!("cat({a}, {b})"), aw + bw),
            7 => {
                let hi = rng.gen_range(0..aw);
                let lo = rng.gen_range(0..=hi);
                (format!("bits({a}, {hi}, {lo})"), hi - lo + 1)
            }
            8 => (format!("eq({a}, {b})"), 1),
            9 => (format!("lt({a}, {b})"), 1),
            10 => (format!("not({a})"), aw),
            11 => {
                let sel = pool
                    .iter()
                    .filter(|(_, w)| *w == 1)
                    .map(|(n, _)| n.clone())
                    .next()
                    .unwrap_or_else(|| "reset".to_string());
                // mux needs equal-width branches: pad the narrower.
                let w = aw.max(bw);
                (format!("mux({sel}, pad({a}, {w}), pad({b}, {w}))"), w)
            }
            12 => (format!("orr({a})"), 1),
            13 => {
                let sh = rng.gen_range(0u32..8);
                (format!("shl({a}, {sh})"), aw + sh)
            }
            // Signed arithmetic: reinterpret/convert to SInt, compute,
            // and cast the result back so the pool stays uniformly
            // unsigned. Exercises sign extension, arithmetic shifts,
            // and signed comparison in every engine.
            14 => (
                format!("asUInt(add(asSInt({a}), asSInt({b})))"),
                aw.max(bw) + 1,
            ),
            15 => (
                // cvt on a UInt appends a zero sign bit, so this is a
                // true signed subtraction of non-negative operands.
                format!("asUInt(sub(cvt({a}), cvt({b})))"),
                aw.max(bw) + 2,
            ),
            16 => (format!("lt(asSInt({a}), asSInt({b}))"), 1),
            17 => (format!("asUInt(neg({a}))"), aw + 1),
            18 if aw + bw <= 70 => (format!("asUInt(mul(asSInt({a}), asSInt({b})))"), aw + bw),
            19 => {
                let sh = rng.gen_range(0u32..aw.min(8));
                // Arithmetic right shift of a sign-reinterpreted value.
                (format!("asUInt(shr(asSInt({a}), {sh}))"), (aw - sh).max(1))
            }
            _ => (format!("xor({a}, {b})"), aw.max(bw)),
        };
        let _ = writeln!(body, "    node {name} = {expr}");
        pool.push((name, w));
    }

    // Drive registers, some under `when` — including two-deep nested
    // blocks with `else` arms, the shape that stresses the frontend's
    // mux-tree construction and the conditional-mux-way compiler.
    for (name, _w) in &regs {
        let (src, _sw) = pool[rng.gen_range(0..pool.len())].clone();
        let bools: Vec<String> = pool
            .iter()
            .filter(|(_, w)| *w == 1)
            .map(|(n, _)| n.clone())
            .collect();
        let cond = |rng: &mut StdRng| -> String {
            if bools.is_empty() {
                "reset".to_string()
            } else {
                bools[rng.gen_range(0..bools.len())].clone()
            }
        };
        match rng.gen_range(0..10) {
            0..=2 => {
                let c = cond(&mut rng);
                let _ = writeln!(body, "    when {c} :\n      {name} <= {src}");
            }
            3..=4 => {
                // Nested: when c1 : when c2 : ... else : ... — two
                // priority levels deep, with a fallthrough arm.
                let (c1, c2) = (cond(&mut rng), cond(&mut rng));
                let (alt, _) = pool[rng.gen_range(0..pool.len())].clone();
                let _ = writeln!(
                    body,
                    "    when {c1} :\n      when {c2} :\n        {name} <= {src}\n      else :\n        {name} <= {alt}"
                );
            }
            5 => {
                // when/else chain at top level.
                let c = cond(&mut rng);
                let (alt, _) = pool[rng.gen_range(0..pool.len())].clone();
                let _ = writeln!(
                    body,
                    "    when {c} :\n      {name} <= {src}\n    else :\n      {name} <= {alt}"
                );
            }
            _ => {
                let _ = writeln!(body, "    {name} <= {src}");
            }
        }
    }

    // Wire the memory.
    if has_mem {
        let addr_src = pool[0].0.clone();
        let en_src = pool
            .iter()
            .filter(|(_, w)| *w == 1)
            .map(|(n, _)| n.clone())
            .next()
            .unwrap_or_else(|| "reset".to_string());
        let data_src = pool[pool.len() - 1].0.clone();
        let _ = writeln!(body, "    m.rd.clk <= clock");
        let _ = writeln!(body, "    m.rd.en <= UInt<1>(1)");
        let _ = writeln!(body, "    m.rd.addr <= bits(pad({addr_src}, 3), 2, 0)");
        let _ = writeln!(body, "    m.wr.clk <= clock");
        let _ = writeln!(body, "    m.wr.en <= {en_src}");
        let _ = writeln!(body, "    m.wr.addr <= bits(pad({data_src}, 3), 2, 0)");
        let _ = writeln!(body, "    m.wr.data <= bits(pad({data_src}, 8), 7, 0)");
        let _ = writeln!(body, "    m.wr.mask <= UInt<1>(1)");
        pool.push(("m_read".into(), 8));
        let _ = writeln!(body, "    node m_read = m.rd.data");
    }

    // Outputs: observe a spread of pool signals.
    let n_outputs = rng.gen_range(2usize..=4).min(pool.len());
    let mut outputs = Vec::new();
    let mut out_ports = String::new();
    for i in 0..n_outputs {
        let (src, w) = pool[rng.gen_range(0..pool.len())].clone();
        let name = format!("out{i}");
        let _ = writeln!(out_ports, "    output {name} : UInt<{w}>");
        let _ = writeln!(body, "    {name} <= {src}");
        outputs.push(name);
    }

    let source = format!("circuit Rand :\n  module Rand :\n{ports}{out_ports}{body}");
    GenCircuit {
        source,
        inputs,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netlist_of(source: &str) -> essent_netlist::Netlist {
        let parsed = essent_firrtl::parse(source)
            .unwrap_or_else(|e| panic!("generated FIRRTL must parse: {e}\n{source}"));
        let lowered = essent_firrtl::passes::lower(parsed)
            .unwrap_or_else(|e| panic!("generated FIRRTL must lower: {e}\n{source}"));
        essent_netlist::Netlist::from_circuit(&lowered)
            .unwrap_or_else(|e| panic!("generated FIRRTL must build: {e}\n{source}"))
    }

    /// Every corpus seed must produce a valid design, and across the
    /// corpus the generator must actually exercise its feature set:
    /// signed arithmetic, memories, and two-deep nested `when`s. A
    /// generator change that silently stops producing one of these
    /// weakens every differential suite downstream.
    #[test]
    fn corpus_is_valid_and_feature_complete() {
        let (mut signed, mut mems, mut nested, mut elses) = (0, 0, 0, 0);
        for seed in 0..60u64 {
            let c = gen_circuit(seed);
            let netlist = netlist_of(&c.source);
            assert!(!c.outputs.is_empty(), "seed {seed} has no outputs");
            assert!(netlist.signal_count() > 0);
            signed += c.source.contains("asSInt") as u32;
            mems += c.source.contains("mem m :") as u32;
            // Two-deep nesting is identifiable by the deeper indent.
            nested += c.source.contains("      when ") as u32;
            elses += c.source.contains("else :") as u32;
        }
        assert!(signed >= 10, "only {signed}/60 seeds use signed ops");
        assert!(mems >= 10, "only {mems}/60 seeds instantiate a memory");
        assert!(nested >= 5, "only {nested}/60 seeds nest `when` blocks");
        assert!(elses >= 5, "only {elses}/60 seeds emit an `else` arm");
    }

    /// Fixed seeds pin the generator's output shape: interface sizes and
    /// source line counts must not drift. Deliberate generator changes
    /// update these constants; accidental ones (a reordered `rng` draw,
    /// a changed range) fail here with an explicit diff instead of
    /// surfacing as an unexplained equivalence-suite seed shift.
    #[test]
    fn fixed_seed_corpus_shape_is_pinned() {
        let pinned: [(u64, usize, usize, usize); 4] = [
            (0, 5, 4, 65),
            (1, 4, 4, 37),
            (42, 3, 2, 26),
            (0xE55E, 4, 2, 36),
        ];
        for (seed, n_inputs, n_outputs, n_lines) in pinned {
            let c = gen_circuit(seed);
            let got = (
                seed,
                c.inputs.len(),
                c.outputs.len(),
                c.source.lines().count(),
            );
            assert_eq!(
                got,
                (seed, n_inputs, n_outputs, n_lines),
                "seed {seed} shape drifted\n{}",
                c.source
            );
        }
    }
}
