//! essent-profile: per-partition activity and performance telemetry.
//!
//! The paper's speedup argument rests on *measured* activity (Figure 5's
//! per-cycle activity factors, Section III's observation that most
//! partitions sleep most cycles), yet whole-design probes like
//! [`crate::activity::ActivityProbe`] cannot say *which* partition pays
//! for a wake or *who* caused it. This module attributes evals, skips,
//! and wake causes to individual schedule units so the partitioner's
//! merge heuristics and the tier-1 fast path can be tuned against
//! evidence instead of intuition.
//!
//! Design:
//!
//! * **Monomorphized sink.** Engines thread a [`Profiler`] generic
//!   through their cycle loop, mirroring the tier's
//!   [`FlagSink`](crate::step1::FlagSink) pattern: the disabled
//!   instantiation ([`NoProfile`]) is all empty `#[inline(always)]`
//!   methods, so the compiler erases every probe site and the disabled
//!   cost is zero. The enabled instantiation ([`ProfileArena`]) keeps
//!   every counter in flat `Vec<u64>`s indexed by schedule unit, so the
//!   enabled-but-idle cost is one predictable branch (the engine's
//!   activity test) plus one counter increment per unit per cycle.
//! * **Wake-cause attribution.** Every consumer wake is charged to its
//!   trigger: the *producer partition* whose output changed (including
//!   wakes fused into tier-1 instructions, via [`ProfCellFlags`] /
//!   [`ProfAtomicFlags`](crate::step1::ProfAtomicFlags)), the *state
//!   element* (register / memory write plan) whose commit changed, or
//!   the external *input* that was poked. Attribution goes through a
//!   [`ProfileWiring`] table that `essent-verify` audits independently
//!   (`P0301`–`P0304`), so an off-by-one or aliased counter is a
//!   verification error, not a silently wrong profile.
//! * **Batched time sampling.** Eval time uses an `rdtsc`-style
//!   monotonic tick ([`tick`]) sampled one activation in
//!   [`ProfileArena::time_stride`], extrapolated in the report — the
//!   common case pays two counter increments, not two serializing
//!   timestamp reads.
//!
//! Exporters: [`ProfileReport::to_json`] (the `BENCH_profile.json`
//! summary), [`ProfileReport::heatmap_csv`] (partition × cycle-bucket
//! skip rate, the Figure 7 analog), and [`ProfileArena::chrome_trace`]
//! (Chrome `trace_event` JSON for per-cycle flame views).

use crate::machine::MemBank;
use crate::step1::{run_tier1_raw, CellFlags, ProfCellFlags, Tier1Program};
use essent_core::partition::ActivityPrior;
use essent_core::plan::CcssPlan;
use essent_netlist::{Netlist, SignalId};
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic cycle-ish timestamp: `rdtsc` on x86-64, a nanosecond
/// clock elsewhere. Only differences are meaningful; the unit is
/// reported as raw "ticks".
#[inline(always)]
pub fn tick() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: rdtsc has no preconditions.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::time::Instant;
        static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Static attribution tables: which counter slot each wake cause
/// charges. Built next to the engine's own trigger tables and audited
/// independently by `essent-verify` (`P0301`–`P0304`): a correct wiring
/// maps every cause to a distinct, in-range slot with the producer map
/// being the identity over scheduled partitions.
#[derive(Debug, Clone, Default)]
pub struct ProfileWiring {
    /// Display name per schedule unit (`p0…` for partitions, `L0…` for
    /// event levels, `full` for the full-cycle block).
    pub unit_names: Vec<String>,
    /// Producer attribution: scheduled partition index → `caused`
    /// counter slot. Identity in a correct wiring.
    pub producer_slot: Vec<u32>,
    /// Register plan index → state-cause slot.
    pub reg_slot: Vec<u32>,
    /// Memory-write plan index → state-cause slot.
    pub mem_slot: Vec<u32>,
    /// Display name per state-cause slot.
    pub state_names: Vec<String>,
    /// Input signal → input-cause slot (one entry per waking input).
    pub input_slot: Vec<(SignalId, u32)>,
    /// Display name per input-cause slot.
    pub input_names: Vec<String>,
}

impl ProfileWiring {
    /// Wiring for a CCSS schedule: one unit per partition, one state
    /// slot per register plan then per memory-write plan, one input
    /// slot per waking input.
    pub fn for_plan(netlist: &Netlist, plan: &CcssPlan) -> ProfileWiring {
        let units = plan.partitions.len();
        let mut state_names = Vec::new();
        let reg_slot = (0..plan.reg_plans.len() as u32).collect();
        for rp in &plan.reg_plans {
            state_names.push(netlist.regs()[rp.reg.index()].name.clone());
        }
        let mem_slot = (0..plan.mem_write_plans.len())
            .map(|j| (plan.reg_plans.len() + j) as u32)
            .collect();
        for wp in &plan.mem_write_plans {
            let m = &netlist.mems()[wp.mem.index()];
            state_names.push(format!("{}.w{}", m.name, wp.writer));
        }
        let mut input_slot = Vec::new();
        let mut input_names = Vec::new();
        for (i, (sig, _)) in plan.input_wakes.iter().enumerate() {
            input_slot.push((*sig, i as u32));
            input_names.push(netlist.signal(*sig).name.clone());
        }
        ProfileWiring {
            unit_names: (0..units).map(|i| format!("p{i}")).collect(),
            producer_slot: (0..units as u32).collect(),
            reg_slot,
            mem_slot,
            state_names,
            input_slot,
            input_names,
        }
    }

    /// Wiring for a single-unit engine (full-cycle): no triggers, so no
    /// cause slots.
    pub fn single(name: &str) -> ProfileWiring {
        ProfileWiring {
            unit_names: vec![name.to_string()],
            producer_slot: vec![0],
            ..ProfileWiring::default()
        }
    }

    /// Wiring for the event-driven engine: one unit per topological
    /// level, one state slot per register then per memory, one input
    /// slot per external input.
    pub fn for_levels(netlist: &Netlist, levels: usize) -> ProfileWiring {
        let mut state_names: Vec<String> = netlist.regs().iter().map(|r| r.name.clone()).collect();
        let reg_slot = (0..netlist.regs().len() as u32).collect();
        let mem_slot = (0..netlist.mems().len())
            .map(|j| (netlist.regs().len() + j) as u32)
            .collect();
        for m in netlist.mems() {
            state_names.push(m.name.clone());
        }
        let mut input_slot = Vec::new();
        let mut input_names = Vec::new();
        for (i, s) in netlist.signals().iter().enumerate() {
            if matches!(s.def, essent_netlist::SignalDef::Input) {
                input_slot.push((SignalId(i as u32), input_names.len() as u32));
                input_names.push(s.name.clone());
            }
        }
        ProfileWiring {
            unit_names: (0..levels).map(|i| format!("L{i}")).collect(),
            producer_slot: (0..levels as u32).collect(),
            reg_slot,
            mem_slot,
            state_names,
            input_slot,
            input_names,
        }
    }

    /// Number of schedule units.
    pub fn units(&self) -> usize {
        self.unit_names.len()
    }
}

/// The probe interface engines monomorphize their cycle loop over.
/// [`NoProfile`] erases every call; [`ProfileArena`] counts.
pub trait Profiler {
    /// `false` for the no-op instantiation — lets call sites skip work
    /// that only feeds the profiler (e.g. reading `ops_evaluated`).
    const ENABLED: bool;

    /// Called once at the top of every simulated cycle.
    fn begin_cycle(&mut self);
    /// The unit's activity test failed: it slept this cycle.
    fn unit_skip(&mut self, unit: usize);
    /// The unit is about to evaluate; returns a timestamp token to pass
    /// to [`Profiler::eval_end`] (0 = this activation is not timed).
    fn eval_begin(&mut self, unit: usize) -> u64;
    /// The unit finished evaluating; `ops_delta` is the engine's
    /// `ops_evaluated` increase across the evaluation.
    fn eval_end(&mut self, unit: usize, start: u64, ops_delta: u64);
    /// Partition `producer`'s changed output woke `consumer`.
    fn wake_output(&mut self, producer: usize, consumer: u32);
    /// Register plan `reg_plan`'s commit changed and woke `consumer`.
    fn wake_state_reg(&mut self, reg_plan: usize, consumer: u32);
    /// Memory-write plan `mem_plan` changed the bank and woke `consumer`.
    fn wake_state_mem(&mut self, mem_plan: usize, consumer: u32);
    /// External input `input` changed and woke `consumer`.
    fn wake_input(&mut self, input: SignalId, consumer: u32);

    /// Runs a tier-1 program for `producer`, wiring fused trigger wakes
    /// through the profiler (the tier-1 dispatch loop's probe point).
    ///
    /// # Safety
    ///
    /// Same contract as [`run_tier1_raw`].
    #[allow(clippy::too_many_arguments)]
    unsafe fn run_tier1(
        &mut self,
        prog: &Tier1Program,
        arena: *mut u64,
        mems: &[MemBank],
        flags: &[Cell<bool>],
        producer: usize,
        ops: &mut u64,
        dynamic: &mut u64,
    );
}

/// The disabled profiler: every probe inlines to nothing.
pub struct NoProfile;

impl Profiler for NoProfile {
    const ENABLED: bool = false;

    #[inline(always)]
    fn begin_cycle(&mut self) {}
    #[inline(always)]
    fn unit_skip(&mut self, _unit: usize) {}
    #[inline(always)]
    fn eval_begin(&mut self, _unit: usize) -> u64 {
        0
    }
    #[inline(always)]
    fn eval_end(&mut self, _unit: usize, _start: u64, _ops_delta: u64) {}
    #[inline(always)]
    fn wake_output(&mut self, _producer: usize, _consumer: u32) {}
    #[inline(always)]
    fn wake_state_reg(&mut self, _reg_plan: usize, _consumer: u32) {}
    #[inline(always)]
    fn wake_state_mem(&mut self, _mem_plan: usize, _consumer: u32) {}
    #[inline(always)]
    fn wake_input(&mut self, _input: SignalId, _consumer: u32) {}

    #[inline(always)]
    unsafe fn run_tier1(
        &mut self,
        prog: &Tier1Program,
        arena: *mut u64,
        mems: &[MemBank],
        flags: &[Cell<bool>],
        _producer: usize,
        ops: &mut u64,
        dynamic: &mut u64,
    ) {
        // SAFETY: forwards this method's contract (same as
        // `run_tier1_raw`'s) unchanged.
        unsafe { run_tier1_raw(prog, arena, mems, &CellFlags(flags), ops, dynamic) }
    }
}

/// One recorded trace event (an activation inside the trace window).
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    pub unit: u32,
    /// Worker thread that ran the activation (0 for sequential
    /// engines). The Chrome exporter lays tracks out per worker, so
    /// dataflow-schedule stalls and cycle overlap are visible.
    pub worker: u32,
    pub cycle: u64,
    pub start: u64,
    pub dur: u64,
}

/// Chrome `trace_event` JSON (array form): one complete ("X") event per
/// timed activation, one track (`tid`) per *worker*, the schedule unit
/// in the event name and args. Load in `chrome://tracing` / Perfetto;
/// gaps inside a worker's lane are schedule stalls, and events of cycle
/// `k+1` starting before the last event of cycle `k` ends (on another
/// lane) are the dataflow engine's cycle overlap.
pub fn chrome_trace_json(trace: &[TraceEvent], unit_names: &[String]) -> String {
    let base = trace.iter().map(|e| e.start).min().unwrap_or(0);
    let mut s = String::from("[\n");
    for (i, e) in trace.iter().enumerate() {
        let _ = write!(
            s,
            "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"cycle\": {}, \"unit\": {}}}}}",
            unit_names[e.unit as usize],
            e.worker,
            (e.start - base) as f64 / 1e3,
            (e.dur.max(1)) as f64 / 1e3,
            e.cycle,
            e.unit,
        );
        s.push_str(if i + 1 < trace.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

/// The enabled profiler: flat per-unit counters plus cause-slot
/// counters, a bucketed activity heatmap, and an optional trace window.
#[derive(Debug, Clone)]
pub struct ProfileArena {
    wiring: ProfileWiring,
    /// Per unit: activations / sleeps / ops evaluated while active.
    evals: Vec<u64>,
    skips: Vec<u64>,
    ops: Vec<u64>,
    /// Per unit: summed ticks over *timed* activations, and how many
    /// activations were timed (mean × evals estimates total time).
    time: Vec<u64>,
    timed_evals: Vec<u64>,
    /// Per unit, countdown to the next timed activation.
    stride_ctr: Vec<u32>,
    /// Per unit: wakes received, by cause kind.
    woke_output: Vec<u64>,
    woke_state: Vec<u64>,
    woke_input: Vec<u64>,
    /// Per unit: wakes this unit's outputs caused (as producer).
    caused: Vec<u64>,
    /// Per state slot / input slot: wakes caused.
    state_causes: Vec<u64>,
    input_causes: Vec<u64>,
    input_index: HashMap<SignalId, u32>,
    /// Activations per unit per cycle bucket, bucket-major.
    heat: Vec<u64>,
    /// Cycles per heatmap bucket.
    bucket: u64,
    cycles: u64,
    /// Record [`TraceEvent`]s while `cycles < trace_until`.
    trace_until: u64,
    trace: Vec<TraceEvent>,
    /// Time one activation in this many (per unit); 1 = time every.
    time_stride: u32,
}

impl ProfileArena {
    /// Default cycles-per-bucket for the activity heatmap.
    pub const DEFAULT_BUCKET: u64 = 256;
    /// Default sampling stride for eval timing.
    pub const DEFAULT_TIME_STRIDE: u32 = 8;

    /// Fresh arena over a wiring; all counters zero.
    pub fn new(wiring: ProfileWiring) -> ProfileArena {
        let units = wiring.units();
        let states = wiring.state_names.len();
        let inputs = wiring.input_names.len();
        let input_index = wiring.input_slot.iter().copied().collect();
        ProfileArena {
            evals: vec![0; units],
            skips: vec![0; units],
            ops: vec![0; units],
            time: vec![0; units],
            timed_evals: vec![0; units],
            stride_ctr: vec![0; units],
            woke_output: vec![0; units],
            woke_state: vec![0; units],
            woke_input: vec![0; units],
            caused: vec![0; units],
            state_causes: vec![0; states],
            input_causes: vec![0; inputs],
            input_index,
            heat: Vec::new(),
            bucket: Self::DEFAULT_BUCKET,
            cycles: 0,
            trace_until: 0,
            trace: Vec::new(),
            time_stride: Self::DEFAULT_TIME_STRIDE,
            wiring,
        }
    }

    /// Record Chrome-trace events for the first `cycles` cycles.
    pub fn set_trace_window(&mut self, cycles: u64) {
        self.trace_until = cycles;
    }

    /// Sets the heatmap bucket width (cycles per bucket).
    pub fn set_bucket(&mut self, cycles_per_bucket: u64) {
        assert!(cycles_per_bucket > 0, "bucket must be positive");
        assert_eq!(self.cycles, 0, "set the bucket before simulating");
        self.bucket = cycles_per_bucket;
    }

    /// Sets the eval-time sampling stride (1 = time every activation).
    pub fn set_time_stride(&mut self, stride: u32) {
        assert!(stride > 0, "stride must be positive");
        self.time_stride = stride;
    }

    /// The wiring this arena charges counters through.
    pub fn wiring(&self) -> &ProfileWiring {
        &self.wiring
    }

    /// Cycles profiled so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    #[inline]
    fn in_trace_window(&self) -> bool {
        self.cycles <= self.trace_until
    }

    /// Summarizes the counters into an owned report.
    pub fn report(&self, engine: &'static str) -> ProfileReport {
        let units = (0..self.wiring.units())
            .map(|u| UnitProfile {
                name: self.wiring.unit_names[u].clone(),
                evals: self.evals[u],
                skips: self.skips[u],
                ops: self.ops[u],
                time: self.time[u],
                timed_evals: self.timed_evals[u],
                woke_output: self.woke_output[u],
                woke_state: self.woke_state[u],
                woke_input: self.woke_input[u],
                caused: self.caused[u],
            })
            .collect();
        ProfileReport {
            engine,
            cycles: self.cycles,
            bucket: self.bucket,
            units,
            state_causes: self
                .wiring
                .state_names
                .iter()
                .cloned()
                .zip(self.state_causes.iter().copied())
                .collect(),
            input_causes: self
                .wiring
                .input_names
                .iter()
                .cloned()
                .zip(self.input_causes.iter().copied())
                .collect(),
            heat: self.heat.clone(),
        }
    }

    /// Chrome `trace_event` JSON of the recorded window (see
    /// [`chrome_trace_json`]); a sequential engine's events all share
    /// worker lane 0.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.trace, &self.wiring.unit_names)
    }
}

impl Profiler for ProfileArena {
    const ENABLED: bool = true;

    #[inline]
    fn begin_cycle(&mut self) {
        if self.cycles.is_multiple_of(self.bucket) {
            let grown = self.heat.len() + self.wiring.units();
            self.heat.resize(grown, 0);
        }
        self.cycles += 1;
    }

    #[inline]
    fn unit_skip(&mut self, unit: usize) {
        self.skips[unit] += 1;
    }

    #[inline]
    fn eval_begin(&mut self, unit: usize) -> u64 {
        self.evals[unit] += 1;
        let row = self.heat.len() - self.wiring.units();
        self.heat[row + unit] += 1;
        if self.stride_ctr[unit] == 0 {
            self.stride_ctr[unit] = self.time_stride - 1;
            tick().max(1)
        } else {
            self.stride_ctr[unit] -= 1;
            0
        }
    }

    #[inline]
    fn eval_end(&mut self, unit: usize, start: u64, ops_delta: u64) {
        self.ops[unit] += ops_delta;
        if start != 0 {
            let dur = tick().saturating_sub(start);
            self.time[unit] += dur;
            self.timed_evals[unit] += 1;
            if self.in_trace_window() {
                self.trace.push(TraceEvent {
                    unit: unit as u32,
                    worker: 0,
                    cycle: self.cycles,
                    start,
                    dur,
                });
            }
        }
    }

    #[inline]
    fn wake_output(&mut self, producer: usize, consumer: u32) {
        self.caused[self.wiring.producer_slot[producer] as usize] += 1;
        self.woke_output[consumer as usize] += 1;
    }

    #[inline]
    fn wake_state_reg(&mut self, reg_plan: usize, consumer: u32) {
        self.state_causes[self.wiring.reg_slot[reg_plan] as usize] += 1;
        self.woke_state[consumer as usize] += 1;
    }

    #[inline]
    fn wake_state_mem(&mut self, mem_plan: usize, consumer: u32) {
        self.state_causes[self.wiring.mem_slot[mem_plan] as usize] += 1;
        self.woke_state[consumer as usize] += 1;
    }

    #[inline]
    fn wake_input(&mut self, input: SignalId, consumer: u32) {
        if let Some(&slot) = self.input_index.get(&input) {
            self.input_causes[slot as usize] += 1;
        }
        self.woke_input[consumer as usize] += 1;
    }

    unsafe fn run_tier1(
        &mut self,
        prog: &Tier1Program,
        arena: *mut u64,
        mems: &[MemBank],
        flags: &[Cell<bool>],
        producer: usize,
        ops: &mut u64,
        dynamic: &mut u64,
    ) {
        let slot = self.wiring.producer_slot[producer] as usize;
        let sink = ProfCellFlags {
            flags,
            caused: Cell::from_mut(&mut self.caused[slot]),
            woke: Cell::from_mut(self.woke_output.as_mut_slice()).as_slice_of_cells(),
        };
        // SAFETY: forwards this method's contract (same as
        // `run_tier1_raw`'s) unchanged.
        unsafe { run_tier1_raw(prog, arena, mems, &sink, ops, dynamic) }
    }
}

/// Thread-safe profile counters for the parallel engine: the same
/// attribution scheme over relaxed atomics (mirroring
/// [`AtomicFlags`](crate::step1::AtomicFlags)). Eval timing is per
/// activation (no stride batching — workers own no per-unit state).
#[derive(Debug)]
pub struct AtomicProfile {
    wiring: ProfileWiring,
    evals: Vec<AtomicU64>,
    skips: Vec<AtomicU64>,
    ops: Vec<AtomicU64>,
    time: Vec<AtomicU64>,
    timed_evals: Vec<AtomicU64>,
    woke_output: Vec<AtomicU64>,
    woke_state: Vec<AtomicU64>,
    woke_input: Vec<AtomicU64>,
    caused: Vec<AtomicU64>,
    state_causes: Vec<AtomicU64>,
    input_causes: Vec<AtomicU64>,
    input_index: HashMap<SignalId, u32>,
    cycles: AtomicU64,
    /// Record [`TraceEvent`]s while `cycles <= trace_until` (per-worker
    /// lanes; workers append under a mutex, which only trace-windowed
    /// runs pay for).
    trace_until: u64,
    trace: std::sync::Mutex<Vec<TraceEvent>>,
}

fn azeros(n: usize) -> Vec<AtomicU64> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl AtomicProfile {
    /// Fresh atomic arena over a wiring.
    pub fn new(wiring: ProfileWiring) -> AtomicProfile {
        let units = wiring.units();
        let states = wiring.state_names.len();
        let inputs = wiring.input_names.len();
        let input_index = wiring.input_slot.iter().copied().collect();
        AtomicProfile {
            evals: azeros(units),
            skips: azeros(units),
            ops: azeros(units),
            time: azeros(units),
            timed_evals: azeros(units),
            woke_output: azeros(units),
            woke_state: azeros(units),
            woke_input: azeros(units),
            caused: azeros(units),
            state_causes: azeros(states),
            input_causes: azeros(inputs),
            input_index,
            cycles: AtomicU64::new(0),
            trace_until: 0,
            trace: std::sync::Mutex::new(Vec::new()),
            wiring,
        }
    }

    /// The wiring this arena charges counters through.
    pub fn wiring(&self) -> &ProfileWiring {
        &self.wiring
    }

    /// Record Chrome-trace events for the first `cycles` cycles.
    pub fn set_trace_window(&mut self, cycles: u64) {
        self.trace_until = cycles;
    }

    /// Chrome `trace_event` JSON of the recorded window (see
    /// [`chrome_trace_json`]): one lane per worker, so dataflow stalls
    /// and cycle overlap are visible.
    pub fn chrome_trace(&self) -> String {
        let trace = self.trace.lock().expect("trace lock");
        chrome_trace_json(&trace, &self.wiring.unit_names)
    }

    #[inline]
    pub fn begin_cycle(&self) {
        self.cycles.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn unit_skip(&self, unit: usize) {
        self.skips[unit].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn eval_begin(&self, unit: usize) -> u64 {
        self.evals[unit].fetch_add(1, Ordering::Relaxed);
        tick().max(1)
    }

    #[inline]
    pub fn eval_end(&self, unit: usize, start: u64, ops_delta: u64) {
        self.eval_end_on(unit, 0, start, ops_delta);
    }

    /// [`AtomicProfile::eval_end`] with the worker lane for the trace;
    /// parallel engines pass their worker id so the Chrome export shows
    /// real thread occupancy.
    #[inline]
    pub fn eval_end_on(&self, unit: usize, worker: u32, start: u64, ops_delta: u64) {
        self.ops[unit].fetch_add(ops_delta, Ordering::Relaxed);
        let dur = tick().saturating_sub(start);
        self.time[unit].fetch_add(dur, Ordering::Relaxed);
        self.timed_evals[unit].fetch_add(1, Ordering::Relaxed);
        let cycle = self.cycles.load(Ordering::Relaxed);
        if cycle <= self.trace_until {
            self.trace.lock().expect("trace lock").push(TraceEvent {
                unit: unit as u32,
                worker,
                cycle,
                start,
                dur,
            });
        }
    }

    #[inline]
    pub fn wake_output(&self, producer: usize, consumer: u32) {
        self.caused[self.wiring.producer_slot[producer] as usize].fetch_add(1, Ordering::Relaxed);
        self.woke_output[consumer as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// The producer-side `caused` counter cell for fused wake sinks.
    #[inline]
    pub fn caused_cell(&self, producer: usize) -> &AtomicU64 {
        &self.caused[self.wiring.producer_slot[producer] as usize]
    }

    /// The consumer-side `woke_output` counters for fused wake sinks.
    #[inline]
    pub fn woke_output_cells(&self) -> &[AtomicU64] {
        &self.woke_output
    }

    #[inline]
    pub fn wake_state_reg(&self, reg_plan: usize, consumer: u32) {
        self.state_causes[self.wiring.reg_slot[reg_plan] as usize].fetch_add(1, Ordering::Relaxed);
        self.woke_state[consumer as usize].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn wake_state_mem(&self, mem_plan: usize, consumer: u32) {
        self.state_causes[self.wiring.mem_slot[mem_plan] as usize].fetch_add(1, Ordering::Relaxed);
        self.woke_state[consumer as usize].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn wake_input(&self, input: SignalId, consumer: u32) {
        if let Some(&slot) = self.input_index.get(&input) {
            self.input_causes[slot as usize].fetch_add(1, Ordering::Relaxed);
        }
        self.woke_input[consumer as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Summarizes the counters into an owned report (no heatmap — the
    /// parallel engine records aggregates; the trace window is exported
    /// separately via [`AtomicProfile::chrome_trace`]).
    pub fn report(&self, engine: &'static str) -> ProfileReport {
        let ld = |v: &[AtomicU64], i: usize| v[i].load(Ordering::Relaxed);
        let units = (0..self.wiring.units())
            .map(|u| UnitProfile {
                name: self.wiring.unit_names[u].clone(),
                evals: ld(&self.evals, u),
                skips: ld(&self.skips, u),
                ops: ld(&self.ops, u),
                time: ld(&self.time, u),
                timed_evals: ld(&self.timed_evals, u),
                woke_output: ld(&self.woke_output, u),
                woke_state: ld(&self.woke_state, u),
                woke_input: ld(&self.woke_input, u),
                caused: ld(&self.caused, u),
            })
            .collect();
        ProfileReport {
            engine,
            cycles: self.cycles.load(Ordering::Relaxed),
            bucket: 0,
            units,
            state_causes: self
                .wiring
                .state_names
                .iter()
                .cloned()
                .zip(self.state_causes.iter().map(|a| a.load(Ordering::Relaxed)))
                .collect(),
            input_causes: self
                .wiring
                .input_names
                .iter()
                .cloned()
                .zip(self.input_causes.iter().map(|a| a.load(Ordering::Relaxed)))
                .collect(),
            heat: Vec::new(),
        }
    }
}

/// One schedule unit's profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitProfile {
    pub name: String,
    /// Activations (cycles the unit evaluated).
    pub evals: u64,
    /// Cycles the unit's activity test failed.
    pub skips: u64,
    /// Operations evaluated while this unit was active.
    pub ops: u64,
    /// Summed ticks over the timed activations.
    pub time: u64,
    /// How many activations were timed (stride sampling).
    pub timed_evals: u64,
    /// Wakes received from producer-output triggers.
    pub woke_output: u64,
    /// Wakes received from state (register/memory) changes.
    pub woke_state: u64,
    /// Wakes received from external input pokes.
    pub woke_input: u64,
    /// Wakes this unit's own outputs caused (as producer).
    pub caused: u64,
}

impl UnitProfile {
    /// Fraction of cycles this unit slept.
    pub fn skip_rate(&self) -> f64 {
        let total = self.evals + self.skips;
        if total == 0 {
            0.0
        } else {
            self.skips as f64 / total as f64
        }
    }

    /// Estimated total eval ticks: mean timed cost × activations.
    pub fn est_time(&self) -> f64 {
        if self.timed_evals == 0 {
            0.0
        } else {
            self.time as f64 / self.timed_evals as f64 * self.evals as f64
        }
    }
}

/// An engine's full profile: per-unit counters, cause attributions, and
/// the bucketed activity heatmap.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    pub engine: &'static str,
    pub cycles: u64,
    /// Cycles per heatmap bucket (0 = no heatmap recorded).
    pub bucket: u64,
    pub units: Vec<UnitProfile>,
    /// (state element name, wakes caused).
    pub state_causes: Vec<(String, u64)>,
    /// (input name, wakes caused).
    pub input_causes: Vec<(String, u64)>,
    /// Activations per unit per bucket, bucket-major
    /// (`heat[b * units + u]`).
    pub heat: Vec<u64>,
}

impl ProfileReport {
    /// Sum of unit activations.
    pub fn total_evals(&self) -> u64 {
        self.units.iter().map(|u| u.evals).sum()
    }

    /// Sum of unit sleeps.
    pub fn total_skips(&self) -> u64 {
        self.units.iter().map(|u| u.skips).sum()
    }

    /// Sum of ops attributed to units.
    pub fn total_ops(&self) -> u64 {
        self.units.iter().map(|u| u.ops).sum()
    }

    /// Mean fraction of units active per cycle — the partition-level
    /// activity factor.
    pub fn activity_factor(&self) -> f64 {
        let total = self.total_evals() + self.total_skips();
        if total == 0 {
            0.0
        } else {
            self.total_evals() as f64 / total as f64
        }
    }

    /// The `n` hottest units by estimated eval time (ops as the
    /// tie-break when nothing was timed), hottest first.
    pub fn hottest(&self, n: usize) -> Vec<(usize, &UnitProfile)> {
        let mut idx: Vec<usize> = (0..self.units.len()).collect();
        idx.sort_by(|&a, &b| {
            let (ua, ub) = (&self.units[a], &self.units[b]);
            ub.est_time()
                .partial_cmp(&ua.est_time())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ub.ops.cmp(&ua.ops))
                .then(a.cmp(&b))
        });
        idx.into_iter()
            .take(n)
            .map(|i| (i, &self.units[i]))
            .collect()
    }

    /// Renders the report as JSON (the `BENCH_profile.json` schema).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"engine\": \"{}\",", self.engine);
        let _ = writeln!(s, "  \"cycles\": {},", self.cycles);
        let _ = writeln!(s, "  \"unit_count\": {},", self.units.len());
        let _ = writeln!(s, "  \"total_evals\": {},", self.total_evals());
        let _ = writeln!(s, "  \"total_skips\": {},", self.total_skips());
        let _ = writeln!(s, "  \"total_ops\": {},", self.total_ops());
        let _ = writeln!(s, "  \"activity_factor\": {:.6},", self.activity_factor());
        let _ = writeln!(s, "  \"units\": [");
        for (i, u) in self.units.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"evals\": {}, \"skips\": {}, \"ops\": {}, \"time\": {}, \"timed_evals\": {}, \"woke_output\": {}, \"woke_state\": {}, \"woke_input\": {}, \"caused\": {}}}",
                u.name, u.evals, u.skips, u.ops, u.time, u.timed_evals,
                u.woke_output, u.woke_state, u.woke_input, u.caused,
            );
            let _ = writeln!(s, "{}", if i + 1 < self.units.len() { "," } else { "" });
        }
        let _ = writeln!(s, "  ],");
        let dump = |s: &mut String, key: &str, causes: &[(String, u64)], last: bool| {
            let _ = writeln!(s, "  \"{key}\": [");
            for (i, (name, n)) in causes.iter().enumerate() {
                let _ = write!(s, "    {{\"name\": \"{name}\", \"wakes\": {n}}}");
                let _ = writeln!(s, "{}", if i + 1 < causes.len() { "," } else { "" });
            }
            let _ = writeln!(s, "  ]{}", if last { "" } else { "," });
        };
        dump(&mut s, "state_causes", &self.state_causes, false);
        dump(&mut s, "input_causes", &self.input_causes, true);
        let _ = writeln!(s, "}}");
        s
    }

    /// Renders the heatmap as CSV: one row per unit, one column per
    /// cycle bucket, each cell the unit's **skip rate** in that bucket
    /// (the paper's Figure 7 analog at partition granularity).
    pub fn heatmap_csv(&self) -> String {
        let units = self.units.len();
        if self.bucket == 0 || units == 0 || self.heat.is_empty() {
            return String::new();
        }
        let buckets = self.heat.len() / units;
        let mut s = String::from("unit");
        for b in 0..buckets {
            let _ = write!(s, ",c{}", b as u64 * self.bucket);
        }
        s.push('\n');
        for (u, unit) in self.units.iter().enumerate() {
            let _ = write!(s, "{}", unit.name);
            for b in 0..buckets {
                // The last bucket may be partial.
                let span = if b + 1 == buckets {
                    let rem = self.cycles - (buckets as u64 - 1) * self.bucket;
                    if rem == 0 {
                        self.bucket
                    } else {
                        rem
                    }
                } else {
                    self.bucket
                };
                let evals = self.heat[b * units + u];
                let _ = write!(s, ",{:.4}", 1.0 - evals as f64 / span as f64);
            }
            s.push('\n');
        }
        s
    }

    /// Renders a compact summary: the same per-design totals as
    /// [`ProfileReport::to_json`] but only the `top_n` hottest units and
    /// the `top_n` biggest state/input wake causes — the checked-in
    /// `BENCH_profile.json` shape. [`ProfileReport::from_json`] reads
    /// both forms (a summary simply yields a partial activity prior).
    pub fn to_summary_json(&self, top_n: usize) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"engine\": \"{}\",", self.engine);
        let _ = writeln!(s, "  \"summary_top_n\": {top_n},");
        let _ = writeln!(s, "  \"cycles\": {},", self.cycles);
        let _ = writeln!(s, "  \"unit_count\": {},", self.units.len());
        let _ = writeln!(s, "  \"total_evals\": {},", self.total_evals());
        let _ = writeln!(s, "  \"total_skips\": {},", self.total_skips());
        let _ = writeln!(s, "  \"total_ops\": {},", self.total_ops());
        let _ = writeln!(s, "  \"activity_factor\": {:.6},", self.activity_factor());
        let hot = self.hottest(top_n);
        let _ = writeln!(s, "  \"units\": [");
        for (i, (_, u)) in hot.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"evals\": {}, \"skips\": {}, \"ops\": {}, \"time\": {}, \"timed_evals\": {}, \"woke_output\": {}, \"woke_state\": {}, \"woke_input\": {}, \"caused\": {}}}",
                u.name, u.evals, u.skips, u.ops, u.time, u.timed_evals,
                u.woke_output, u.woke_state, u.woke_input, u.caused,
            );
            let _ = writeln!(s, "{}", if i + 1 < hot.len() { "," } else { "" });
        }
        let _ = writeln!(s, "  ],");
        let top_causes = |causes: &[(String, u64)]| -> Vec<(String, u64)> {
            let mut sorted: Vec<(String, u64)> = causes.to_vec();
            sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            sorted.truncate(top_n);
            sorted
        };
        let dump = |s: &mut String, key: &str, causes: &[(String, u64)], last: bool| {
            let _ = writeln!(s, "  \"{key}\": [");
            for (i, (name, n)) in causes.iter().enumerate() {
                let _ = write!(s, "    {{\"name\": \"{name}\", \"wakes\": {n}}}");
                let _ = writeln!(s, "{}", if i + 1 < causes.len() { "," } else { "" });
            }
            let _ = writeln!(s, "  ]{}", if last { "" } else { "," });
        };
        dump(
            &mut s,
            "state_causes",
            &top_causes(&self.state_causes),
            false,
        );
        dump(
            &mut s,
            "input_causes",
            &top_causes(&self.input_causes),
            true,
        );
        let _ = writeln!(s, "}}");
        s
    }

    /// Parses a report rendered by [`ProfileReport::to_json`] or
    /// [`ProfileReport::to_summary_json`] (the feedback loader's input).
    /// The heatmap is not serialized, so `bucket`/`heat` come back
    /// empty; the engine name is replaced by a `"loaded"` marker.
    ///
    /// Returns `None` on any malformed field — like the rest of the
    /// bench JSON handling this is a hand-rolled scan, not a general
    /// JSON parser.
    pub fn from_json(text: &str) -> Option<ProfileReport> {
        fn num<T: std::str::FromStr>(obj: &str, key: &str) -> Option<T> {
            let pat = format!("\"{key}\": ");
            let at = obj.find(&pat)? + pat.len();
            let rest = &obj[at..];
            let end = rest.find([',', '}', ']', '\n']).unwrap_or(rest.len());
            rest[..end].trim().parse().ok()
        }
        fn str_field(obj: &str, key: &str) -> Option<String> {
            let pat = format!("\"{key}\": \"");
            let at = obj.find(&pat)? + pat.len();
            let rest = &obj[at..];
            Some(rest[..rest.find('"')?].to_string())
        }
        /// The `{...}` chunks of the flat object array at `"key": [`.
        fn objects<'t>(text: &'t str, key: &str) -> Option<Vec<&'t str>> {
            let pat = format!("\"{key}\": [");
            let at = text.find(&pat)? + pat.len();
            let rest = &text[at..];
            let body = &rest[..rest.find(']')?];
            Some(
                body.split('{')
                    .skip(1)
                    .filter_map(|c| c.find('}').map(|e| &c[..e]))
                    .collect(),
            )
        }
        let cycles = num::<u64>(text, "cycles")?;
        let mut units = Vec::new();
        for obj in objects(text, "units")? {
            units.push(UnitProfile {
                name: str_field(obj, "name")?,
                evals: num(obj, "evals")?,
                skips: num(obj, "skips")?,
                ops: num(obj, "ops")?,
                time: num(obj, "time")?,
                timed_evals: num(obj, "timed_evals")?,
                woke_output: num(obj, "woke_output")?,
                woke_state: num(obj, "woke_state")?,
                woke_input: num(obj, "woke_input")?,
                caused: num(obj, "caused")?,
            });
        }
        let causes = |key: &str| -> Option<Vec<(String, u64)>> {
            let mut out = Vec::new();
            for obj in objects(text, key)? {
                out.push((str_field(obj, "name")?, num(obj, "wakes")?));
            }
            Some(out)
        };
        Some(ProfileReport {
            engine: "loaded",
            cycles,
            bucket: 0,
            units,
            state_causes: causes("state_causes")?,
            input_causes: causes("input_causes")?,
            heat: Vec::new(),
        })
    }
}

/// Projects a per-unit [`ProfileReport`] down to the per-node
/// [`ActivityPrior`] the partitioner and the LPT scheduler consume.
///
/// The report's units are schedule indices of `plan` (names `p<i>`);
/// each unit's activity rate lands on every node the unit covers, and
/// its estimated eval time — normalized to *ticks per simulated cycle*
/// so priors from runs of different lengths are comparable — is split
/// evenly across the unit's computed members. Units a summary report
/// omitted simply stay unknown (`NaN` rate), as do memory-write action
/// nodes of non-elided writes; the feedback loop degrades gracefully
/// toward "no information" rather than inventing heat.
pub fn activity_prior(netlist: &Netlist, plan: &CcssPlan, report: &ProfileReport) -> ActivityPrior {
    let signal_count = netlist.signal_count();
    let mut prior = ActivityPrior::neutral(signal_count + plan.mem_write_plans.len());
    let mut unit_rate = vec![f64::NAN; plan.partitions.len()];
    let mut unit_cost = vec![0.0f64; plan.partitions.len()];
    let cycles = report.cycles.max(1) as f64;
    for u in &report.units {
        let Some(idx) = u
            .name
            .strip_prefix('p')
            .and_then(|t| t.parse::<usize>().ok())
        else {
            continue;
        };
        if idx >= plan.partitions.len() {
            continue;
        }
        let total = u.evals + u.skips;
        if total == 0 {
            continue;
        }
        unit_rate[idx] = u.evals as f64 / total as f64;
        let part = &plan.partitions[idx];
        let share = (part.members.len() + part.elided_writes.len()).max(1) as f64;
        unit_cost[idx] = u.est_time() / cycles / share;
    }
    // Rates cover every signal through the schedule map (inputs and
    // state outputs carry their partition's rate into a repartitioning);
    // costs land only on the nodes the unit actually evaluates.
    for sig in 0..signal_count {
        let sched = plan.sched_of_signal[sig] as usize;
        if !unit_rate[sched].is_nan() {
            prior.set_node(sig, unit_rate[sched], 0.0);
        }
    }
    for (sched, part) in plan.partitions.iter().enumerate() {
        if unit_rate[sched].is_nan() {
            continue;
        }
        for &s in &part.members {
            prior.set_node(s.index(), unit_rate[sched], unit_cost[sched]);
        }
        for &wi in &part.elided_writes {
            prior.set_node(signal_count + wi, unit_rate[sched], unit_cost[sched]);
        }
    }
    prior
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_wiring(units: usize) -> ProfileWiring {
        ProfileWiring {
            unit_names: (0..units).map(|i| format!("p{i}")).collect(),
            producer_slot: (0..units as u32).collect(),
            reg_slot: vec![0],
            mem_slot: vec![1],
            state_names: vec!["r".into(), "m.w0".into()],
            input_slot: vec![(SignalId(0), 0)],
            input_names: vec!["in".into()],
        }
    }

    #[test]
    fn counters_accumulate_and_report() {
        let mut p = ProfileArena::new(tiny_wiring(2));
        p.set_time_stride(1);
        for _ in 0..10 {
            p.begin_cycle();
            let t = p.eval_begin(0);
            p.eval_end(0, t, 3);
            p.unit_skip(1);
        }
        p.wake_output(0, 1);
        p.wake_state_reg(0, 1);
        p.wake_state_mem(0, 0);
        p.wake_input(SignalId(0), 0);
        let r = p.report("essent");
        assert_eq!(r.cycles, 10);
        assert_eq!(r.units[0].evals, 10);
        assert_eq!(r.units[0].ops, 30);
        assert_eq!(r.units[0].timed_evals, 10);
        assert_eq!(r.units[1].skips, 10);
        assert_eq!(r.units[1].woke_output, 1);
        assert_eq!(r.units[1].woke_state, 1);
        assert_eq!(r.units[0].woke_state, 1);
        assert_eq!(r.units[0].woke_input, 1);
        assert_eq!(r.units[0].caused, 1);
        assert_eq!(r.state_causes, vec![("r".into(), 1), ("m.w0".into(), 1)]);
        assert_eq!(r.input_causes, vec![("in".into(), 1)]);
        assert_eq!(r.total_evals(), 10);
        assert_eq!(r.total_skips(), 10);
        assert!((r.activity_factor() - 0.5).abs() < 1e-9);
        assert_eq!(r.hottest(1)[0].0, 0);
        let json = r.to_json();
        assert!(json.contains("\"engine\": \"essent\""));
        assert!(json.contains("\"woke_state\": 1"));
    }

    #[test]
    fn stride_samples_one_in_n() {
        let mut p = ProfileArena::new(tiny_wiring(1));
        p.set_time_stride(4);
        for _ in 0..16 {
            p.begin_cycle();
            let t = p.eval_begin(0);
            p.eval_end(0, t, 1);
        }
        let r = p.report("essent");
        assert_eq!(r.units[0].evals, 16);
        assert_eq!(r.units[0].timed_evals, 4, "1 in 4 activations timed");
        assert!(r.units[0].est_time() >= 0.0);
    }

    #[test]
    fn heatmap_buckets_roll_over() {
        let mut p = ProfileArena::new(tiny_wiring(2));
        p.set_bucket(4);
        for c in 0..10 {
            p.begin_cycle();
            let t = p.eval_begin(0);
            p.eval_end(0, t, 1);
            // Unit 1 active only in the first bucket.
            if c < 4 {
                let t = p.eval_begin(1);
                p.eval_end(1, t, 1);
            } else {
                p.unit_skip(1);
            }
        }
        let r = p.report("essent");
        // 10 cycles / 4 per bucket -> 3 buckets.
        assert_eq!(r.heat.len(), 3 * 2);
        assert_eq!(&r.heat[..2], &[4, 4]);
        assert_eq!(&r.heat[2..4], &[4, 0]);
        assert_eq!(&r.heat[4..], &[2, 0], "partial last bucket");
        let csv = r.heatmap_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("p0,0.0000,0.0000,0.0000"));
        assert!(lines[2].starts_with("p1,0.0000,1.0000,1.0000"));
    }

    #[test]
    fn trace_window_records_events() {
        let mut p = ProfileArena::new(tiny_wiring(1));
        p.set_time_stride(1);
        p.set_trace_window(3);
        for _ in 0..10 {
            p.begin_cycle();
            let t = p.eval_begin(0);
            p.eval_end(0, t, 1);
        }
        assert_eq!(p.trace.len(), 3, "only the windowed cycles trace");
        let json = p.chrome_trace();
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"cycle\": 1"));
    }

    /// The report's per-unit counts must be an exact decomposition of
    /// the engine's own deterministic work counters: every evaluated op
    /// is charged to exactly one unit, and every partition is either
    /// evaluated or skipped every cycle — the accounting identity that
    /// makes per-partition profiles trustworthy as Figure 7 inputs.
    #[test]
    fn report_sums_to_engine_work_counters() {
        use crate::engine::{EngineConfig, Simulator};
        use crate::essent::EssentSim;
        use essent_bits::Bits;

        let src = "circuit S :\n  module S :\n    input clock : Clock\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<8>\n    reg r1 : UInt<8>, clock\n    reg r2 : UInt<8>, clock\n    node s = xor(r1, a)\n    node t = xor(r2, b)\n    node u = and(s, t)\n    o <= u\n    r1 <= not(s)\n    r2 <= not(t)\n";
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        let netlist = essent_netlist::Netlist::from_circuit(&lowered).unwrap();
        let config = EngineConfig {
            c_p: 1,
            profile: true,
            ..EngineConfig::default()
        };
        let mut sim = EssentSim::new(&netlist, &config);
        let n_parts = sim.profile_arena().expect("profile is on").wiring().units();
        assert!(n_parts >= 2, "c_p=1 must split this design");
        sim.poke("a", Bits::from_u64(3, 8));
        sim.step(10);
        sim.poke("b", Bits::from_u64(200, 8));
        sim.step(10);
        let counters = sim.counters();
        let report = sim.profile_report().expect("profile is on");
        assert_eq!(report.cycles, counters.cycles);
        assert_eq!(
            report.total_ops(),
            counters.ops_evaluated,
            "every op charges exactly one unit"
        );
        assert_eq!(
            report.total_evals() + report.total_skips(),
            n_parts as u64 * counters.cycles,
            "each partition is evaluated or skipped every cycle"
        );
        assert!(report.total_skips() > 0, "quiet partitions must skip");
        assert!(
            report.activity_factor() < 1.0,
            "this design is not fully active every cycle"
        );
    }

    #[test]
    fn atomic_profile_matches_scheme() {
        let p = AtomicProfile::new(tiny_wiring(2));
        p.begin_cycle();
        let t = p.eval_begin(0);
        p.eval_end(0, t, 7);
        p.unit_skip(1);
        p.wake_output(0, 1);
        p.wake_state_reg(0, 1);
        p.wake_input(SignalId(0), 0);
        let r = p.report("essent-parallel");
        assert_eq!(r.cycles, 1);
        assert_eq!(r.units[0].ops, 7);
        assert_eq!(r.units[1].woke_output, 1);
        assert_eq!(r.units[0].caused, 1);
        assert_eq!(r.state_causes[0].1, 1);
        assert_eq!(r.input_causes[0].1, 1);
    }

    /// A report with distinct values in every field.
    fn sample_report() -> ProfileReport {
        let mut p = ProfileArena::new(tiny_wiring(3));
        p.set_time_stride(1);
        for c in 0..20 {
            p.begin_cycle();
            let t = p.eval_begin(0);
            p.eval_end(0, t, 5);
            if c % 4 == 0 {
                let t = p.eval_begin(1);
                p.eval_end(1, t, 2);
            } else {
                p.unit_skip(1);
            }
            p.unit_skip(2);
        }
        p.wake_output(0, 1);
        p.wake_state_reg(0, 2);
        p.wake_state_mem(0, 1);
        p.wake_input(SignalId(0), 0);
        p.report("essent")
    }

    #[test]
    fn report_json_round_trips() {
        let r = sample_report();
        let parsed = ProfileReport::from_json(&r.to_json()).expect("parse own output");
        assert_eq!(parsed.cycles, r.cycles);
        assert_eq!(parsed.units, r.units);
        assert_eq!(parsed.state_causes, r.state_causes);
        assert_eq!(parsed.input_causes, r.input_causes);
        assert_eq!(parsed.engine, "loaded");
    }

    #[test]
    fn summary_json_keeps_totals_and_top_units() {
        let r = sample_report();
        let parsed = ProfileReport::from_json(&r.to_summary_json(2)).expect("parse summary");
        assert_eq!(parsed.cycles, r.cycles);
        assert_eq!(parsed.units.len(), 2, "top-2 units only");
        // The hottest unit (p0: most evals, most ops) must survive.
        assert!(parsed.units.iter().any(|u| u.name == "p0"));
        let full = ProfileReport::from_json(&r.to_json()).unwrap();
        assert_eq!(full.units.len(), 3);
        // Summary stays dramatically smaller on wide unit tables.
        let wide = ProfileReport {
            units: (0..500)
                .map(|i| UnitProfile {
                    name: format!("p{i}"),
                    evals: 1,
                    skips: 1,
                    ops: 1,
                    time: 1,
                    timed_evals: 1,
                    woke_output: 0,
                    woke_state: 0,
                    woke_input: 0,
                    caused: 0,
                })
                .collect(),
            ..r
        };
        assert!(wide.to_summary_json(10).lines().count() < wide.to_json().lines().count() / 10);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(ProfileReport::from_json("").is_none());
        assert!(ProfileReport::from_json("{\"cycles\": 5}").is_none());
        assert!(ProfileReport::from_json(
            "{\"cycles\": x, \"units\": [], \"state_causes\": [], \"input_causes\": []}"
        )
        .is_none());
    }
}
