//! Shadow-memory race sanitizer (`--features race-sanitizer`).
//!
//! The dynamic oracle for the static footprint proof (`essent-verify`
//! `R05xx`): every arena word carries a last-writer and a last-reader
//! tag `(epoch << 24) | partition+1`, where the epoch advances at every
//! dependency level of every cycle. Workers record each actual arena
//! access while evaluating a partition; two accesses to the same word in
//! the same epoch from different partitions — where at least one is a
//! write — are exactly the data races the static analysis proves absent,
//! so the sanitizer panics with the offending pair.
//!
//! The recording context is thread-local and set only around
//! `ParEssentSim`'s partition evaluation ([`enter`]); the serial phase
//! and the sequential engines never set it, so their accesses through
//! the shared executors are no-ops. With the feature disabled, none of
//! this module exists and the hooks compile away entirely.

use std::cell::Cell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bits of the tag holding the partition id (+1; 0 = never touched).
const PART_BITS: u32 = 24;
const PART_MASK: u64 = (1 << PART_BITS) - 1;

/// Per-arena-word last-writer/last-reader partition tags.
pub struct ShadowMem {
    writer: Vec<AtomicU64>,
    reader: Vec<AtomicU64>,
    /// Current (cycle, level) epoch; tags from older epochs are stale
    /// and never conflict, which makes per-level reset O(1).
    epoch: AtomicU64,
    /// Dataflow mode: the synthesized schedule's same-cycle dependence
    /// edges, packed `(before << 32) | after`. `None` is the level-sweep
    /// mode, where any same-epoch cross-partition conflict is a race;
    /// with edges, a same-epoch W→R / R→W pair is legal exactly when
    /// the runtime ordered it (`before → after` in the edge set), and a
    /// tag from a *newer* epoch is always a race (a partition outran a
    /// wait the schedule should have imposed).
    edges: Option<HashSet<u64>>,
}

impl ShadowMem {
    /// Shadow state for an arena of `words` words (level-sweep mode).
    pub fn new(words: usize) -> ShadowMem {
        ShadowMem::new_with_edges(words, None)
    }

    /// Shadow state in dataflow mode: `edges` is the schedule's
    /// same-cycle ordering relation as `(before << 32) | after` pairs.
    pub fn new_with_edges(words: usize, edges: Option<HashSet<u64>>) -> ShadowMem {
        ShadowMem {
            writer: (0..words).map(|_| AtomicU64::new(0)).collect(),
            reader: (0..words).map(|_| AtomicU64::new(0)).collect(),
            epoch: AtomicU64::new(1),
            edges,
        }
    }

    /// Advances to the next dependency level (or cycle): all existing
    /// tags become stale at once.
    pub fn next_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Dataflow mode: reserves `by` fresh epochs for one run and returns
    /// the base — the run tags cycle `k` (1-based) with epoch
    /// `base + k`, so overlapping cycles stay distinguishable and no
    /// epoch ever collides with an earlier run's tags.
    pub fn advance_base(&self, by: u64) -> u64 {
        self.epoch.fetch_add(by, Ordering::Relaxed)
    }

    /// Is the same-epoch pair `before → after` ordered by the schedule?
    fn ordered(&self, before: u64, after: u64) -> bool {
        self.edges
            .as_ref()
            .is_some_and(|e| e.contains(&((before << 32) | after)))
    }
}

/// The active recording context: which shadow state and which partition
/// the current thread's arena accesses belong to.
#[derive(Clone, Copy)]
struct Ctx {
    shadow: *const ShadowMem,
    tag: u64,
}

thread_local! {
    static CTX: Cell<Option<Ctx>> = const { Cell::new(None) };
}

/// Clears the recording context when the evaluation scope ends.
pub struct ScopeGuard {
    prev: Option<Ctx>,
    // Keep the guard on the thread that entered the scope.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Starts recording the current thread's arena accesses as partition
/// `part` under `shadow`'s current epoch. The caller must keep `shadow`
/// alive for the guard's lifetime (the engine owns it for its own
/// lifetime and evaluation never outlives the engine).
pub fn enter(shadow: &ShadowMem, part: u32) -> ScopeGuard {
    enter_at(shadow, part, shadow.epoch.load(Ordering::Relaxed))
}

/// [`enter`] with an explicit epoch — the dataflow runtime tags each
/// partition evaluation with its own cycle's epoch (`base + k`), since
/// overlapping cycles are in flight at once and no single "current"
/// epoch exists.
pub fn enter_at(shadow: &ShadowMem, part: u32, epoch: u64) -> ScopeGuard {
    debug_assert!((part as u64) < PART_MASK);
    let ctx = Ctx {
        shadow: shadow as *const ShadowMem,
        tag: (epoch << PART_BITS) | (part as u64 + 1),
    };
    ScopeGuard {
        prev: CTX.with(|c| c.replace(Some(ctx))),
        _not_send: std::marker::PhantomData,
    }
}

fn part_of(tag: u64) -> u64 {
    (tag & PART_MASK) - 1
}

fn with_ctx(f: impl FnOnce(&ShadowMem, u64)) {
    if let Some(ctx) = CTX.with(|c| c.get()) {
        // SAFETY: `enter`'s contract — the shadow outlives the guard,
        // and the guard clears the context on drop.
        let shadow = unsafe { &*ctx.shadow };
        f(shadow, ctx.tag);
    }
}

/// Records a read of arena words `[off, off+words)` by the current
/// scope's partition; panics if any of them carries a conflicting
/// writer tag — same epoch without a schedule edge `writer → me`, or
/// any *newer* epoch (a W->R race the static proof claims impossible).
#[inline]
pub fn note_read(off: u32, words: u32) {
    with_ctx(|shadow, tag| {
        let epoch = tag >> PART_BITS;
        for w in off as usize..(off + words) as usize {
            let wr = shadow.writer[w].load(Ordering::Relaxed);
            if wr != tag {
                let wr_epoch = wr >> PART_BITS;
                if wr_epoch > epoch {
                    panic!(
                        "race sanitizer: partition p{} read arena word {w} already written by \
                         partition p{} in a later cycle (missing wait)",
                        part_of(tag),
                        part_of(wr)
                    );
                }
                if wr_epoch == epoch && !shadow.ordered(part_of(wr), part_of(tag)) {
                    panic!(
                        "race sanitizer: partition p{} read arena word {w} written by partition \
                         p{} in the same level",
                        part_of(tag),
                        part_of(wr)
                    );
                }
            }
            shadow.reader[w].store(tag, Ordering::Relaxed);
        }
    });
}

/// Records a write of arena words `[off, off+words)` by the current
/// scope's partition; panics on a same-epoch cross-partition write
/// (always a race — every word has one writer), a same-epoch read
/// without a schedule edge `reader → me`, or any newer-epoch tag.
#[inline]
pub fn note_write(off: u32, words: u32) {
    with_ctx(|shadow, tag| {
        let epoch = tag >> PART_BITS;
        for w in off as usize..(off + words) as usize {
            let prev = shadow.writer[w].swap(tag, Ordering::Relaxed);
            if prev != tag {
                let prev_epoch = prev >> PART_BITS;
                if prev_epoch > epoch {
                    panic!(
                        "race sanitizer: partition p{} wrote arena word {w} already written by \
                         partition p{} in a later cycle (missing wait)",
                        part_of(tag),
                        part_of(prev)
                    );
                }
                if prev_epoch == epoch {
                    panic!(
                        "race sanitizer: partitions p{} and p{} both wrote arena word {w} in the \
                         same level",
                        part_of(prev),
                        part_of(tag)
                    );
                }
            }
            let rd = shadow.reader[w].load(Ordering::Relaxed);
            if rd != tag {
                let rd_epoch = rd >> PART_BITS;
                if rd_epoch > epoch {
                    panic!(
                        "race sanitizer: partition p{} wrote arena word {w} already read by \
                         partition p{} in a later cycle (missing wait)",
                        part_of(tag),
                        part_of(rd)
                    );
                }
                if rd_epoch == epoch && !shadow.ordered(part_of(rd), part_of(tag)) {
                    panic!(
                        "race sanitizer: partition p{} wrote arena word {w} read by partition \
                         p{} in the same level",
                        part_of(tag),
                        part_of(rd)
                    );
                }
            }
        }
    });
}

/// Records the architectural operand accesses of one tier-1 value
/// instruction. `Generic` is skipped — its fallback path runs through
/// the generic executors, which record their own accesses.
#[inline]
pub fn note_inst1(inst: &crate::step1::Inst1) {
    use crate::step1::Op1::*;
    match inst.op {
        Jmp | Generic => return,
        JmpIf0 => {
            note_read(inst.b, 1);
            return;
        }
        MemRead => {
            note_read(inst.a, 1);
            note_read(inst.b, 1);
        }
        Mux => {
            note_read(inst.a, 1);
            note_read(inst.b, 1);
            note_read(inst.c, 1);
        }
        Neg | Not | Andr | Orr | Xorr | Bits | Ext | Shl | ShrU | ShrS => note_read(inst.a, 1),
        _ => {
            note_read(inst.a, 1);
            note_read(inst.b, 1);
        }
    }
    note_write(inst.dst, 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_partition_accesses_are_quiet() {
        let shadow = ShadowMem::new(8);
        let _guard = enter(&shadow, 3);
        note_write(0, 2);
        note_read(0, 2);
        note_write(0, 2);
    }

    #[test]
    fn stale_epochs_do_not_conflict() {
        let shadow = ShadowMem::new(8);
        {
            let _guard = enter(&shadow, 1);
            note_write(4, 1);
        }
        shadow.next_epoch();
        let _guard = enter(&shadow, 2);
        note_write(4, 1); // same word, next level: fine
    }

    #[test]
    #[should_panic(expected = "both wrote arena word")]
    fn same_level_write_write_panics() {
        let shadow = ShadowMem::new(8);
        {
            let _guard = enter(&shadow, 1);
            note_write(5, 1);
        }
        let _guard = enter(&shadow, 2);
        note_write(5, 1);
    }

    #[test]
    #[should_panic(expected = "read arena word")]
    fn same_level_write_read_panics() {
        let shadow = ShadowMem::new(8);
        {
            let _guard = enter(&shadow, 1);
            note_write(6, 1);
        }
        let _guard = enter(&shadow, 2);
        note_read(6, 1);
    }

    #[test]
    fn dataflow_edge_legalizes_same_cycle_handoff() {
        // Edge 1 -> 2: partition 2 may read what 1 wrote this cycle, and
        // (the elision anti-edge direction) 2 may overwrite what 1 read.
        let edges: HashSet<u64> = [(1u64 << 32) | 2].into_iter().collect();
        let shadow = ShadowMem::new_with_edges(8, Some(edges));
        let base = shadow.advance_base(3);
        {
            let _guard = enter_at(&shadow, 1, base + 1);
            note_write(2, 1);
            note_read(3, 1);
        }
        let _guard = enter_at(&shadow, 2, base + 1);
        note_read(2, 1);
        note_write(3, 1);
    }

    #[test]
    #[should_panic(expected = "in the same level")]
    fn dataflow_unordered_same_cycle_pair_panics() {
        let shadow = ShadowMem::new_with_edges(8, Some(HashSet::new()));
        let base = shadow.advance_base(3);
        {
            let _guard = enter_at(&shadow, 1, base + 1);
            note_write(4, 1);
        }
        let _guard = enter_at(&shadow, 2, base + 1);
        note_read(4, 1);
    }

    #[test]
    #[should_panic(expected = "missing wait")]
    fn dataflow_later_cycle_tag_panics() {
        // Partition 2 speculated into cycle k+1 and read word 5; then
        // partition 1, still in cycle k, writes it — 2 outran a wait.
        let edges: HashSet<u64> = [(1u64 << 32) | 2].into_iter().collect();
        let shadow = ShadowMem::new_with_edges(8, Some(edges));
        let base = shadow.advance_base(4);
        {
            let _guard = enter_at(&shadow, 2, base + 2);
            note_read(5, 1);
        }
        let _guard = enter_at(&shadow, 1, base + 1);
        note_write(5, 1);
    }

    #[test]
    fn dataflow_prior_cycle_tags_are_stale() {
        let shadow = ShadowMem::new_with_edges(8, Some(HashSet::new()));
        let base = shadow.advance_base(4);
        {
            let _guard = enter_at(&shadow, 1, base + 1);
            note_write(6, 1);
        }
        let _guard = enter_at(&shadow, 2, base + 2);
        note_read(6, 1); // prior cycle's write: legal cross-cycle flow
    }
}
