//! Compilation of a netlist into flat bytecode over a word arena.
//!
//! Every signal gets a fixed slice of a single `Vec<u64>` arena
//! ([`Layout`]); every computed signal becomes one [`Step`] with
//! pre-resolved offsets so the engines' inner loops touch no hash maps
//! and allocate nothing.
//!
//! The compiler also implements the paper's **conditional multiplexer-way
//! evaluation** (Section III-B): when a mux way is a chain of operations
//! consumed *only* by that mux (and invisible to the engine — not a
//! partition output, state input, or side-effect operand), the chain is
//! nested under the mux and evaluated only when selected.

use crate::engine::EngineConfig;
use essent_core::CcssPlan;
use essent_netlist::{graph, Netlist, OpKind, SignalDef, SignalId};
use std::collections::HashSet;

/// Arena placement of every signal.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    offsets: Vec<u32>,
    words: Vec<u32>,
    total: usize,
}

impl Layout {
    /// Assigns each signal a contiguous word range.
    pub fn new(netlist: &Netlist) -> Layout {
        let mut offsets = Vec::with_capacity(netlist.signal_count());
        let mut words_v = Vec::with_capacity(netlist.signal_count());
        let mut total = 0u32;
        for s in netlist.signals() {
            let w = essent_bits::words(s.width) as u32;
            offsets.push(total);
            words_v.push(w);
            total += w;
        }
        Layout {
            offsets,
            words: words_v,
            total: total as usize,
        }
    }

    /// Word offset of a signal's value.
    #[inline]
    pub fn offset(&self, sig: SignalId) -> usize {
        self.offsets[sig.index()] as usize
    }

    /// Number of words a signal occupies.
    #[inline]
    pub fn words(&self, sig: SignalId) -> usize {
        self.words[sig.index()] as usize
    }

    /// Total arena size in words.
    pub fn total_words(&self) -> usize {
        self.total
    }
}

/// A resolved operand reference.
#[derive(Debug, Clone, Copy)]
pub struct ArgRef {
    pub off: u32,
    pub words: u16,
    pub width: u32,
    pub signed: bool,
}

/// A resolved destination reference.
#[derive(Debug, Clone, Copy)]
pub struct DstRef {
    pub off: u32,
    pub words: u16,
    pub width: u32,
}

/// What a step computes.
#[derive(Debug, Clone)]
pub enum StepKind {
    /// An arithmetic/logic operation from the netlist op set.
    Op(OpKind),
    /// A combinational memory read: `dst = en ? mem[addr] : 0`.
    MemRead { mem: u32, port: u32 },
}

/// One three-address instruction.
#[derive(Debug, Clone)]
pub struct Step {
    pub kind: StepKind,
    pub dst: DstRef,
    pub args: Vec<ArgRef>,
    pub params: Vec<u64>,
    /// The defined signal (for diagnostics and the event-driven engine).
    pub sig: SignalId,
}

/// A bytecode item: a plain step, or a mux with lazily evaluated ways.
#[derive(Debug, Clone)]
pub enum Item {
    Step(Step),
    /// `dst = sel ? eval(high_items); high : eval(low_items); low`
    CondMux {
        sel: ArgRef,
        dst: DstRef,
        high_items: Vec<Item>,
        high: ArgRef,
        low_items: Vec<Item>,
        low: ArgRef,
        sig: SignalId,
    },
}

impl Item {
    /// Number of steps in this item counting all nested ways.
    pub fn step_count(&self) -> usize {
        match self {
            Item::Step(_) => 1,
            Item::CondMux {
                high_items,
                low_items,
                ..
            } => {
                1 + high_items.iter().map(Item::step_count).sum::<usize>()
                    + low_items.iter().map(Item::step_count).sum::<usize>()
            }
        }
    }
}

/// A straight-line block of items (one partition, or the whole design).
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub items: Vec<Item>,
}

/// Builds the [`ArgRef`] for a signal.
pub fn arg_ref(netlist: &Netlist, layout: &Layout, sig: SignalId) -> ArgRef {
    let s = netlist.signal(sig);
    ArgRef {
        off: layout.offset(sig) as u32,
        words: layout.words(sig) as u16,
        width: s.width,
        signed: s.signed,
    }
}

/// Builds the [`DstRef`] for a signal.
pub fn dst_ref(netlist: &Netlist, layout: &Layout, sig: SignalId) -> DstRef {
    let s = netlist.signal(sig);
    DstRef {
        off: layout.offset(sig) as u32,
        words: layout.words(sig) as u16,
        width: s.width,
    }
}

/// Compiles the step for one computed signal; `None` for inputs,
/// constants, and register outputs.
pub fn step_for(netlist: &Netlist, layout: &Layout, sig: SignalId) -> Option<Step> {
    let s = netlist.signal(sig);
    match &s.def {
        SignalDef::Op(op) => Some(Step {
            kind: StepKind::Op(op.kind),
            dst: dst_ref(netlist, layout, sig),
            args: op
                .args
                .iter()
                .map(|&a| arg_ref(netlist, layout, a))
                .collect(),
            params: op.params.clone(),
            sig,
        }),
        SignalDef::MemRead { mem, port } => {
            let p = &netlist.mems()[mem.index()].readers[*port];
            Some(Step {
                kind: StepKind::MemRead {
                    mem: mem.0,
                    port: *port as u32,
                },
                dst: dst_ref(netlist, layout, sig),
                args: vec![
                    arg_ref(netlist, layout, p.addr),
                    arg_ref(netlist, layout, p.en),
                ],
                params: vec![],
                sig,
            })
        }
        _ => None,
    }
}

/// Signals the engine reads outside of step evaluation: state inputs,
/// memory port fields, external outputs, side-effect operands. These may
/// never be buried inside a conditional mux way.
fn engine_visible(netlist: &Netlist) -> Vec<bool> {
    let mut visible = vec![false; netlist.signal_count()];
    for sink in netlist.sink_signals() {
        visible[sink.index()] = true;
    }
    visible
}

/// Builds blocks of items for an ordered list of signals, applying the
/// conditional-mux optimization when enabled.
///
/// `ordered` must be in dependency order; `cross_read` marks signals read
/// outside this block (cross-partition outputs), which stay eagerly
/// evaluated.
fn build_block(
    netlist: &Netlist,
    layout: &Layout,
    ordered: &[SignalId],
    cross_read: &HashSet<SignalId>,
    mux_cond: bool,
    fanout_count: &[u32],
) -> Block {
    let visible = engine_visible(netlist);
    let in_block: HashSet<SignalId> = ordered.iter().copied().collect();

    // A signal is absorbable into its consuming mux when: computed here,
    // single consumer, not engine-visible, not read across partitions.
    let absorbable = |sig: SignalId| -> bool {
        mux_cond
            && fanout_count[sig.index()] == 1
            && !visible[sig.index()]
            && !cross_read.contains(&sig)
            && in_block.contains(&sig)
            && matches!(
                netlist.signal(sig).def,
                SignalDef::Op(_) | SignalDef::MemRead { .. }
            )
    };

    // Recursively build the item for `sig`, consuming absorbed producers.
    fn item_for(
        netlist: &Netlist,
        layout: &Layout,
        sig: SignalId,
        absorbable: &dyn Fn(SignalId) -> bool,
        absorbed: &mut HashSet<SignalId>,
    ) -> Item {
        if let SignalDef::Op(op) = &netlist.signal(sig).def {
            if op.kind == OpKind::Mux {
                let (sel, high, low) = (op.args[0], op.args[1], op.args[2]);
                let mut high_items = Vec::new();
                let mut low_items = Vec::new();
                collect_way(netlist, layout, high, absorbable, absorbed, &mut high_items);
                collect_way(netlist, layout, low, absorbable, absorbed, &mut low_items);
                if !high_items.is_empty() || !low_items.is_empty() {
                    return Item::CondMux {
                        sel: arg_ref(netlist, layout, sel),
                        dst: dst_ref(netlist, layout, sig),
                        high_items,
                        high: arg_ref(netlist, layout, high),
                        low_items,
                        low: arg_ref(netlist, layout, low),
                        sig,
                    };
                }
            }
        }
        Item::Step(step_for(netlist, layout, sig).expect("computed signal"))
    }

    /// Gathers the absorbable producer chain of a mux way, in dependency
    /// order, marking signals as absorbed.
    fn collect_way(
        netlist: &Netlist,
        layout: &Layout,
        way: SignalId,
        absorbable: &dyn Fn(SignalId) -> bool,
        absorbed: &mut HashSet<SignalId>,
        out: &mut Vec<Item>,
    ) {
        if !absorbable(way) || absorbed.contains(&way) {
            return;
        }
        absorbed.insert(way);
        // Dependencies first.
        for dep in netlist.deps(way) {
            collect_way(netlist, layout, dep, absorbable, absorbed, out);
        }
        out.push(item_for(netlist, layout, way, absorbable, absorbed));
    }

    let mut absorbed: HashSet<SignalId> = HashSet::new();
    let mut items = Vec::new();
    // Walk in reverse so a mux absorbs its ways before we reach them; then
    // emit in forward order skipping absorbed signals.
    let mut planned: Vec<(SignalId, Item)> = Vec::new();
    for &sig in ordered.iter().rev() {
        if absorbed.contains(&sig) {
            continue;
        }
        let item = item_for(netlist, layout, sig, &absorbable, &mut absorbed);
        planned.push((sig, item));
    }
    planned.reverse();
    for (_sig, item) in planned {
        items.push(item);
    }
    Block { items }
}

/// A fully compiled design for the full-cycle engine: one block covering
/// every computed signal in topological order.
pub fn compile_full(netlist: &Netlist, layout: &Layout, config: &EngineConfig) -> Block {
    let order: Vec<SignalId> = graph::topo_order(netlist)
        .expect("netlist is acyclic")
        .into_iter()
        .filter(|&s| {
            matches!(
                netlist.signal(s).def,
                SignalDef::Op(_) | SignalDef::MemRead { .. }
            )
        })
        .collect();
    let fanouts = fanout_counts(netlist);
    build_block(
        netlist,
        layout,
        &order,
        &HashSet::new(),
        config.mux_conditional,
        &fanouts,
    )
}

/// Compiles one block per plan partition (members are already in
/// dependency order); cross-partition outputs stay eager.
pub fn compile_plan(
    netlist: &Netlist,
    layout: &Layout,
    plan: &CcssPlan,
    config: &EngineConfig,
) -> Vec<Block> {
    let fanouts = fanout_counts(netlist);
    plan.partitions
        .iter()
        .map(|p| {
            let cross: HashSet<SignalId> = p.outputs.iter().map(|o| o.signal).collect();
            build_block(
                netlist,
                layout,
                &p.members,
                &cross,
                config.mux_conditional,
                &fanouts,
            )
        })
        .collect()
}

/// Per-signal fanout counts over the extended consumer set (signal
/// readers plus memory write-port field usage and side effects), used by
/// the single-consumer test of the mux optimization.
pub fn fanout_counts(netlist: &Netlist) -> Vec<u32> {
    let mut counts = vec![0u32; netlist.signal_count()];
    for i in 0..netlist.signal_count() {
        for dep in netlist.deps(SignalId(i as u32)) {
            counts[dep.index()] += 1;
        }
    }
    // Engine-side readers (sinks) are handled via `engine_visible`, but
    // count them too so "single consumer" stays conservative.
    for sink in netlist.sink_signals() {
        counts[sink.index()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netlist_of(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    #[test]
    fn layout_is_contiguous_and_sized() {
        let n = netlist_of("circuit L :\n  module L :\n    input a : UInt<100>\n    output o : UInt<100>\n    o <= not(a)\n");
        let layout = Layout::new(&n);
        assert_eq!(
            layout.total_words(),
            n.signals()
                .iter()
                .map(|s| essent_bits::words(s.width))
                .sum::<usize>()
        );
        // Offsets strictly increase and don't overlap.
        let mut ranges: Vec<(usize, usize)> = (0..n.signal_count())
            .map(|i| {
                let s = SignalId(i as u32);
                (layout.offset(s), layout.offset(s) + layout.words(s))
            })
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping slots");
        }
    }

    #[test]
    fn full_compile_covers_all_computed_signals() {
        let n = netlist_of("circuit F :\n  module F :\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<8>\n    o <= bits(add(a, b), 7, 0)\n");
        let layout = Layout::new(&n);
        let block = compile_full(&n, &layout, &EngineConfig::default());
        let computed = n
            .signals()
            .iter()
            .filter(|s| matches!(s.def, SignalDef::Op(_) | SignalDef::MemRead { .. }))
            .count();
        let steps: usize = block.items.iter().map(Item::step_count).sum();
        assert_eq!(steps, computed);
    }

    #[test]
    fn mux_ways_absorb_single_consumer_chains() {
        // Each way is an expensive single-consumer chain.
        let n = netlist_of("circuit M :\n  module M :\n    input c : UInt<1>\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<16>\n    node hi = mul(a, a)\n    node lo = mul(b, b)\n    o <= mux(c, hi, lo)\n");
        let layout = Layout::new(&n);
        let block = compile_full(&n, &layout, &EngineConfig::default());
        let has_condmux = block
            .items
            .iter()
            .any(|i| matches!(i, Item::CondMux { high_items, low_items, .. } if !high_items.is_empty() && !low_items.is_empty()));
        assert!(has_condmux, "single-consumer ways must nest: {block:#?}");
    }

    #[test]
    fn shared_way_stays_eager() {
        // `hi` is used by the mux AND by output p: must not be absorbed.
        let n = netlist_of("circuit S :\n  module S :\n    input c : UInt<1>\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<16>\n    output p : UInt<16>\n    node hi = mul(a, a)\n    node lo = mul(b, b)\n    o <= mux(c, hi, lo)\n    p <= hi\n");
        let layout = Layout::new(&n);
        let block = compile_full(&n, &layout, &EngineConfig::default());
        for item in &block.items {
            if let Item::CondMux { high_items, .. } = item {
                // hi feeds two consumers; its mul must not be under the mux.
                assert!(high_items.is_empty(), "shared producer was absorbed");
            }
        }
    }

    #[test]
    fn disabling_mux_conditional_yields_plain_steps() {
        let n = netlist_of("circuit M :\n  module M :\n    input c : UInt<1>\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<16>\n    o <= mux(c, mul(a, a), mul(b, b))\n");
        let layout = Layout::new(&n);
        let config = EngineConfig {
            mux_conditional: false,
            ..EngineConfig::default()
        };
        let block = compile_full(&n, &layout, &config);
        assert!(block.items.iter().all(|i| matches!(i, Item::Step(_))));
    }
}
