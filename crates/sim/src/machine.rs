//! Shared execution state for all engines: the value arena, memory banks,
//! halt/printf side effects, and the work counters that feed the paper's
//! Figure 7 overhead decomposition.

use crate::compile::{ArgRef, Item, Layout, Step, StepKind};
use essent_bits::{kernels, words, Bits};
use essent_netlist::interp::{format_printf, MemRefError};
use essent_netlist::{eval::Operand, Netlist, SignalDef, SignalId};
use std::sync::Arc;

/// Deterministic work counters, in the categories the paper separates:
/// base simulation work, activity-agnostic *static* overhead, and
/// activity-dependent *dynamic* overhead (Section V, Figure 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Base work: operations actually evaluated.
    pub ops_evaluated: u64,
    /// Static overhead: per-cycle partition activity flag tests plus
    /// per-cycle state commit checks that run regardless of activity.
    pub static_checks: u64,
    /// Dynamic overhead: output change comparisons and consumer flag
    /// writes performed because a partition was active.
    pub dynamic_checks: u64,
    /// Scheduling events (event-driven engine: queue pushes/pops).
    pub events: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl WorkCounters {
    /// Total accounted work units.
    pub fn total(&self) -> u64 {
        self.ops_evaluated + self.static_checks + self.dynamic_checks + self.events
    }
}

/// One memory bank's simulation storage.
#[derive(Debug, Clone)]
pub struct MemBank {
    pub words_per: usize,
    pub depth: usize,
    pub width: u32,
    pub data: Vec<u64>,
}

impl MemBank {
    fn new(width: u32, depth: usize) -> MemBank {
        let words_per = words(width);
        MemBank {
            words_per,
            depth,
            width,
            data: vec![0; words_per * depth],
        }
    }

    /// The word slice of entry `addr`.
    #[inline]
    pub fn entry(&self, addr: usize) -> &[u64] {
        &self.data[addr * self.words_per..(addr + 1) * self.words_per]
    }

    /// Mutable word slice of entry `addr`.
    #[inline]
    pub fn entry_mut(&mut self, addr: usize) -> &mut [u64] {
        &mut self.data[addr * self.words_per..(addr + 1) * self.words_per]
    }
}

/// The shared engine state: one flat `u64` arena holding every signal
/// value, plus memory banks and side-effect bookkeeping.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Shared, immutable netlist: engines over the same design share one
    /// allocation instead of deep-cloning the graph per instance.
    pub netlist: Arc<Netlist>,
    pub layout: Layout,
    pub arena: Vec<u64>,
    pub mems: Vec<MemBank>,
    pub cycle: u64,
    pub halted: Option<u64>,
    /// Capture printf output (disable for benchmarking hot loops).
    pub capture_printf: bool,
    pub printf_log: Vec<String>,
    pub counters: WorkCounters,
}

impl Machine {
    /// Builds a machine with zero-initialized state and constants
    /// materialized into the arena. Clones the netlist once; engines
    /// sharing a design should prefer [`Machine::from_arc`].
    pub fn new(netlist: &Netlist) -> Machine {
        Machine::from_arc(Arc::new(netlist.clone()))
    }

    /// Builds a machine over an already-shared netlist (no deep clone).
    pub fn from_arc(netlist: Arc<Netlist>) -> Machine {
        let layout = Layout::new(&netlist);
        let mut arena = vec![0u64; layout.total_words()];
        for (i, s) in netlist.signals().iter().enumerate() {
            if let SignalDef::Const(c) = &s.def {
                let sig = SignalId(i as u32);
                let off = layout.offset(sig);
                arena[off..off + layout.words(sig)].copy_from_slice(c.limbs());
            }
        }
        let mems = netlist
            .mems()
            .iter()
            .map(|m| MemBank::new(m.width, m.depth))
            .collect();
        Machine {
            netlist,
            layout,
            arena,
            mems,
            cycle: 0,
            halted: None,
            capture_printf: true,
            printf_log: Vec::new(),
            counters: WorkCounters::default(),
        }
    }

    /// Reads a signal's current words.
    #[inline]
    pub fn slot(&self, sig: SignalId) -> &[u64] {
        let off = self.layout.offset(sig);
        &self.arena[off..off + self.layout.words(sig)]
    }

    /// Reads a signal as an owned [`Bits`].
    pub fn value(&self, sig: SignalId) -> Bits {
        Bits::from_limbs(self.slot(sig).to_vec(), self.netlist.signal(sig).width)
    }

    /// Writes a signal slot from a [`Bits`] (width-adapted); returns
    /// `true` if the stored value changed.
    pub fn set_value(&mut self, sig: SignalId, value: &Bits) -> bool {
        let width = self.netlist.signal(sig).width;
        let adapted = value.extend(width, false);
        let off = self.layout.offset(sig);
        let w = self.layout.words(sig);
        let slot = &mut self.arena[off..off + w];
        if slot == adapted.limbs() {
            false
        } else {
            slot.copy_from_slice(adapted.limbs());
            true
        }
    }

    /// Executes one step against the arena.
    ///
    /// Uses raw-pointer slices because the destination and source slots of
    /// a step are always disjoint (the netlist is acyclic, so a signal
    /// never reads itself, and the layout gives every signal a unique
    /// range).
    #[inline]
    pub fn run_step(&mut self, step: &Step) {
        // SAFETY: exclusive access to the arena through &mut self.
        unsafe {
            run_step_raw(
                step,
                self.arena.as_mut_ptr(),
                &self.mems,
                &mut self.counters.ops_evaluated,
            )
        }
    }

    /// Executes a block of items, honoring conditional mux ways.
    pub fn run_items(&mut self, items: &[Item]) {
        // SAFETY: exclusive access to the arena through &mut self.
        unsafe {
            run_items_raw(
                items,
                self.arena.as_mut_ptr(),
                &self.mems,
                &mut self.counters.ops_evaluated,
            )
        }
    }

    /// Compares two arena slots for equality.
    #[inline]
    pub fn slots_equal(&self, a_off: usize, b_off: usize, words: usize) -> bool {
        self.arena[a_off..a_off + words] == self.arena[b_off..b_off + words]
    }

    /// Reads a slot's low 64 bits (addresses, enables).
    #[inline]
    pub fn slot_u64(&self, sig: SignalId) -> u64 {
        self.arena[self.layout.offset(sig)]
    }

    /// Evaluates `stop`s and `printf`s against current values; returns
    /// `true` if a stop fired (halting at the current cycle).
    pub fn side_effects(&mut self) -> bool {
        // Cheap handle clone so the printf/stop defs can be borrowed
        // while the arena and log are accessed through `self`.
        let netlist = Arc::clone(&self.netlist);
        if self.capture_printf {
            for p in netlist.printfs() {
                if self.slot_u64(p.en) & 1 == 1 {
                    let args: Vec<Bits> = p.args.iter().map(|&a| self.value(a)).collect();
                    self.printf_log.push(format_printf(&p.fmt, &args));
                }
            }
        }
        let mut fired = false;
        for s in netlist.stops() {
            if self.slot_u64(s.en) & 1 == 1 && self.halted.is_none() {
                self.halted = Some(s.code);
                fired = true;
            }
        }
        fired
    }

    /// Commits one register (copy next → out); returns `true` on change.
    #[inline]
    pub fn commit_reg(&mut self, reg_index: usize) -> bool {
        let reg = &self.netlist.regs()[reg_index];
        let next_off = self.layout.offset(reg.next);
        let out_off = self.layout.offset(reg.out);
        let w = self.layout.words(reg.out);
        // SAFETY: exclusive access through &mut self; the two slots are
        // distinct signals and so occupy disjoint ranges.
        unsafe { commit_state_raw(self.arena.as_mut_ptr(), next_off, out_off, w) }
    }

    /// Executes one memory write port if enabled; returns `true` when the
    /// stored contents changed. The data signal is width-adapted to the
    /// bank width (they may diverge after optimization), allocation-free.
    pub fn run_mem_write(&mut self, mem_index: usize, writer: usize) -> bool {
        let Machine {
            netlist,
            layout,
            arena,
            mems,
            ..
        } = self;
        // SAFETY: exclusive access through &mut self; the port's arena
        // slots and the bank storage are disjoint.
        unsafe {
            run_mem_write_raw(
                netlist,
                layout,
                arena.as_mut_ptr(),
                &mut mems[mem_index],
                mem_index,
                writer,
            )
        }
    }

    /// Back-door memory write (program loading), with a structured error
    /// for bad references — the same [`MemRefError`] the golden
    /// interpreter returns, liftable into a coded
    /// `essent_core::diag::Diagnostic` via `From`.
    pub fn try_write_mem_backdoor(
        &mut self,
        mem: &str,
        addr: usize,
        value: &Bits,
    ) -> Result<(), MemRefError> {
        let id = self
            .netlist
            .find_mem(mem)
            .ok_or_else(|| MemRefError::NoSuchMem {
                mem: mem.to_string(),
            })?;
        let bank = &mut self.mems[id.index()];
        if addr >= bank.depth {
            return Err(MemRefError::AddrOutOfRange {
                mem: mem.to_string(),
                addr,
                depth: bank.depth,
            });
        }
        let width = bank.width;
        let adapted = value.extend(width, false);
        bank.entry_mut(addr).copy_from_slice(adapted.limbs());
        Ok(())
    }

    /// Back-door memory read, with a structured error for bad references.
    pub fn try_read_mem_backdoor(&self, mem: &str, addr: usize) -> Result<Bits, MemRefError> {
        let id = self
            .netlist
            .find_mem(mem)
            .ok_or_else(|| MemRefError::NoSuchMem {
                mem: mem.to_string(),
            })?;
        let bank = &self.mems[id.index()];
        if addr >= bank.depth {
            return Err(MemRefError::AddrOutOfRange {
                mem: mem.to_string(),
                addr,
                depth: bank.depth,
            });
        }
        Ok(Bits::from_limbs(bank.entry(addr).to_vec(), bank.width))
    }

    /// Back-door memory write (program loading).
    ///
    /// # Panics
    ///
    /// Panics on unknown memory or out-of-range address, rendering the
    /// structured diagnostic (`M0001`/`M0002`). Use
    /// [`Machine::try_write_mem_backdoor`] to handle the error instead.
    pub fn write_mem_backdoor(&mut self, mem: &str, addr: usize, value: &Bits) {
        self.try_write_mem_backdoor(mem, addr, value)
            .unwrap_or_else(|e| panic!("{}", essent_core::diag::Diagnostic::from(e)));
    }

    /// Back-door memory read.
    ///
    /// # Panics
    ///
    /// Panics on unknown memory or out-of-range address; see
    /// [`Machine::try_read_mem_backdoor`].
    pub fn read_mem_backdoor(&self, mem: &str, addr: usize) -> Bits {
        self.try_read_mem_backdoor(mem, addr)
            .unwrap_or_else(|e| panic!("{}", essent_core::diag::Diagnostic::from(e)))
    }
}

/// Raw step execution over a shared arena pointer.
///
/// # Safety
///
/// `arena` must point at the machine's arena; the caller must guarantee no
/// other thread concurrently accesses the destination slot of `step`, and
/// that all source slots are not concurrently written. The engines uphold
/// this with disjoint partition memberships and level barriers.
pub(crate) unsafe fn run_step_raw(step: &Step, arena: *mut u64, mems: &[MemBank], ops: &mut u64) {
    *ops += 1;
    let base = arena;
    #[cfg(feature = "race-sanitizer")]
    {
        for a in &step.args {
            crate::sanitizer::note_read(a.off, a.words as u32);
        }
        crate::sanitizer::note_write(step.dst.off, step.dst.words as u32);
    }
    // SAFETY: `arena` covers the layout (caller contract) and the
    // destination slot is exclusive to this step's partition — the
    // verifier's footprint layer (R0504) proves every compiled write
    // stays inside the partition's declared range, and R0502 proves no
    // co-leveled partition writes it.
    let dst = unsafe {
        std::slice::from_raw_parts_mut(base.add(step.dst.off as usize), step.dst.words as usize)
    };
    match &step.kind {
        StepKind::Op(kind) => {
            let mut operands: [Operand; 3] = [
                Operand::new(&[], 0, false),
                Operand::new(&[], 0, false),
                Operand::new(&[], 0, false),
            ];
            for (i, a) in step.args.iter().enumerate() {
                // SAFETY: source slots are in-bounds distinct layout
                // ranges (a signal never reads itself — the netlist is
                // acyclic) and not concurrently written (R0503: no
                // co-leveled partition writes a word this one reads).
                let src = unsafe {
                    std::slice::from_raw_parts(base.add(a.off as usize), a.words as usize)
                };
                operands[i] = Operand::new(src, a.width, a.signed);
            }
            essent_netlist::eval::eval_op(
                *kind,
                &step.params,
                dst,
                step.dst.width,
                &operands[..step.args.len()],
            );
        }
        StepKind::MemRead { mem, port: _ } => {
            let addr_ref = &step.args[0];
            let en_ref = &step.args[1];
            // SAFETY: one-word read of the enable slot; same read
            // contract as above (R0503).
            let en = unsafe { *base.add(en_ref.off as usize) } & 1 == 1;
            let bank = &mems[*mem as usize];
            if en {
                // SAFETY: one-word read of the address slot (R0503).
                let addr = unsafe { read_u64(base, addr_ref) };
                if (addr as usize) < bank.depth {
                    dst.copy_from_slice(bank.entry(addr as usize));
                    return;
                }
            }
            dst.iter_mut().for_each(|w| *w = 0);
        }
    }
}

/// Raw block execution (see [`run_step_raw`] for the safety contract).
///
/// # Safety
///
/// Same as [`run_step_raw`], extended to every step in `items`.
pub(crate) unsafe fn run_items_raw(
    items: &[Item],
    arena: *mut u64,
    mems: &[MemBank],
    ops: &mut u64,
) {
    for item in items {
        match item {
            // SAFETY: forwards the caller's contract unchanged.
            Item::Step(step) => unsafe { run_step_raw(step, arena, mems, ops) },
            Item::CondMux {
                sel,
                dst,
                high_items,
                high,
                low_items,
                low,
                ..
            } => {
                *ops += 1;
                #[cfg(feature = "race-sanitizer")]
                crate::sanitizer::note_read(sel.off, sel.words as u32);
                // SAFETY: one-word read of the selector slot, which no
                // co-leveled partition writes (R0503).
                let take_high = unsafe { *arena.add(sel.off as usize) } & 1 == 1;
                let (way_items, way) = if take_high {
                    (high_items, high)
                } else {
                    (low_items, low)
                };
                // SAFETY: forwards the caller's contract unchanged.
                unsafe { run_items_raw(way_items, arena, mems, ops) };
                #[cfg(feature = "race-sanitizer")]
                {
                    crate::sanitizer::note_read(way.off, way.words as u32);
                    crate::sanitizer::note_write(dst.off, dst.words as u32);
                }
                // SAFETY: the mux destination is a declared write of this
                // partition (R0504) unshared within the level (R0502),
                // and the taken way's slot is a read no co-leveled
                // partition writes (R0503).
                let (d, s) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(
                            arena.add(dst.off as usize),
                            dst.words as usize,
                        ),
                        std::slice::from_raw_parts(arena.add(way.off as usize), way.words as usize),
                    )
                };
                kernels::extend(d, dst.width, s, way.width, way.signed);
            }
        }
    }
}

/// Raw state commit: copy `next` into `out`; returns `true` on change.
///
/// # Safety
///
/// `arena` must be the machine's arena and the two `words`-sized ranges at
/// `next_off`/`out_off` must not be concurrently accessed.
pub(crate) unsafe fn commit_state_raw(
    arena: *mut u64,
    next_off: usize,
    out_off: usize,
    words: usize,
) -> bool {
    #[cfg(feature = "race-sanitizer")]
    {
        crate::sanitizer::note_read(next_off as u32, words as u32);
        crate::sanitizer::note_write(out_off as u32, words as u32);
    }
    // SAFETY: `next` and `out` are distinct signals, hence disjoint
    // layout ranges; for elided in-partition commits the footprint
    // layer counts the `out` slot as a partition write (R0502/R0504)
    // and the wake edges level-order every reader before this writer
    // (R0503), so neither range is concurrently accessed.
    let (next, out) = unsafe {
        (
            std::slice::from_raw_parts(arena.add(next_off), words),
            std::slice::from_raw_parts_mut(arena.add(out_off), words),
        )
    };
    if next == out {
        false
    } else {
        out.copy_from_slice(next);
        true
    }
}

/// Raw memory-write execution for the parallel engine's serial phase.
///
/// Mirrors [`Machine::run_mem_write`] but works over raw arena/bank
/// pointers so the caller can hold no Rust borrows of the machine.
///
/// # Safety
///
/// `arena` must be the machine's arena pointer and `bank` a valid,
/// exclusively-accessed memory bank; no other thread may touch either.
pub(crate) unsafe fn run_mem_write_raw(
    netlist: &Netlist,
    layout: &Layout,
    arena: *mut u64,
    bank: &mut MemBank,
    mem_index: usize,
    writer: usize,
) -> bool {
    let port = &netlist.mems()[mem_index].writers[writer];
    // SAFETY: one-word reads of the port's en/mask/addr slots; the
    // caller holds the only thread touching the arena (serial phase or
    // &mut Machine).
    let (en, mask) = unsafe {
        (
            *arena.add(layout.offset(port.en)) & 1 == 1,
            *arena.add(layout.offset(port.mask)) & 1 == 1,
        )
    };
    if !en || !mask {
        return false;
    }
    // SAFETY: as above.
    let addr = unsafe { *arena.add(layout.offset(port.addr)) } as usize;
    if addr >= bank.depth {
        return false;
    }
    let data_sig = netlist.signal(port.data);
    // SAFETY: the data slot is a valid layout range, unaliased by the
    // exclusive `bank` borrow.
    let src = unsafe {
        std::slice::from_raw_parts(arena.add(layout.offset(port.data)), layout.words(port.data))
    };
    let width = bank.width;
    let entry = bank.entry_mut(addr);
    // Change detection against the adapted value.
    let mut scratch = [0u64; 8];
    let adapted: &mut [u64] = if entry.len() <= scratch.len() {
        &mut scratch[..entry.len()]
    } else {
        return {
            // Wide fallback (rare): allocate.
            let mut v = vec![0u64; entry.len()];
            kernels::extend(&mut v, width, src, data_sig.width, data_sig.signed);
            if entry != v.as_slice() {
                entry.copy_from_slice(&v);
                true
            } else {
                false
            }
        };
    };
    kernels::extend(adapted, width, src, data_sig.width, data_sig.signed);
    if entry != &*adapted {
        entry.copy_from_slice(adapted);
        true
    } else {
        false
    }
}

/// Reads the low word of an argument slot.
///
/// # Safety
///
/// `base` must be the machine's arena pointer and `arg.off` an
/// in-bounds slot no other thread concurrently writes — guaranteed for
/// partition evaluation by the footprint proof (R0503) and for the
/// sequential engines by `&mut Machine`.
#[inline]
unsafe fn read_u64(base: *mut u64, arg: &ArgRef) -> u64 {
    // SAFETY: forwarded from the function's contract.
    unsafe { *base.add(arg.off as usize) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_full;
    use crate::engine::EngineConfig;

    fn netlist_of(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    #[test]
    fn constants_materialize_in_arena() {
        let n = netlist_of(
            "circuit C :\n  module C :\n    output o : UInt<8>\n    o <= UInt<8>(\"hab\")\n",
        );
        let mut m = Machine::new(&n);
        let block = compile_full(&n, &m.layout.clone(), &EngineConfig::default());
        m.run_items(&block.items);
        assert_eq!(m.value(n.find("o").unwrap()).to_u64(), Some(0xab));
    }

    #[test]
    fn run_step_evaluates_adds() {
        let n = netlist_of("circuit A :\n  module A :\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<9>\n    o <= add(a, b)\n");
        let mut m = Machine::new(&n);
        m.set_value(n.find("a").unwrap(), &Bits::from_u64(200, 8));
        m.set_value(n.find("b").unwrap(), &Bits::from_u64(100, 8));
        let block = compile_full(&n, &m.layout.clone(), &EngineConfig::default());
        m.run_items(&block.items);
        assert_eq!(m.value(n.find("o").unwrap()).to_u64(), Some(300));
        assert!(m.counters.ops_evaluated >= 1);
    }

    #[test]
    fn commit_reg_detects_change() {
        let n = netlist_of("circuit R :\n  module R :\n    input clock : Clock\n    input d : UInt<4>\n    output q : UInt<4>\n    reg r : UInt<4>, clock\n    r <= d\n    q <= r\n");
        let mut m = Machine::new(&n);
        m.set_value(n.find("d").unwrap(), &Bits::from_u64(5, 4));
        let block = compile_full(&n, &m.layout.clone(), &EngineConfig::default());
        m.run_items(&block.items);
        assert!(m.commit_reg(0), "first commit changes 0 -> 5");
        assert!(!m.commit_reg(0), "second commit is idempotent");
        assert_eq!(m.value(n.find("r").unwrap()).to_u64(), Some(5));
    }

    /// A memory with one write port whose data signal can be re-declared
    /// to a width different from the bank's.
    fn write_port_netlist() -> Netlist {
        netlist_of(
            "circuit W :\n  module W :\n    input clock : Clock\n    input waddr : UInt<3>\n    input wdata : UInt<8>\n    input wen : UInt<1>\n    output o : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 8\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= waddr\n    o <= m.r.data\n    m.w.clk <= clock\n    m.w.en <= wen\n    m.w.addr <= waddr\n    m.w.mask <= UInt<1>(1)\n    m.w.data <= wdata\n",
        )
    }

    fn drive_write(m: &mut Machine, port: &essent_netlist::WritePort, addr: u64) {
        m.set_value(port.addr, &Bits::from_u64(addr, 3));
        m.set_value(port.en, &Bits::from_u64(1, 1));
        m.set_value(port.mask, &Bits::from_u64(1, 1));
    }

    #[test]
    fn mem_write_zero_extends_narrow_unsigned_data() {
        let mut n = write_port_netlist();
        let port = n.mems()[0].writers[0].clone();
        // Narrow the data signal below the bank width (8), as the width
        // narrowing pass may after optimization.
        n.signal_mut(port.data).width = 4;
        let mut m = Machine::new(&n);
        drive_write(&mut m, &port, 2);
        m.set_value(port.data, &Bits::from_u64(0xb, 4));
        assert!(m.run_mem_write(0, 0), "first write changes the entry");
        assert_eq!(m.read_mem_backdoor("m", 2).to_u64(), Some(0x0b));
        assert!(
            !m.run_mem_write(0, 0),
            "re-writing the same value is a no-op"
        );
    }

    #[test]
    fn mem_write_sign_extends_narrow_signed_data() {
        let mut n = write_port_netlist();
        let port = n.mems()[0].writers[0].clone();
        {
            let s = n.signal_mut(port.data);
            s.width = 4;
            s.signed = true;
        }
        let mut m = Machine::new(&n);
        drive_write(&mut m, &port, 3);
        m.set_value(port.data, &Bits::from_u64(0xb, 4)); // -5 as SInt<4>
        assert!(m.run_mem_write(0, 0));
        assert_eq!(m.read_mem_backdoor("m", 3).to_u64(), Some(0xfb));
    }

    #[test]
    fn mem_write_truncates_wide_data() {
        let mut n = write_port_netlist();
        let port = n.mems()[0].writers[0].clone();
        n.signal_mut(port.data).width = 16;
        let mut m = Machine::new(&n);
        drive_write(&mut m, &port, 1);
        m.set_value(port.data, &Bits::from_u64(0x1ab, 16));
        assert!(m.run_mem_write(0, 0));
        assert_eq!(m.read_mem_backdoor("m", 1).to_u64(), Some(0xab));
        assert!(!m.run_mem_write(0, 0), "idempotent after truncation");
    }

    #[test]
    fn mem_backdoor_roundtrip() {
        let n = netlist_of("circuit M :\n  module M :\n    input clock : Clock\n    input addr : UInt<3>\n    output o : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 8\n      read-latency => 0\n      write-latency => 1\n      reader => r\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= addr\n    o <= m.r.data\n");
        let mut m = Machine::new(&n);
        m.write_mem_backdoor("m", 5, &Bits::from_u64(99, 8));
        assert_eq!(m.read_mem_backdoor("m", 5).to_u64(), Some(99));
        m.set_value(n.find("addr").unwrap(), &Bits::from_u64(5, 3));
        let block = compile_full(&n, &m.layout.clone(), &EngineConfig::default());
        m.run_items(&block.items);
        assert_eq!(m.value(n.find("o").unwrap()).to_u64(), Some(99));
    }
}
