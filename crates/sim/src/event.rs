//! A classic levelized event-driven simulator (paper Section II).
//!
//! Change propagation happens at *single-signal* granularity: when a
//! signal's value changes, its fanouts are scheduled. Signals are
//! processed in levelized (topological-depth) order, so each signal is
//! evaluated at most once per cycle — singular execution — but every
//! event pays queue and change-detection overhead at the finest possible
//! granularity. This is exactly the overhead structure the paper argues
//! makes fine-grained activity tracking unprofitable, and it stands in
//! for the commercial event-driven simulator ("CommVer") in the Table III
//! reproduction.
//!
//! Two scheduling modes are provided (selected by
//! [`EngineConfig::event_levelized`]): the default *levelized* mode
//! processes events in topological-depth order so each signal is
//! evaluated at most once per cycle (SSIM/LECSIM style), while the
//! classic *FIFO delta-queue* mode evaluates events in arrival order and
//! pays the "unnecessary repeat evaluations" (paper Section II) of
//! traditional event-driven simulators — a signal whose inputs settle in
//! several waves is evaluated several times.

use crate::compile::{step_for, Step};
use crate::engine::{delegate_simulator_basics, EngineConfig, Simulator};
use crate::machine::Machine;
use crate::profile::{NoProfile, ProfileArena, ProfileReport, ProfileWiring, Profiler};
use essent_bits::Bits;
use essent_netlist::{graph, Netlist, SignalDef, SignalId};

/// Levelized event-driven simulator.
pub struct EventDrivenSim {
    machine: Machine,
    /// Per signal: its compiled step (None for inputs/constants/regs).
    steps: Vec<Option<Step>>,
    /// Per signal: topological level (edges strictly increase level).
    levels: Vec<u32>,
    /// Per signal: computed fanouts to schedule on change.
    fanouts: Vec<Vec<u32>>,
    /// Bucket queue, one bucket per level.
    buckets: Vec<Vec<u32>>,
    queued: Vec<bool>,
    /// Scratch buffer for old-value snapshots.
    scratch: Vec<u64>,
    /// Levelized (true) or FIFO delta-queue (false) scheduling.
    levelized: bool,
    /// FIFO mode's queue.
    fifo: std::collections::VecDeque<u32>,
    /// Signals to enqueue when a memory's contents change (its read-data
    /// signals), per memory.
    mem_read_sigs: Vec<Vec<u32>>,
    /// Telemetry arena ([`EngineConfig::profile`]): one unit per
    /// topological level (the engine's schedule granularity).
    profile: Option<Box<ProfileArena>>,
}

impl EventDrivenSim {
    /// Compiles the netlist for event-driven execution.
    pub fn new(netlist: &Netlist, config: &EngineConfig) -> EventDrivenSim {
        let mut machine = Machine::new(netlist);
        machine.capture_printf = config.capture_printf;
        let layout = machine.layout.clone();
        let n = netlist.signal_count();

        let steps: Vec<Option<Step>> = (0..n)
            .map(|i| step_for(netlist, &layout, SignalId(i as u32)))
            .collect();

        // Levels: longest path from sources.
        let order = graph::topo_order(netlist).expect("netlist is acyclic");
        let mut levels = vec![0u32; n];
        for &sig in &order {
            let lvl = netlist
                .deps(sig)
                .iter()
                .map(|d| levels[d.index()] + 1)
                .max()
                .unwrap_or(0);
            levels[sig.index()] = lvl;
        }
        let max_level = levels.iter().copied().max().unwrap_or(0) as usize;

        // Fanouts restricted to computable signals.
        let mut fanouts = vec![Vec::new(); n];
        for (i, step) in steps.iter().enumerate() {
            if step.is_none() {
                continue;
            }
            for dep in netlist.deps(SignalId(i as u32)) {
                fanouts[dep.index()].push(i as u32);
            }
        }
        for f in &mut fanouts {
            f.sort_unstable();
            f.dedup();
        }

        let mem_read_sigs = netlist
            .mems()
            .iter()
            .map(|m| m.readers.iter().map(|r| r.data.0).collect())
            .collect();

        let max_words = (0..n)
            .map(|i| layout.words(SignalId(i as u32)))
            .max()
            .unwrap_or(1);

        let profile = config.profile.then(|| {
            Box::new(ProfileArena::new(ProfileWiring::for_levels(
                netlist,
                max_level + 1,
            )))
        });
        let mut sim = EventDrivenSim {
            machine,
            steps,
            levels,
            fanouts,
            buckets: vec![Vec::new(); max_level + 1],
            queued: vec![false; n],
            scratch: vec![0; max_words],
            levelized: config.event_levelized,
            fifo: std::collections::VecDeque::new(),
            mem_read_sigs,
            profile,
        };
        // First cycle: everything is an event.
        for i in 0..n {
            if sim.steps[i].is_some() {
                sim.enqueue(i as u32);
            }
        }
        sim
    }

    #[inline]
    fn enqueue(&mut self, sig: u32) {
        if !self.queued[sig as usize] {
            self.queued[sig as usize] = true;
            if self.levelized {
                self.buckets[self.levels[sig as usize] as usize].push(sig);
            } else {
                self.fifo.push_back(sig);
            }
            self.machine.counters.events += 1;
        }
    }

    /// Evaluates one signal; returns `true` when its value changed.
    fn eval_signal(&mut self, sig: u32) -> bool {
        let step = self.steps[sig as usize].take().expect("queued computable");
        let off = step.dst.off as usize;
        let w = step.dst.words as usize;
        self.scratch[..w].copy_from_slice(&self.machine.arena[off..off + w]);
        self.machine.run_step(&step);
        self.machine.counters.dynamic_checks += 1;
        let changed = self.machine.arena[off..off + w] != self.scratch[..w];
        self.steps[sig as usize] = Some(step);
        changed
    }

    fn enqueue_fanouts(&mut self, sig: u32) {
        let fans = std::mem::take(&mut self.fanouts[sig as usize]);
        for &f in &fans {
            self.enqueue(f);
        }
        self.fanouts[sig as usize] = fans;
    }

    /// Charges every fanout of `sig` as a wake of the fanout's level to
    /// the given cause (probe bookkeeping mirroring `enqueue_fanouts`).
    fn attribute_fanouts<P: Profiler>(&self, prof: &mut P, sig: u32, cause: WakeCause) {
        if !P::ENABLED {
            return;
        }
        for &f in &self.fanouts[sig as usize] {
            let consumer = self.levels[f as usize];
            match cause {
                WakeCause::Output(producer) => prof.wake_output(producer, consumer),
                WakeCause::Reg(r) => prof.wake_state_reg(r, consumer),
            }
        }
    }

    fn run_cycle<P: Profiler>(&mut self, prof: &mut P) {
        prof.begin_cycle();
        if self.levelized {
            // Levelized sweep: events only ever schedule strictly higher
            // levels, so one ascending pass is singular and complete.
            for lvl in 0..self.buckets.len() {
                if self.buckets[lvl].is_empty() {
                    prof.unit_skip(lvl);
                    continue;
                }
                let ops_before = self.machine.counters.ops_evaluated;
                let t0 = prof.eval_begin(lvl);
                let mut bucket = std::mem::take(&mut self.buckets[lvl]);
                for &sig in &bucket {
                    self.queued[sig as usize] = false;
                    if self.eval_signal(sig) {
                        self.attribute_fanouts(prof, sig, WakeCause::Output(lvl));
                        self.enqueue_fanouts(sig);
                    }
                }
                bucket.clear();
                self.buckets[lvl] = bucket;
                prof.eval_end(lvl, t0, self.machine.counters.ops_evaluated - ops_before);
            }
        } else {
            // Classic FIFO delta queue: arrival order, with repeat
            // evaluations when inputs settle in waves. Terminates because
            // the graph is acyclic (values reach a fixpoint). Each event
            // counts as one activation of its signal's level (a level can
            // activate many times per cycle in this mode).
            while let Some(sig) = self.fifo.pop_front() {
                self.queued[sig as usize] = false;
                let lvl = self.levels[sig as usize] as usize;
                let ops_before = self.machine.counters.ops_evaluated;
                let t0 = prof.eval_begin(lvl);
                if self.eval_signal(sig) {
                    self.attribute_fanouts(prof, sig, WakeCause::Output(lvl));
                    self.enqueue_fanouts(sig);
                }
                prof.eval_end(lvl, t0, self.machine.counters.ops_evaluated - ops_before);
            }
        }

        self.machine.side_effects();

        // Commit state; changes schedule next-cycle events. Memory writes
        // go first — their port fields may alias register outputs after
        // copy forwarding and must see intra-cycle values.
        for m in 0..self.machine.netlist.mems().len() {
            for wp in 0..self.machine.netlist.mems()[m].writers.len() {
                self.machine.counters.static_checks += 1;
                if self.machine.run_mem_write(m, wp) {
                    let reads = std::mem::take(&mut self.mem_read_sigs[m]);
                    for &d in &reads {
                        prof.wake_state_mem(m, self.levels[d as usize]);
                        self.enqueue(d);
                    }
                    self.mem_read_sigs[m] = reads;
                }
            }
        }
        for r in 0..self.machine.netlist.regs().len() {
            self.machine.counters.static_checks += 1;
            if self.machine.commit_reg(r) {
                let out = self.machine.netlist.regs()[r].out;
                self.attribute_fanouts(prof, out.0, WakeCause::Reg(r));
                self.enqueue_fanouts(out.0);
            }
        }
        self.machine.cycle += 1;
        self.machine.counters.cycles += 1;
    }
}

/// Wake-cause tag for [`EventDrivenSim::attribute_fanouts`].
#[derive(Clone, Copy)]
enum WakeCause {
    /// A changed signal at the given level (producer unit).
    Output(usize),
    /// A committed register (plan index = register index).
    Reg(usize),
}

impl Simulator for EventDrivenSim {
    fn poke(&mut self, name: &str, value: Bits) {
        let id = self.machine.netlist.expect_signal(name);
        assert!(
            matches!(self.machine.netlist.signal(id).def, SignalDef::Input),
            "`{name}` is not an input"
        );
        if self.machine.set_value(id, &value) {
            if let Some(mut p) = self.profile.take() {
                for &f in &self.fanouts[id.0 as usize] {
                    p.wake_input(id, self.levels[f as usize]);
                }
                self.profile = Some(p);
            }
            self.enqueue_fanouts(id.0);
        }
    }

    fn step(&mut self, n: u64) -> u64 {
        match self.profile.take() {
            Some(mut p) => {
                let ran = self.step_profiled(n, &mut *p);
                self.profile = Some(p);
                ran
            }
            None => self.step_profiled(n, &mut NoProfile),
        }
    }

    fn engine_name(&self) -> &'static str {
        "event-driven"
    }

    fn profile_report(&self) -> Option<ProfileReport> {
        self.profile.as_ref().map(|p| p.report("event-driven"))
    }

    delegate_simulator_basics!();
}

impl EventDrivenSim {
    fn step_profiled<P: Profiler>(&mut self, n: u64, prof: &mut P) -> u64 {
        for i in 0..n {
            if self.machine.halted.is_some() {
                return i;
            }
            self.run_cycle(prof);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netlist_of(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    const COUNTER: &str = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";

    #[test]
    fn counter_counts() {
        let n = netlist_of(COUNTER);
        let mut sim = EventDrivenSim::new(&n, &EngineConfig::default());
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.step(10);
        assert_eq!(sim.peek("q").to_u64(), Some(9));
    }

    #[test]
    fn quiescence_stops_events() {
        let n = netlist_of(COUNTER);
        let mut sim = EventDrivenSim::new(&n, &EngineConfig::default());
        sim.poke("reset", Bits::from_u64(1, 1));
        sim.step(5);
        let before = sim.counters().ops_evaluated;
        sim.step(50);
        assert_eq!(
            sim.counters().ops_evaluated,
            before,
            "no events in a quiescent design"
        );
    }

    #[test]
    fn matches_full_cycle() {
        let src = "circuit X :\n  module X :\n    input clock : Clock\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<8>\n    reg r : UInt<8>, clock\n    r <= xor(a, b)\n    o <= bits(add(r, a), 7, 0)\n";
        let n = netlist_of(src);
        let mut ev = EventDrivenSim::new(&n, &EngineConfig::default());
        let mut fc = crate::FullCycleSim::new(&n, &EngineConfig::default());
        for cycle in 0..25u64 {
            let a = Bits::from_u64(cycle.wrapping_mul(37) & 0xff, 8);
            let b = Bits::from_u64(cycle.wrapping_mul(11) & 0xff, 8);
            ev.poke("a", a.clone());
            fc.poke("a", a);
            ev.poke("b", b.clone());
            fc.poke("b", b);
            ev.step(1);
            fc.step(1);
            assert_eq!(ev.peek("o"), fc.peek("o"), "cycle {cycle}");
        }
    }

    #[test]
    fn memory_change_schedules_readers() {
        let src = "circuit M :\n  module M :\n    input clock : Clock\n    input wen : UInt<1>\n    input wdata : UInt<8>\n    output o : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 2\n      read-latency => 0\n      write-latency => 1\n      reader => r\n      writer => w\n    m.r.clk <= clock\n    m.r.en <= UInt<1>(1)\n    m.r.addr <= UInt<1>(0)\n    m.w.clk <= clock\n    m.w.en <= wen\n    m.w.addr <= UInt<1>(0)\n    m.w.data <= wdata\n    m.w.mask <= UInt<1>(1)\n    o <= m.r.data\n";
        let n = netlist_of(src);
        let mut sim = EventDrivenSim::new(&n, &EngineConfig::default());
        sim.poke("wen", Bits::from_u64(1, 1));
        sim.poke("wdata", Bits::from_u64(0x5A, 8));
        sim.step(2);
        assert_eq!(sim.peek("o").to_u64(), Some(0x5A));
    }
}
