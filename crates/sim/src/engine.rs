//! The engine-facing API: the [`Simulator`] trait every engine implements
//! and the [`EngineConfig`] ablation switches.

use crate::machine::WorkCounters;
use essent_bits::Bits;
use essent_netlist::SignalId;

/// Configuration shared by the engines; each field is one of the paper's
/// optimizations, independently switchable for the ablation study.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Partitioning threshold `C_p` (paper Figure 6; default 8). Only the
    /// ESSENT engine uses it.
    pub c_p: usize,
    /// Conditional multiplexer-way evaluation (Section III-B).
    pub mux_conditional: bool,
    /// Register/memory update elision (Section III-B1). Only the ESSENT
    /// engine uses it.
    pub elide_state: bool,
    /// Separate cold code (reset muxes, print/assert paths) from the hot
    /// path (Section III-B2's branch hints). Only the ESSENT engine uses
    /// it (the interpreter analog keeps cold items out of the hot item
    /// vector).
    pub cold_path_hints: bool,
    /// Capture printf output into a log (disable in benchmarks).
    pub capture_printf: bool,
    /// ESSENT engine only: push-direction triggering (producers wake
    /// consumers on output change — the paper's choice). When `false`,
    /// pull-direction: each partition compares snapshots of its
    /// cross-partition inputs every cycle, paying the per-cycle compare
    /// cost the paper predicts makes pull slower on idle designs
    /// (Section III-A). State and memory changes still use wake flags in
    /// both modes (memory contents are not visible to input snapshots).
    pub trigger_push: bool,
    /// Event-driven engine only: process events in levelized order
    /// (each signal evaluated at most once per cycle). When `false` the
    /// engine uses a classic FIFO delta queue with repeat evaluations —
    /// the behavior of traditional event-driven simulators that the paper
    /// contrasts against (Section II).
    pub event_levelized: bool,
    /// Run the structural self-checks (`CcssPlan::check`) when building
    /// the ESSENT engine, panicking on any error finding. Off by default;
    /// the standalone `essent-verify` crate provides the deeper
    /// independent verification.
    pub verify: bool,
    /// Lower single-word steps into the specialized one-word tier
    /// ([`crate::step1`]); multi-word steps keep the generic kernels.
    /// Used by the full-cycle, ESSENT, and parallel engines.
    pub tier1: bool,
    /// Fuse partition-output trigger updates (compare + consumer wakes)
    /// into the defining tier-1 instruction. Requires `tier1` and
    /// push-direction triggering; ignored otherwise.
    pub fuse_triggers: bool,
    /// Collect per-partition telemetry ([`crate::profile`]): evals,
    /// skips, wake-cause attribution, sampled eval time. Off by default;
    /// the disabled cost is zero (the probe calls monomorphize away).
    pub profile: bool,
    /// Parallel engine only: pack each dependency level into per-thread
    /// bins by estimated partition cost (LPT — longest processing time
    /// first), with a serial fallback for levels too light to amortize a
    /// barrier. When `false` the engine uses the original uniform level
    /// sweep (dynamic work-stealing over an atomic cursor).
    pub par_lpt: bool,
    /// Parallel engine only: replace the level-barrier sweep with the
    /// statically synthesized dataflow (BSP) schedule — compile-time
    /// partition→worker assignment, per-edge waits on per-partition
    /// `done` cycle counters instead of global barriers, and
    /// cycle-boundary overlap for partitions the dependence analysis
    /// proves independent of the serial phase
    /// ([`essent_core::depgraph`]). Takes precedence over `par_lpt`.
    /// Independently verified by `essent-verify`'s seventh layer
    /// (`S06xx`).
    pub par_dataflow: bool,
    /// Compile hot partitions' tier-1 programs to native machine code
    /// ([`crate::jit`]): partitions whose estimated eval cost clears
    /// [`crate::jit::JIT_MIN_COST`] run an emitted x86-64/aarch64 body
    /// (fused CCSS trigger tail included) instead of the tier-1
    /// interpreter. Requires `tier1`; silently ignored on unsupported
    /// targets, under `profile` (wake attribution needs the
    /// interpreter's flag sinks), and under the `race-sanitizer`
    /// feature (the dynamic oracle instruments the interpreter loop).
    /// Used by the ESSENT and parallel engines.
    pub jit: bool,
    /// Parallel engine only: shadow-memory race sanitizer — tag every
    /// arena word with its last writer/reader partition during parallel
    /// evaluation and panic on any same-level cross-partition conflict,
    /// the dynamic oracle for the static footprint proof (`R05xx`).
    /// Only effective when `essent-sim` is compiled with the
    /// `race-sanitizer` cargo feature; a no-op (and zero-cost) otherwise.
    pub race_sanitizer: bool,
    /// Batched engine ([`crate::batch::BatchSim`]) only: number of
    /// design instances evaluated in lockstep over one schedule. The
    /// arena becomes an N-lane SoA (lane-strided words) and activity
    /// flags become per-lane wake masks, so a partition evaluates only
    /// the union of awake lanes and a flag test covers all lanes at
    /// once. 1..=64 (one `u64` mask word); the other engines ignore it.
    pub lanes: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            c_p: 8,
            mux_conditional: true,
            elide_state: true,
            cold_path_hints: true,
            capture_printf: true,
            trigger_push: true,
            event_levelized: true,
            verify: false,
            tier1: true,
            fuse_triggers: true,
            profile: false,
            par_lpt: true,
            par_dataflow: false,
            jit: false,
            race_sanitizer: false,
            lanes: 1,
        }
    }
}

impl EngineConfig {
    /// The paper's **Baseline**: every optimization off (pure full-cycle
    /// evaluation of the unoptimized netlist).
    pub fn baseline() -> Self {
        EngineConfig {
            c_p: 1,
            mux_conditional: false,
            elide_state: false,
            cold_path_hints: false,
            capture_printf: true,
            trigger_push: true,
            event_levelized: true,
            verify: false,
            tier1: false,
            fuse_triggers: false,
            profile: false,
            par_lpt: false,
            par_dataflow: false,
            jit: false,
            race_sanitizer: false,
            lanes: 1,
        }
    }
}

/// The uniform testbench interface over all engines.
///
/// Peeked values reflect the combinational evaluation of the most recent
/// cycle; register outputs reflect committed state.
pub trait Simulator {
    /// Sets an external input for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not an input signal.
    fn poke(&mut self, name: &str, value: Bits);

    /// Reads any surviving signal by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is unknown (optimizations may remove internal
    /// signals; ports always survive).
    fn peek(&self, name: &str) -> Bits;

    /// Runs up to `n` cycles; returns how many ran (fewer after a `stop`).
    fn step(&mut self, n: u64) -> u64;

    /// Cycles simulated so far.
    fn cycle(&self) -> u64;

    /// The `stop` code, once one has fired.
    fn halted(&self) -> Option<u64>;

    /// Work counters for the overhead decomposition (Figure 7).
    fn counters(&self) -> WorkCounters;

    /// Looks up a signal id for id-based peeks in hot testbench loops.
    fn find(&self, name: &str) -> Option<SignalId>;

    /// Reads a signal by id.
    fn peek_id(&self, id: SignalId) -> Bits;

    /// Back-door memory write (e.g. loading a program image).
    fn write_mem(&mut self, mem: &str, addr: usize, value: Bits);

    /// Back-door memory read.
    fn read_mem(&self, mem: &str, addr: usize) -> Bits;

    /// Captured printf output.
    fn printf_log(&self) -> &[String];

    /// A short engine name for reports ("essent", "full-cycle", ...).
    fn engine_name(&self) -> &'static str;

    /// The telemetry collected so far when the engine was built with
    /// [`EngineConfig::profile`]; `None` otherwise.
    fn profile_report(&self) -> Option<crate::profile::ProfileReport> {
        None
    }
}

/// Shared poke/peek plumbing for engines embedding a
/// [`Machine`](crate::machine::Machine); macro instead of trait default
/// methods so each engine can intercept `poke` for wakeups.
macro_rules! delegate_simulator_basics {
    () => {
        fn peek(&self, name: &str) -> Bits {
            let id = self.machine.netlist.expect_signal(name);
            self.machine.value(id)
        }

        fn cycle(&self) -> u64 {
            self.machine.cycle
        }

        fn halted(&self) -> Option<u64> {
            self.machine.halted
        }

        fn counters(&self) -> crate::machine::WorkCounters {
            self.machine.counters
        }

        fn find(&self, name: &str) -> Option<essent_netlist::SignalId> {
            self.machine.netlist.find(name)
        }

        fn peek_id(&self, id: essent_netlist::SignalId) -> Bits {
            self.machine.value(id)
        }

        fn write_mem(&mut self, mem: &str, addr: usize, value: Bits) {
            self.machine.write_mem_backdoor(mem, addr, &value);
        }

        fn read_mem(&self, mem: &str, addr: usize) -> Bits {
            self.machine.read_mem_backdoor(mem, addr)
        }

        fn printf_log(&self) -> &[String] {
            &self.machine.printf_log
        }
    };
}

pub(crate) use delegate_simulator_basics;
