//! The ESSENT engine: **conditional, coarsened, singular, static (CCSS)**
//! execution (paper Section III, Figure 1).
//!
//! The design is coarsened into acyclic partitions by `essent-core`; each
//! partition carries an activation flag. Per cycle, the engine walks the
//! static schedule once (singular): an inactive partition costs a single
//! flag test (the static overhead); an active partition
//!
//! 1. deactivates itself for the next cycle,
//! 2. snapshots the old values of its outputs,
//! 3. evaluates its members with full-cycle-style straight-line code,
//! 4. updates elided registers/memories in place, immediately waking
//!    their next-cycle consumers (Section III-B1 — safe because every
//!    consumer is scheduled no later than the writer, so a flag set now
//!    is consumed only in the following cycle),
//! 5. compares each output against its snapshot and wakes the consumers
//!    of changed outputs (push-direction triggering; per-output
//!    granularity avoids unnecessary activations).
//!
//! Non-elidable state falls back to an end-of-cycle commit with change
//! detection, and external input changes wake their reader partitions in
//! the main eval function.

use crate::compile::{compile_plan, Block};
use crate::engine::{delegate_simulator_basics, EngineConfig, Simulator};
use crate::jit;
use crate::machine::Machine;
use crate::profile::{NoProfile, ProfileArena, ProfileReport, ProfileWiring, Profiler};
use crate::step1::{lower_tier1, OutSpec, Tier1Program, TierStats};
use essent_bits::Bits;
use essent_core::partition::partition;
use essent_core::plan::{extended_dag, CcssPlan, PlanOptions};
use essent_netlist::{Netlist, SignalId};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

/// Flattened per-output trigger tables (hot-loop friendly).
#[derive(Debug, Default)]
struct Triggers {
    /// Per output: arena offset and word count.
    out_off: Vec<u32>,
    out_words: Vec<u16>,
    /// Per output: offset of its snapshot in `old_vals`.
    old_off: Vec<u32>,
    /// Per output: range into `consumers`.
    cons_start: Vec<u32>,
    cons_end: Vec<u32>,
    consumers: Vec<u32>,
    /// Per partition: range of outputs in the tables above.
    part_start: Vec<u32>,
    part_end: Vec<u32>,
    /// Snapshot storage.
    old_vals: Vec<u64>,
}

/// The CCSS simulator.
pub struct EssentSim {
    machine: Machine,
    plan: CcssPlan,
    blocks: Vec<Block>,
    /// Word-specialized programs per partition (`config.tier1`); `None`
    /// runs the generic item interpreter.
    programs: Option<Vec<Tier1Program>>,
    /// Native-compiled partitions (`config.jit`): entries are `Some` for
    /// partitions that cleared the cost threshold and lowered cleanly;
    /// everything else stays on the tier-1 interpreter.
    jit: Option<jit::JitParts>,
    flags: Vec<bool>,
    triggers: Triggers,
    input_wake: HashMap<SignalId, Vec<u32>>,
    /// Indices of non-elided register / memory-write plans (end-of-cycle
    /// commit path).
    commit_regs: Vec<usize>,
    commit_writes: Vec<usize>,
    /// Total steps a full-cycle evaluation would run (for effective
    /// activity factor reporting).
    full_steps: usize,
    /// Push (true) or pull (false) activity triggering.
    push: bool,
    /// Pull mode: per-partition cross-partition input snapshots.
    pull_inputs: PullInputs,
    /// Telemetry arena ([`EngineConfig::profile`]); taken out of the
    /// option for the duration of a `step` so the cycle loop
    /// monomorphizes over the enabled/disabled profiler.
    profile: Option<Box<ProfileArena>>,
}

/// Pull-direction snapshot tables: each partition's cross-partition input
/// signals and their last-seen values.
#[derive(Debug, Default)]
struct PullInputs {
    in_off: Vec<u32>,
    in_words: Vec<u16>,
    snap_off: Vec<u32>,
    part_start: Vec<u32>,
    part_end: Vec<u32>,
    snapshots: Vec<u64>,
}

impl EssentSim {
    /// Partitions the netlist at `config.c_p` and compiles the CCSS
    /// simulator.
    pub fn new(netlist: &Netlist, config: &EngineConfig) -> EssentSim {
        EssentSim::new_shared(Arc::new(netlist.clone()), config)
    }

    /// [`EssentSim::new`] over an already-shared netlist (no deep clone).
    pub fn new_shared(netlist: Arc<Netlist>, config: &EngineConfig) -> EssentSim {
        EssentSim::new_shared_with_prior(netlist, config, None)
    }

    /// [`EssentSim::new`] with a measured activity prior: the structural
    /// partitioning gains the profile-guided `activity_merge` phase
    /// before the plan is built (the feedback loop's repartitioning
    /// step). A neutral prior reproduces [`EssentSim::new`] exactly.
    pub fn new_with_prior(
        netlist: &Netlist,
        config: &EngineConfig,
        prior: &essent_core::partition::ActivityPrior,
    ) -> EssentSim {
        EssentSim::new_shared_with_prior(Arc::new(netlist.clone()), config, Some(prior))
    }

    /// The general constructor behind [`EssentSim::new_shared`] and
    /// [`EssentSim::new_with_prior`].
    pub fn new_shared_with_prior(
        netlist: Arc<Netlist>,
        config: &EngineConfig,
        prior: Option<&essent_core::partition::ActivityPrior>,
    ) -> EssentSim {
        let (dag, writes) = extended_dag(&netlist);
        let parts = match prior {
            Some(pr) => {
                essent_core::partition::partition_with_prior(
                    &dag,
                    config.c_p,
                    pr,
                    &essent_core::partition::ActivityMergeParams::for_cp(config.c_p),
                )
                .0
            }
            None => partition(&dag, config.c_p),
        };
        let plan = CcssPlan::from_partitioning(
            &netlist,
            &dag,
            &writes,
            &parts,
            PlanOptions {
                elide_state: config.elide_state,
                elide_mem: config.elide_state,
            },
        );
        EssentSim::from_plan_shared_with_prior(netlist, plan, config, prior)
    }

    /// Builds the simulator from a pre-computed plan (used by the `C_p`
    /// sweep harness to reuse partitioning work).
    pub fn from_plan(netlist: &Netlist, plan: CcssPlan, config: &EngineConfig) -> EssentSim {
        EssentSim::from_plan_shared(Arc::new(netlist.clone()), plan, config)
    }

    /// [`EssentSim::from_plan`] over an already-shared netlist.
    pub fn from_plan_shared(
        netlist: Arc<Netlist>,
        plan: CcssPlan,
        config: &EngineConfig,
    ) -> EssentSim {
        EssentSim::from_plan_shared_with_prior(netlist, plan, config, None)
    }

    /// [`EssentSim::from_plan_shared`] with a measured activity prior:
    /// the JIT cost model selects hot partitions by measured eval-tick
    /// cost instead of static step counts.
    pub fn from_plan_shared_with_prior(
        netlist: Arc<Netlist>,
        plan: CcssPlan,
        config: &EngineConfig,
        prior: Option<&essent_core::partition::ActivityPrior>,
    ) -> EssentSim {
        if config.verify {
            let report = plan.check(&netlist);
            assert!(
                report.is_clean(),
                "CCSS plan failed verification:\n{report}"
            );
        }
        let mut machine = Machine::from_arc(Arc::clone(&netlist));
        machine.capture_printf = config.capture_printf;
        let blocks = compile_plan(&netlist, &machine.layout, &plan, config);

        // Word-specialized tier. Trigger fusion additionally requires
        // push-direction triggering: pull mode detects changes by input
        // snapshots and must not consume the outputs' consumer wakes.
        let fuse = config.tier1 && config.fuse_triggers && config.trigger_push;
        let programs: Option<Vec<Tier1Program>> = config.tier1.then(|| {
            plan.partitions
                .iter()
                .zip(&blocks)
                .map(|(part, block)| {
                    let outs: Vec<OutSpec> = part
                        .outputs
                        .iter()
                        .map(|o| OutSpec {
                            sig: o.signal,
                            consumers: o.consumers.clone(),
                        })
                        .collect();
                    lower_tier1(&netlist, block, &outs, fuse)
                })
                .collect()
        });

        // Native tier (`config.jit`): compile partitions whose cost
        // estimate clears the threshold. Skipped when profiling (wake
        // attribution needs the interpreter's flag sinks) and under the
        // race sanitizer (the dynamic oracle instruments the
        // interpreter loop).
        let jit = (config.jit
            && !config.profile
            && !cfg!(feature = "race-sanitizer")
            && jit::supported())
        .then(|| {
            programs.as_ref().map(|progs| {
                let cost = crate::par::CostModel::build(&plan, &blocks, prior);
                jit::JitParts::build(progs, &cost.costs, &machine.mems)
            })
        })
        .flatten();

        // Snapshot-compare tables cover only the outputs the tier did not
        // fuse (all of them when the tier is off).
        let mut triggers = Triggers::default();
        for (sched, part) in plan.partitions.iter().enumerate() {
            triggers.part_start.push(triggers.out_off.len() as u32);
            for (oi, out) in part.outputs.iter().enumerate() {
                if let Some(progs) = &programs {
                    if !progs[sched].unfused.contains(&oi) {
                        continue;
                    }
                }
                let off = machine.layout.offset(out.signal) as u32;
                let words = machine.layout.words(out.signal) as u16;
                triggers.out_off.push(off);
                triggers.out_words.push(words);
                triggers.old_off.push(triggers.old_vals.len() as u32);
                triggers
                    .old_vals
                    .extend(std::iter::repeat_n(0, words as usize));
                triggers.cons_start.push(triggers.consumers.len() as u32);
                triggers.consumers.extend(out.consumers.iter().copied());
                triggers.cons_end.push(triggers.consumers.len() as u32);
            }
            triggers.part_end.push(triggers.out_off.len() as u32);
        }

        let input_wake = plan
            .input_wakes
            .iter()
            .map(|(sig, wakes)| (*sig, wakes.clone()))
            .collect();
        let commit_regs = plan
            .reg_plans
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.elided)
            .map(|(i, _)| i)
            .collect();
        let commit_writes = plan
            .mem_write_plans
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.elided)
            .map(|(i, _)| i)
            .collect();
        let full_steps = blocks
            .iter()
            .flat_map(|b| b.items.iter())
            .map(crate::compile::Item::step_count)
            .sum();

        // Pull-direction tables: the cross-partition signals each
        // partition's members read (deduplicated), with snapshot storage.
        let mut pull_inputs = PullInputs::default();
        if !config.trigger_push {
            for (sched, part) in plan.partitions.iter().enumerate() {
                pull_inputs.part_start.push(pull_inputs.in_off.len() as u32);
                let mut seen = std::collections::BTreeSet::new();
                for &m in &part.members {
                    for dep in netlist.deps(m) {
                        // Inputs from outside this partition, except
                        // register outputs and external inputs — those are
                        // still interesting (their changes are what pull
                        // mode detects by value), so include everything
                        // not computed in this partition.
                        if plan.sched_of_signal[dep.index()] as usize != sched
                            || !matches!(
                                netlist.signal(dep).def,
                                essent_netlist::SignalDef::Op(_)
                                    | essent_netlist::SignalDef::MemRead { .. }
                            )
                        {
                            seen.insert(dep);
                        }
                    }
                }
                for dep in seen {
                    pull_inputs.in_off.push(machine.layout.offset(dep) as u32);
                    let words = machine.layout.words(dep) as u16;
                    pull_inputs.in_words.push(words);
                    pull_inputs
                        .snap_off
                        .push(pull_inputs.snapshots.len() as u32);
                    pull_inputs
                        .snapshots
                        .extend(std::iter::repeat_n(0, words as usize));
                }
                pull_inputs.part_end.push(pull_inputs.in_off.len() as u32);
            }
        }

        let profile = config
            .profile
            .then(|| Box::new(ProfileArena::new(ProfileWiring::for_plan(&netlist, &plan))));
        let flags = vec![true; plan.partitions.len()];
        EssentSim {
            machine,
            plan,
            blocks,
            programs,
            flags,
            triggers,
            input_wake,
            commit_regs,
            commit_writes,
            full_steps,
            push: config.trigger_push,
            pull_inputs,
            profile,
            jit,
        }
    }

    /// Number of partitions in the schedule.
    pub fn partition_count(&self) -> usize {
        self.plan.partitions.len()
    }

    /// The compiled plan (reports, tests).
    pub fn plan(&self) -> &CcssPlan {
        &self.plan
    }

    /// Steps a full-cycle evaluation of this design would run per cycle;
    /// `counters().ops_evaluated / (cycles * full_steps_per_cycle)` is the
    /// *effective activity factor* of Figure 7.
    pub fn full_steps_per_cycle(&self) -> usize {
        self.full_steps
    }

    /// Borrow of the underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Aggregated word-specialization coverage over all partitions
    /// (`None` when the tier is disabled).
    pub fn tier_stats(&self) -> Option<TierStats> {
        self.programs.as_ref().map(|ps| {
            ps.iter()
                .fold(TierStats::default(), |acc, p| acc.merged(&p.stats))
        })
    }

    /// Number of partitions currently running native-compiled bodies
    /// (0 when the JIT is off or unsupported on this target).
    pub fn jit_compiled_count(&self) -> usize {
        self.jit.as_ref().map_or(0, |j| j.compiled_count())
    }

    /// Discards the compiled body for one partition, forcing it back to
    /// the tier-1 interpreter (deopt testing). Returns whether a body
    /// was actually dropped.
    pub fn force_deopt(&mut self, sched: usize) -> bool {
        self.jit.as_mut().is_some_and(|j| j.deopt(sched))
    }

    /// Discards every compiled body; returns how many were dropped.
    pub fn force_deopt_all(&mut self) -> usize {
        self.jit.as_mut().map_or(0, |j| j.deopt_all())
    }

    /// Testing hook: compiles every eligible partition regardless of the
    /// cost threshold, so deopt tests cover partitions the threshold
    /// would leave interpreted. Returns how many bodies now exist; 0 on
    /// unsupported targets or when the tier/profile gating forbids JIT.
    pub fn jit_compile_all(&mut self) -> usize {
        if self.profile.is_some() || cfg!(feature = "race-sanitizer") || !jit::supported() {
            return 0;
        }
        match &self.programs {
            Some(progs) => {
                let j = jit::JitParts::build_all(progs, &self.machine.mems);
                let n = j.compiled_count();
                self.jit = Some(j);
                n
            }
            None => 0,
        }
    }

    /// Borrow of the compiled partitions (verification, tests).
    pub fn jit_parts(&self) -> Option<&jit::JitParts> {
        self.jit.as_ref()
    }

    /// Borrow of the telemetry arena (trace export; `None` unless built
    /// with [`EngineConfig::profile`]).
    pub fn profile_arena(&self) -> Option<&ProfileArena> {
        self.profile.as_deref()
    }

    /// Mutable borrow of the telemetry arena (trace window / heatmap
    /// bucket configuration).
    pub fn profile_arena_mut(&mut self) -> Option<&mut ProfileArena> {
        self.profile.as_deref_mut()
    }

    fn run_cycle<P: Profiler>(&mut self, prof: &mut P) {
        prof.begin_cycle();
        let machine = &mut self.machine;
        // Interior-mutable view of the activity flags so fused trigger
        // writes inside the tier-1 interpreter can wake consumers while
        // the flag slice stays borrowed here.
        let flags = Cell::from_mut(self.flags.as_mut_slice()).as_slice_of_cells();
        let tr = &mut self.triggers;
        let plan = &self.plan;
        let blocks = &self.blocks;
        let programs = &self.programs;
        let jit = &self.jit;

        let push = self.push;
        let pull = &mut self.pull_inputs;
        let np = plan.partitions.len();
        if push {
            // One activity flag test per partition per cycle, accounted
            // in bulk: the chunked scan below performs the same tests
            // eight at a time.
            machine.counters.static_checks += np as u64;
        }
        let mut run_part = |sched: usize, prof: &mut P| {
            if !push {
                machine.counters.static_checks += 1;
            }
            let mut active = flags[sched].get();
            if !push && !active {
                // Pull direction: compare every cross-partition input
                // against its snapshot — per-cycle work proportional to
                // the partition's inputs, the overhead the paper's push
                // choice avoids.
                let (i_start, i_end) = (
                    pull.part_start[sched] as usize,
                    pull.part_end[sched] as usize,
                );
                for i in i_start..i_end {
                    machine.counters.static_checks += 1;
                    let off = pull.in_off[i] as usize;
                    let w = pull.in_words[i] as usize;
                    let snap = pull.snap_off[i] as usize;
                    if machine.arena[off..off + w] != pull.snapshots[snap..snap + w] {
                        active = true;
                        break;
                    }
                }
            }
            if !active {
                prof.unit_skip(sched);
                return;
            }
            let ops_before = machine.counters.ops_evaluated;
            let t0 = prof.eval_begin(sched);
            // 1. Deactivate for the next cycle.
            flags[sched].set(false);
            if !push {
                // Refresh input snapshots for the next pull comparison.
                let (i_start, i_end) = (
                    pull.part_start[sched] as usize,
                    pull.part_end[sched] as usize,
                );
                for i in i_start..i_end {
                    let off = pull.in_off[i] as usize;
                    let w = pull.in_words[i] as usize;
                    let snap = pull.snap_off[i] as usize;
                    pull.snapshots[snap..snap + w].copy_from_slice(&machine.arena[off..off + w]);
                }
            }

            // 2. Snapshot old output values.
            let (o_start, o_end) = (tr.part_start[sched] as usize, tr.part_end[sched] as usize);
            for o in o_start..o_end {
                let off = tr.out_off[o] as usize;
                let w = tr.out_words[o] as usize;
                let old = tr.old_off[o] as usize;
                tr.old_vals[old..old + w].copy_from_slice(&machine.arena[off..off + w]);
            }

            // 3. Evaluate members — through the word-specialized tier
            //    when lowered (fused outputs compare-and-wake inline),
            //    through the generic item interpreter otherwise.
            match programs {
                Some(progs) => {
                    let arena = machine.arena.as_mut_ptr();
                    let native = jit
                        .as_ref()
                        .and_then(|j| j.part(sched).map(|p| (p, j.banks())));
                    if let Some((part, banks)) = native {
                        // SAFETY: exclusive machine access through
                        // &mut self; the compiled body touches only
                        // arena offsets lowered from this partition's
                        // tier-1 program (audited by the J07xx verify
                        // layer), wakes consumers through the flag
                        // bytes (Cell<bool> is a byte, 1 == true), and
                        // reads memory banks through the pinned bank
                        // table built from this machine's mems.
                        let (o, d) = unsafe {
                            part.run(arena, flags.as_ptr().cast::<u8>().cast_mut(), banks)
                        };
                        machine.counters.ops_evaluated += o;
                        machine.counters.dynamic_checks += d;
                    } else {
                        // SAFETY: exclusive machine access through &mut self;
                        // the flag cells alias no arena or bank storage.
                        unsafe {
                            prof.run_tier1(
                                &progs[sched],
                                arena,
                                &machine.mems,
                                flags,
                                sched,
                                &mut machine.counters.ops_evaluated,
                                &mut machine.counters.dynamic_checks,
                            )
                        }
                    }
                }
                None => machine.run_items(&blocks[sched].items),
            }

            // 4. Elided state updates: write in place, wake next-cycle
            //    consumers (they are scheduled at or before this
            //    partition, so the flags persist into the next cycle).
            let part = &plan.partitions[sched];
            // Memory writes before register updates: a write's fields may
            // alias a register output in this same partition and must see
            // its intra-cycle value.
            for &wi in &part.elided_writes {
                machine.counters.dynamic_checks += 1;
                let wp = &plan.mem_write_plans[wi];
                if machine.run_mem_write(wp.mem.index(), wp.writer) {
                    for &c in &wp.wake_on_change {
                        flags[c as usize].set(true);
                        prof.wake_state_mem(wi, c);
                    }
                }
            }
            for &ri in &part.elided_regs {
                machine.counters.dynamic_checks += 1;
                if machine.commit_reg(ri) {
                    for &c in &plan.reg_plans[ri].wake_on_change {
                        flags[c as usize].set(true);
                        prof.wake_state_reg(ri, c);
                    }
                }
            }

            // 5. Push direction only: per-output change detection; wake
            //    consumers of changed outputs (branchless OR-reduction in
            //    the generated C++; a compare + flag writes here).
            if push {
                for o in o_start..o_end {
                    machine.counters.dynamic_checks += 1;
                    let off = tr.out_off[o] as usize;
                    let w = tr.out_words[o] as usize;
                    let old = tr.old_off[o] as usize;
                    if machine.arena[off..off + w] != tr.old_vals[old..old + w] {
                        for ci in tr.cons_start[o]..tr.cons_end[o] {
                            flags[tr.consumers[ci as usize] as usize].set(true);
                            prof.wake_output(sched, tr.consumers[ci as usize]);
                        }
                    }
                }
            }
            prof.eval_end(sched, t0, machine.counters.ops_evaluated - ops_before);
        };

        if push {
            // Chunked idle scan: with the paper's low activity factors
            // most flags are clear most cycles, so the sweep tests eight
            // flag bytes with one word load and skips whole idle runs.
            // A non-zero chunk falls back to the per-partition walk,
            // re-reading each flag at arrival — an earlier partition in
            // the same chunk may wake a later one mid-scan.
            let bytes = flags.as_ptr().cast::<u8>();
            let mut sched = 0;
            while sched < np {
                if np - sched >= 8 {
                    // SAFETY: `sched + 8 <= np` in-bounds flag cells;
                    // `Cell<bool>` is a single byte (0 or 1) and no other
                    // thread exists, so an unaligned 8-byte read observes
                    // exactly the eight flags as currently set.
                    let word = unsafe { bytes.add(sched).cast::<u64>().read_unaligned() };
                    if word == 0 {
                        for i in 0..8 {
                            prof.unit_skip(sched + i);
                        }
                        sched += 8;
                        continue;
                    }
                }
                let lanes = (np - sched).min(8);
                for _ in 0..lanes {
                    run_part(sched, prof);
                    sched += 1;
                }
            }
        } else {
            for sched in 0..np {
                run_part(sched, prof);
            }
        }

        // Side effects observe end-of-cycle values.
        machine.side_effects();

        // Non-elided state: end-of-cycle commit with change detection.
        // Memory writes first — their fields may alias register outputs
        // (the plan additionally forbids eliding a register read by a
        // non-elided write action, so intra-cycle values are observed).
        for &wi in &self.commit_writes {
            machine.counters.static_checks += 1;
            let wp = &plan.mem_write_plans[wi];
            if machine.run_mem_write(wp.mem.index(), wp.writer) {
                for &c in &wp.wake_on_change {
                    flags[c as usize].set(true);
                    prof.wake_state_mem(wi, c);
                }
            }
        }
        for &ri in &self.commit_regs {
            machine.counters.static_checks += 1;
            if machine.commit_reg(ri) {
                for &c in &plan.reg_plans[ri].wake_on_change {
                    flags[c as usize].set(true);
                    prof.wake_state_reg(ri, c);
                }
            }
        }
        machine.cycle += 1;
        machine.counters.cycles += 1;
    }
}

impl Simulator for EssentSim {
    fn poke(&mut self, name: &str, value: Bits) {
        let id = self.machine.netlist.expect_signal(name);
        assert!(
            matches!(
                self.machine.netlist.signal(id).def,
                essent_netlist::SignalDef::Input
            ),
            "`{name}` is not an input"
        );
        if self.machine.set_value(id, &value) {
            if let Some(wakes) = self.input_wake.get(&id) {
                for &c in wakes {
                    self.flags[c as usize] = true;
                    if let Some(p) = &mut self.profile {
                        p.wake_input(id, c);
                    }
                }
            }
        }
    }

    fn step(&mut self, n: u64) -> u64 {
        // Take/put the arena so the cycle loop monomorphizes: the
        // disabled path compiles with every probe erased.
        match self.profile.take() {
            Some(mut p) => {
                let ran = self.step_profiled(n, &mut *p);
                self.profile = Some(p);
                ran
            }
            None => self.step_profiled(n, &mut NoProfile),
        }
    }

    fn engine_name(&self) -> &'static str {
        "essent"
    }

    fn profile_report(&self) -> Option<ProfileReport> {
        self.profile.as_ref().map(|p| p.report("essent"))
    }

    delegate_simulator_basics!();
}

impl EssentSim {
    fn step_profiled<P: Profiler>(&mut self, n: u64, prof: &mut P) -> u64 {
        for i in 0..n {
            if self.machine.halted.is_some() {
                return i;
            }
            self.run_cycle(prof);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netlist_of(src: &str) -> Netlist {
        let lowered = essent_firrtl::passes::lower(essent_firrtl::parse(src).unwrap()).unwrap();
        Netlist::from_circuit(&lowered).unwrap()
    }

    const COUNTER: &str = "circuit C :\n  module C :\n    input clock : Clock\n    input reset : UInt<1>\n    output q : UInt<8>\n    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))\n    r <= tail(add(r, UInt<8>(1)), 1)\n    q <= r\n";

    #[test]
    fn counter_counts_with_activity() {
        let n = netlist_of(COUNTER);
        let mut sim = EssentSim::new(&n, &EngineConfig::default());
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.step(10);
        assert_eq!(sim.peek("q").to_u64(), Some(9));
    }

    /// A design where half the logic is gated off: ESSENT must evaluate
    /// dramatically fewer ops than full-cycle once the gated half sleeps.
    #[test]
    fn idle_logic_is_skipped() {
        let src = "circuit G :\n  module G :\n    input clock : Clock\n    input en : UInt<1>\n    input a : UInt<8>\n    output o : UInt<8>\n    output busy : UInt<8>\n    reg idle : UInt<8>, clock\n    when en :\n      idle <= xor(mul(a, a), idle)\n    o <= idle\n    reg spin : UInt<8>, clock\n    spin <= tail(add(spin, UInt<8>(1)), 1)\n    busy <= spin\n";
        let n = netlist_of(src);
        let mut sim = EssentSim::new(
            &n,
            &EngineConfig {
                c_p: 2,
                ..EngineConfig::default()
            },
        );
        sim.poke("en", Bits::from_u64(0, 1));
        sim.poke("a", Bits::from_u64(3, 8));
        sim.step(5); // settle
        let before = sim.counters().ops_evaluated;
        sim.step(100);
        let idle_ops = sim.counters().ops_evaluated - before;
        // The spinning counter keeps its partition busy, but the gated
        // multiplier partition must sleep.
        let full = (sim.full_steps_per_cycle() * 100) as u64;
        assert!(
            idle_ops < full,
            "ESSENT evaluated {idle_ops} of {full} full-cycle ops"
        );
        // And correctness: enable it and check the value updates.
        sim.poke("en", Bits::from_u64(1, 1));
        sim.step(1);
        sim.step(1);
        assert_eq!(sim.peek("o").to_u64(), Some(9));
    }

    #[test]
    fn quiescent_design_costs_only_flag_checks() {
        let n = netlist_of(COUNTER);
        let mut sim = EssentSim::new(&n, &EngineConfig::default());
        // Hold reset: the register value pins at 0, and after the first
        // few cycles nothing changes, so no partition re-activates...
        sim.poke("reset", Bits::from_u64(1, 1));
        sim.step(5);
        let before = sim.counters().ops_evaluated;
        sim.step(50);
        let delta = sim.counters().ops_evaluated - before;
        assert_eq!(delta, 0, "a quiescent design must evaluate nothing");
    }

    #[test]
    fn matches_full_cycle_on_counter() {
        let n = netlist_of(COUNTER);
        let mut essent = EssentSim::new(&n, &EngineConfig::default());
        let mut full = crate::FullCycleSim::new(&n, &EngineConfig::default());
        for cycle in 0..30u64 {
            let rst = Bits::from_u64((cycle < 2 || cycle == 17) as u64, 1);
            essent.poke("reset", rst.clone());
            full.poke("reset", rst);
            essent.step(1);
            full.step(1);
            assert_eq!(essent.peek("q"), full.peek("q"), "cycle {cycle}");
        }
    }

    #[test]
    fn works_across_cp_values() {
        let n = netlist_of(COUNTER);
        for cp in [1, 2, 4, 8, 64] {
            let mut sim = EssentSim::new(
                &n,
                &EngineConfig {
                    c_p: cp,
                    ..EngineConfig::default()
                },
            );
            sim.poke("reset", Bits::from_u64(0, 1));
            sim.step(12);
            assert_eq!(sim.peek("q").to_u64(), Some(11), "cp={cp}");
        }
    }

    #[test]
    fn elision_off_still_correct() {
        let n = netlist_of(COUNTER);
        let config = EngineConfig {
            elide_state: false,
            ..EngineConfig::default()
        };
        let mut sim = EssentSim::new(&n, &config);
        sim.poke("reset", Bits::from_u64(0, 1));
        sim.step(10);
        assert_eq!(sim.peek("q").to_u64(), Some(9));
        assert!(sim.plan().reg_plans.iter().all(|r| !r.elided));
    }
}
