//! Layer seven: **dependence / dataflow-schedule** verification — the
//! proof behind the barrier-free BSP runtime's `unsafe` blocks
//! (`S0601`–`S0605`).
//!
//! The parallel engine's dataflow mode replaces per-level barriers with
//! a statically synthesized schedule ([`DataflowSchedule`]): a
//! compile-time partition→worker assignment, per-edge waits on
//! per-partition `done` cycle counters, and cycle-boundary overlap for
//! partitions proven independent of the end-of-cycle serial phase. This
//! layer re-derives every obligation **from the word-level footprints**
//! ([`crate::footprint`]) — never from the runtime's own
//! `DepGraph::derive` edge set — so a bug in the runtime's dependence
//! analysis and a bug in the proof cannot cancel out:
//!
//! * `S0605` — the worker lists must exactly cover the partitions, in
//!   ascending schedule order, with consistent index maps and in-range
//!   wait targets (everything later checks rides on this shape);
//! * `S0603` — the same-cycle wait graph (wait edges plus per-worker
//!   list order) must be acyclic, or the runtime deadlocks;
//! * `S0601` — every cross-partition footprint overlap (word-level
//!   write/read, read/write, write/write, memory banks) and every
//!   trigger-flag wake pair must be *covered*: ordered, in schedule
//!   direction, by the transitive closure of the wait graph;
//! * `S0602` — a partition exempted from the serial-phase barrier must
//!   be footprint-disjoint from everything the serial phase touches
//!   (non-elided register commits, memory-bank writes, stop/printf
//!   enable and argument reads, state wake flags), and every stop must
//!   be attributable to a probing owner partition;
//! * `S0604` — an exempt partition starting cycle `k+1` must be unable
//!   to outrun any conflicting partition still in cycle `k`: every
//!   conflicting partner (and every stop owner) must be provably done
//!   with cycle `k` first, through the partition's own worker list, its
//!   `waits_prev`/`waits_same` targets, and their wait-graph ancestors.
//!
//! The `race-sanitizer` cargo feature of `essent-sim` is the dynamic
//! differential oracle: in dataflow mode the shadow memory tags carry
//! the cycle epoch, and any access pair the static edges do not order
//! panics at runtime.

use crate::footprint::{derive_footprints, Footprint, WordSet};
use essent_core::depgraph::DataflowSchedule;
use essent_core::diag::{codes, Diagnostic, Report};
use essent_core::plan::CcssPlan;
use essent_netlist::{Netlist, SignalDef, SignalId};
use essent_sim::compile::{Block, Layout};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Bit matrix (reachability closure)
// ---------------------------------------------------------------------

/// A dense `np × np` boolean matrix backed by `u64` rows.
struct BitMatrix {
    words: usize,
    rows: Vec<u64>,
}

impl BitMatrix {
    fn new(np: usize) -> BitMatrix {
        let words = np.div_ceil(64);
        BitMatrix {
            words,
            rows: vec![0; words * np],
        }
    }

    fn set(&mut self, r: usize, c: usize) {
        self.rows[r * self.words + c / 64] |= 1 << (c % 64);
    }

    fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r * self.words + c / 64] & (1 << (c % 64)) != 0
    }

    /// `rows[dst] |= rows[src]`.
    fn or_row(&mut self, dst: usize, src: usize) {
        let (d, s) = (dst * self.words, src * self.words);
        for i in 0..self.words {
            self.rows[d + i] |= self.rows[s + i];
        }
    }
}

// ---------------------------------------------------------------------
// The wait graph
// ---------------------------------------------------------------------

/// The same-cycle ordering graph `H` the schedule actually enforces:
/// an edge `u → v` means "within any one cycle, `u` completes before
/// `v` starts" — from an explicit wait (`u ∈ waits_same[v]`) or from
/// worker-list order (`u` immediately precedes `v` on one worker's
/// list; each worker is a sequential thread).
fn wait_graph(ds: &DataflowSchedule, np: usize) -> Vec<Vec<u32>> {
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); np];
    for (p, waits) in ds.waits_same.iter().enumerate() {
        for &q in waits {
            succs[q as usize].push(p as u32);
        }
    }
    for list in &ds.workers {
        for w in list.windows(2) {
            succs[w[0] as usize].push(w[1]);
        }
    }
    succs
}

/// Kahn's algorithm over `succs`; `Some(topo)` when acyclic, `None`
/// (with one residual member) otherwise.
fn toposort(succs: &[Vec<u32>]) -> Result<Vec<u32>, u32> {
    let np = succs.len();
    let mut indeg = vec![0u32; np];
    for ss in succs {
        for &s in ss {
            indeg[s as usize] += 1;
        }
    }
    let mut queue: Vec<u32> = (0..np as u32).filter(|&p| indeg[p as usize] == 0).collect();
    let mut topo = Vec::with_capacity(np);
    while let Some(u) = queue.pop() {
        topo.push(u);
        for &v in &succs[u as usize] {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                queue.push(v);
            }
        }
    }
    if topo.len() == np {
        Ok(topo)
    } else {
        Err((0..np as u32).find(|&p| indeg[p as usize] > 0).unwrap_or(0))
    }
}

// ---------------------------------------------------------------------
// Conflict discovery (from footprints alone)
// ---------------------------------------------------------------------

/// One discovered cross-partition conflict, `lo < hi` by schedule index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Conflict {
    lo: u32,
    hi: u32,
    /// Both sides write (never coverable by ordering alone).
    write_write: bool,
}

/// Sweeps every partition's arena runs at once and collects each
/// cross-partition overlapping pair where at least one side writes,
/// then adds memory-bank conflicts and trigger-flag wake pairs. This is
/// the full obligation set: any two partitions in one of these pairs
/// must never run unordered within a cycle.
fn discover_conflicts(footprints: &[Footprint]) -> BTreeSet<Conflict> {
    let mut pairs: BTreeSet<Conflict> = BTreeSet::new();
    let mut insert = |a: u32, b: u32, ww: bool| {
        if a != b {
            pairs.insert(Conflict {
                lo: a.min(b),
                hi: a.max(b),
                write_write: ww,
            });
        }
    };

    // Arena words: interval sweep over (start, end, partition, is_write).
    let mut events: Vec<(u32, u32, u32, bool)> = Vec::new();
    for (p, fp) in footprints.iter().enumerate() {
        for &(s, e) in fp.writes.runs() {
            events.push((s, e, p as u32, true));
        }
        for &(s, e) in fp.reads.runs() {
            events.push((s, e, p as u32, false));
        }
    }
    events.sort_unstable();
    let mut active: Vec<(u32, u32, u32, bool)> = Vec::new();
    for ev in events {
        active.retain(|a| a.1 > ev.0);
        for a in &active {
            if a.2 != ev.2 && (a.3 || ev.3) {
                insert(a.2, ev.2, a.3 && ev.3);
            }
        }
        active.push(ev);
    }

    // Memory banks.
    let mut bank_writers: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    let mut bank_readers: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for (p, fp) in footprints.iter().enumerate() {
        for &b in &fp.bank_writes {
            bank_writers.entry(b).or_default().push(p as u32);
        }
        for &b in &fp.bank_reads {
            bank_readers.entry(b).or_default().push(p as u32);
        }
    }
    for (bank, writers) in &bank_writers {
        for (i, &w) in writers.iter().enumerate() {
            for &w2 in &writers[i + 1..] {
                insert(w, w2, true);
            }
            for &r in bank_readers.get(bank).map_or(&[][..], |v| v) {
                insert(w, r, false);
            }
        }
    }

    // Trigger-flag wakes: the store by the waker and the claim (swap)
    // by the owner must be cycle-ordered. Stores are atomic, so these
    // never become write/write word conflicts — but they must still be
    // covered by a wait edge in schedule direction.
    for (p, fp) in footprints.iter().enumerate() {
        for &h in &fp.flag_wakes {
            insert(p as u32, h, false);
        }
    }
    pairs
}

// ---------------------------------------------------------------------
// The serial-phase footprint
// ---------------------------------------------------------------------

/// Everything the end-of-cycle serial phase may touch, word-granular,
/// derived from the netlist, layout, and plan (never from the runtime):
/// printf/stop enables and arguments, non-elided memory-write port
/// inputs and their banks, non-elided register commits, and the wake
/// flags those commits may store.
struct SerialFootprint {
    reads: WordSet,
    writes: WordSet,
    bank_writes: BTreeSet<u32>,
    /// Partitions whose activity flag the serial phase may store.
    wakes: BTreeSet<u32>,
}

fn serial_footprint(netlist: &Netlist, layout: &Layout, plan: &CcssPlan) -> SerialFootprint {
    let mut fp = SerialFootprint {
        reads: WordSet::default(),
        writes: WordSet::default(),
        bank_writes: BTreeSet::new(),
        wakes: BTreeSet::new(),
    };
    let read = |fp: &mut SerialFootprint, sig: SignalId| {
        fp.reads
            .add(layout.offset(sig) as u32, layout.words(sig) as u32);
    };
    for pf in netlist.printfs() {
        read(&mut fp, pf.en);
        for &a in &pf.args {
            read(&mut fp, a);
        }
    }
    for st in netlist.stops() {
        read(&mut fp, st.en);
    }
    for wp in &plan.mem_write_plans {
        if wp.elided {
            continue;
        }
        let port = &netlist.mems()[wp.mem.index()].writers[wp.writer];
        for sig in [port.addr, port.en, port.mask, port.data] {
            read(&mut fp, sig);
        }
        fp.bank_writes.insert(wp.mem.index() as u32);
        fp.wakes.extend(wp.wake_on_change.iter().copied());
    }
    for rp in &plan.reg_plans {
        if rp.elided {
            continue;
        }
        let reg = &netlist.regs()[rp.reg.index()];
        read(&mut fp, reg.next);
        fp.writes
            .add(layout.offset(reg.out) as u32, layout.words(reg.out) as u32);
        fp.wakes.extend(rp.wake_on_change.iter().copied());
    }
    fp.reads.seal();
    fp.writes.seal();
    fp
}

// ---------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------

/// Verifies a synthesized [`DataflowSchedule`] against obligations
/// re-derived from the word-level footprints (`S0601`–`S0605`; see the
/// module docs for the per-code statements). `blocks` must be the
/// bytecode of `plan`'s partitions — the same artifacts the footprint
/// layer audits — so both layers reason about identical access sets.
pub fn check_depgraph(
    netlist: &Netlist,
    layout: &Layout,
    plan: &CcssPlan,
    blocks: &[Block],
    ds: &DataflowSchedule,
) -> Report {
    let np = plan.partitions.len();
    // R0501 tier findings are the footprint layer's to report; here the
    // block-derived footprints are the authority.
    let (footprints, derive_report) = derive_footprints(netlist, layout, plan, blocks, None);
    if footprints.len() != np {
        return derive_report;
    }
    let mut report = Report::new();

    // --- S0605: structural cover -------------------------------------
    let mut structural_ok = true;
    let fail = |report: &mut Report, msg: String| {
        report.push(Diagnostic::error(codes::WORKER_COVER, msg));
    };
    for (what, len) in [
        ("worker_of", ds.worker_of.len()),
        ("pos_of", ds.pos_of.len()),
        ("waits_same", ds.waits_same.len()),
        ("waits_prev", ds.waits_prev.len()),
        ("exempt", ds.exempt.len()),
    ] {
        if len != np {
            fail(
                &mut report,
                format!("schedule table `{what}` has {len} entries for {np} partition(s)"),
            );
            structural_ok = false;
        }
    }
    if structural_ok {
        let mut seen = vec![false; np];
        for (w, list) in ds.workers.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for (pos, &p) in list.iter().enumerate() {
                if p as usize >= np {
                    fail(
                        &mut report,
                        format!("worker {w} schedules partition p{p}, outside the plan"),
                    );
                    structural_ok = false;
                    continue;
                }
                if seen[p as usize] {
                    fail(
                        &mut report,
                        format!("partition p{p} appears on more than one worker list"),
                    );
                    structural_ok = false;
                }
                seen[p as usize] = true;
                if prev.is_some_and(|q| q >= p) {
                    fail(
                        &mut report,
                        format!(
                            "worker {w}'s list is not ascending in schedule order at p{p} \
                             (the done-counter prefix argument relies on it)"
                        ),
                    );
                    structural_ok = false;
                }
                prev = Some(p);
                if ds.worker_of[p as usize] as usize != w || ds.pos_of[p as usize] as usize != pos {
                    fail(
                        &mut report,
                        format!(
                            "partition p{p}: worker_of/pos_of say worker {} position {}, but \
                             the lists place it at worker {w} position {pos}",
                            ds.worker_of[p as usize], ds.pos_of[p as usize]
                        ),
                    );
                    structural_ok = false;
                }
            }
        }
        for (p, s) in seen.iter().enumerate() {
            if !s {
                fail(&mut report, format!("partition p{p} is on no worker list"));
                structural_ok = false;
            }
        }
        for (what, lists) in [
            ("waits_same", &ds.waits_same),
            ("waits_prev", &ds.waits_prev),
        ] {
            for (p, waits) in lists.iter().enumerate() {
                for &q in waits {
                    if q as usize >= np {
                        fail(
                            &mut report,
                            format!("partition p{p}: {what} targets p{q}, outside the plan"),
                        );
                        structural_ok = false;
                    }
                }
            }
        }
        for &o in &ds.stop_owners {
            if o as usize >= np {
                fail(&mut report, format!("stop owner p{o} is outside the plan"));
                structural_ok = false;
            }
        }
    }
    if !structural_ok {
        return report;
    }

    // --- S0603: the wait graph must be acyclic -------------------------
    let succs = wait_graph(ds, np);
    let topo = match toposort(&succs) {
        Ok(topo) => topo,
        Err(member) => {
            report.push(
                Diagnostic::error(
                    codes::SCHEDULE_CYCLE,
                    format!(
                        "the same-cycle wait graph (wait edges + worker-list order) has a \
                         cycle through partition p{member}: the dataflow runtime would \
                         deadlock"
                    ),
                )
                .with_partition(member as usize),
            );
            // No topological order exists; the coverage proofs below are
            // meaningless over a cyclic graph.
            return report;
        }
    };

    // Transitive closures of the wait graph: `reach` (descendants,
    // reflexive) answers "is u ordered before v within a cycle";
    // `ancestors` (reflexive) answers "whose completion does waiting on
    // u transitively imply".
    let mut reach = BitMatrix::new(np);
    for &u in topo.iter().rev() {
        reach.set(u as usize, u as usize);
        let ss = succs[u as usize].clone();
        for v in ss {
            reach.or_row(u as usize, v as usize);
        }
    }
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); np];
    for (u, ss) in succs.iter().enumerate() {
        for &v in ss {
            preds[v as usize].push(u as u32);
        }
    }
    let mut ancestors = BitMatrix::new(np);
    for &u in &topo {
        ancestors.set(u as usize, u as usize);
        let ps = preds[u as usize].clone();
        for v in ps {
            ancestors.or_row(u as usize, v as usize);
        }
    }

    // --- S0601: every conflict covered, in schedule direction ----------
    let conflicts = discover_conflicts(&footprints);
    for c in &conflicts {
        let (lo, hi) = (c.lo as usize, c.hi as usize);
        if c.write_write {
            report.push(
                Diagnostic::error(
                    codes::DEP_EDGE_UNCOVERED,
                    format!(
                        "partitions p{lo} and p{hi} write overlapping arena words or the \
                         same memory bank: no wait edge can make concurrent writers safe"
                    ),
                )
                .with_partition(lo),
            );
        } else if !reach.get(lo, hi) {
            report.push(
                Diagnostic::error(
                    codes::DEP_EDGE_UNCOVERED,
                    format!(
                        "partitions p{lo} and p{hi} have overlapping footprints (a write \
                         meeting a read, or a trigger-flag wake) but no chain of wait \
                         edges orders p{lo} before p{hi} within a cycle"
                    ),
                )
                .with_partition(lo),
            );
        }
    }

    // --- S0602: exemptions are honest ----------------------------------
    let serial = serial_footprint(netlist, layout, plan);
    let any_exempt = ds.exempt.iter().any(|&e| e);
    if any_exempt {
        // Every stop must be attributable to an owner partition that
        // probes it; an unattributable stop forbids all exemption.
        let mut derived_owners: BTreeSet<u32> = BTreeSet::new();
        for st in netlist.stops() {
            match netlist.signal(st.en).def {
                SignalDef::Op(_) | SignalDef::MemRead { .. } => {
                    derived_owners.insert(plan.sched_of_signal[st.en.index()]);
                }
                _ => {
                    report.push(
                        Diagnostic::error(
                            codes::FABRICATED_OVERLAP,
                            format!(
                                "stop `{}` has an enable no partition computes: its halt \
                                 cannot be probed, so no partition may be exempt from \
                                 the serial-phase barrier",
                                st.name
                            ),
                        )
                        .with_signal(netlist.signal(st.en).name.clone()),
                    );
                }
            }
        }
        for &o in &derived_owners {
            if !ds.stop_owners.contains(&o) {
                report.push(
                    Diagnostic::error(
                        codes::FABRICATED_OVERLAP,
                        format!(
                            "partition p{o} computes a stop enable but is missing from \
                             the schedule's stop-owner list: a halt it raises would be \
                             invisible to overlapping partitions"
                        ),
                    )
                    .with_partition(o as usize),
                );
            }
        }
    }
    let mut exempt_sound = vec![false; np];
    for (p, fp) in footprints.iter().enumerate() {
        if !ds.exempt[p] {
            continue;
        }
        let mut sound = true;
        let overlap = |report: &mut Report, sound: &mut bool, what: &str| {
            report.push(
                Diagnostic::error(
                    codes::FABRICATED_OVERLAP,
                    format!(
                        "partition p{p} is exempt from the serial-phase barrier but {what}: \
                         its cycle-boundary overlap would race the serial phase"
                    ),
                )
                .with_partition(p),
            );
            *sound = false;
        };
        if fp.writes.first_overlap(&serial.reads).is_some()
            || fp.writes.first_overlap(&serial.writes).is_some()
        {
            overlap(
                &mut report,
                &mut sound,
                "writes arena words the serial phase reads or writes",
            );
        }
        if fp.reads.first_overlap(&serial.writes).is_some() {
            overlap(
                &mut report,
                &mut sound,
                "reads arena words the serial phase writes",
            );
        }
        if !fp.bank_reads.is_disjoint(&serial.bank_writes)
            || !fp.bank_writes.is_disjoint(&serial.bank_writes)
        {
            overlap(
                &mut report,
                &mut sound,
                "touches a memory bank the serial phase writes",
            );
        }
        if serial.wakes.contains(&(p as u32)) {
            overlap(
                &mut report,
                &mut sound,
                "has an activity flag the serial phase stores",
            );
        }
        exempt_sound[p] = sound;
    }

    // --- S0604: cross-cycle overlap stays behind its conflicts ---------
    // Conflict partners per partition, from the discovered set.
    let mut partners: Vec<Vec<u32>> = vec![Vec::new(); np];
    for c in &conflicts {
        partners[c.lo as usize].push(c.hi);
        partners[c.hi as usize].push(c.lo);
    }
    for p in 0..np {
        if !ds.exempt[p] || !exempt_sound[p] {
            // Unsound exemptions already failed S0602; their cross-cycle
            // story is moot.
            continue;
        }
        // Partitions provably done with cycle `k` when `p` starts cycle
        // `k+1`: everything on `p`'s own worker (a sequential thread
        // finishes its whole cycle-`k` list first), the `waits_prev`
        // targets (waited to `k` directly), the `waits_same` targets
        // (waited to `k+1`, hence past `k`), and every wait-graph
        // ancestor of any of those (`done` is published in-order along
        // the graph).
        let words = ancestors.words;
        let mut ordered_prev = vec![0u64; words];
        let add = |ordered_prev: &mut Vec<u64>, seed: u32| {
            let row = seed as usize * words;
            for (dst, src) in ordered_prev
                .iter_mut()
                .zip(&ancestors.rows[row..row + words])
            {
                *dst |= *src;
            }
        };
        for &q in &ds.workers[ds.worker_of[p] as usize] {
            add(&mut ordered_prev, q);
        }
        for &q in ds.waits_prev[p].iter().chain(&ds.waits_same[p]) {
            add(&mut ordered_prev, q);
        }
        let covered =
            |ordered_prev: &Vec<u64>, q: u32| ordered_prev[q as usize / 64] & (1 << (q % 64)) != 0;
        for &q in &partners[p] {
            if !covered(&ordered_prev, q) {
                report.push(
                    Diagnostic::error(
                        codes::MISSING_CROSS_CYCLE_COVER,
                        format!(
                            "exempt partition p{p} may start cycle k+1 while conflicting \
                             partition p{q} is still in cycle k: no waits_prev/waits_same \
                             chain guarantees p{q} finished first"
                        ),
                    )
                    .with_partition(p),
                );
            }
        }
        for &o in &ds.stop_owners {
            if !covered(&ordered_prev, o) {
                report.push(
                    Diagnostic::error(
                        codes::MISSING_CROSS_CYCLE_COVER,
                        format!(
                            "exempt partition p{p} may start cycle k+1 before stop owner \
                             p{o} finishes cycle k: a halt could be published after p{p} \
                             already speculated into the halted cycle"
                        ),
                    )
                    .with_partition(p),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_matrix_or_rows() {
        let mut m = BitMatrix::new(130);
        m.set(0, 129);
        m.set(1, 3);
        m.or_row(1, 0);
        assert!(m.get(1, 129) && m.get(1, 3) && !m.get(0, 3));
    }

    #[test]
    fn toposort_finds_cycles() {
        assert!(toposort(&[vec![1], vec![2], vec![]]).is_ok());
        assert!(toposort(&[vec![1], vec![2], vec![0]]).is_err());
    }
}
