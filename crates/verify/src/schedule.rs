//! The CCSS schedule verifier (the `V____` diagnostic family): re-derives
//! every invariant a [`CcssPlan`] must satisfy *from the netlist alone*,
//! independently of the partitioner, the legality oracle
//! (`essent_core::legality`), and the plan builder's own bookkeeping.
//!
//! Checked properties:
//!
//! * **exact cover** — every computed signal is a member of exactly one
//!   partition, and `sched_of_signal` agrees with the member lists;
//! * **acyclicity** — a fresh Kahn topological sort over the partition
//!   graph recomputed from raw dependency edges terminates;
//! * **topological order** — dependencies are evaluated before their
//!   users, both across partitions and within a member list;
//! * **trigger completeness** — every cross-partition dependency edge has
//!   a registered wake-up trigger, every input and state element wakes
//!   all of its readers;
//! * **elision safety** — a re-proof of Section III-B1: an in-place state
//!   update may never be observed by a later-scheduled reader in the
//!   same cycle.

use essent_core::diag::{codes, Diagnostic, Report};
use essent_core::plan::CcssPlan;
use essent_netlist::{graph, Netlist, SignalDef, SignalId};
use std::collections::{BTreeMap, BTreeSet};

fn computed(netlist: &Netlist, sig: SignalId) -> bool {
    matches!(
        netlist.signal(sig).def,
        SignalDef::Op(_) | SignalDef::MemRead { .. }
    )
}

/// Verifies a CCSS plan against its netlist. Every violated invariant is
/// reported (the verifier never stops at the first finding).
pub fn check_plan(netlist: &Netlist, plan: &CcssPlan) -> Report {
    let mut report = Report::new();
    let n_parts = plan.partitions.len();
    let n_sigs = netlist.signal_count();

    if plan.sched_of_signal.len() != n_sigs {
        report.push(Diagnostic::error(
            codes::MEMBER_MISPLACED,
            format!(
                "sched_of_signal covers {} signals, netlist has {}",
                plan.sched_of_signal.len(),
                n_sigs
            ),
        ));
        return report;
    }

    // --- Exact cover and membership consistency ---------------------------
    let mut count = vec![0u32; n_sigs];
    let mut member_pos = vec![usize::MAX; n_sigs];
    for (sched, part) in plan.partitions.iter().enumerate() {
        for (i, &m) in part.members.iter().enumerate() {
            if m.index() >= n_sigs {
                report.push(
                    Diagnostic::error(
                        codes::MEMBER_MISPLACED,
                        format!("member {m} is out of signal range"),
                    )
                    .with_partition(sched),
                );
                continue;
            }
            count[m.index()] += 1;
            member_pos[m.index()] = i;
            if !computed(netlist, m) {
                report.push(
                    Diagnostic::error(
                        codes::MEMBER_MISPLACED,
                        format!(
                            "member `{}` is not a computed signal (def needs no evaluation)",
                            netlist.signal(m).name
                        ),
                    )
                    .with_signal(netlist.signal(m).name.clone())
                    .with_partition(sched),
                );
            }
            if plan.sched_of_signal[m.index()] as usize != sched {
                report.push(
                    Diagnostic::error(
                        codes::MEMBER_MISPLACED,
                        format!(
                            "member `{}` listed in partition {sched} but sched_of_signal says {}",
                            netlist.signal(m).name,
                            plan.sched_of_signal[m.index()]
                        ),
                    )
                    .with_signal(netlist.signal(m).name.clone())
                    .with_partition(sched),
                );
            }
        }
    }
    // A partition with no evaluated members and no elided state updates is
    // fine if it still hosts stateful/source signals (input-only or
    // register-output-only partitions are normal); it is dead only when no
    // signal at all maps to it.
    let mut hosts = vec![false; n_parts];
    for &sched in &plan.sched_of_signal {
        if (sched as usize) < n_parts {
            hosts[sched as usize] = true;
        }
    }
    for (sched, part) in plan.partitions.iter().enumerate() {
        if part.members.is_empty()
            && part.elided_writes.is_empty()
            && part.elided_regs.is_empty()
            && !hosts[sched]
        {
            report.push(
                Diagnostic::warning(
                    codes::DEAD_PARTITION,
                    format!("partition {sched} holds no signal and schedules no work"),
                )
                .with_partition(sched),
            );
        }
    }
    for (i, &sig_count) in count.iter().enumerate() {
        let sig = SignalId(i as u32);
        if computed(netlist, sig) {
            if sig_count == 0 {
                report.push(
                    Diagnostic::error(
                        codes::COVER_MISSING,
                        format!(
                            "computed signal `{}` is in no partition",
                            netlist.signal(sig).name
                        ),
                    )
                    .with_signal(netlist.signal(sig).name.clone()),
                );
            } else if sig_count > 1 {
                report.push(
                    Diagnostic::error(
                        codes::DOUBLE_COVER,
                        format!(
                            "computed signal `{}` is in {} partitions",
                            netlist.signal(sig).name,
                            sig_count
                        ),
                    )
                    .with_signal(netlist.signal(sig).name.clone()),
                );
            }
        }
        if plan.sched_of_signal[i] as usize >= n_parts && n_parts > 0 {
            report.push(
                Diagnostic::error(
                    codes::DEAD_PARTITION,
                    format!(
                        "signal `{}` assigned to nonexistent partition {}",
                        netlist.signal(sig).name,
                        plan.sched_of_signal[i]
                    ),
                )
                .with_signal(netlist.signal(sig).name.clone()),
            );
        }
    }

    // --- Fresh partition graph + Kahn acyclicity proof --------------------
    // Edges come straight from netlist dependency edges between computed
    // member signals in different partitions; nothing is trusted from the
    // plan builder.
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_parts];
    for i in 0..n_sigs {
        let user = SignalId(i as u32);
        if !computed(netlist, user) {
            continue;
        }
        let user_sched = plan.sched_of_signal[i] as usize;
        if user_sched >= n_parts {
            continue;
        }
        for dep in netlist.deps(user) {
            if !computed(netlist, dep) {
                continue;
            }
            let dep_sched = plan.sched_of_signal[dep.index()] as usize;
            if dep_sched < n_parts && dep_sched != user_sched {
                edges[dep_sched].insert(user_sched);
            }
        }
    }
    let mut indegree = vec![0usize; n_parts];
    for succs in &edges {
        for &s in succs {
            indegree[s] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n_parts).filter(|&p| indegree[p] == 0).collect();
    let mut head = 0;
    while head < queue.len() {
        let p = queue[head];
        head += 1;
        for &s in &edges[p] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push(s);
            }
        }
    }
    if queue.len() != n_parts {
        let stuck: Vec<String> = (0..n_parts)
            .filter(|&p| indegree[p] > 0)
            .map(|p| p.to_string())
            .collect();
        report.push(Diagnostic::error(
            codes::PARTITION_CYCLE,
            format!(
                "partition dependency graph has a cycle among partitions {{{}}}",
                stuck.join(", ")
            ),
        ));
    }

    // --- Topological order of the schedule and of member lists ------------
    for (sched, part) in plan.partitions.iter().enumerate() {
        for (i, &m) in part.members.iter().enumerate() {
            for dep in netlist.deps(m) {
                if !computed(netlist, dep) {
                    continue;
                }
                let dep_sched = plan.sched_of_signal[dep.index()] as usize;
                if dep_sched == sched {
                    if member_pos[dep.index()] == usize::MAX || member_pos[dep.index()] >= i {
                        report.push(
                            Diagnostic::error(
                                codes::TOPO_ORDER,
                                format!(
                                    "`{}` evaluated before its same-partition dependency `{}`",
                                    netlist.signal(m).name,
                                    netlist.signal(dep).name
                                ),
                            )
                            .with_signal(netlist.signal(m).name.clone())
                            .with_partition(sched),
                        );
                    }
                } else if dep_sched > sched && dep_sched < n_parts {
                    report.push(
                        Diagnostic::error(
                            codes::TOPO_ORDER,
                            format!(
                                "partition {sched} reads `{}` computed by later partition {dep_sched}",
                                netlist.signal(dep).name
                            ),
                        )
                        .with_signal(netlist.signal(dep).name.clone())
                        .with_partition(sched),
                    );
                }
            }
        }
    }

    // --- Trigger completeness ---------------------------------------------
    // Producer-side trigger table: (producer signal -> consumer set).
    let mut triggers: BTreeMap<SignalId, BTreeSet<u32>> = BTreeMap::new();
    for (sched, part) in plan.partitions.iter().enumerate() {
        for out in &part.outputs {
            if plan.sched_of_signal[out.signal.index()] as usize != sched {
                report.push(
                    Diagnostic::error(
                        codes::MEMBER_MISPLACED,
                        format!(
                            "partition {sched} declares output `{}` it does not compute",
                            netlist.signal(out.signal).name
                        ),
                    )
                    .with_signal(netlist.signal(out.signal).name.clone())
                    .with_partition(sched),
                );
            }
            for &c in &out.consumers {
                if c as usize >= n_parts {
                    report.push(
                        Diagnostic::error(
                            codes::CONSUMER_RANGE,
                            format!(
                                "output `{}` triggers nonexistent partition {c}",
                                netlist.signal(out.signal).name
                            ),
                        )
                        .with_signal(netlist.signal(out.signal).name.clone())
                        .with_partition(sched),
                    );
                }
            }
            triggers
                .entry(out.signal)
                .or_default()
                .extend(out.consumers.iter().copied());
        }
    }
    let has_trigger = |sig: SignalId, consumer: usize| -> bool {
        triggers
            .get(&sig)
            .is_some_and(|cs| cs.contains(&(consumer as u32)))
    };
    // Every cross-partition combinational edge must be triggered.
    for (sched, part) in plan.partitions.iter().enumerate() {
        for &m in &part.members {
            for dep in netlist.deps(m) {
                if !computed(netlist, dep) {
                    continue;
                }
                let dep_sched = plan.sched_of_signal[dep.index()] as usize;
                if dep_sched != sched && !has_trigger(dep, sched) {
                    report.push(
                        Diagnostic::error(
                            codes::TRIGGER_MISSING,
                            format!(
                                "`{}` (partition {dep_sched}) feeds partition {sched} with no wake-up trigger",
                                netlist.signal(dep).name
                            ),
                        )
                        .with_signal(netlist.signal(dep).name.clone())
                        .with_partition(dep_sched),
                    );
                }
            }
        }
    }
    // An elided write executes inside its partition, so computed fields
    // produced elsewhere must trigger the writer partition.
    for (wi, wp) in plan.mem_write_plans.iter().enumerate() {
        if !wp.elided {
            continue;
        }
        let Some(writer) = plan
            .partitions
            .iter()
            .position(|p| p.elided_writes.contains(&wi))
        else {
            report.push(Diagnostic::error(
                codes::UNSAFE_ELISION,
                format!(
                    "elided write {} of memory `{}` is owned by no partition",
                    wp.writer,
                    netlist.mems()[wp.mem.index()].name
                ),
            ));
            continue;
        };
        let port = &netlist.mems()[wp.mem.index()].writers[wp.writer];
        for field in [port.addr, port.en, port.mask, port.data] {
            if !computed(netlist, field) {
                continue;
            }
            let field_sched = plan.sched_of_signal[field.index()] as usize;
            if field_sched != writer && !has_trigger(field, writer) {
                report.push(
                    Diagnostic::error(
                        codes::TRIGGER_MISSING,
                        format!(
                            "write field `{}` (partition {field_sched}) feeds elided write in partition {writer} with no trigger",
                            netlist.signal(field).name
                        ),
                    )
                    .with_signal(netlist.signal(field).name.clone())
                    .with_partition(field_sched),
                );
            }
        }
    }

    // --- Input wake completeness ------------------------------------------
    let input_wakes: BTreeMap<SignalId, BTreeSet<u32>> = plan
        .input_wakes
        .iter()
        .map(|(sig, wakes)| (*sig, wakes.iter().copied().collect()))
        .collect();
    for (sig, wakes) in &input_wakes {
        for &w in wakes {
            if w as usize >= n_parts {
                report.push(
                    Diagnostic::error(
                        codes::CONSUMER_RANGE,
                        format!(
                            "input `{}` wakes nonexistent partition {w}",
                            netlist.signal(*sig).name
                        ),
                    )
                    .with_signal(netlist.signal(*sig).name.clone()),
                );
            }
        }
    }
    let fanouts = graph::fanout_lists(netlist);
    // Writer-partition index of every elided write's field signals, so
    // direct input fields of elided writes wake the owning partition.
    let mut elided_field_parts: BTreeMap<SignalId, BTreeSet<usize>> = BTreeMap::new();
    for (sched, part) in plan.partitions.iter().enumerate() {
        for &wi in &part.elided_writes {
            let wp = &plan.mem_write_plans[wi];
            let port = &netlist.mems()[wp.mem.index()].writers[wp.writer];
            for field in [port.addr, port.en, port.mask, port.data] {
                elided_field_parts.entry(field).or_default().insert(sched);
            }
        }
    }
    for &input in netlist.inputs() {
        let mut required: BTreeSet<usize> = BTreeSet::new();
        for &user in &fanouts[input.index()] {
            if computed(netlist, user) {
                let sched = plan.sched_of_signal[user.index()] as usize;
                if sched < n_parts {
                    required.insert(sched);
                }
            }
        }
        if let Some(parts) = elided_field_parts.get(&input) {
            required.extend(parts.iter().copied());
        }
        let wakes = input_wakes.get(&input);
        for need in required {
            let woken = wakes.is_some_and(|w| w.contains(&(need as u32)));
            if !woken {
                report.push(
                    Diagnostic::error(
                        codes::INPUT_WAKE_MISSING,
                        format!(
                            "input `{}` is read by partition {need} but does not wake it",
                            netlist.signal(input).name
                        ),
                    )
                    .with_signal(netlist.signal(input).name.clone())
                    .with_partition(need),
                );
            }
        }
    }

    // --- State wake completeness ------------------------------------------
    for (ri, rp) in plan.reg_plans.iter().enumerate() {
        let reg = &netlist.regs()[ri];
        let wakes: BTreeSet<u32> = rp.wake_on_change.iter().copied().collect();
        for &w in &wakes {
            if w as usize >= n_parts {
                report.push(
                    Diagnostic::error(
                        codes::CONSUMER_RANGE,
                        format!("register `{}` wakes nonexistent partition {w}", reg.name),
                    )
                    .with_signal(reg.name.clone()),
                );
            }
        }
        let readers: BTreeSet<usize> = fanouts[reg.out.index()]
            .iter()
            .filter(|&&u| computed(netlist, u))
            .map(|&u| plan.sched_of_signal[u.index()] as usize)
            .filter(|&p| p < n_parts)
            .collect();
        for sched in readers {
            if !wakes.contains(&(sched as u32)) {
                report.push(
                    Diagnostic::error(
                        codes::STATE_WAKE_MISSING,
                        format!(
                            "register `{}` is read by partition {sched} but does not wake it",
                            reg.name
                        ),
                    )
                    .with_signal(reg.name.clone())
                    .with_partition(sched),
                );
            }
        }
    }
    for wp in &plan.mem_write_plans {
        let mem = &netlist.mems()[wp.mem.index()];
        let wakes: BTreeSet<u32> = wp.wake_on_change.iter().copied().collect();
        for r in &mem.readers {
            let reader = plan.sched_of_signal[r.data.index()];
            if (reader as usize) < n_parts && !wakes.contains(&reader) {
                report.push(
                    Diagnostic::error(
                        codes::STATE_WAKE_MISSING,
                        format!(
                            "memory `{}` write does not wake reader partition {reader}",
                            mem.name
                        ),
                    )
                    .with_signal(mem.name.clone())
                    .with_partition(reader as usize),
                );
            }
        }
    }

    // --- Elision safety re-proof (Section III-B1) -------------------------
    // An in-place update is safe only when every same-cycle reader has
    // already run: reader schedule index <= writer schedule index.
    for (ri, rp) in plan.reg_plans.iter().enumerate() {
        if !rp.elided {
            continue;
        }
        let reg = &netlist.regs()[ri];
        let writer = plan.sched_of_signal[reg.next.index()] as usize;
        for &user in &fanouts[reg.out.index()] {
            if !computed(netlist, user) {
                continue;
            }
            let reader = plan.sched_of_signal[user.index()] as usize;
            if reader > writer {
                report.push(
                    Diagnostic::error(
                        codes::UNSAFE_ELISION,
                        format!(
                            "elided register `{}` (writer partition {writer}) is read by later partition {reader}",
                            reg.name
                        ),
                    )
                    .with_signal(reg.name.clone())
                    .with_partition(reader),
                );
            }
        }
        // A non-elided write action reads field values at end of cycle and
        // must see the register's pre-update value.
        for (wi, wp) in plan.mem_write_plans.iter().enumerate() {
            if wp.elided {
                continue;
            }
            let port = &netlist.mems()[wp.mem.index()].writers[wp.writer];
            if [port.addr, port.en, port.mask, port.data].contains(&reg.out) {
                report.push(
                    Diagnostic::error(
                        codes::UNSAFE_ELISION,
                        format!(
                            "elided register `{}` feeds end-of-cycle write {wi} of memory `{}`",
                            reg.name,
                            netlist.mems()[wp.mem.index()].name
                        ),
                    )
                    .with_signal(reg.name.clone()),
                );
            }
        }
    }
    for (wi, wp) in plan.mem_write_plans.iter().enumerate() {
        if !wp.elided {
            continue;
        }
        let Some(writer) = plan
            .partitions
            .iter()
            .position(|p| p.elided_writes.contains(&wi))
        else {
            continue; // already reported above
        };
        let mem = &netlist.mems()[wp.mem.index()];
        for r in &mem.readers {
            let reader = plan.sched_of_signal[r.data.index()] as usize;
            if reader > writer {
                report.push(
                    Diagnostic::error(
                        codes::UNSAFE_ELISION,
                        format!(
                            "elided write to memory `{}` (partition {writer}) is read by later partition {reader}",
                            mem.name
                        ),
                    )
                    .with_signal(mem.name.clone())
                    .with_partition(reader),
                );
            }
        }
    }

    report
}
