//! The native-code audit layer (the `J____` diagnostic family): an
//! independent disassembly of the JIT's emitted machine code, checked
//! instruction-by-instruction against the [`Tier1Program`] it was
//! lowered from.
//!
//! The emitters ([`essent_sim::jit::x64`], [`essent_sim::jit::a64`])
//! deliberately use a small fixed vocabulary of encodings — every arena
//! access, flag wake, bank load, immediate materialization, and branch
//! has one uniform shape. This layer re-decodes that vocabulary *from
//! the bytes* (it shares no encoding tables with the emitters) and
//! extracts, per source instruction, a **fact set**:
//!
//! * arena word offsets loaded and stored,
//! * activity-flag bytes written (the fused CCSS wake sites),
//! * bank-table entries dereferenced,
//! * 64-bit immediates materialized,
//! * branch targets, and
//! * `ops` / `dynamic` counter increments.
//!
//! The facts are then compared against what the [`Inst1`] semantics
//! demand (including the constant-folding the emitters perform — an
//! out-of-range `Shl` must load *nothing*):
//!
//! * `J0701` **decode** — an undecodable byte/word, a malformed
//!   prologue/epilogue, or a non-contiguous instruction mark table;
//! * `J0702` **operand** — a load/store/bank/immediate/count fact that
//!   differs from the instruction's operands (in-arena offsets per the
//!   same footprints the `R05xx` layer proves disjoint);
//! * `J0703` **flow** — a branch leaving its instruction's byte range
//!   other than to the lowered jump target, a `Jmp`/`JmpIf0` without
//!   its target, or a backward jump (termination);
//! * `J0704` **fuse** — a fused-trigger tail whose wake sites differ
//!   from the program's consumer list, a missing/spurious `dynamic`
//!   increment, or wakes on an unfused instruction.

use essent_core::diag::{codes, Diagnostic, Report};
use essent_sim::jit::{EmittedCode, JitArch};
use essent_sim::step1::{Inst1, Op1, Tier1Program, NO_FUSE};
use std::collections::BTreeSet;

/// Facts extracted from one instruction's decoded byte range.
#[derive(Default)]
struct InstFacts {
    loads: BTreeSet<u32>,
    stores: BTreeSet<u32>,
    flags: BTreeSet<u32>,
    banks: BTreeSet<u32>,
    imms: BTreeSet<u64>,
    /// Bitfield-AND mask widths (aarch64 result masking).
    mask_widths: BTreeSet<u32>,
    /// Absolute byte offsets into the stream.
    branch_targets: Vec<u32>,
    ops_incs: u32,
    dyn_incs: u32,
    /// Decode failed somewhere in this range (already reported).
    bad: bool,
}

/// What the source instruction requires of its emitted range.
struct Expect {
    loads: BTreeSet<u32>,
    stores: BTreeSet<u32>,
    flags: BTreeSet<u32>,
    banks: BTreeSet<u32>,
    /// Immediates that must appear (`Andr` mask, `MemRead` depth, and on
    /// x86-64 the result mask).
    req_imms: Vec<u64>,
    /// Required bitfield mask width (aarch64 result masking).
    req_mask_width: Option<u32>,
    /// Lowered jump target (absolute byte offset) for `Jmp`/`JmpIf0`.
    jump: Option<u32>,
    ops_incs: u32,
    dyn_incs: u32,
}

/// Derives the expected fact set for one instruction.
fn expect(prog: &Tier1Program, inst: &Inst1, code: &EmittedCode) -> Expect {
    let mut loads = BTreeSet::new();
    let mut banks = BTreeSet::new();
    let mut req_imms = Vec::new();
    let mut jump = None;
    match inst.op {
        Op1::Add
        | Op1::Sub
        | Op1::Mul
        | Op1::DivU
        | Op1::DivS
        | Op1::RemU
        | Op1::RemS
        | Op1::LtU
        | Op1::LtS
        | Op1::LeqU
        | Op1::LeqS
        | Op1::Eq
        | Op1::Neq
        | Op1::And
        | Op1::Or
        | Op1::Xor
        | Op1::Cat
        | Op1::Dshl
        | Op1::DshrU
        | Op1::DshrS => {
            loads.insert(inst.a);
            loads.insert(inst.b);
        }
        Op1::Shl => {
            // Constant-folded to zero when the shift clears the result.
            if inst.imm < inst.sxc as u64 {
                loads.insert(inst.a);
            }
        }
        Op1::ShrU => {
            if inst.imm < 64 {
                loads.insert(inst.a);
            }
        }
        Op1::ShrS | Op1::Neg | Op1::Not | Op1::Orr | Op1::Xorr | Op1::Bits | Op1::Ext => {
            loads.insert(inst.a);
        }
        Op1::Andr => {
            loads.insert(inst.a);
            req_imms.push(inst.imm);
        }
        Op1::Mux => {
            loads.insert(inst.a);
            loads.insert(inst.b);
            loads.insert(inst.c);
        }
        Op1::MemRead => {
            loads.insert(inst.a);
            loads.insert(inst.b);
            banks.insert(inst.c);
            req_imms.push(inst.imm);
        }
        Op1::Jmp | Op1::JmpIf0 => {
            if inst.op == Op1::JmpIf0 {
                loads.insert(inst.b);
            }
            let target = if (inst.a as usize) < code.marks.len() {
                code.marks[inst.a as usize].0
            } else {
                code.body_end()
            };
            jump = Some(target);
        }
        Op1::Generic => {}
    }
    let value = !matches!(inst.op, Op1::Jmp | Op1::JmpIf0 | Op1::Generic);
    let mut stores = BTreeSet::new();
    let mut flags = BTreeSet::new();
    let mut req_mask_width = None;
    let mut dyn_incs = 0;
    if value {
        stores.insert(inst.dst);
        if inst.ws != NO_FUSE {
            // The fused tail re-loads the destination for the
            // compare-and-wake.
            loads.insert(inst.dst);
            flags.extend(
                prog.consumers[inst.ws as usize..inst.we as usize]
                    .iter()
                    .copied(),
            );
            dyn_incs = 1;
        }
        if inst.mask != u64::MAX {
            match code.arch {
                JitArch::X64 => req_imms.push(inst.mask),
                JitArch::A64 => req_mask_width = Some(inst.mask.count_ones()),
            }
        }
    }
    Expect {
        loads,
        stores,
        flags,
        banks,
        req_imms,
        req_mask_width,
        jump,
        ops_incs: u32::from(value),
        dyn_incs,
    }
}

// ---------------------------------------------------------------------
// x86-64 restricted decoder
// ---------------------------------------------------------------------

/// Decodes one instruction byte range of the x86-64 vocabulary into a
/// fact set. Reports `J0701` for anything outside the vocabulary.
fn decode_x64(
    bytes: &[u8],
    start: usize,
    end: usize,
    report: &mut Report,
    partition: usize,
    pc: usize,
) -> InstFacts {
    let mut f = InstFacts::default();
    let mut p = start;
    let bad_at = |report: &mut Report, p: usize, f: &mut InstFacts| {
        f.bad = true;
        report.push(
            Diagnostic::error(
                codes::JIT_DECODE,
                format!("x64 stream undecodable at byte {p} (inst {pc})"),
            )
            .with_partition(partition),
        );
    };
    let rd32 = |bytes: &[u8], p: usize| {
        i32::from_le_bytes([bytes[p], bytes[p + 1], bytes[p + 2], bytes[p + 3]])
    };
    while p < end {
        let rest = end - p;
        let b = bytes[p];
        match b {
            // mov r64, [rdi+disp32] / [rbx+disp32] ; mov [rdi+disp32], r64
            0x48 if rest >= 4
                && matches!(bytes[p + 1], 0x8B | 0x89)
                && bytes[p + 2] & 0xC0 != 0xC0 =>
            {
                let modrm = bytes[p + 2];
                let is_load = bytes[p + 1] == 0x8B;
                match (modrm & 0xC0, modrm & 7) {
                    (0x80, 7) if rest >= 7 => {
                        // rdi base: arena access.
                        let disp = rd32(bytes, p + 3);
                        if disp < 0 || disp % 8 != 0 {
                            bad_at(report, p, &mut f);
                            return f;
                        }
                        let off = (disp / 8) as u32;
                        if is_load {
                            f.loads.insert(off);
                        } else {
                            f.stores.insert(off);
                        }
                        p += 7;
                    }
                    (0x80, 3) if is_load && rest >= 7 => {
                        // rbx base: bank table entry.
                        let disp = rd32(bytes, p + 3);
                        if disp < 0 || disp % 16 != 0 {
                            bad_at(report, p, &mut f);
                            return f;
                        }
                        f.banks.insert((disp / 16) as u32);
                        p += 7;
                    }
                    (0x00, 4) if is_load && modrm == 0x04 && bytes[p + 3] == 0xC1 => {
                        // mov rax, [rcx + rax*8]: the bank-indexed load.
                        p += 4;
                    }
                    _ => {
                        bad_at(report, p, &mut f);
                        return f;
                    }
                }
            }
            // movabs rcx, imm64
            0x48 if rest >= 10 && bytes[p + 1] == 0xB9 => {
                let mut v = [0u8; 8];
                v.copy_from_slice(&bytes[p + 2..p + 10]);
                f.imms.insert(u64::from_le_bytes(v));
                p += 10;
            }
            // shl/shr/sar r64, imm8
            0x48 if rest >= 4 && bytes[p + 1] == 0xC1 && bytes[p + 2] & 0xC0 == 0xC0 => {
                match (bytes[p + 2] >> 3) & 7 {
                    4 | 5 | 7 => p += 4,
                    _ => {
                        bad_at(report, p, &mut f);
                        return f;
                    }
                }
            }
            // cmp rcx, imm8
            0x48 if rest >= 4 && bytes[p + 1] == 0x83 && bytes[p + 2] == 0xF9 => p += 4,
            // Fixed three-byte r64 ALU forms: add/sub/imul(via 0F)/and/
            // or/xor/cmp/test/div/idiv/neg/not/shifts-by-cl and cqo.
            0x48 if rest >= 3
                && matches!(
                    (bytes[p + 1], bytes[p + 2]),
                    (0x01, 0xC8) // add rax, rcx
                        | (0x29, 0xC8) // sub rax, rcx
                        | (0x21, 0xC8) // and rax, rcx
                        | (0x09, 0xC8) // or rax, rcx
                        | (0x31, 0xC8) // xor rax, rcx
                        | (0x39, 0xC8) // cmp rax, rcx
                        | (0x39, 0xC1) // cmp rcx, rax
                        | (0x85, 0xC9) // test rcx, rcx
                        | (0x85, 0xC0) // test rax, rax
                        | (0x89, 0xD0) // mov rax, rdx (div remainder)
                        | (0xF7, 0xF1) // div rcx
                        | (0xF7, 0xF9) // idiv rcx
                        | (0xF7, 0xD8) // neg rax
                        | (0xF7, 0xD0) // not rax
                        | (0xD3, 0xE0) // shl rax, cl
                        | (0xD3, 0xE8) // shr rax, cl
                        | (0xD3, 0xF8) // sar rax, cl
                ) =>
            {
                p += 3;
            }
            // imul rax, rcx
            0x48 if rest >= 4 && bytes[p + 1] == 0x0F && bytes[p + 2] == 0xAF => p += 4,
            // cqo
            0x48 if rest >= 2 && bytes[p + 1] == 0x99 => p += 2,
            // inc r8 (ops) / inc r9 (dynamic)
            0x49 if rest >= 3 && bytes[p + 1] == 0xFF && matches!(bytes[p + 2], 0xC0 | 0xC1) => {
                if bytes[p + 2] == 0xC0 {
                    f.ops_incs += 1;
                } else {
                    f.dyn_incs += 1;
                }
                p += 3;
            }
            // popcnt rax, rax
            0xF3 if rest >= 5 && bytes[p + 1..p + 5] == [0x48, 0x0F, 0xB8, 0xC0] => p += 5,
            // setcc al / movzx eax, al / jcc rel32
            0x0F if rest >= 3 => match bytes[p + 1] {
                0x90..=0x9F if bytes[p + 2] == 0xC0 => p += 3,
                0xB6 if bytes[p + 2] == 0xC0 => p += 3,
                0x82..=0x86 if rest >= 6 => {
                    let rel = rd32(bytes, p + 2);
                    f.branch_targets.push(((p as i64 + 6) + rel as i64) as u32);
                    p += 6;
                }
                _ => {
                    bad_at(report, p, &mut f);
                    return f;
                }
            },
            // jmp rel32
            0xE9 if rest >= 5 => {
                let rel = rd32(bytes, p + 1);
                f.branch_targets.push(((p as i64 + 5) + rel as i64) as u32);
                p += 5;
            }
            // mov byte [rsi+disp32], 1
            0xC6 if rest >= 7 && bytes[p + 1] == 0x86 && bytes[p + 6] == 0x01 => {
                let disp = rd32(bytes, p + 2);
                if disp < 0 {
                    bad_at(report, p, &mut f);
                    return f;
                }
                f.flags.insert(disp as u32);
                p += 7;
            }
            // xor eax, eax / xor edx, edx
            0x31 if rest >= 2 && matches!(bytes[p + 1], 0xC0 | 0xD2) => p += 2,
            // test al, 1
            0xA8 if rest >= 2 && bytes[p + 1] == 0x01 => p += 2,
            // and eax, 1
            0x83 if rest >= 3 && bytes[p + 1] == 0xE0 && bytes[p + 2] == 0x01 => p += 3,
            // mov ecx, 63
            0xB9 if rest >= 5 => {
                f.imms.insert(rd32(bytes, p + 1) as u32 as u64);
                p += 5;
            }
            _ => {
                bad_at(report, p, &mut f);
                return f;
            }
        }
    }
    f
}

/// The exact prologue the x86-64 emitter produces.
const X64_PROLOGUE: &[u8] = &[
    0x53, // push rbx
    0x48, 0x89, 0xD3, // mov rbx, rdx
    0x45, 0x31, 0xC0, // xor r8d, r8d
    0x45, 0x31, 0xC9, // xor r9d, r9d
];

/// The exact epilogue the x86-64 emitter produces.
const X64_EPILOGUE: &[u8] = &[
    0x4C, 0x89, 0xC8, // mov rax, r9
    0x48, 0xC1, 0xE0, 0x20, // shl rax, 32
    0x4C, 0x09, 0xC0, // or rax, r8
    0x5B, // pop rbx
    0xC3, // ret
];

// ---------------------------------------------------------------------
// AArch64 restricted decoder
// ---------------------------------------------------------------------

const A64_OFF: u32 = 15;
const A64_ARENA: u32 = 0;
const A64_FLAGS: u32 = 1;
const A64_BANKS: u32 = 2;
const A64_OPS: u32 = 13;
const A64_DYN: u32 = 14;

/// Decodes one instruction word range of the AArch64 vocabulary.
fn decode_a64(
    bytes: &[u8],
    start: usize,
    end: usize,
    report: &mut Report,
    partition: usize,
    pc: usize,
) -> InstFacts {
    let mut f = InstFacts::default();
    // Offset register (x15) value and general immediate tracking
    // (movz/movk builders).
    let mut off: Option<u32> = None;
    let mut imm_val = [0u64; 32];
    let mut p = start;
    while p < end {
        let w = u32::from_le_bytes([bytes[p], bytes[p + 1], bytes[p + 2], bytes[p + 3]]);
        let widx = p / 4;
        let rd = w & 31;
        if w & 0xFF80_0000 == 0xD280_0000 {
            // movz rd, imm16, lsl #(hw*16)
            let hw = (w >> 21) & 3;
            let imm16 = ((w >> 5) & 0xFFFF) as u64;
            imm_val[rd as usize] = imm16 << (16 * hw);
            f.imms.insert(imm_val[rd as usize]);
            if rd == A64_OFF {
                off = (hw == 0).then_some(imm16 as u32);
            }
        } else if w & 0xFF80_0000 == 0xF280_0000 {
            // movk rd, imm16, lsl #(hw*16)
            let hw = (w >> 21) & 3;
            let imm16 = ((w >> 5) & 0xFFFF) as u64;
            let shifted = imm16 << (16 * hw);
            imm_val[rd as usize] = (imm_val[rd as usize] & !(0xFFFFu64 << (16 * hw))) | shifted;
            f.imms.insert(imm_val[rd as usize]);
            if rd == A64_OFF {
                off = off.filter(|_| hw == 1).map(|o| o | (imm16 as u32) << 16);
            }
        } else if w & 0xFFE0_FC00 == 0xF860_7800 || w & 0xFFE0_FC00 == 0xF820_7800 {
            // ldr/str Xt, [Xn, Xm, lsl #3]
            let is_load = w & 0x0040_0000 != 0;
            let rn = (w >> 5) & 31;
            let rm = (w >> 16) & 31;
            if rm == A64_OFF && rn == A64_ARENA {
                match off {
                    Some(o) if is_load => {
                        f.loads.insert(o);
                    }
                    Some(o) => {
                        f.stores.insert(o);
                    }
                    None => {
                        f.bad = true;
                        report.push(
                            Diagnostic::error(
                                codes::JIT_DECODE,
                                format!(
                                    "a64 arena access at word {widx} without a \
                                     materialized offset (inst {pc})"
                                ),
                            )
                            .with_partition(partition),
                        );
                        return f;
                    }
                }
            } else if rm == A64_OFF && rn == A64_BANKS && is_load {
                match off {
                    // 16-byte table entries addressed as word pairs.
                    Some(o) if o % 2 == 0 => {
                        f.banks.insert(o / 2);
                    }
                    _ => {
                        f.bad = true;
                        report.push(
                            Diagnostic::error(
                                codes::JIT_DECODE,
                                format!("a64 bank access with bad offset at word {widx}"),
                            )
                            .with_partition(partition),
                        );
                        return f;
                    }
                }
            }
            // Register-indexed bank[addr] loads carry no static fact.
        } else if w == 0x3820_6800 | (A64_OFF << 16) | (A64_FLAGS << 5) | 12 {
            // strb w12, [x1, x15] — the register holding the constant 1
            match off {
                Some(o) => {
                    f.flags.insert(o);
                }
                None => {
                    f.bad = true;
                    report.push(
                        Diagnostic::error(
                            codes::JIT_DECODE,
                            format!("a64 flag store without offset at word {widx}"),
                        )
                        .with_partition(partition),
                    );
                    return f;
                }
            }
        } else if w & 0xFFFF_FC00 == 0x9100_0400 && (w >> 5) & 31 == rd {
            // add rd, rd, #1 — counter increment
            if rd == A64_OPS {
                f.ops_incs += 1;
            } else if rd == A64_DYN {
                f.dyn_incs += 1;
            }
        } else if w & 0xFC00_0000 == 0x1400_0000 {
            // b
            let imm = ((w & 0x03FF_FFFF) as i32) << 6 >> 6;
            f.branch_targets
                .push(((widx as i64 + imm as i64) * 4) as u32);
        } else if w & 0xFF00_0010 == 0x5400_0000 || w & 0xFF00_0000 == 0xB400_0000 {
            // b.cond / cbz
            let imm = (((w >> 5) & 0x7FFFF) as i32) << 13 >> 13;
            f.branch_targets
                .push(((widx as i64 + imm as i64) * 4) as u32);
        } else if w & 0xFFF8_0000 == 0x3600_0000 {
            // tbz rt, #0
            let imm = (((w >> 5) & 0x3FFF) as i32) << 18 >> 18;
            f.branch_targets
                .push(((widx as i64 + imm as i64) * 4) as u32);
        } else if w & 0xFFC0_0000 == 0x9240_0000 && (w >> 16) & 0x3F == 0 {
            // and rd, rn, #low-mask(width)
            f.mask_widths.insert(((w >> 10) & 0x3F) + 1);
        } else if w & 0xFFC0_0000 == 0x9340_0000 && (w >> 16) & 0x3F == 0 {
            // sbfm sign-extension
        } else if (w & 0xFFE0_FC1F == 0xEB00_001F) // cmp rr
            || (w & 0xFFC0_001F == 0xF100_001F) // cmp imm12
            || (w & 0xFFFF_0FE0 == 0x9A9F_07E0) // cset
            || (w & 0xFFE0_0C00 == 0x9A80_0000) // csel
            || (w & 0xFFE0_0000 == 0xCA40_0000) // eor lsr (parity fold)
            || (w & 0xFFE0_FC00 == 0x8B00_0000) // add
            || (w & 0xFFE0_FC00 == 0xCB00_0000) // sub / neg
            || (w & 0xFFE0_FC00 == 0x9B00_7C00) // mul
            || (w & 0xFFE0_8000 == 0x9B00_8000) // msub
            || (w & 0xFFE0_FC00 == 0x9AC0_0800) // udiv
            || (w & 0xFFE0_FC00 == 0x9AC0_0C00) // sdiv
            || (w & 0xFFE0_FC00 == 0x9AC0_2000) // lslv
            || (w & 0xFFE0_FC00 == 0x9AC0_2400) // lsrv
            || (w & 0xFFE0_FC00 == 0x9AC0_2800) // asrv
            || (w & 0xFFE0_FC00 == 0x8A00_0000) // and rr
            || (w & 0xFFE0_FC00 == 0xAA00_0000) // orr rr
            || (w & 0xFFE0_FC00 == 0xAA20_0000) // mvn
            || (w & 0xFFE0_FC00 == 0xCA00_0000)
        // eor rr
        {
            // Pure register compute: no static facts beyond decoding.
        } else {
            f.bad = true;
            report.push(
                Diagnostic::error(
                    codes::JIT_DECODE,
                    format!("a64 stream undecodable at word {widx} (inst {pc}): {w:#010x}"),
                )
                .with_partition(partition),
            );
            return f;
        }
        p += 4;
    }
    f
}

/// The exact prologue the AArch64 emitter produces (`movz` of the two
/// counters and the flag constant).
const A64_PROLOGUE: &[u8] = &[
    0x0D, 0x00, 0x80, 0xD2, // movz x13, #0
    0x0E, 0x00, 0x80, 0xD2, // movz x14, #0
    0x2C, 0x00, 0x80, 0xD2, // movz x12, #1
];

/// The exact epilogue (`orr x0, x13, x14, lsl #32; ret`).
const A64_EPILOGUE: &[u8] = &[
    0xA0, 0x81, 0x0E, 0xAA, // orr x0, x13, x14, lsl #32
    0xC0, 0x03, 0x5F, 0xD6, // ret
];

// ---------------------------------------------------------------------
// The audit proper
// ---------------------------------------------------------------------

/// Audits one emitted stream against its source program. `partition` is
/// the scheduled index, used only in diagnostics.
pub fn check_jit(prog: &Tier1Program, code: &EmittedCode, partition: usize) -> Report {
    let mut report = Report::new();
    // --- Structure: marks cover the code exactly (J0701) -------------
    if code.marks.len() != prog.code.len() {
        report.push(
            Diagnostic::error(
                codes::JIT_DECODE,
                format!(
                    "mark table has {} entries for {} instruction(s)",
                    code.marks.len(),
                    prog.code.len()
                ),
            )
            .with_partition(partition),
        );
        return report;
    }
    let (prologue, epilogue) = match code.arch {
        JitArch::X64 => (X64_PROLOGUE, X64_EPILOGUE),
        JitArch::A64 => (A64_PROLOGUE, A64_EPILOGUE),
    };
    if code.bytes.len() < prologue.len() + epilogue.len()
        || &code.bytes[..prologue.len()] != prologue
    {
        report.push(
            Diagnostic::error(codes::JIT_DECODE, "malformed prologue".to_string())
                .with_partition(partition),
        );
        return report;
    }
    if &code.bytes[code.bytes.len() - epilogue.len()..] != epilogue {
        report.push(
            Diagnostic::error(codes::JIT_DECODE, "malformed epilogue".to_string())
                .with_partition(partition),
        );
        return report;
    }
    let mut cursor = prologue.len() as u32;
    for (pc, &(s, e)) in code.marks.iter().enumerate() {
        if s != cursor || e < s || e as usize > code.bytes.len() - epilogue.len() {
            report.push(
                Diagnostic::error(
                    codes::JIT_DECODE,
                    format!("mark {pc} [{s}, {e}) breaks body contiguity at {cursor}"),
                )
                .with_partition(partition),
            );
            return report;
        }
        cursor = e;
    }
    if cursor as usize != code.bytes.len() - epilogue.len() {
        report.push(
            Diagnostic::error(
                codes::JIT_DECODE,
                format!(
                    "body ends at {cursor}, epilogue begins at {}",
                    code.bytes.len() - epilogue.len()
                ),
            )
            .with_partition(partition),
        );
        return report;
    }

    // --- Per-instruction facts (J0702/J0703/J0704) --------------------
    for (pc, (inst, &(s, e))) in prog.code.iter().zip(&code.marks).enumerate() {
        let facts = match code.arch {
            JitArch::X64 => decode_x64(
                &code.bytes,
                s as usize,
                e as usize,
                &mut report,
                partition,
                pc,
            ),
            JitArch::A64 => decode_a64(
                &code.bytes,
                s as usize,
                e as usize,
                &mut report,
                partition,
                pc,
            ),
        };
        if facts.bad {
            continue;
        }
        let want = expect(prog, inst, code);
        let ctx = |what: &str| format!("inst {pc} ({:?}): {what}", inst.op);
        if facts.loads != want.loads {
            report.push(
                Diagnostic::error(
                    codes::JIT_OPERAND,
                    ctx(&format!(
                        "arena loads {:?} != expected {:?}",
                        facts.loads, want.loads
                    )),
                )
                .with_partition(partition),
            );
        }
        if facts.stores != want.stores {
            report.push(
                Diagnostic::error(
                    codes::JIT_OPERAND,
                    ctx(&format!(
                        "arena stores {:?} != expected {:?}",
                        facts.stores, want.stores
                    )),
                )
                .with_partition(partition),
            );
        }
        if facts.banks != want.banks {
            report.push(
                Diagnostic::error(
                    codes::JIT_OPERAND,
                    ctx(&format!(
                        "bank loads {:?} != expected {:?}",
                        facts.banks, want.banks
                    )),
                )
                .with_partition(partition),
            );
        }
        for imm in &want.req_imms {
            if !facts.imms.contains(imm) {
                report.push(
                    Diagnostic::error(
                        codes::JIT_OPERAND,
                        ctx(&format!("required immediate {imm:#x} not materialized")),
                    )
                    .with_partition(partition),
                );
            }
        }
        if let Some(wdt) = want.req_mask_width {
            if !facts.mask_widths.contains(&wdt) {
                report.push(
                    Diagnostic::error(
                        codes::JIT_OPERAND,
                        ctx(&format!("result mask of width {wdt} not applied")),
                    )
                    .with_partition(partition),
                );
            }
        }
        if facts.ops_incs != want.ops_incs {
            report.push(
                Diagnostic::error(
                    codes::JIT_OPERAND,
                    ctx(&format!(
                        "{} ops-counter increment(s), expected {}",
                        facts.ops_incs, want.ops_incs
                    )),
                )
                .with_partition(partition),
            );
        }
        // Flow: every branch stays inside its instruction range except
        // the lowered jump, which must exist, land on an instruction
        // boundary, and go forward.
        let mut jump_seen = false;
        for &t in &facts.branch_targets {
            if Some(t) == want.jump {
                jump_seen = true;
                if t < e {
                    report.push(
                        Diagnostic::error(
                            codes::JIT_FLOW,
                            ctx(&format!(
                                "jump target {t} is not forward (inst ends at {e})"
                            )),
                        )
                        .with_partition(partition),
                    );
                }
            } else if t < s || t > e {
                report.push(
                    Diagnostic::error(
                        codes::JIT_FLOW,
                        ctx(&format!(
                            "branch target {t} escapes instruction range [{s}, {e}]"
                        )),
                    )
                    .with_partition(partition),
                );
            }
        }
        if let Some(jump) = want.jump {
            if !jump_seen {
                report.push(
                    Diagnostic::error(
                        codes::JIT_FLOW,
                        ctx(&format!(
                            "lowered jump to byte {jump} missing from the stream"
                        )),
                    )
                    .with_partition(partition),
                );
            }
        }
        // Fuse: wake sites must be exactly the consumer list; the
        // dynamic counter must tick exactly on fused instructions.
        if facts.flags != want.flags {
            report.push(
                Diagnostic::error(
                    codes::JIT_FUSE,
                    ctx(&format!(
                        "flag wake sites {:?} != consumer set {:?}",
                        facts.flags, want.flags
                    )),
                )
                .with_partition(partition),
            );
        }
        if facts.dyn_incs != want.dyn_incs {
            report.push(
                Diagnostic::error(
                    codes::JIT_FUSE,
                    ctx(&format!(
                        "{} dynamic-counter increment(s), expected {}",
                        facts.dyn_incs, want.dyn_incs
                    )),
                )
                .with_partition(partition),
            );
        }
    }
    report
}
