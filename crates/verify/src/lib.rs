//! # essent-verify
//!
//! An independent static verifier for the ESSENT reproduction. Every
//! invariant the simulation pipeline *relies on* is re-derived here
//! *from scratch* — this crate deliberately does not call the builders'
//! own `check`/`validate` paths, so a bug in plan construction and a bug
//! in its self-checks cannot cancel out.
//!
//! Nine layers, each a standalone pass producing a structured
//! [`Report`] of coded [`Diagnostic`]s:
//!
//! | layer | entry point | codes |
//! |---|---|---|
//! | netlist lints | [`lint_netlist`] | `L____` |
//! | schedule verifier | [`check_plan`] | `V____` |
//! | bytecode verifier | [`check_layout`] / [`check_blocks`] | `B____` |
//! | profiler wiring | [`check_profile`] | `P____` |
//! | profile feedback | [`check_activity_merge`] / [`check_level_schedule`] | `F____` |
//! | footprint / race freedom | [`check_footprint`] | `R____` |
//! | dependence / dataflow schedule | [`check_depgraph`] | `S____` |
//! | native-code (JIT) audit | [`check_jit`] | `J____` |
//! | batched-lane audit | [`check_batch`] | `X____` |
//!
//! [`verify_design`] chains all of them over a freshly built plan and
//! compilation, which is what the `verify` binary and the `--verify`
//! bench flag run. [`verify_design_full`] additionally returns the
//! [`MayOverlap`] cross-cycle independence matrix the footprint layer
//! derives and the [`DataflowSchedule`] the dependence layer proved.

pub mod batch;
pub mod bytecode;
pub mod depgraph;
pub mod feedback;
pub mod footprint;
pub mod jit;
pub mod lint;
pub mod profile;
pub mod schedule;

pub use batch::check_batch;
pub use bytecode::{check_blocks, check_layout, check_tier1};
pub use depgraph::check_depgraph;
pub use essent_core::depgraph::DataflowSchedule;
pub use essent_core::diag::{DiagCode, Diagnostic, Report, Severity};
pub use essent_core::plan::MayOverlap;
pub use feedback::{check_activity_merge, check_level_schedule};
pub use footprint::{check_footprint, Footprint, WordSet};
pub use jit::check_jit;
pub use lint::lint_netlist;
pub use profile::check_profile;
pub use schedule::check_plan;

use essent_core::depgraph::{synthesize_dataflow, DepGraph};
use essent_core::partition::{partition, partition_with_prior, ActivityMergeParams, ActivityPrior};
// `plan_levels` is the runtime's leveling (moved into `essent-core` so
// both `essent-sim` and this crate name one canonical artifact to
// audit); the independent re-derivation lives in `footprint::derive_levels`.
use essent_core::plan::{extended_dag, plan_levels, CcssPlan, PlanOptions};
use essent_netlist::Netlist;
use essent_sim::compile::{compile_plan, Layout};
use essent_sim::par::{CostModel, LevelSchedule};
use essent_sim::step1::{lower_tier1, OutSpec, Tier1Program};
use essent_sim::EngineConfig;

/// Everything a full verification run produces: the merged report, the
/// footprint layer's cross-cycle independence matrix, and the dataflow
/// schedule the dependence layer verified (`None` when verification
/// aborted before the respective layer ran).
pub struct VerifyArtifacts {
    pub report: Report,
    pub may_overlap: Option<MayOverlap>,
    pub dataflow: Option<DataflowSchedule>,
}

/// Runs the full verifier stack on a design: lints the netlist, builds a
/// CCSS plan at `config.c_p` and verifies it, then compiles the plan to
/// bytecode and verifies that — including, when `config.tier1` is on,
/// auditing every partition's word-specialized program against an
/// independent re-derivation from the netlist (`B0210`–`B0212`). One
/// merged report; clean iff no layer found an error.
pub fn verify_design(netlist: &Netlist, config: &EngineConfig) -> Report {
    verify_design_full(netlist, config).report
}

/// [`verify_design`] plus the footprint layer's artifacts.
pub fn verify_design_full(netlist: &Netlist, config: &EngineConfig) -> VerifyArtifacts {
    let mut report = lint_netlist(netlist);
    if report.contains(essent_core::diag::codes::COMB_LOOP) {
        // No schedule exists for a cyclic design; the later layers would
        // panic inside plan construction.
        return VerifyArtifacts {
            report,
            may_overlap: None,
            dataflow: None,
        };
    }
    let plan = CcssPlan::build(netlist, config.c_p);
    report.merge(check_plan(netlist, &plan));
    // Audit the exact attribution tables the engines would profile with
    // (built by the same constructor), whether or not profiling is on:
    // the wiring is pure plan metadata and a bug in it should surface in
    // every verify run, not only profiled ones.
    report.merge(check_profile(
        netlist,
        &plan,
        &essent_sim::ProfileWiring::for_plan(netlist, &plan),
    ));
    let layout = Layout::new(netlist);
    report.merge(check_layout(netlist, &layout));
    let blocks = compile_plan(netlist, &layout, &plan, config);
    report.merge(check_blocks(netlist, &layout, &blocks, Some(&plan)));
    if config.tier1 {
        // Lower exactly as the engines do and audit each program.
        let fuse = config.fuse_triggers && config.trigger_push;
        for (sched, (part, block)) in plan.partitions.iter().zip(&blocks).enumerate() {
            let outs: Vec<OutSpec> = part
                .outputs
                .iter()
                .map(|o| OutSpec {
                    sig: o.signal,
                    consumers: o.consumers.clone(),
                })
                .collect();
            let prog = lower_tier1(netlist, block, &outs, fuse);
            report.merge(check_tier1(
                netlist, &layout, block, &outs, &prog, fuse, sched,
            ));
            // --- J07: native-code audit layer -------------------------
            // Both emitters are pure byte generators, so both streams
            // are generated and audited regardless of the build host
            // (x86-64 audited as-if popcnt is available; a host without
            // it would simply not compile Xorr partitions at all).
            if let Some(code) = essent_sim::jit::x64::emit(&prog, true) {
                report.merge(check_jit(&prog, &code, sched));
            }
            if let Some(code) = essent_sim::jit::a64::emit(&prog) {
                report.merge(check_jit(&prog, &code, sched));
            }
        }
    }

    // --- F04: profile-feedback layer --------------------------------
    // Exercised with a synthetic all-hot prior — the adversarial corner
    // where every legal hot merge fires — so the layer runs on every
    // design, profile data or not. The repartitioned plan must re-prove
    // the full V01xx/P03xx stack unchanged.
    let (dag, writes) = extended_dag(netlist);
    let prior = ActivityPrior::uniform(dag.node_count(), 1.0);
    let params = ActivityMergeParams::for_cp(config.c_p);
    let (merged, log) = partition_with_prior(&dag, config.c_p, &prior, &params);
    report.merge(check_activity_merge(
        &dag, config.c_p, &prior, &params, &log, &merged,
    ));
    let fb_plan =
        CcssPlan::from_partitioning(netlist, &dag, &writes, &merged, PlanOptions::default());
    report.merge(check_plan(netlist, &fb_plan));
    report.merge(check_profile(
        netlist,
        &fb_plan,
        &essent_sim::ProfileWiring::for_plan(netlist, &fb_plan),
    ));
    // Audit the LPT schedule the parallel engine would run over this
    // plan (static costs; the audit is cost-agnostic beyond F0403).
    let fb_blocks = compile_plan(netlist, &layout, &fb_plan, config);
    let cost = CostModel::build(&fb_plan, &fb_blocks, None);
    let sched = LevelSchedule::build(&plan_levels(&fb_plan), &cost, 4);
    report.merge(check_level_schedule(&fb_plan, &sched, &cost, 4));

    // --- R05: footprint / race-freedom layer -------------------------
    // Analyzed over the exact plan shape the parallel engine runs:
    // memory-write elision off (all bank writes happen in the serial
    // phase), register elision per config. The dual derivation needs the
    // tier-1 programs lowered the way the engines lower them.
    let par_plan = CcssPlan::from_partitioning(
        netlist,
        &dag,
        &writes,
        &partition(&dag, config.c_p),
        PlanOptions {
            elide_state: config.elide_state,
            elide_mem: false,
        },
    );
    let par_blocks = compile_plan(netlist, &layout, &par_plan, config);
    let programs: Option<Vec<Tier1Program>> = config.tier1.then(|| {
        let fuse = config.fuse_triggers && config.trigger_push;
        par_plan
            .partitions
            .iter()
            .zip(&par_blocks)
            .map(|(part, block)| {
                let outs: Vec<OutSpec> = part
                    .outputs
                    .iter()
                    .map(|o| OutSpec {
                        sig: o.signal,
                        consumers: o.consumers.clone(),
                    })
                    .collect();
                lower_tier1(netlist, block, &outs, fuse)
            })
            .collect()
    });
    let (fp_report, may_overlap) = check_footprint(
        netlist,
        &layout,
        &par_plan,
        &par_blocks,
        programs.as_deref(),
    );
    report.merge(fp_report);

    // --- S06: dependence / dataflow-schedule layer --------------------
    // Synthesize the schedule exactly as the parallel engine would at 4
    // threads (the runtime's own dependence analysis + cost model), then
    // prove it against obligations re-derived from the word-level
    // footprints alone.
    let graph = DepGraph::derive(netlist, &par_plan);
    let par_cost = CostModel::build(&par_plan, &par_blocks, None);
    let dsched = synthesize_dataflow(&par_plan, &graph, &par_cost.costs, 4);
    report.merge(check_depgraph(
        netlist,
        &layout,
        &par_plan,
        &par_blocks,
        &dsched,
    ));

    // --- X08: batched-lane audit layer --------------------------------
    // Build a 4-lane batch engine exactly as the batch driver would and
    // re-prove its captured stride geometry, wake routing, and lane
    // permutation from an independently constructed plan.
    let batch_config = EngineConfig {
        lanes: 4,
        ..config.clone()
    };
    let bsim = essent_sim::batch::BatchSim::new(netlist, &batch_config);
    report.merge(check_batch(netlist, &batch_config, &bsim.batch_audit()));

    VerifyArtifacts {
        report,
        may_overlap: Some(may_overlap),
        dataflow: Some(dsched),
    }
}
