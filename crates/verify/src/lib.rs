//! # essent-verify
//!
//! An independent static verifier for the ESSENT reproduction. Every
//! invariant the simulation pipeline *relies on* is re-derived here
//! *from scratch* — this crate deliberately does not call the builders'
//! own `check`/`validate` paths, so a bug in plan construction and a bug
//! in its self-checks cannot cancel out.
//!
//! Four layers, each a standalone pass producing a structured
//! [`Report`] of coded [`Diagnostic`]s:
//!
//! | layer | entry point | codes |
//! |---|---|---|
//! | netlist lints | [`lint_netlist`] | `L____` |
//! | schedule verifier | [`check_plan`] | `V____` |
//! | bytecode verifier | [`check_layout`] / [`check_blocks`] | `B____` |
//! | profiler wiring | [`check_profile`] | `P____` |
//!
//! [`verify_design`] chains all three over a freshly built plan and
//! compilation, which is what the `verify` binary and the `--verify`
//! bench flag run.

pub mod bytecode;
pub mod lint;
pub mod profile;
pub mod schedule;

pub use bytecode::{check_blocks, check_layout, check_tier1};
pub use essent_core::diag::{DiagCode, Diagnostic, Report, Severity};
pub use lint::lint_netlist;
pub use profile::check_profile;
pub use schedule::check_plan;

use essent_core::plan::CcssPlan;
use essent_netlist::Netlist;
use essent_sim::compile::{compile_plan, Layout};
use essent_sim::step1::{lower_tier1, OutSpec};
use essent_sim::EngineConfig;

/// Runs the full verifier stack on a design: lints the netlist, builds a
/// CCSS plan at `config.c_p` and verifies it, then compiles the plan to
/// bytecode and verifies that — including, when `config.tier1` is on,
/// auditing every partition's word-specialized program against an
/// independent re-derivation from the netlist (`B0210`–`B0212`). One
/// merged report; clean iff no layer found an error.
pub fn verify_design(netlist: &Netlist, config: &EngineConfig) -> Report {
    let mut report = lint_netlist(netlist);
    if report.contains(essent_core::diag::codes::COMB_LOOP) {
        // No schedule exists for a cyclic design; the later layers would
        // panic inside plan construction.
        return report;
    }
    let plan = CcssPlan::build(netlist, config.c_p);
    report.merge(check_plan(netlist, &plan));
    // Audit the exact attribution tables the engines would profile with
    // (built by the same constructor), whether or not profiling is on:
    // the wiring is pure plan metadata and a bug in it should surface in
    // every verify run, not only profiled ones.
    report.merge(check_profile(
        netlist,
        &plan,
        &essent_sim::ProfileWiring::for_plan(netlist, &plan),
    ));
    let layout = Layout::new(netlist);
    report.merge(check_layout(netlist, &layout));
    let blocks = compile_plan(netlist, &layout, &plan, config);
    report.merge(check_blocks(netlist, &layout, &blocks, Some(&plan)));
    if config.tier1 {
        // Lower exactly as the engines do and audit each program.
        let fuse = config.fuse_triggers && config.trigger_push;
        for (sched, (part, block)) in plan.partitions.iter().zip(&blocks).enumerate() {
            let outs: Vec<OutSpec> = part
                .outputs
                .iter()
                .map(|o| OutSpec {
                    sig: o.signal,
                    consumers: o.consumers.clone(),
                })
                .collect();
            let prog = lower_tier1(netlist, block, &outs, fuse);
            report.merge(check_tier1(
                netlist, &layout, block, &outs, &prog, fuse, sched,
            ));
        }
    }
    report
}
