//! Netlist lints (the `L____` diagnostic family): findings derived only
//! from the design graph, before any partitioning or compilation
//! happens. `L0001`–`L0005` are structural; `L0006`–`L0009` come from
//! the known-bits/value-range dataflow analysis
//! (`essent_netlist::analysis`) and flag *semantic* waste — declared
//! precision the values flowing through the design can never use.
//!
//! All lints except the combinational-loop check are warnings or infos —
//! they flag suspicious-but-legal structure. A combinational loop is an
//! error: no static schedule exists for such a design.

use essent_core::diag::{codes, Diagnostic, Report};
use essent_netlist::{analysis, graph, Netlist, OpKind, SignalDef, SignalId};

/// Runs every netlist lint.
pub fn lint_netlist(netlist: &Netlist) -> Report {
    let mut report = Report::new();
    comb_loops(netlist, &mut report);
    unreset_registers(netlist, &mut report);
    width_truncations(netlist, &mut report);
    dead_signals(netlist, &mut report);
    mem_field_widths(netlist, &mut report);
    analysis_lints(netlist, &mut report);
    report
}

/// `L0001`: finds combinational cycles and names a *minimal* one per
/// strongly connected component (a shortest cycle through the
/// component's first signal), so the message points at the actual loop
/// rather than the whole tangle Tarjan returns.
fn comb_loops(netlist: &Netlist, report: &mut Report) {
    for component in graph::tarjan_scc(netlist) {
        let self_loop = component.len() == 1 && netlist.deps(component[0]).contains(&component[0]);
        if component.len() < 2 && !self_loop {
            continue;
        }
        let cycle = minimal_cycle(netlist, &component);
        let names: Vec<&str> = cycle
            .iter()
            .map(|&s| netlist.signal(s).name.as_str())
            .collect();
        report.push(
            Diagnostic::error(
                codes::COMB_LOOP,
                format!(
                    "combinational loop through {} signal(s): {} -> {}",
                    component.len(),
                    names.join(" -> "),
                    names.first().copied().unwrap_or("?")
                ),
            )
            .with_signal(names.first().copied().unwrap_or("?")),
        );
    }
}

/// Shortest dependency cycle through `component[0]`, restricted to the
/// component: BFS along fan-out edges back to the start.
fn minimal_cycle(netlist: &Netlist, component: &[SignalId]) -> Vec<SignalId> {
    let start = component[0];
    let in_comp: Vec<bool> = {
        let mut v = vec![false; netlist.signal_count()];
        for &s in component {
            v[s.index()] = true;
        }
        v
    };
    let fanouts = graph::fanout_lists(netlist);
    let mut parent = vec![SignalId(u32::MAX); netlist.signal_count()];
    let mut queue = vec![start];
    let mut head = 0;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        for &next in &fanouts[cur.index()] {
            if !in_comp[next.index()] {
                continue;
            }
            if next == start {
                // Unwind the path start -> ... -> cur.
                let mut path = vec![cur];
                while *path.last().unwrap() != start {
                    path.push(parent[path.last().unwrap().index()]);
                }
                path.reverse();
                return path;
            }
            if parent[next.index()].0 == u32::MAX {
                parent[next.index()] = cur;
                queue.push(next);
            }
        }
    }
    component.to_vec()
}

/// `L0002`: registers whose next-value cone is unreachable from every
/// reset-like input have an undefined power-on value. The builder folds
/// synchronous reset into `next = mux(reset, init, value)`, so a reset
/// register's `next` is always downstream of the reset input.
fn unreset_registers(netlist: &Netlist, report: &mut Report) {
    let resets: Vec<SignalId> = netlist
        .inputs()
        .iter()
        .copied()
        .filter(|&i| {
            let name = &netlist.signal(i).name;
            name == "reset" || name.ends_with("_reset") || name.ends_with(".reset")
        })
        .collect();
    if resets.is_empty() {
        if !netlist.regs().is_empty() {
            report.push(Diagnostic::info(
                codes::UNRESET_REGISTER,
                format!(
                    "design has {} register(s) but no reset input: all power-on state is undefined",
                    netlist.regs().len()
                ),
            ));
        }
        return;
    }
    let downstream = graph::reachable_from(netlist, &resets);
    for reg in netlist.regs() {
        if !downstream[reg.next.index()] {
            report.push(
                Diagnostic::warning(
                    codes::UNRESET_REGISTER,
                    format!(
                        "register `{}` has no reset path: its power-on value is undefined",
                        reg.name
                    ),
                )
                .with_signal(&reg.name),
            );
        }
    }
}

/// `L0003`: width-adapting copies that *narrow* their operand silently
/// drop high bits. Intentional truncation lowers to `Bits` (from
/// `tail`/`head`); a narrowing `Copy` usually means a connect between
/// mismatched port widths.
fn width_truncations(netlist: &Netlist, report: &mut Report) {
    for (i, s) in netlist.signals().iter().enumerate() {
        let SignalDef::Op(op) = &s.def else { continue };
        if op.kind != OpKind::Copy {
            continue;
        }
        let src = netlist.signal(op.args[0]);
        if src.width > s.width {
            report.push(
                Diagnostic::warning(
                    codes::WIDTH_TRUNCATION,
                    format!(
                        "connect truncates `{}` ({} bits) into `{}` ({} bits)",
                        src.name, src.width, s.name, s.width
                    ),
                )
                .with_signal(netlist.signal(SignalId(i as u32)).name.clone()),
            );
        }
    }
}

/// `L0004`: signals that reach no sink (register next-value, memory port
/// field, external output, or side-effect operand) can never influence
/// observable behavior. Constants are skipped — a dead constant is
/// lowering residue, not a design smell.
fn dead_signals(netlist: &Netlist, report: &mut Report) {
    let live = graph::reaching(netlist, &netlist.sink_signals());
    for (i, s) in netlist.signals().iter().enumerate() {
        if live[i] || matches!(s.def, SignalDef::Const(_)) {
            continue;
        }
        // The clock is implicit in this execution model (one call = one
        // cycle), so clock inputs never reach a sink by construction.
        if matches!(s.def, SignalDef::Input)
            && (s.name == "clock" || s.name.ends_with("_clock") || s.name.ends_with(".clock"))
        {
            continue;
        }
        report.push(
            Diagnostic::warning(
                codes::DEAD_SIGNAL,
                format!("signal `{}` reaches no sink (dead code)", s.name),
            )
            .with_signal(s.name.clone()),
        );
    }
}

/// `L0005`: memory port fields with widths inconsistent with the bank:
/// data narrower/wider than the word, enables/masks wider than one bit,
/// or addresses too narrow to reach the full depth.
fn mem_field_widths(netlist: &Netlist, report: &mut Report) {
    let addr_bits = |depth: usize| -> u32 {
        let mut bits = 0u32;
        while (1usize << bits) < depth {
            bits += 1;
        }
        bits.max(1)
    };
    for mem in netlist.mems() {
        let need = addr_bits(mem.depth);
        let mut field = |sig: SignalId, what: &str, want: u32, exact: bool| {
            let s = netlist.signal(sig);
            let bad = if exact {
                s.width != want
            } else {
                s.width < want
            };
            if bad {
                report.push(
                    Diagnostic::warning(
                        codes::MEM_FIELD_WIDTH,
                        format!(
                            "memory `{}` {what} `{}` is {} bit(s), expected {}{}",
                            mem.name,
                            s.name,
                            s.width,
                            if exact { "" } else { "at least " },
                            want
                        ),
                    )
                    .with_signal(s.name.clone()),
                );
            }
        };
        for r in &mem.readers {
            field(r.addr, "read address", need, false);
            field(r.en, "read enable", 1, true);
        }
        for w in &mem.writers {
            field(w.addr, "write address", need, false);
            field(w.en, "write enable", 1, true);
            field(w.mask, "write mask", 1, true);
            field(w.data, "write data", mem.width, true);
        }
    }
}

/// Individual `L0006` findings reported before collapsing to a summary
/// (large designs can have thousands of over-wide signals).
const MAX_DEAD_UPPER_REPORTS: usize = 8;

/// `L0006`–`L0009`: findings from the known-bits/value-range analysis.
///
/// * `L0006` (info): a signal's upper bits provably never carry
///   information. One-bit signals and literal constants are skipped —
///   the interesting cases are declared widths the *values* never fill.
///   On an optimizer-processed netlist these point at signals the
///   narrowing pass was not allowed to shrink (ports, `cat` operands,
///   memory fields).
/// * `L0007` (warning): a comparison decided at compile time by the
///   operands' known bits/ranges. Comparisons between two literals are
///   left to constant folding.
/// * `L0008` (warning): a register that provably never leaves its
///   power-on value — its whole cone of influence is constant.
/// * `L0009` (warning): a mux whose selector bit is pinned, making one
///   way unreachable.
fn analysis_lints(netlist: &Netlist, report: &mut Report) {
    let Ok(facts) = analysis::analyze(netlist) else {
        return; // cyclic graph: comb_loops already reported L0001
    };

    let mut dead_upper: Vec<(usize, u32)> = Vec::new();
    for (i, s) in netlist.signals().iter().enumerate() {
        if s.width <= 1 || matches!(s.def, SignalDef::Const(_)) {
            continue;
        }
        let sw = facts.values[i].significant_width();
        if sw < s.width {
            dead_upper.push((i, sw));
        }
    }
    for &(i, sw) in dead_upper.iter().take(MAX_DEAD_UPPER_REPORTS) {
        let s = &netlist.signals()[i];
        report.push(
            Diagnostic::info(
                codes::DEAD_UPPER_BITS,
                format!(
                    "the top {} of `{}`'s {} bit(s) provably carry no information (every value fits in {} bit(s))",
                    s.width - sw,
                    s.name,
                    s.width,
                    sw
                ),
            )
            .with_signal(s.name.clone()),
        );
    }
    if dead_upper.len() > MAX_DEAD_UPPER_REPORTS {
        report.push(Diagnostic::info(
            codes::DEAD_UPPER_BITS,
            format!(
                "... and {} more signal(s) with dead upper bits",
                dead_upper.len() - MAX_DEAD_UPPER_REPORTS
            ),
        ));
    }

    for (i, s) in netlist.signals().iter().enumerate() {
        let SignalDef::Op(op) = &s.def else { continue };
        match op.kind {
            OpKind::Lt | OpKind::Leq | OpKind::Gt | OpKind::Geq | OpKind::Eq | OpKind::Neq => {
                let all_const = op
                    .args
                    .iter()
                    .all(|&a| matches!(netlist.signal(a).def, SignalDef::Const(_)));
                if all_const {
                    continue;
                }
                if let Some(v) = facts.values[i].as_singleton() {
                    report.push(
                        Diagnostic::warning(
                            codes::CONST_COMPARISON,
                            format!(
                                "comparison `{}` is always {}",
                                s.name,
                                if v.bit(0) { "true" } else { "false" }
                            ),
                        )
                        .with_signal(s.name.clone()),
                    );
                }
            }
            OpKind::Mux => {
                let sel = &facts.values[op.args[0].index()];
                let decided = if sel.width == 0 {
                    Some(false)
                } else {
                    sel.bit(0)
                };
                if let Some(bit) = decided {
                    report.push(
                        Diagnostic::warning(
                            codes::UNREACHABLE_MUX_WAY,
                            format!(
                                "mux `{}`: the {} way is unreachable (selector `{}` is always {})",
                                s.name,
                                if bit { "low" } else { "high" },
                                netlist.signal(op.args[0]).name,
                                u32::from(bit)
                            ),
                        )
                        .with_signal(s.name.clone()),
                    );
                }
            }
            _ => {}
        }
    }

    for reg in netlist.regs() {
        if let Some(v) = facts.values[reg.out.index()].as_singleton() {
            let rendered = v
                .to_u64()
                .map(|x| format!("{x}"))
                .unwrap_or_else(|| "its power-on value".into());
            report.push(
                Diagnostic::warning(
                    codes::CONST_REGISTER,
                    format!(
                        "register `{}` provably never changes: it always holds {}",
                        reg.name, rendered
                    ),
                )
                .with_signal(reg.name.clone()),
            );
        }
    }
}
