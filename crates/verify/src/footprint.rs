//! Layer six: static read/write **footprint** analysis — the
//! data-race-freedom proof behind the parallel engine's shared-arena
//! `unsafe` blocks (`R0501`–`R0504`).
//!
//! For every partition the analysis derives the exact set of arena
//! words, memory banks, and trigger flags the partition may touch
//! during its parallel evaluation. The derivation is done **twice**,
//! from two independent artifacts:
//!
//! * the generic [`Block`] bytecode (arg/dst ranges, `CondMux` ways,
//!   memory-read banks), and
//! * the lowered [`Tier1Program`] instruction stream (operand offsets,
//!   jump diamonds, `Generic` fallbacks, fused-trigger sinks),
//!
//! and the two must agree word-for-word (`R0501`) — so a lowering bug
//! that shifts an offset cannot silently survive into the proof. On top
//! of the bytecode footprint the analysis adds the engine-level
//! accesses `ParEssentSim::eval_partition` performs around the bytecode
//! (unfused-output snapshot/compare reads, elided-register commits,
//! trigger-flag writes), then proves, over an *independently
//! re-derived* level grouping, that no two partitions co-scheduled in
//! the same dependency level ever write the same word (`R0502`) or
//! write a word another one reads (`R0503`), and that every write lands
//! inside the partition's declared arena range (`R0504`).
//!
//! As a by-product the analysis emits the [`MayOverlap`] cross-cycle
//! independence matrix: which next-cycle head partitions are
//! footprint-disjoint from which current-cycle tail partitions through
//! the register-elision boundary. The matrix is attached to the plan
//! for the future BSP runtime ([ROADMAP] item 2) to overlap adjacent
//! cycles.
//!
//! The `race-sanitizer` cargo feature of `essent-sim` is the dynamic
//! counterpart: per-arena-word last-writer/last-reader shadow tags
//! checked during actual parallel execution, the differential oracle
//! that these static footprints over-approximate every real access.

use essent_core::diag::{codes, Diagnostic, Report};
use essent_core::plan::{CcssPlan, MayOverlap};
use essent_netlist::{Netlist, SignalId};
use essent_sim::compile::{Block, Item, Layout, Step, StepKind};
use essent_sim::step1::{Inst1, Op1, Tier1Program, NO_FUSE};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Word sets
// ---------------------------------------------------------------------

/// A set of arena words stored as sorted, coalesced, half-open
/// `[start, end)` runs — footprints are dense per signal but sparse
/// across the arena, so runs beat bitmaps at boom scale.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WordSet {
    runs: Vec<(u32, u32)>,
    sealed: bool,
}

impl WordSet {
    /// Adds `[off, off+words)`; no-op for empty ranges.
    pub fn add(&mut self, off: u32, words: u32) {
        if words > 0 {
            self.runs.push((off, off + words));
            self.sealed = false;
        }
    }

    /// Sorts and coalesces the runs; all queries require a sealed set.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        self.runs.sort_unstable();
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(self.runs.len());
        for &(s, e) in &self.runs {
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        self.runs = out;
        self.sealed = true;
    }

    /// The coalesced runs (sealed sets only).
    pub fn runs(&self) -> &[(u32, u32)] {
        debug_assert!(self.sealed || self.runs.is_empty());
        &self.runs
    }

    /// Number of words in the set.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|&(s, e)| (e - s) as usize).sum()
    }

    /// True when no word is present.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// First word present in both sets, if any (both sealed).
    pub fn first_overlap(&self, other: &WordSet) -> Option<u32> {
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (self.runs[i], other.runs[j]);
            if a.1 <= b.0 {
                i += 1;
            } else if b.1 <= a.0 {
                j += 1;
            } else {
                return Some(a.0.max(b.0));
            }
        }
        None
    }

    /// First word of `self` not covered by `cover`, if any (both sealed).
    pub fn first_uncovered(&self, cover: &WordSet) -> Option<u32> {
        let mut j = 0;
        for &(mut s, e) in &self.runs {
            while s < e {
                while j < cover.runs.len() && cover.runs[j].1 <= s {
                    j += 1;
                }
                match cover.runs.get(j) {
                    Some(&(cs, ce)) if cs <= s => s = ce,
                    _ => return Some(s),
                }
            }
        }
        None
    }

    /// First word on which the two sets differ (symmetric difference),
    /// if any (both sealed).
    pub fn first_difference(&self, other: &WordSet) -> Option<u32> {
        match (self.first_uncovered(other), other.first_uncovered(self)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

// ---------------------------------------------------------------------
// Footprints
// ---------------------------------------------------------------------

/// One partition's statically derived memory footprint: everything its
/// parallel evaluation may touch (bytecode plus the engine's own
/// snapshot/commit/trigger accesses around it).
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Arena words the partition may read.
    pub reads: WordSet,
    /// Arena words the partition may write.
    pub writes: WordSet,
    /// Memory banks read (read ports evaluated by this partition).
    pub bank_reads: BTreeSet<u32>,
    /// Memory banks written (elided write ports; empty under the
    /// parallel engine, which never elides memory writes).
    pub bank_writes: BTreeSet<u32>,
    /// Scheduled partitions whose activity flag this partition may set.
    /// Flag stores are atomic, so they never participate in the
    /// word-conflict proof, but cross-cycle overlap must respect them.
    pub flag_wakes: BTreeSet<u32>,
}

impl Footprint {
    fn seal(&mut self) {
        self.reads.seal();
        self.writes.seal();
    }

    /// True when no access of `self` can collide with any access of
    /// `other`: writes never meet the other's reads or writes, on both
    /// the arena and the memory banks.
    pub fn disjoint_from(&self, other: &Footprint) -> bool {
        self.writes.first_overlap(&other.writes).is_none()
            && self.writes.first_overlap(&other.reads).is_none()
            && self.reads.first_overlap(&other.writes).is_none()
            && self.bank_writes.is_disjoint(&other.bank_reads)
            && self.bank_writes.is_disjoint(&other.bank_writes)
            && self.bank_reads.is_disjoint(&other.bank_writes)
    }
}

/// Bytecode-level accesses accumulated during one derivation.
#[derive(Debug, Clone, Default)]
struct Access {
    reads: WordSet,
    writes: WordSet,
    bank_reads: BTreeSet<u32>,
    /// Fused-trigger flag targets (tier-1 derivation only; the generic
    /// tier performs all trigger writes in the engine, not in bytecode).
    fused_flags: BTreeSet<u32>,
}

impl Access {
    fn seal(&mut self) {
        self.reads.seal();
        self.writes.seal();
    }
}

fn add_step(step: &Step, acc: &mut Access) {
    for a in &step.args {
        acc.reads.add(a.off, a.words as u32);
    }
    if let StepKind::MemRead { mem, .. } = step.kind {
        acc.bank_reads.insert(mem);
    }
    acc.writes.add(step.dst.off, step.dst.words as u32);
}

fn add_item(item: &Item, acc: &mut Access) {
    match item {
        Item::Step(step) => add_step(step, acc),
        Item::CondMux {
            sel,
            dst,
            high_items,
            high,
            low_items,
            low,
            ..
        } => {
            // Static may-access: both ways union, exactly like the
            // tier-1 jump diamond below.
            acc.reads.add(sel.off, sel.words as u32);
            for it in high_items {
                add_item(it, acc);
            }
            acc.reads.add(high.off, high.words as u32);
            for it in low_items {
                add_item(it, acc);
            }
            acc.reads.add(low.off, low.words as u32);
            acc.writes.add(dst.off, dst.words as u32);
        }
    }
}

/// Footprint of a partition's generic `Block` bytecode.
fn block_access(block: &Block) -> Access {
    let mut acc = Access::default();
    for item in &block.items {
        add_item(item, &mut acc);
    }
    acc.seal();
    acc
}

fn add_inst(inst: &Inst1, prog: &Tier1Program, acc: &mut Access) {
    use Op1::*;
    match inst.op {
        Jmp => {}
        JmpIf0 => acc.reads.add(inst.b, 1),
        Generic => {
            // The fallback interprets the original generic item; its
            // footprint is that item's footprint.
            add_item(&prog.generic[inst.a as usize], acc);
        }
        MemRead => {
            acc.reads.add(inst.a, 1);
            acc.reads.add(inst.b, 1);
            acc.bank_reads.insert(inst.c);
            acc.writes.add(inst.dst, 1);
        }
        Mux => {
            acc.reads.add(inst.a, 1);
            acc.reads.add(inst.b, 1);
            acc.reads.add(inst.c, 1);
            acc.writes.add(inst.dst, 1);
        }
        Neg | Not | Andr | Orr | Xorr | Bits | Ext | Shl | ShrU | ShrS => {
            acc.reads.add(inst.a, 1);
            acc.writes.add(inst.dst, 1);
        }
        Add | Sub | Mul | DivU | DivS | RemU | RemS | LtU | LtS | LeqU | LeqS | Eq | Neq | And
        | Or | Xor | Cat | Dshl | DshrU | DshrS => {
            acc.reads.add(inst.a, 1);
            acc.reads.add(inst.b, 1);
            acc.writes.add(inst.dst, 1);
        }
    }
    if inst.ws != NO_FUSE {
        // The fused tail also re-reads `dst` for the change compare;
        // that read is accounted for by the uniform engine-level output
        // read (every output slot is snapshot- or compare-read), so it
        // is deliberately not part of the bytecode footprint here.
        for &c in &prog.consumers[inst.ws as usize..inst.we as usize] {
            acc.fused_flags.insert(c);
        }
    }
}

/// Footprint of a partition's lowered `Tier1Program` — derived from the
/// instruction stream alone, never from the block it was lowered from.
fn tier_access(prog: &Tier1Program) -> Access {
    let mut acc = Access::default();
    for inst in &prog.code {
        add_inst(inst, prog, &mut acc);
    }
    acc.seal();
    acc
}

/// Engine-level accesses `ParEssentSim::eval_partition` performs around
/// the bytecode: output snapshot/compare reads, trigger-flag writes,
/// and in-place elided-register commits (`next` read, `out` write).
/// Elided memory writes (sequential plans only) read the port's
/// addr/en/mask/data slots and write the bank.
fn engine_access(
    netlist: &Netlist,
    layout: &Layout,
    plan: &CcssPlan,
    sched: usize,
    fp: &mut Footprint,
) {
    let slot = |sig: SignalId| (layout.offset(sig) as u32, layout.words(sig) as u32);
    let part = &plan.partitions[sched];
    for o in &part.outputs {
        let (off, words) = slot(o.signal);
        fp.reads.add(off, words);
        fp.flag_wakes.extend(o.consumers.iter().copied());
    }
    for &ri in &part.elided_regs {
        let reg = &netlist.regs()[ri];
        let (noff, nwords) = slot(reg.next);
        let (ooff, owords) = slot(reg.out);
        fp.reads.add(noff, nwords);
        fp.writes.add(ooff, owords);
        fp.flag_wakes
            .extend(plan.reg_plans[ri].wake_on_change.iter().copied());
    }
    for &wi in &part.elided_writes {
        let wp = &plan.mem_write_plans[wi];
        let port = &netlist.mems()[wp.mem.index()].writers[wp.writer];
        for sig in [port.addr, port.en, port.mask, port.data] {
            let (off, words) = slot(sig);
            fp.reads.add(off, words);
        }
        fp.bank_writes.insert(wp.mem.index() as u32);
        fp.flag_wakes.extend(wp.wake_on_change.iter().copied());
    }
}

/// The arena words partition `sched` legitimately owns for writing: the
/// slots of its member signals plus the out-slots of registers whose
/// next-value it computes (the only registers it may legally commit in
/// place). Derived from the layout and the netlist, not from the
/// bytecode under audit.
fn declared_writes(netlist: &Netlist, layout: &Layout, plan: &CcssPlan, sched: usize) -> WordSet {
    let mut declared = WordSet::default();
    for &sig in &plan.partitions[sched].members {
        declared.add(layout.offset(sig) as u32, layout.words(sig) as u32);
    }
    for &ri in &plan.partitions[sched].elided_regs {
        let reg = &netlist.regs()[ri];
        if plan.sched_of_signal[reg.next.index()] as usize == sched {
            declared.add(layout.offset(reg.out) as u32, layout.words(reg.out) as u32);
        }
    }
    declared.seal();
    declared
}

// ---------------------------------------------------------------------
// Level grouping (independent re-derivation)
// ---------------------------------------------------------------------

/// Groups partitions by dependency level with the same rules the
/// parallel engine schedules by — combinational triggers point forward
/// in schedule order, elided-register wakes order readers before the
/// writer — re-derived here rather than calling `plan_levels`, so a
/// leveling bug and a proof bug cannot cancel out.
fn derive_levels(plan: &CcssPlan) -> Vec<Vec<u32>> {
    let np = plan.partitions.len();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); np];
    for (s, part) in plan.partitions.iter().enumerate() {
        for o in &part.outputs {
            for &c in &o.consumers {
                if (c as usize) > s {
                    preds[c as usize].push(s as u32);
                }
            }
        }
        for &ri in &part.elided_regs {
            for &reader in &plan.reg_plans[ri].wake_on_change {
                if (reader as usize) != s {
                    preds[s].push(reader);
                }
            }
        }
    }
    let mut level_of = vec![0u32; np];
    for s in 0..np {
        level_of[s] = preds[s]
            .iter()
            .map(|&p| level_of[p as usize] + 1)
            .max()
            .unwrap_or(0);
    }
    let max_level = level_of.iter().copied().max().unwrap_or(0) as usize;
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
    for (s, &lvl) in level_of.iter().enumerate() {
        levels[lvl as usize].push(s as u32);
    }
    levels
}

// ---------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------

/// Names the signal whose slot covers `word`, for diagnostics.
fn word_owner(netlist: &Netlist, layout: &Layout, word: u32) -> String {
    for (i, s) in netlist.signals().iter().enumerate() {
        let sig = SignalId(i as u32);
        let off = layout.offset(sig) as u32;
        let words = layout.words(sig) as u32;
        if word >= off && word < off + words {
            return format!("`{}`", s.name);
        }
    }
    "no signal".to_string()
}

/// Derives every partition's footprint (from the generic blocks, plus
/// the tier-1 cross-check when programs are given) and proves the
/// parallel schedule data-race free:
///
/// * `R0501` — the tier-1 footprint disagrees with the block footprint,
///   or a fused trigger wakes a partition the plan never names;
/// * `R0502` — two same-level partitions write an overlapping arena
///   word or memory bank;
/// * `R0503` — a same-level partition reads a word or bank another one
///   writes;
/// * `R0504` — a write escapes the partition's declared arena range.
///
/// Returns the merged report plus the [`MayOverlap`] cross-cycle
/// independence matrix (meaningful when the report is clean).
pub fn check_footprint(
    netlist: &Netlist,
    layout: &Layout,
    plan: &CcssPlan,
    blocks: &[Block],
    programs: Option<&[Tier1Program]>,
) -> (Report, MayOverlap) {
    let np = plan.partitions.len();
    let (footprints, mut report) = derive_footprints(netlist, layout, plan, blocks, programs);
    if footprints.len() != np {
        let empty = MayOverlap {
            heads: Vec::new(),
            tails: Vec::new(),
            disjoint: Vec::new(),
        };
        return (report, empty);
    }
    let matrix = check_footprint_rest(netlist, layout, plan, &footprints, &mut report);
    (report, matrix)
}

/// Dual-derives every partition's [`Footprint`] — the shared front half
/// of [`check_footprint`], reused by the dependence-schedule layer
/// ([`crate::depgraph`]) so both layers reason about the identical
/// word-level access sets. Reports `R0501` tier disagreements; returns
/// an empty footprint vector when the derivation cardinalities are
/// inconsistent.
pub(crate) fn derive_footprints(
    netlist: &Netlist,
    layout: &Layout,
    plan: &CcssPlan,
    blocks: &[Block],
    programs: Option<&[Tier1Program]>,
) -> (Vec<Footprint>, Report) {
    let mut report = Report::new();
    let np = plan.partitions.len();
    if blocks.len() != np || programs.is_some_and(|p| p.len() != np) {
        report.push(Diagnostic::error(
            codes::FOOTPRINT_TIER_MISMATCH,
            format!(
                "derivation cardinality mismatch: {np} partition(s), {} block(s), {} program(s)",
                blocks.len(),
                programs.map_or(np, <[_]>::len)
            ),
        ));
        return (Vec::new(), report);
    }

    // --- Per-partition footprints, dual-derived -----------------------
    let mut footprints: Vec<Footprint> = Vec::with_capacity(np);
    for sched in 0..np {
        let block_acc = block_access(&blocks[sched]);
        if let Some(progs) = programs {
            let tier_acc = tier_access(&progs[sched]);
            for (what, a, b) in [
                ("read", &block_acc.reads, &tier_acc.reads),
                ("write", &block_acc.writes, &tier_acc.writes),
            ] {
                if let Some(word) = a.first_difference(b) {
                    report.push(
                        Diagnostic::error(
                            codes::FOOTPRINT_TIER_MISMATCH,
                            format!(
                                "partition p{sched}: {what} footprints disagree between the \
                                 generic block and the tier-1 program at arena word {word} \
                                 ({})",
                                word_owner(netlist, layout, word)
                            ),
                        )
                        .with_partition(sched),
                    );
                }
            }
            if block_acc.bank_reads != tier_acc.bank_reads {
                report.push(
                    Diagnostic::error(
                        codes::FOOTPRINT_TIER_MISMATCH,
                        format!(
                            "partition p{sched}: memory-bank read sets disagree between tiers \
                             (block {:?}, tier-1 {:?})",
                            block_acc.bank_reads, tier_acc.bank_reads
                        ),
                    )
                    .with_partition(sched),
                );
            }
            // Every fused trigger sink must be a consumer the plan
            // declares for this partition's outputs.
            let planned: BTreeSet<u32> = plan.partitions[sched]
                .outputs
                .iter()
                .flat_map(|o| o.consumers.iter().copied())
                .collect();
            for &c in tier_acc.fused_flags.difference(&planned) {
                report.push(
                    Diagnostic::error(
                        codes::FOOTPRINT_TIER_MISMATCH,
                        format!(
                            "partition p{sched}: fused trigger wakes partition p{c}, which no \
                             planned output consumer list contains"
                        ),
                    )
                    .with_partition(sched),
                );
            }
        }
        let mut fp = Footprint {
            reads: block_acc.reads,
            writes: block_acc.writes,
            bank_reads: block_acc.bank_reads,
            bank_writes: BTreeSet::new(),
            flag_wakes: BTreeSet::new(),
        };
        engine_access(netlist, layout, plan, sched, &mut fp);
        fp.seal();
        footprints.push(fp);
    }
    (footprints, report)
}

/// The back half of [`check_footprint`]: the `R0502`–`R0504` proofs and
/// the cross-cycle matrix, over already-derived footprints.
fn check_footprint_rest(
    netlist: &Netlist,
    layout: &Layout,
    plan: &CcssPlan,
    footprints: &[Footprint],
    report: &mut Report,
) -> MayOverlap {
    // --- R0504: writes stay inside the declared range -----------------
    let total = layout.total_words() as u32;
    for (sched, fp) in footprints.iter().enumerate() {
        let declared = declared_writes(netlist, layout, plan, sched);
        if let Some(word) = fp.writes.first_uncovered(&declared) {
            let place = if word >= total {
                "outside the arena".to_string()
            } else {
                format!("owned by {}", word_owner(netlist, layout, word))
            };
            report.push(
                Diagnostic::error(
                    codes::FOOTPRINT_ESCAPE,
                    format!(
                        "partition p{sched} writes arena word {word}, {place}, outside its \
                         declared range of {} word(s)",
                        declared.len()
                    ),
                )
                .with_partition(sched),
            );
        }
    }

    // --- R0502/R0503: intra-level conflict sweep ----------------------
    let levels = derive_levels(plan);
    for (lvl, parts) in levels.iter().enumerate() {
        if parts.len() > 1 {
            sweep_level(netlist, layout, footprints, lvl, parts, report);
        }
    }

    // --- Cross-cycle independence matrix ------------------------------
    let heads = levels.first().cloned().unwrap_or_default();
    let tails = levels.last().cloned().unwrap_or_default();
    let disjoint = heads
        .iter()
        .map(|&h| {
            tails
                .iter()
                .map(|&t| {
                    h != t
                        && footprints[h as usize].disjoint_from(&footprints[t as usize])
                        && !footprints[t as usize].flag_wakes.contains(&h)
                })
                .collect()
        })
        .collect();
    MayOverlap {
        heads,
        tails,
        disjoint,
    }
}

/// Sweeps one level's arena runs and bank sets for cross-partition
/// conflicts. Runs are sorted by start word; an interval overlapping an
/// earlier-starting active interval of another partition is a conflict
/// when either side is a write.
fn sweep_level(
    netlist: &Netlist,
    layout: &Layout,
    footprints: &[Footprint],
    lvl: usize,
    parts: &[u32],
    report: &mut Report,
) {
    // (start, end, partition, is_write)
    let mut events: Vec<(u32, u32, u32, bool)> = Vec::new();
    for &p in parts {
        let fp = &footprints[p as usize];
        for &(s, e) in fp.writes.runs() {
            events.push((s, e, p, true));
        }
        for &(s, e) in fp.reads.runs() {
            events.push((s, e, p, false));
        }
    }
    events.sort_unstable();
    let mut active: Vec<(u32, u32, u32, bool)> = Vec::new();
    let mut reported: BTreeSet<(u32, u32, bool)> = BTreeSet::new();
    for ev in events {
        active.retain(|a| a.1 > ev.0);
        for a in &active {
            if a.2 == ev.2 || (!a.3 && !ev.3) {
                continue; // same partition, or read/read
            }
            let word = ev.0.max(a.0);
            let (lo, hi) = (a.2.min(ev.2), a.2.max(ev.2));
            let ww = a.3 && ev.3;
            if !reported.insert((lo, hi, ww)) {
                continue;
            }
            if ww {
                report.push(
                    Diagnostic::error(
                        codes::FOOTPRINT_WRITE_WRITE,
                        format!(
                            "level {lvl}: partitions p{lo} and p{hi} both write arena word \
                             {word} ({})",
                            word_owner(netlist, layout, word)
                        ),
                    )
                    .with_partition(lo as usize),
                );
            } else {
                let (writer, reader) = if a.3 { (a.2, ev.2) } else { (ev.2, a.2) };
                report.push(
                    Diagnostic::error(
                        codes::FOOTPRINT_WRITE_READ,
                        format!(
                            "level {lvl}: partition p{writer} writes arena word {word} ({}) \
                             that partition p{reader} reads",
                            word_owner(netlist, layout, word)
                        ),
                    )
                    .with_partition(writer as usize),
                );
            }
        }
        active.push(ev);
    }

    // Memory banks: any bank written by one partition must be untouched
    // by every other partition in the level.
    for (i, &p) in parts.iter().enumerate() {
        let wfp = &footprints[p as usize];
        if wfp.bank_writes.is_empty() {
            continue;
        }
        for &q in parts.iter().skip(i + 1).chain(parts.iter().take(i)) {
            let qfp = &footprints[q as usize];
            for &bank in &wfp.bank_writes {
                if qfp.bank_writes.contains(&bank) && p < q {
                    report.push(
                        Diagnostic::error(
                            codes::FOOTPRINT_WRITE_WRITE,
                            format!(
                                "level {lvl}: partitions p{p} and p{q} both write memory bank \
                                 {bank}"
                            ),
                        )
                        .with_partition(p as usize),
                    );
                }
                if qfp.bank_reads.contains(&bank) {
                    report.push(
                        Diagnostic::error(
                            codes::FOOTPRINT_WRITE_READ,
                            format!(
                                "level {lvl}: partition p{p} writes memory bank {bank} that \
                                 partition p{q} reads"
                            ),
                        )
                        .with_partition(p as usize),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(ranges: &[(u32, u32)]) -> WordSet {
        let mut w = WordSet::default();
        for &(off, words) in ranges {
            w.add(off, words);
        }
        w.seal();
        w
    }

    #[test]
    fn wordset_coalesces_and_queries() {
        let a = sealed(&[(4, 2), (6, 3), (20, 1)]);
        assert_eq!(a.runs(), &[(4, 9), (20, 21)]);
        assert_eq!(a.len(), 6);
        let b = sealed(&[(0, 4), (8, 3)]);
        assert_eq!(a.first_overlap(&b), Some(8));
        let c = sealed(&[(0, 4), (10, 10)]);
        assert_eq!(a.first_overlap(&c), None);
        assert_eq!(a.first_uncovered(&sealed(&[(0, 30)])), None);
        assert_eq!(a.first_uncovered(&sealed(&[(4, 5), (20, 1)])), None);
        assert_eq!(a.first_uncovered(&sealed(&[(4, 4), (20, 1)])), Some(8));
        assert_eq!(a.first_difference(&a.clone()), None);
        assert_eq!(sealed(&[]).first_overlap(&a), None);
    }

    #[test]
    fn disjoint_footprints_respect_writes() {
        let mut a = Footprint::default();
        a.reads.add(0, 4);
        a.writes.add(10, 2);
        a.seal();
        let mut b = Footprint::default();
        b.reads.add(0, 4); // shared reads are fine
        b.writes.add(20, 2);
        b.seal();
        assert!(a.disjoint_from(&b));
        let mut c = Footprint::default();
        c.writes.add(3, 1); // writes a word `a` reads
        c.seal();
        assert!(!a.disjoint_from(&c));
        assert!(!c.disjoint_from(&a));
    }
}
