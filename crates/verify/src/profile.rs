//! The profiler-wiring verifier (the `P____` diagnostic family):
//! re-derives, from the netlist and plan alone, the attribution tables a
//! [`ProfileWiring`] must carry for its counters to mean what
//! `essent-profile` claims they mean.
//!
//! The profiler's counters are only as trustworthy as the wiring that
//! routes each wake cause to a slot. A wiring bug does not crash — it
//! silently charges partition 7's wakes to partition 6, or folds two
//! registers' cause counts into one number. This pass makes that class
//! of bug a verification error:
//!
//! * **cardinality** (`P0301`) — one unit per partition, one state slot
//!   per register plan plus one per memory-write plan, one input slot
//!   per waking input;
//! * **attribution** (`P0302`) — the producer map is the identity over
//!   scheduled partitions, register plan `i` charges slot `i`, and
//!   memory-write plan `j` charges slot `reg_plans.len() + j` (the
//!   layout the engines' commit loops index by construction);
//! * **aliasing** (`P0303`) — no two distinct causes share a slot
//!   within a table, and no input signal appears twice;
//! * **range** (`P0304`) — every slot indexes inside its counter table.

use essent_core::diag::{codes, Diagnostic, Report};
use essent_core::plan::CcssPlan;
use essent_netlist::Netlist;
use essent_sim::ProfileWiring;
use std::collections::BTreeMap;

/// Verifies a profiler wiring against the plan it claims to describe.
/// Every violated invariant is reported; nothing stops at the first
/// finding except a cardinality error that would make later indexing
/// meaningless.
pub fn check_profile(netlist: &Netlist, plan: &CcssPlan, wiring: &ProfileWiring) -> Report {
    let mut report = Report::new();
    let n_parts = plan.partitions.len();
    let n_regs = plan.reg_plans.len();
    let n_mems = plan.mem_write_plans.len();
    let n_state = n_regs + n_mems;

    // --- Cardinality (P0301) ----------------------------------------------
    if wiring.unit_names.len() != n_parts || wiring.producer_slot.len() != n_parts {
        report.push(Diagnostic::error(
            codes::PROFILE_UNIT_COUNT,
            format!(
                "wiring has {} unit names / {} producer slots for {} partitions",
                wiring.unit_names.len(),
                wiring.producer_slot.len(),
                n_parts
            ),
        ));
        return report;
    }
    if wiring.reg_slot.len() != n_regs
        || wiring.mem_slot.len() != n_mems
        || wiring.state_names.len() != n_state
    {
        report.push(Diagnostic::error(
            codes::PROFILE_UNIT_COUNT,
            format!(
                "wiring has {} reg + {} mem slots and {} state names; \
                 plan has {} reg plans + {} mem-write plans",
                wiring.reg_slot.len(),
                wiring.mem_slot.len(),
                wiring.state_names.len(),
                n_regs,
                n_mems
            ),
        ));
        return report;
    }
    if wiring.input_slot.len() != plan.input_wakes.len()
        || wiring.input_names.len() != plan.input_wakes.len()
    {
        report.push(Diagnostic::error(
            codes::PROFILE_UNIT_COUNT,
            format!(
                "wiring has {} input slots / {} input names for {} waking inputs",
                wiring.input_slot.len(),
                wiring.input_names.len(),
                plan.input_wakes.len()
            ),
        ));
        return report;
    }

    // --- Producer attribution: must be the identity (P0302) ---------------
    // The engines index `caused` by the evaluating partition's schedule
    // slot directly; any permutation here charges wakes to the wrong
    // producer.
    for (sched, &slot) in wiring.producer_slot.iter().enumerate() {
        if slot as usize >= n_parts {
            report.push(
                Diagnostic::error(
                    codes::PROFILE_SLOT_RANGE,
                    format!("producer slot {slot} out of range for {n_parts} units"),
                )
                .with_partition(sched),
            );
        } else if slot as usize != sched {
            report.push(
                Diagnostic::error(
                    codes::PROFILE_MISATTRIBUTION,
                    format!("partition {sched} charges producer slot {slot} (expected {sched})"),
                )
                .with_partition(sched),
            );
        }
    }

    // --- State attribution (P0302/P0304) ----------------------------------
    // Commit loops enumerate reg plans then mem-write plans; the wiring
    // must lay state-cause slots out in exactly that order.
    for (i, &slot) in wiring.reg_slot.iter().enumerate() {
        let reg = &netlist.regs()[plan.reg_plans[i].reg.index()];
        if slot as usize >= n_state {
            report.push(
                Diagnostic::error(
                    codes::PROFILE_SLOT_RANGE,
                    format!("register plan {i} charges slot {slot}, table has {n_state}"),
                )
                .with_signal(reg.name.clone()),
            );
        } else if slot as usize != i {
            report.push(
                Diagnostic::error(
                    codes::PROFILE_MISATTRIBUTION,
                    format!("register plan {i} charges state slot {slot} (expected {i})"),
                )
                .with_signal(reg.name.clone()),
            );
        }
    }
    for (j, &slot) in wiring.mem_slot.iter().enumerate() {
        let mem = &netlist.mems()[plan.mem_write_plans[j].mem.index()];
        let expect = n_regs + j;
        if slot as usize >= n_state {
            report.push(
                Diagnostic::error(
                    codes::PROFILE_SLOT_RANGE,
                    format!("mem-write plan {j} charges slot {slot}, table has {n_state}"),
                )
                .with_signal(mem.name.clone()),
            );
        } else if slot as usize != expect {
            report.push(
                Diagnostic::error(
                    codes::PROFILE_MISATTRIBUTION,
                    format!("mem-write plan {j} charges state slot {slot} (expected {expect})"),
                )
                .with_signal(mem.name.clone()),
            );
        }
    }

    // --- State aliasing (P0303) -------------------------------------------
    // Redundant with the identity check above when that passes, but a
    // deliberately independent derivation: count occupancy per slot so a
    // swapped pair (which the identity check flags twice as P0302) is
    // also seen as what it is when two causes land on one slot.
    let mut state_owner: BTreeMap<u32, &str> = BTreeMap::new();
    let all_state = wiring
        .reg_slot
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, format!("reg plan {i}")))
        .chain(
            wiring
                .mem_slot
                .iter()
                .enumerate()
                .map(|(j, &s)| (s, format!("mem-write plan {j}"))),
        )
        .collect::<Vec<_>>();
    for (slot, who) in &all_state {
        if (*slot as usize) < n_state {
            if let Some(prev) = state_owner.insert(*slot, who) {
                report.push(Diagnostic::error(
                    codes::PROFILE_SLOT_ALIAS,
                    format!("{prev} and {who} share state slot {slot}"),
                ));
            }
        }
    }

    // --- Input attribution (P0301/P0303/P0304) ----------------------------
    let n_inputs = plan.input_wakes.len();
    let mut input_owner: BTreeMap<u32, usize> = BTreeMap::new();
    for (k, &(sig, slot)) in wiring.input_slot.iter().enumerate() {
        let name = &netlist.signal(sig).name;
        if !plan.input_wakes.iter().any(|(s, _)| *s == sig) {
            report.push(
                Diagnostic::error(
                    codes::PROFILE_MISATTRIBUTION,
                    format!("input `{name}` has a slot but no wake list in the plan"),
                )
                .with_signal(name.clone()),
            );
        }
        if slot as usize >= n_inputs {
            report.push(
                Diagnostic::error(
                    codes::PROFILE_SLOT_RANGE,
                    format!("input `{name}` charges slot {slot}, table has {n_inputs}"),
                )
                .with_signal(name.clone()),
            );
        } else if let Some(prev) = input_owner.insert(slot, k) {
            let prev_name = &netlist.signal(wiring.input_slot[prev].0).name;
            report.push(
                Diagnostic::error(
                    codes::PROFILE_SLOT_ALIAS,
                    format!("inputs `{prev_name}` and `{name}` share input slot {slot}"),
                )
                .with_signal(name.clone()),
            );
        }
    }
    for (sig, _) in &plan.input_wakes {
        if !wiring.input_slot.iter().any(|(s, _)| s == sig) {
            let name = &netlist.signal(*sig).name;
            report.push(
                Diagnostic::error(
                    codes::PROFILE_UNIT_COUNT,
                    format!("waking input `{name}` has no counter slot"),
                )
                .with_signal(name.clone()),
            );
        }
    }

    report
}
