//! The compiled-bytecode verifier (the `B____` diagnostic family):
//! checks the flat [`Block`]/[`Item`]/[`Step`] streams the engines
//! execute against the netlist and the arena [`Layout`] they were
//! compiled from.
//!
//! Checked properties:
//!
//! * **layout soundness** — every signal's arena slot is correctly
//!   sized and no two slots overlap;
//! * **reference validity** — every [`ArgRef`]/[`DstRef`] points at the
//!   slot of exactly the signal the defining operation names, in bounds,
//!   with matching width and signedness;
//! * **arity** — a step carries exactly the operands its op requires;
//! * **coverage** — every computed signal is compiled exactly once;
//! * **def-before-use** — along the schedule order (including into
//!   conditional mux ways), no step reads a computed value before the
//!   step defining it;
//! * **memory indices** — `MemRead` steps name existing banks/ports;
//! * **tier-1 audit** (`B0210`–`B0212`) — the word-specialized program a
//!   block lowers to decodes exactly as an independent re-derivation from
//!   the netlist and layout demands: opcode selection, operand offsets,
//!   sign-extension shifts, masks, and static parameters (`B0210`); every
//!   fused trigger write carries precisely the plan's consumer set and
//!   every unfused output stays on the engine's snapshot-compare path
//!   (`B0211`); all jumps are strictly forward and join the conditional
//!   diamond where the item structure says they must, so termination is
//!   proven structurally (`B0212`).

use essent_core::diag::{codes, Diagnostic, Report};
use essent_core::plan::CcssPlan;
use essent_netlist::{Netlist, OpKind, SignalDef, SignalId};
use essent_sim::compile::{ArgRef, Block, DstRef, Item, Layout, Step, StepKind};
use essent_sim::step1::{Inst1, Op1, OutSpec, Tier1Program, NO_FUSE};
use std::collections::HashMap;

/// Checks that the arena layout covers every signal with a correctly
/// sized, non-overlapping word range.
pub fn check_layout(netlist: &Netlist, layout: &Layout) -> Report {
    let mut report = Report::new();
    let total = layout.total_words();
    // Occupancy map: detects overlap in one pass instead of O(n^2).
    let mut owner: Vec<Option<u32>> = vec![None; total];
    for (i, s) in netlist.signals().iter().enumerate() {
        let sig = SignalId(i as u32);
        let off = layout.offset(sig);
        let words = layout.words(sig);
        if words != essent_bits::words(s.width) {
            report.push(
                Diagnostic::error(
                    codes::WIDTH_MISMATCH,
                    format!(
                        "slot of `{}` is {} word(s), {}-bit value needs {}",
                        s.name,
                        words,
                        s.width,
                        essent_bits::words(s.width)
                    ),
                )
                .with_signal(s.name.clone()),
            );
        }
        if off + words > total {
            report.push(
                Diagnostic::error(
                    codes::LAYOUT_OVERLAP,
                    format!(
                        "slot of `{}` ([{}..{})) exceeds the {}-word arena",
                        s.name,
                        off,
                        off + words,
                        total
                    ),
                )
                .with_signal(s.name.clone()),
            );
            continue;
        }
        for (w, slot) in owner[off..off + words].iter_mut().enumerate() {
            if let Some(other) = *slot {
                report.push(
                    Diagnostic::error(
                        codes::LAYOUT_OVERLAP,
                        format!(
                            "slot of `{}` overlaps slot of `{}` at word {}",
                            s.name,
                            netlist.signal(SignalId(other)).name,
                            off + w
                        ),
                    )
                    .with_signal(s.name.clone()),
                );
                break;
            }
            *slot = Some(i as u32);
        }
    }
    report
}

/// Verifies compiled blocks against the netlist and layout.
///
/// `plan` provides the expected block-to-partition correspondence; pass
/// `None` for a full-cycle compilation (one block covering the whole
/// design).
pub fn check_blocks(
    netlist: &Netlist,
    layout: &Layout,
    blocks: &[Block],
    plan: Option<&CcssPlan>,
) -> Report {
    let mut report = Report::new();
    if let Some(plan) = plan {
        if blocks.len() != plan.partitions.len() {
            report.push(Diagnostic::error(
                codes::STEP_MISSING,
                format!(
                    "{} compiled block(s) for {} scheduled partition(s)",
                    blocks.len(),
                    plan.partitions.len()
                ),
            ));
        }
    }

    const UNDEFINED: u32 = u32::MAX;
    let mut chk = Checker {
        netlist,
        layout,
        report: Report::new(),
        compiled: vec![0u32; netlist.signal_count()],
        // Inputs, constants, and register outputs hold values at cycle
        // start: defined in the global scope (token 0).
        def_token: netlist
            .signals()
            .iter()
            .map(|s| {
                if matches!(
                    s.def,
                    SignalDef::Input | SignalDef::Const(_) | SignalDef::RegOut(_)
                ) {
                    0
                } else {
                    UNDEFINED
                }
            })
            .collect(),
        active: vec![true],
        stack: vec![0],
    };
    for (bi, block) in blocks.iter().enumerate() {
        for item in &block.items {
            chk.check_item(item, bi, plan);
        }
    }

    // Coverage: every computed signal compiled exactly once.
    for (i, s) in netlist.signals().iter().enumerate() {
        let expected = u32::from(matches!(
            s.def,
            SignalDef::Op(_) | SignalDef::MemRead { .. }
        ));
        let actual = chk.compiled[i];
        if actual < expected {
            chk.report.push(
                Diagnostic::error(
                    codes::STEP_MISSING,
                    format!("computed signal `{}` was never compiled", s.name),
                )
                .with_signal(s.name.clone()),
            );
        } else if actual > expected {
            chk.report.push(
                Diagnostic::error(
                    codes::STEP_DUPLICATE,
                    format!(
                        "signal `{}` compiled {} time(s), expected {}",
                        s.name, actual, expected
                    ),
                )
                .with_signal(s.name.clone()),
            );
        }
    }

    report.merge(chk.report);
    report
}

/// Walks items carrying the def-before-use scope as a token tree: every
/// mux way gets a fresh token, a definition is stamped with the token of
/// the scope it happens in, and an operand is visible iff its defining
/// token lies on the currently active way path (token 0 = global scope,
/// always active). This makes scope entry/exit and definedness O(1)
/// without cloning per-way visibility sets.
struct Checker<'a> {
    netlist: &'a Netlist,
    layout: &'a Layout,
    report: Report,
    compiled: Vec<u32>,
    def_token: Vec<u32>,
    active: Vec<bool>,
    stack: Vec<u32>,
}

impl Checker<'_> {
    fn enter_way(&mut self) -> u32 {
        let token = self.active.len() as u32;
        self.active.push(true);
        self.stack.push(token);
        token
    }

    fn exit_way(&mut self, token: u32) {
        self.active[token as usize] = false;
        self.stack.pop();
    }

    fn define(&mut self, sig: SignalId) {
        self.def_token[sig.index()] = *self.stack.last().expect("scope stack");
    }

    fn check_item(&mut self, item: &Item, block: usize, plan: Option<&CcssPlan>) {
        match item {
            Item::Step(step) => self.check_step(step, block, plan),
            Item::CondMux {
                sel,
                dst,
                high_items,
                high,
                low_items,
                low,
                sig,
            } => {
                let sig = *sig;
                self.check_placement(sig, block, plan);
                self.compiled[sig.index()] += 1;
                let name = self.netlist.signal(sig).name.clone();
                let (sel_sig, high_sig, low_sig) = match &self.netlist.signal(sig).def {
                    SignalDef::Op(op) if op.kind == OpKind::Mux && op.args.len() == 3 => {
                        (op.args[0], op.args[1], op.args[2])
                    }
                    _ => {
                        self.report.push(
                            Diagnostic::error(
                                codes::ARG_ARITY,
                                format!("conditional mux compiled for non-mux signal `{name}`"),
                            )
                            .with_signal(name),
                        );
                        return;
                    }
                };
                self.check_arg(sig, 0, sel_sig, sel);
                self.check_arg(sig, 1, high_sig, high);
                self.check_arg(sig, 2, low_sig, low);
                self.check_dst(sig, dst);
                self.check_use(sig, sel_sig);
                let t = self.enter_way();
                for it in high_items {
                    self.check_item(it, block, plan);
                }
                self.check_use(sig, high_sig);
                self.exit_way(t);
                let t = self.enter_way();
                for it in low_items {
                    self.check_item(it, block, plan);
                }
                self.check_use(sig, low_sig);
                self.exit_way(t);
                self.define(sig);
            }
        }
    }

    fn check_step(&mut self, step: &Step, block: usize, plan: Option<&CcssPlan>) {
        let sig = step.sig;
        self.check_placement(sig, block, plan);
        self.compiled[sig.index()] += 1;
        let name = self.netlist.signal(sig).name.clone();
        let expected_args: Vec<SignalId> = match (&step.kind, &self.netlist.signal(sig).def) {
            (StepKind::Op(kind), SignalDef::Op(op)) => {
                if *kind != op.kind {
                    self.report.push(
                        Diagnostic::error(
                            codes::ARG_ARITY,
                            format!(
                                "step for `{name}` computes {kind:?}, netlist defines {:?}",
                                op.kind
                            ),
                        )
                        .with_signal(name.clone()),
                    );
                }
                if step.params != op.params {
                    self.report.push(
                        Diagnostic::error(
                            codes::ARG_ARITY,
                            format!("step for `{name}` has wrong static parameters"),
                        )
                        .with_signal(name.clone()),
                    );
                }
                op.args.clone()
            }
            (StepKind::MemRead { mem, port }, SignalDef::MemRead { mem: dm, port: dp }) => {
                if *mem != dm.0 || *port as usize != *dp {
                    self.report.push(
                        Diagnostic::error(
                            codes::MEM_INDEX,
                            format!(
                                "step for `{name}` reads memory {mem} port {port}, netlist says {} port {dp}",
                                dm.0
                            ),
                        )
                        .with_signal(name.clone()),
                    );
                }
                let Some(bank) = self.netlist.mems().get(*mem as usize) else {
                    self.report.push(
                        Diagnostic::error(
                            codes::MEM_INDEX,
                            format!("step for `{name}` reads nonexistent memory {mem}"),
                        )
                        .with_signal(name),
                    );
                    return;
                };
                let Some(p) = bank.readers.get(*port as usize) else {
                    self.report.push(
                        Diagnostic::error(
                            codes::MEM_INDEX,
                            format!(
                                "step for `{name}` reads nonexistent port {port} of memory `{}`",
                                bank.name
                            ),
                        )
                        .with_signal(name),
                    );
                    return;
                };
                vec![p.addr, p.en]
            }
            _ => {
                self.report.push(
                    Diagnostic::error(
                        codes::STEP_DUPLICATE,
                        format!("step compiled for non-computed signal `{name}`"),
                    )
                    .with_signal(name),
                );
                return;
            }
        };
        if step.args.len() != expected_args.len() {
            self.report.push(
                Diagnostic::error(
                    codes::ARG_ARITY,
                    format!(
                        "step for `{name}` has {} operand(s), its op takes {}",
                        step.args.len(),
                        expected_args.len()
                    ),
                )
                .with_signal(name.clone()),
            );
        }
        for (k, (&expected, actual)) in expected_args.iter().zip(&step.args).enumerate() {
            self.check_arg(sig, k, expected, actual);
            self.check_use(sig, expected);
        }
        self.check_dst(sig, &step.dst);
        self.define(sig);
    }

    /// Block placement: under a plan, a step must live in the block of
    /// the partition its signal is scheduled into.
    fn check_placement(&mut self, sig: SignalId, block: usize, plan: Option<&CcssPlan>) {
        let Some(plan) = plan else { return };
        let sched = plan
            .sched_of_signal
            .get(sig.index())
            .copied()
            .unwrap_or(u32::MAX);
        if sched as usize != block {
            let name = &self.netlist.signal(sig).name;
            self.report.push(
                Diagnostic::error(
                    codes::MEMBER_MISPLACED,
                    format!("`{name}` compiled into block {block}, scheduled in partition {sched}"),
                )
                .with_signal(name.clone())
                .with_partition(block),
            );
        }
    }

    /// An operand reference must denote exactly `expected`'s slot.
    fn check_arg(&mut self, user: SignalId, k: usize, expected: SignalId, actual: &ArgRef) {
        let name = &self.netlist.signal(user).name;
        let total = self.layout.total_words();
        if actual.off as usize + actual.words as usize > total {
            self.report.push(
                Diagnostic::error(
                    codes::ARG_OUT_OF_BOUNDS,
                    format!(
                        "operand {k} of `{name}` reads words [{}..{}) of a {total}-word arena",
                        actual.off,
                        actual.off as usize + actual.words as usize
                    ),
                )
                .with_signal(name.clone()),
            );
            return;
        }
        if actual.off as usize != self.layout.offset(expected)
            || actual.words as usize != self.layout.words(expected)
        {
            self.report.push(
                Diagnostic::error(
                    codes::ARG_OUT_OF_BOUNDS,
                    format!(
                        "operand {k} of `{name}` reads offset {}, expected `{}` at {}",
                        actual.off,
                        self.netlist.signal(expected).name,
                        self.layout.offset(expected)
                    ),
                )
                .with_signal(name.clone()),
            );
            return;
        }
        let e = self.netlist.signal(expected);
        if actual.width != e.width || actual.signed != e.signed {
            self.report.push(
                Diagnostic::error(
                    codes::WIDTH_MISMATCH,
                    format!(
                        "operand {k} of `{name}` claims {}-bit {}signed, `{}` is {}-bit {}signed",
                        actual.width,
                        if actual.signed { "" } else { "un" },
                        e.name,
                        e.width,
                        if e.signed { "" } else { "un" },
                    ),
                )
                .with_signal(name.clone()),
            );
        }
    }

    /// The destination reference must denote the defined signal's slot.
    fn check_dst(&mut self, sig: SignalId, dst: &DstRef) {
        let s = self.netlist.signal(sig);
        let total = self.layout.total_words();
        if dst.off as usize + dst.words as usize > total
            || dst.off as usize != self.layout.offset(sig)
            || dst.words as usize != self.layout.words(sig)
        {
            self.report.push(
                Diagnostic::error(
                    codes::DST_OUT_OF_BOUNDS,
                    format!(
                        "destination of `{}` writes offset {} ({} words), slot is {} ({} words)",
                        s.name,
                        dst.off,
                        dst.words,
                        self.layout.offset(sig),
                        self.layout.words(sig)
                    ),
                )
                .with_signal(s.name.clone()),
            );
        } else if dst.width != s.width {
            self.report.push(
                Diagnostic::error(
                    codes::WIDTH_MISMATCH,
                    format!(
                        "destination of `{}` claims {} bit(s), signal has {}",
                        s.name, dst.width, s.width
                    ),
                )
                .with_signal(s.name.clone()),
            );
        }
    }

    /// Def-before-use: a computed operand must have been defined by an
    /// earlier step whose scope is still active.
    fn check_use(&mut self, user: SignalId, operand: SignalId) {
        let token = self.def_token[operand.index()];
        let visible = token != u32::MAX && self.active[token as usize];
        if !visible {
            let name = &self.netlist.signal(user).name;
            self.report.push(
                Diagnostic::error(
                    codes::DEF_BEFORE_USE,
                    format!(
                        "`{name}` reads `{}` before any step defines it",
                        self.netlist.signal(operand).name
                    ),
                )
                .with_signal(name.clone()),
            );
        }
    }
}

/// A one-word operand/destination reference re-derived from the netlist
/// and layout (the tier audit never trusts the program's own fields).
#[derive(Clone, Copy)]
struct Ref1 {
    off: u32,
    width: u32,
    signed: bool,
}

/// Sign-extension shift the tier must encode for a reference.
fn sx_of(width: u32, signed: bool) -> u8 {
    if signed {
        (64 - width) as u8
    } else {
        0
    }
}

/// Resolves `sig` as a one-word tier reference; `None` when the signal
/// needs the generic path (multi-word or zero-width).
fn ref1(netlist: &Netlist, layout: &Layout, sig: SignalId) -> Option<Ref1> {
    let s = netlist.signal(sig);
    if layout.words(sig) != 1 || s.width < 1 {
        return None;
    }
    Some(Ref1 {
        off: layout.offset(sig) as u32,
        width: s.width,
        signed: s.signed,
    })
}

/// Independently re-derives the one-word instruction a step-compiled
/// signal must lower to, straight from its netlist definition and the
/// arena layout; `None` when the lowering must fall back to a generic
/// item.
fn expected_tier_inst(netlist: &Netlist, layout: &Layout, sig: SignalId) -> Option<Inst1> {
    let dst = ref1(netlist, layout, sig)?;
    let mut inst = Inst1 {
        op: Op1::Ext,
        sxa: 0,
        sxb: 0,
        sxc: 0,
        a: 0,
        b: 0,
        c: 0,
        dst: dst.off,
        imm: 0,
        mask: essent_bits::top_mask(dst.width),
        ws: NO_FUSE,
        we: NO_FUSE,
    };
    match &netlist.signal(sig).def {
        SignalDef::MemRead { mem, port } => {
            let bank = netlist.mems().get(mem.0 as usize)?;
            if essent_bits::words(bank.width) != 1 {
                return None;
            }
            let p = bank.readers.get(*port)?;
            let addr = ref1(netlist, layout, p.addr)?;
            let en = ref1(netlist, layout, p.en)?;
            inst.op = Op1::MemRead;
            inst.a = addr.off;
            inst.b = en.off;
            inst.c = mem.0;
            inst.imm = bank.depth as u64;
            // The generic path copies the raw bank entry unmasked.
            inst.mask = u64::MAX;
        }
        SignalDef::Op(op) => {
            use OpKind::*;
            let args: Vec<Ref1> = op
                .args
                .iter()
                .map(|&a| ref1(netlist, layout, a))
                .collect::<Option<_>>()?;
            let a = *args.first()?;
            let s = a.signed;
            let param = |k: usize| op.params.get(k).copied().unwrap_or(0);
            let set_ab = |inst: &mut Inst1, x: Ref1, y: Ref1, signed: bool| {
                inst.a = x.off;
                inst.b = y.off;
                inst.sxa = sx_of(x.width, signed);
                inst.sxb = sx_of(y.width, signed);
            };
            match op.kind {
                Add | Sub | Mul | Div | Rem | And | Or | Xor | Eq | Neq | Lt | Leq => {
                    set_ab(&mut inst, a, *args.get(1)?, s);
                    inst.op = match (op.kind, s) {
                        (Add, _) => Op1::Add,
                        (Sub, _) => Op1::Sub,
                        (Mul, _) => Op1::Mul,
                        (Div, false) => Op1::DivU,
                        (Div, true) => Op1::DivS,
                        (Rem, false) => Op1::RemU,
                        (Rem, true) => Op1::RemS,
                        (And, _) => Op1::And,
                        (Or, _) => Op1::Or,
                        (Xor, _) => Op1::Xor,
                        (Eq, _) => Op1::Eq,
                        (Neq, _) => Op1::Neq,
                        (Lt, false) => Op1::LtU,
                        (Lt, true) => Op1::LtS,
                        (Leq, false) => Op1::LeqU,
                        (Leq, true) => Op1::LeqS,
                        _ => unreachable!(),
                    };
                }
                Gt | Geq => {
                    set_ab(&mut inst, *args.get(1)?, a, s);
                    inst.op = match (op.kind, s) {
                        (Gt, false) => Op1::LtU,
                        (Gt, true) => Op1::LtS,
                        (Geq, false) => Op1::LeqU,
                        (Geq, true) => Op1::LeqS,
                        _ => unreachable!(),
                    };
                }
                Shl => {
                    inst.op = Op1::Shl;
                    inst.a = a.off;
                    inst.imm = param(0);
                    inst.sxc = dst.width as u8;
                }
                Shr => {
                    inst.op = if s { Op1::ShrS } else { Op1::ShrU };
                    inst.a = a.off;
                    inst.sxa = sx_of(a.width, s);
                    inst.imm = param(0);
                }
                Dshl => {
                    inst.op = Op1::Dshl;
                    inst.a = a.off;
                    inst.b = args.get(1)?.off;
                    inst.sxc = dst.width as u8;
                }
                Dshr => {
                    inst.op = if s { Op1::DshrS } else { Op1::DshrU };
                    inst.a = a.off;
                    inst.b = args.get(1)?.off;
                    inst.sxa = sx_of(a.width, s);
                }
                Neg => {
                    inst.op = Op1::Neg;
                    inst.a = a.off;
                    inst.sxa = sx_of(a.width, s);
                }
                Not => {
                    inst.op = Op1::Not;
                    inst.a = a.off;
                    inst.sxa = sx_of(a.width, s);
                }
                Andr => {
                    inst.op = Op1::Andr;
                    inst.a = a.off;
                    inst.imm = essent_bits::top_mask(a.width);
                }
                Orr => {
                    inst.op = Op1::Orr;
                    inst.a = a.off;
                }
                Xorr => {
                    inst.op = Op1::Xorr;
                    inst.a = a.off;
                }
                Cat => {
                    let b = *args.get(1)?;
                    inst.op = Op1::Cat;
                    inst.a = a.off;
                    inst.b = b.off;
                    inst.imm = b.width as u64;
                }
                Bits => {
                    inst.op = Op1::Bits;
                    inst.a = a.off;
                    inst.imm = param(1);
                }
                Mux => {
                    let (high, low) = (*args.get(1)?, *args.get(2)?);
                    inst.op = Op1::Mux;
                    inst.a = a.off;
                    inst.b = high.off;
                    inst.c = low.off;
                    inst.sxb = sx_of(high.width, high.signed);
                    inst.sxc = sx_of(low.width, low.signed);
                }
                Copy => {
                    inst.op = Op1::Ext;
                    inst.a = a.off;
                    inst.sxa = sx_of(a.width, a.signed);
                }
            }
        }
        // Steps for non-computed signals are check_blocks' problem; the
        // tier must not have specialized them.
        _ => return None,
    }
    Some(inst)
}

/// Decode equality modulo the fused-trigger range (checked separately
/// against the plan's trigger map).
fn same_decode(a: &Inst1, b: &Inst1) -> bool {
    (
        a.op, a.sxa, a.sxb, a.sxc, a.a, a.b, a.c, a.dst, a.imm, a.mask,
    ) == (
        b.op, b.sxa, b.sxb, b.sxc, b.a, b.b, b.c, b.dst, b.imm, b.mask,
    )
}

/// Defining signal of an item (the conditional mux's own signal).
fn item_sig(item: &Item) -> SignalId {
    match item {
        Item::Step(s) => s.sig,
        Item::CondMux { sig, .. } => *sig,
    }
}

/// Audits a [`Tier1Program`] against the block it was lowered from.
///
/// Walks the block's item stream in lockstep with the instruction
/// stream, re-deriving every expected instruction *independently* from
/// the netlist and layout (never from the program): `B0210` for decode
/// mismatches, `B0211` for fused trigger writes that disagree with the
/// plan's consumer map in `outs`, `B0212` for control-flow violations
/// (non-forward jumps, malformed conditional diamonds). `fuse` states
/// whether the engine intended trigger fusion for this block.
pub fn check_tier1(
    netlist: &Netlist,
    layout: &Layout,
    block: &Block,
    outs: &[OutSpec],
    prog: &Tier1Program,
    fuse: bool,
    partition: usize,
) -> Report {
    let mut chk = TierChecker {
        netlist,
        layout,
        prog,
        partition,
        report: Report::new(),
        pc: 0,
        generic_at: 0,
        out_of_sig: outs.iter().enumerate().map(|(i, o)| (o.sig, i)).collect(),
        seen_ranges: vec![Vec::new(); outs.len()],
    };
    chk.walk_items(&block.items);
    if chk.pc < prog.code.len() {
        chk.report.push(
            Diagnostic::error(
                codes::TIER_DECODE,
                format!(
                    "tier-1 program has {} instruction(s) past the block's item stream",
                    prog.code.len() - chk.pc
                ),
            )
            .with_partition(partition),
        );
    }
    if chk.generic_at < prog.generic.len() {
        chk.report.push(
            Diagnostic::error(
                codes::TIER_DECODE,
                format!(
                    "{} generic fallback item(s) are never referenced by the program",
                    prog.generic.len() - chk.generic_at
                ),
            )
            .with_partition(partition),
        );
    }
    if prog.sigs.len() != prog.code.len() {
        chk.report.push(
            Diagnostic::error(
                codes::TIER_DECODE,
                format!(
                    "signal tag table has {} entries for {} instruction(s)",
                    prog.sigs.len(),
                    prog.code.len()
                ),
            )
            .with_partition(partition),
        );
    }
    chk.check_fusion(outs, fuse);
    chk.report
}

/// Lockstep walker for [`check_tier1`].
struct TierChecker<'a> {
    netlist: &'a Netlist,
    layout: &'a Layout,
    prog: &'a Tier1Program,
    report: Report,
    /// Next instruction the item stream must account for.
    pc: usize,
    /// Next generic fallback item the instruction stream must reference
    /// (the lowering emits them in walk order).
    generic_at: usize,
    out_of_sig: HashMap<SignalId, usize>,
    /// Per output: every `(ws, we)` range observed on a defining
    /// instruction (a mux diamond contributes one per arm).
    seen_ranges: Vec<Vec<(u32, u32)>>,
    partition: usize,
}

impl TierChecker<'_> {
    fn error(&mut self, code: essent_core::diag::DiagCode, msg: String) {
        self.report
            .push(Diagnostic::error(code, msg).with_partition(self.partition));
    }

    fn fetch(&mut self, what: &str) -> Option<Inst1> {
        match self.prog.code.get(self.pc) {
            Some(&inst) => {
                self.pc += 1;
                Some(inst)
            }
            None => {
                self.error(
                    codes::TIER_DECODE,
                    format!(
                        "tier-1 program ends at pc {} where {what} was expected",
                        self.pc
                    ),
                );
                None
            }
        }
    }

    fn check_tag(&mut self, at: usize, expect: u32, name: &str) {
        let got = self.prog.sigs.get(at).copied();
        if got != Some(expect) {
            self.error(
                codes::TIER_DECODE,
                format!(
                    "instruction at pc {at} is tagged with signal {:?}, expected {name}",
                    got
                ),
            );
        }
    }

    fn walk_items(&mut self, items: &[Item]) {
        for item in items {
            self.walk_item(item);
        }
    }

    fn walk_item(&mut self, item: &Item) {
        match item {
            Item::Step(step) => match expected_tier_inst(self.netlist, self.layout, step.sig) {
                Some(exp) => self.match_value(step.sig, exp),
                None => self.match_generic(item, step.sig),
            },
            Item::CondMux { .. } => self.walk_cond_mux(item),
        }
    }

    /// One specialized value instruction: decode must equal the
    /// independent re-derivation.
    fn match_value(&mut self, sig: SignalId, exp: Inst1) {
        let at = self.pc;
        let name = self.netlist.signal(sig).name.clone();
        let Some(got) = self.fetch(&format!("the specialized instruction for `{name}`")) else {
            return;
        };
        self.check_tag(at, sig.0, &name);
        if !same_decode(&got, &exp) {
            self.report.push(
                Diagnostic::error(
                    codes::TIER_DECODE,
                    format!(
                        "instruction at pc {at} for `{name}` decodes as {got:?}, \
                         the netlist and layout require {exp:?}"
                    ),
                )
                .with_signal(name)
                .with_partition(self.partition),
            );
        }
        self.note_fuse(sig, &got, at);
    }

    /// Records the fused range carried by a defining instruction; a
    /// non-output instruction must not carry one at all.
    fn note_fuse(&mut self, sig: SignalId, got: &Inst1, at: usize) {
        match self.out_of_sig.get(&sig) {
            Some(&oi) => self.seen_ranges[oi].push((got.ws, got.we)),
            None => {
                if got.ws != NO_FUSE {
                    let name = &self.netlist.signal(sig).name;
                    self.error(
                        codes::TIER_FUSE,
                        format!(
                            "instruction at pc {at} for non-output `{name}` carries a \
                             fused trigger range"
                        ),
                    );
                }
            }
        }
    }

    /// A non-lowerable item: must be a `Generic` fallback referencing the
    /// matching item in emission order.
    fn match_generic(&mut self, item: &Item, sig: SignalId) {
        let at = self.pc;
        let name = self.netlist.signal(sig).name.clone();
        let Some(got) = self.fetch(&format!("the generic fallback for `{name}`")) else {
            return;
        };
        if got.op != Op1::Generic {
            self.report.push(
                Diagnostic::error(
                    codes::TIER_DECODE,
                    format!(
                        "`{name}` is not one-word lowerable, but pc {at} holds {:?} \
                         instead of a generic fallback",
                        got.op
                    ),
                )
                .with_signal(name)
                .with_partition(self.partition),
            );
            return;
        }
        self.check_tag(at, sig.0, &name);
        if got.ws != NO_FUSE {
            self.error(
                codes::TIER_FUSE,
                format!(
                    "generic fallback at pc {at} for `{name}` carries a fused trigger \
                     range the generic path cannot honor"
                ),
            );
        }
        if got.a as usize != self.generic_at {
            self.error(
                codes::TIER_DECODE,
                format!(
                    "generic fallback at pc {at} references item {}, emission order \
                     expects {}",
                    got.a, self.generic_at
                ),
            );
        } else {
            match self.prog.generic.get(self.generic_at) {
                Some(gi) => {
                    if item_sig(gi) != sig || gi.step_count() != item.step_count() {
                        self.error(
                            codes::TIER_DECODE,
                            format!(
                                "generic item {} defines `{}` in {} step(s), the block \
                                 item defines `{name}` in {}",
                                self.generic_at,
                                self.netlist.signal(item_sig(gi)).name,
                                gi.step_count(),
                                item.step_count()
                            ),
                        );
                    }
                }
                None => self.error(
                    codes::TIER_DECODE,
                    format!(
                        "generic fallback at pc {at} references item {}, only {} exist",
                        got.a,
                        self.prog.generic.len()
                    ),
                ),
            }
        }
        self.generic_at += 1;
    }

    /// A conditional mux: either a `JmpIf0`/`Ext`/`Jmp`/`Ext` diamond
    /// (all refs one-word) or a single generic fallback.
    fn walk_cond_mux(&mut self, item: &Item) {
        let Item::CondMux {
            high_items,
            low_items,
            sig,
            ..
        } = item
        else {
            unreachable!()
        };
        let sig = *sig;
        let name = self.netlist.signal(sig).name.clone();
        let (sel_sig, high_sig, low_sig) = match &self.netlist.signal(sig).def {
            SignalDef::Op(op) if op.kind == OpKind::Mux && op.args.len() == 3 => {
                (op.args[0], op.args[1], op.args[2])
            }
            // check_blocks reports the malformed mux; pc desync fallout
            // is acceptable in an already-failing report.
            _ => return,
        };
        let refs = (
            ref1(self.netlist, self.layout, sel_sig),
            ref1(self.netlist, self.layout, high_sig),
            ref1(self.netlist, self.layout, low_sig),
            ref1(self.netlist, self.layout, sig),
        );
        let (Some(sel), Some(hi), Some(lo), Some(dst)) = refs else {
            self.match_generic(item, sig);
            return;
        };
        let jif_at = self.pc;
        let Some(jif) = self.fetch(&format!("the JmpIf0 opening `{name}`'s diamond")) else {
            return;
        };
        if jif.op != Op1::JmpIf0 {
            self.error(
                codes::TIER_FLOW,
                format!(
                    "lowerable conditional mux `{name}` must open with JmpIf0 at pc \
                     {jif_at}, found {:?}",
                    jif.op
                ),
            );
            return;
        }
        self.check_tag(jif_at, u32::MAX, "no signal (a jump)");
        if jif.b != sel.off {
            self.error(
                codes::TIER_DECODE,
                format!(
                    "JmpIf0 at pc {jif_at} tests slot {}, selector of `{name}` lives \
                     at {}",
                    jif.b, sel.off
                ),
            );
        }
        self.walk_items(high_items);
        let ext_of = |way: Ref1| Inst1 {
            op: Op1::Ext,
            sxa: sx_of(way.width, way.signed),
            sxb: 0,
            sxc: 0,
            a: way.off,
            b: 0,
            c: 0,
            dst: dst.off,
            imm: 0,
            mask: essent_bits::top_mask(dst.width),
            ws: NO_FUSE,
            we: NO_FUSE,
        };
        self.match_value(sig, ext_of(hi));
        let jmp_at = self.pc;
        let Some(jmp) = self.fetch(&format!("the Jmp closing `{name}`'s high way")) else {
            return;
        };
        if jmp.op != Op1::Jmp {
            self.error(
                codes::TIER_FLOW,
                format!(
                    "high way of `{name}` must close with Jmp at pc {jmp_at}, found {:?}",
                    jmp.op
                ),
            );
            return;
        }
        self.check_tag(jmp_at, u32::MAX, "no signal (a jump)");
        self.check_jump(jif_at, jif.a, self.pc, "JmpIf0");
        self.walk_items(low_items);
        self.match_value(sig, ext_of(lo));
        self.check_jump(jmp_at, jmp.a, self.pc, "Jmp");
    }

    /// A diamond jump must be strictly forward and land exactly where the
    /// item structure joins.
    fn check_jump(&mut self, at: usize, target: u32, expected: usize, what: &str) {
        if target as usize <= at {
            self.error(
                codes::TIER_FLOW,
                format!("{what} at pc {at} jumps backward to {target} (termination unprovable)"),
            );
        } else if target as usize != expected {
            self.error(
                codes::TIER_FLOW,
                format!("{what} at pc {at} jumps to {target}, the diamond joins at {expected}"),
            );
        }
    }

    /// After the walk: every output either carries a consistent fused
    /// range matching the plan's trigger map, or is listed unfused so the
    /// engine keeps its snapshot-compare path.
    fn check_fusion(&mut self, outs: &[OutSpec], fuse: bool) {
        for &oi in &self.prog.unfused {
            if oi >= outs.len() {
                self.error(
                    codes::TIER_FUSE,
                    format!(
                        "unfused index {oi} out of range for {} output(s)",
                        outs.len()
                    ),
                );
            }
        }
        for (oi, out) in outs.iter().enumerate() {
            let name = self.netlist.signal(out.sig).name.clone();
            let ranges = std::mem::take(&mut self.seen_ranges[oi]);
            let listed = self.prog.unfused.contains(&oi);
            if ranges.iter().any(|r| *r != ranges[0]) {
                self.error(
                    codes::TIER_FUSE,
                    format!(
                        "defining instructions of output `{name}` carry differing fused ranges"
                    ),
                );
            }
            let fused_range = ranges.first().copied().filter(|&(ws, _)| ws != NO_FUSE);
            match fused_range {
                Some((ws, we)) => {
                    if !fuse {
                        self.error(
                            codes::TIER_FUSE,
                            format!("output `{name}` is fused though fusion is disabled"),
                        );
                    }
                    if listed {
                        self.error(
                            codes::TIER_FUSE,
                            format!(
                                "output `{name}` is fused but also listed unfused \
                                 (consumers would be woken twice)"
                            ),
                        );
                    }
                    match self.prog.consumers.get(ws as usize..we as usize) {
                        Some(slice) => {
                            let mut got: Vec<u32> = slice.to_vec();
                            got.sort_unstable();
                            let mut want = out.consumers.clone();
                            want.sort_unstable();
                            if got != want {
                                self.error(
                                    codes::TIER_FUSE,
                                    format!(
                                        "fused consumer set of `{name}` is {got:?}, the \
                                         plan's trigger map says {want:?}"
                                    ),
                                );
                            }
                        }
                        None => self.error(
                            codes::TIER_FUSE,
                            format!(
                                "fused range [{ws}..{we}) of `{name}` exceeds the \
                                 {}-entry consumer table",
                                self.prog.consumers.len()
                            ),
                        ),
                    }
                }
                None => {
                    if !listed {
                        self.error(
                            codes::TIER_FUSE,
                            format!(
                                "output `{name}` has no fused trigger write and is \
                                 missing from the unfused list: its consumers would \
                                 never wake"
                            ),
                        );
                    }
                }
            }
        }
    }
}
