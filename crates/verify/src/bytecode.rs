//! The compiled-bytecode verifier (the `B____` diagnostic family):
//! checks the flat [`Block`]/[`Item`]/[`Step`] streams the engines
//! execute against the netlist and the arena [`Layout`] they were
//! compiled from.
//!
//! Checked properties:
//!
//! * **layout soundness** — every signal's arena slot is correctly
//!   sized and no two slots overlap;
//! * **reference validity** — every [`ArgRef`]/[`DstRef`] points at the
//!   slot of exactly the signal the defining operation names, in bounds,
//!   with matching width and signedness;
//! * **arity** — a step carries exactly the operands its op requires;
//! * **coverage** — every computed signal is compiled exactly once;
//! * **def-before-use** — along the schedule order (including into
//!   conditional mux ways), no step reads a computed value before the
//!   step defining it;
//! * **memory indices** — `MemRead` steps name existing banks/ports.

use essent_core::diag::{codes, Diagnostic, Report};
use essent_core::plan::CcssPlan;
use essent_netlist::{Netlist, OpKind, SignalDef, SignalId};
use essent_sim::compile::{ArgRef, Block, DstRef, Item, Layout, Step, StepKind};

/// Checks that the arena layout covers every signal with a correctly
/// sized, non-overlapping word range.
pub fn check_layout(netlist: &Netlist, layout: &Layout) -> Report {
    let mut report = Report::new();
    let total = layout.total_words();
    // Occupancy map: detects overlap in one pass instead of O(n^2).
    let mut owner: Vec<Option<u32>> = vec![None; total];
    for (i, s) in netlist.signals().iter().enumerate() {
        let sig = SignalId(i as u32);
        let off = layout.offset(sig);
        let words = layout.words(sig);
        if words != essent_bits::words(s.width) {
            report.push(
                Diagnostic::error(
                    codes::WIDTH_MISMATCH,
                    format!(
                        "slot of `{}` is {} word(s), {}-bit value needs {}",
                        s.name,
                        words,
                        s.width,
                        essent_bits::words(s.width)
                    ),
                )
                .with_signal(s.name.clone()),
            );
        }
        if off + words > total {
            report.push(
                Diagnostic::error(
                    codes::LAYOUT_OVERLAP,
                    format!(
                        "slot of `{}` ([{}..{})) exceeds the {}-word arena",
                        s.name,
                        off,
                        off + words,
                        total
                    ),
                )
                .with_signal(s.name.clone()),
            );
            continue;
        }
        for (w, slot) in owner[off..off + words].iter_mut().enumerate() {
            if let Some(other) = *slot {
                report.push(
                    Diagnostic::error(
                        codes::LAYOUT_OVERLAP,
                        format!(
                            "slot of `{}` overlaps slot of `{}` at word {}",
                            s.name,
                            netlist.signal(SignalId(other)).name,
                            off + w
                        ),
                    )
                    .with_signal(s.name.clone()),
                );
                break;
            }
            *slot = Some(i as u32);
        }
    }
    report
}

/// Verifies compiled blocks against the netlist and layout.
///
/// `plan` provides the expected block-to-partition correspondence; pass
/// `None` for a full-cycle compilation (one block covering the whole
/// design).
pub fn check_blocks(
    netlist: &Netlist,
    layout: &Layout,
    blocks: &[Block],
    plan: Option<&CcssPlan>,
) -> Report {
    let mut report = Report::new();
    if let Some(plan) = plan {
        if blocks.len() != plan.partitions.len() {
            report.push(Diagnostic::error(
                codes::STEP_MISSING,
                format!(
                    "{} compiled block(s) for {} scheduled partition(s)",
                    blocks.len(),
                    plan.partitions.len()
                ),
            ));
        }
    }

    const UNDEFINED: u32 = u32::MAX;
    let mut chk = Checker {
        netlist,
        layout,
        report: Report::new(),
        compiled: vec![0u32; netlist.signal_count()],
        // Inputs, constants, and register outputs hold values at cycle
        // start: defined in the global scope (token 0).
        def_token: netlist
            .signals()
            .iter()
            .map(|s| {
                if matches!(
                    s.def,
                    SignalDef::Input | SignalDef::Const(_) | SignalDef::RegOut(_)
                ) {
                    0
                } else {
                    UNDEFINED
                }
            })
            .collect(),
        active: vec![true],
        stack: vec![0],
    };
    for (bi, block) in blocks.iter().enumerate() {
        for item in &block.items {
            chk.check_item(item, bi, plan);
        }
    }

    // Coverage: every computed signal compiled exactly once.
    for (i, s) in netlist.signals().iter().enumerate() {
        let expected = u32::from(matches!(
            s.def,
            SignalDef::Op(_) | SignalDef::MemRead { .. }
        ));
        let actual = chk.compiled[i];
        if actual < expected {
            chk.report.push(
                Diagnostic::error(
                    codes::STEP_MISSING,
                    format!("computed signal `{}` was never compiled", s.name),
                )
                .with_signal(s.name.clone()),
            );
        } else if actual > expected {
            chk.report.push(
                Diagnostic::error(
                    codes::STEP_DUPLICATE,
                    format!(
                        "signal `{}` compiled {} time(s), expected {}",
                        s.name, actual, expected
                    ),
                )
                .with_signal(s.name.clone()),
            );
        }
    }

    report.merge(chk.report);
    report
}

/// Walks items carrying the def-before-use scope as a token tree: every
/// mux way gets a fresh token, a definition is stamped with the token of
/// the scope it happens in, and an operand is visible iff its defining
/// token lies on the currently active way path (token 0 = global scope,
/// always active). This makes scope entry/exit and definedness O(1)
/// without cloning per-way visibility sets.
struct Checker<'a> {
    netlist: &'a Netlist,
    layout: &'a Layout,
    report: Report,
    compiled: Vec<u32>,
    def_token: Vec<u32>,
    active: Vec<bool>,
    stack: Vec<u32>,
}

impl Checker<'_> {
    fn enter_way(&mut self) -> u32 {
        let token = self.active.len() as u32;
        self.active.push(true);
        self.stack.push(token);
        token
    }

    fn exit_way(&mut self, token: u32) {
        self.active[token as usize] = false;
        self.stack.pop();
    }

    fn define(&mut self, sig: SignalId) {
        self.def_token[sig.index()] = *self.stack.last().expect("scope stack");
    }

    fn check_item(&mut self, item: &Item, block: usize, plan: Option<&CcssPlan>) {
        match item {
            Item::Step(step) => self.check_step(step, block, plan),
            Item::CondMux {
                sel,
                dst,
                high_items,
                high,
                low_items,
                low,
                sig,
            } => {
                let sig = *sig;
                self.check_placement(sig, block, plan);
                self.compiled[sig.index()] += 1;
                let name = self.netlist.signal(sig).name.clone();
                let (sel_sig, high_sig, low_sig) = match &self.netlist.signal(sig).def {
                    SignalDef::Op(op) if op.kind == OpKind::Mux && op.args.len() == 3 => {
                        (op.args[0], op.args[1], op.args[2])
                    }
                    _ => {
                        self.report.push(
                            Diagnostic::error(
                                codes::ARG_ARITY,
                                format!("conditional mux compiled for non-mux signal `{name}`"),
                            )
                            .with_signal(name),
                        );
                        return;
                    }
                };
                self.check_arg(sig, 0, sel_sig, sel);
                self.check_arg(sig, 1, high_sig, high);
                self.check_arg(sig, 2, low_sig, low);
                self.check_dst(sig, dst);
                self.check_use(sig, sel_sig);
                let t = self.enter_way();
                for it in high_items {
                    self.check_item(it, block, plan);
                }
                self.check_use(sig, high_sig);
                self.exit_way(t);
                let t = self.enter_way();
                for it in low_items {
                    self.check_item(it, block, plan);
                }
                self.check_use(sig, low_sig);
                self.exit_way(t);
                self.define(sig);
            }
        }
    }

    fn check_step(&mut self, step: &Step, block: usize, plan: Option<&CcssPlan>) {
        let sig = step.sig;
        self.check_placement(sig, block, plan);
        self.compiled[sig.index()] += 1;
        let name = self.netlist.signal(sig).name.clone();
        let expected_args: Vec<SignalId> = match (&step.kind, &self.netlist.signal(sig).def) {
            (StepKind::Op(kind), SignalDef::Op(op)) => {
                if *kind != op.kind {
                    self.report.push(
                        Diagnostic::error(
                            codes::ARG_ARITY,
                            format!(
                                "step for `{name}` computes {kind:?}, netlist defines {:?}",
                                op.kind
                            ),
                        )
                        .with_signal(name.clone()),
                    );
                }
                if step.params != op.params {
                    self.report.push(
                        Diagnostic::error(
                            codes::ARG_ARITY,
                            format!("step for `{name}` has wrong static parameters"),
                        )
                        .with_signal(name.clone()),
                    );
                }
                op.args.clone()
            }
            (StepKind::MemRead { mem, port }, SignalDef::MemRead { mem: dm, port: dp }) => {
                if *mem != dm.0 || *port as usize != *dp {
                    self.report.push(
                        Diagnostic::error(
                            codes::MEM_INDEX,
                            format!(
                                "step for `{name}` reads memory {mem} port {port}, netlist says {} port {dp}",
                                dm.0
                            ),
                        )
                        .with_signal(name.clone()),
                    );
                }
                let Some(bank) = self.netlist.mems().get(*mem as usize) else {
                    self.report.push(
                        Diagnostic::error(
                            codes::MEM_INDEX,
                            format!("step for `{name}` reads nonexistent memory {mem}"),
                        )
                        .with_signal(name),
                    );
                    return;
                };
                let Some(p) = bank.readers.get(*port as usize) else {
                    self.report.push(
                        Diagnostic::error(
                            codes::MEM_INDEX,
                            format!(
                                "step for `{name}` reads nonexistent port {port} of memory `{}`",
                                bank.name
                            ),
                        )
                        .with_signal(name),
                    );
                    return;
                };
                vec![p.addr, p.en]
            }
            _ => {
                self.report.push(
                    Diagnostic::error(
                        codes::STEP_DUPLICATE,
                        format!("step compiled for non-computed signal `{name}`"),
                    )
                    .with_signal(name),
                );
                return;
            }
        };
        if step.args.len() != expected_args.len() {
            self.report.push(
                Diagnostic::error(
                    codes::ARG_ARITY,
                    format!(
                        "step for `{name}` has {} operand(s), its op takes {}",
                        step.args.len(),
                        expected_args.len()
                    ),
                )
                .with_signal(name.clone()),
            );
        }
        for (k, (&expected, actual)) in expected_args.iter().zip(&step.args).enumerate() {
            self.check_arg(sig, k, expected, actual);
            self.check_use(sig, expected);
        }
        self.check_dst(sig, &step.dst);
        self.define(sig);
    }

    /// Block placement: under a plan, a step must live in the block of
    /// the partition its signal is scheduled into.
    fn check_placement(&mut self, sig: SignalId, block: usize, plan: Option<&CcssPlan>) {
        let Some(plan) = plan else { return };
        let sched = plan
            .sched_of_signal
            .get(sig.index())
            .copied()
            .unwrap_or(u32::MAX);
        if sched as usize != block {
            let name = &self.netlist.signal(sig).name;
            self.report.push(
                Diagnostic::error(
                    codes::MEMBER_MISPLACED,
                    format!("`{name}` compiled into block {block}, scheduled in partition {sched}"),
                )
                .with_signal(name.clone())
                .with_partition(block),
            );
        }
    }

    /// An operand reference must denote exactly `expected`'s slot.
    fn check_arg(&mut self, user: SignalId, k: usize, expected: SignalId, actual: &ArgRef) {
        let name = &self.netlist.signal(user).name;
        let total = self.layout.total_words();
        if actual.off as usize + actual.words as usize > total {
            self.report.push(
                Diagnostic::error(
                    codes::ARG_OUT_OF_BOUNDS,
                    format!(
                        "operand {k} of `{name}` reads words [{}..{}) of a {total}-word arena",
                        actual.off,
                        actual.off as usize + actual.words as usize
                    ),
                )
                .with_signal(name.clone()),
            );
            return;
        }
        if actual.off as usize != self.layout.offset(expected)
            || actual.words as usize != self.layout.words(expected)
        {
            self.report.push(
                Diagnostic::error(
                    codes::ARG_OUT_OF_BOUNDS,
                    format!(
                        "operand {k} of `{name}` reads offset {}, expected `{}` at {}",
                        actual.off,
                        self.netlist.signal(expected).name,
                        self.layout.offset(expected)
                    ),
                )
                .with_signal(name.clone()),
            );
            return;
        }
        let e = self.netlist.signal(expected);
        if actual.width != e.width || actual.signed != e.signed {
            self.report.push(
                Diagnostic::error(
                    codes::WIDTH_MISMATCH,
                    format!(
                        "operand {k} of `{name}` claims {}-bit {}signed, `{}` is {}-bit {}signed",
                        actual.width,
                        if actual.signed { "" } else { "un" },
                        e.name,
                        e.width,
                        if e.signed { "" } else { "un" },
                    ),
                )
                .with_signal(name.clone()),
            );
        }
    }

    /// The destination reference must denote the defined signal's slot.
    fn check_dst(&mut self, sig: SignalId, dst: &DstRef) {
        let s = self.netlist.signal(sig);
        let total = self.layout.total_words();
        if dst.off as usize + dst.words as usize > total
            || dst.off as usize != self.layout.offset(sig)
            || dst.words as usize != self.layout.words(sig)
        {
            self.report.push(
                Diagnostic::error(
                    codes::DST_OUT_OF_BOUNDS,
                    format!(
                        "destination of `{}` writes offset {} ({} words), slot is {} ({} words)",
                        s.name,
                        dst.off,
                        dst.words,
                        self.layout.offset(sig),
                        self.layout.words(sig)
                    ),
                )
                .with_signal(s.name.clone()),
            );
        } else if dst.width != s.width {
            self.report.push(
                Diagnostic::error(
                    codes::WIDTH_MISMATCH,
                    format!(
                        "destination of `{}` claims {} bit(s), signal has {}",
                        s.name, dst.width, s.width
                    ),
                )
                .with_signal(s.name.clone()),
            );
        }
    }

    /// Def-before-use: a computed operand must have been defined by an
    /// earlier step whose scope is still active.
    fn check_use(&mut self, user: SignalId, operand: SignalId) {
        let token = self.def_token[operand.index()];
        let visible = token != u32::MAX && self.active[token as usize];
        if !visible {
            let name = &self.netlist.signal(user).name;
            self.report.push(
                Diagnostic::error(
                    codes::DEF_BEFORE_USE,
                    format!(
                        "`{name}` reads `{}` before any step defines it",
                        self.netlist.signal(operand).name
                    ),
                )
                .with_signal(name.clone()),
            );
        }
    }
}
