//! Profile-feedback verifier (`F____` codes): audits the activity-guided
//! repartitioning and the LPT level schedule.
//!
//! Two passes:
//!
//! * [`check_activity_merge`] replays an [`ActivityMergeRecord`] log
//!   from the structural baseline partitioning and re-checks every side
//!   condition with this crate's own code — endpoint liveness, the hot
//!   threshold (re-aggregated from the prior), the size cap, and the
//!   no-new-cycle condition via an independent indirect-path search over
//!   the replayed partition graph. The replay must land exactly on the
//!   claimed final assignment, which is then re-proved an exact acyclic
//!   cover of the extended DAG (`F0401`).
//! * [`check_level_schedule`] re-derives every partition's dependency
//!   level from the plan alone and checks that the LPT bin schedule is
//!   an exact, level-faithful cover within the thread budget (`F0402`),
//!   over a cost table of the right cardinality with no zero entries
//!   (`F0403`).
//!
//! As everywhere in this crate, the builders' own checks are never
//! called; the one shared piece is [`Partitioning::merge`] itself, the
//! artifact under audit being the *log*, not the merge mechanics.

use essent_core::diag::{codes, Diagnostic, Report};
use essent_core::partition::{
    partition, ActivityMergeParams, ActivityMergeRecord, ActivityPrior, Partitioning,
};
use essent_core::plan::CcssPlan;
use essent_core::DagView;
use essent_sim::par::{CostModel, LevelSchedule};
use std::collections::BTreeSet;

/// Is there a path `from -> ... -> to` through at least one intermediate
/// partition? (The direct edge, if any, is excluded — a merge is illegal
/// exactly when such an indirect path exists, because collapsing the two
/// endpoints would then close a cycle.)
fn indirect_path(parts: &Partitioning, from: usize, to: usize) -> bool {
    let mut frontier: Vec<usize> = parts
        .succs_of(from)
        .into_iter()
        .filter(|&s| s != to)
        .collect();
    let mut seen: BTreeSet<usize> = frontier.iter().copied().collect();
    while let Some(p) = frontier.pop() {
        if p == to {
            return true;
        }
        for s in parts.succs_of(p) {
            if seen.insert(s) {
                frontier.push(s);
            }
        }
    }
    false
}

/// Replays `log` from a fresh `partition(dag, c_p)` and audits every
/// merge's side conditions, then proves the result equals `result` and
/// is still an exact acyclic cover. All findings are `F0401`.
pub fn check_activity_merge(
    dag: &DagView,
    c_p: usize,
    prior: &ActivityPrior,
    params: &ActivityMergeParams,
    log: &[ActivityMergeRecord],
    result: &Partitioning,
) -> Report {
    let mut report = Report::new();
    let mut parts = partition(dag, c_p);
    let hot = |r: f64| !r.is_nan() && r >= params.hot_threshold;
    for (step, rec) in log.iter().enumerate() {
        if rec.kept == rec.absorbed || !parts.is_alive(rec.kept) || !parts.is_alive(rec.absorbed) {
            report.push(
                Diagnostic::error(
                    codes::ACTIVITY_SIDE_CONDITION,
                    format!(
                        "merge step {step}: p{} <- p{} does not name two distinct live partitions",
                        rec.kept, rec.absorbed
                    ),
                )
                .with_partition(rec.kept),
            );
            // The replay state is unusable past a dead endpoint.
            return report;
        }
        let ra = prior.part_rate(&parts, rec.kept);
        let rb = prior.part_rate(&parts, rec.absorbed);
        if !hot(ra) || !hot(rb) {
            report.push(
                Diagnostic::error(
                    codes::ACTIVITY_SIDE_CONDITION,
                    format!(
                        "merge step {step}: p{} <- p{} merged with activity {:.3}/{:.3} \
                         below the hot threshold {:.3}",
                        rec.kept, rec.absorbed, ra, rb, params.hot_threshold
                    ),
                )
                .with_partition(rec.kept),
            );
        }
        let size = parts.members(rec.kept).len() + parts.members(rec.absorbed).len();
        if size > params.max_size {
            report.push(
                Diagnostic::error(
                    codes::ACTIVITY_SIDE_CONDITION,
                    format!(
                        "merge step {step}: p{} <- p{} produces {size} nodes, over the \
                         size cap {}",
                        rec.kept, rec.absorbed, params.max_size
                    ),
                )
                .with_partition(rec.kept),
            );
        }
        if indirect_path(&parts, rec.kept, rec.absorbed)
            || indirect_path(&parts, rec.absorbed, rec.kept)
        {
            report.push(
                Diagnostic::error(
                    codes::ACTIVITY_SIDE_CONDITION,
                    format!(
                        "merge step {step}: p{} <- p{} have an external path between \
                         them; merging closes a cycle",
                        rec.kept, rec.absorbed
                    ),
                )
                .with_partition(rec.kept),
            );
        }
        parts.merge(rec.kept, rec.absorbed);
    }
    if parts.assignment() != result.assignment() {
        report.push(Diagnostic::error(
            codes::ACTIVITY_SIDE_CONDITION,
            format!(
                "replaying the {}-step merge log does not reproduce the final assignment",
                log.len()
            ),
        ));
        return report;
    }
    // Final re-proof on the claimed result, from the assignment alone:
    // exact cover (every node in a live partition) and acyclicity of the
    // condensed partition graph via our own Kahn count.
    let n = dag.node_count();
    if result.assignment().len() != n {
        report.push(Diagnostic::error(
            codes::ACTIVITY_SIDE_CONDITION,
            format!(
                "merged partitioning covers {} nodes, extended DAG has {n}",
                result.assignment().len()
            ),
        ));
        return report;
    }
    for node in 0..n {
        if !result.is_alive(result.part_of(node)) {
            report.push(
                Diagnostic::error(
                    codes::ACTIVITY_SIDE_CONDITION,
                    format!(
                        "node {node} assigned to dead partition p{}",
                        result.part_of(node)
                    ),
                )
                .with_partition(result.part_of(node)),
            );
        }
    }
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (a, succs) in dag.succs.iter().enumerate() {
        for &b in succs {
            let (pa, pb) = (result.part_of(a), result.part_of(b));
            if pa != pb {
                edges.insert((pa, pb));
            }
        }
    }
    let live: Vec<usize> = result.live_partitions().collect();
    let mut indegree: std::collections::BTreeMap<usize, usize> =
        live.iter().map(|&p| (p, 0)).collect();
    for &(_, b) in &edges {
        *indegree.entry(b).or_insert(0) += 1;
    }
    let mut queue: Vec<usize> = live.iter().copied().filter(|p| indegree[p] == 0).collect();
    let mut done = 0usize;
    while let Some(p) = queue.pop() {
        done += 1;
        for &(a, b) in edges.range((p, 0)..(p + 1, 0)) {
            debug_assert_eq!(a, p);
            let d = indegree.get_mut(&b).expect("edge endpoint is live");
            *d -= 1;
            if *d == 0 {
                queue.push(b);
            }
        }
    }
    if done != live.len() {
        report.push(Diagnostic::error(
            codes::ACTIVITY_SIDE_CONDITION,
            format!(
                "merged partition graph is cyclic: {done} of {} partitions sort",
                live.len()
            ),
        ));
    }
    report
}

/// Audits an LPT [`LevelSchedule`] against an independent re-derivation
/// of the plan's dependency levels: exact cover, level-faithful binning,
/// bin counts within the thread budget (`F0402`); cost table cardinality
/// and positivity (`F0403`).
pub fn check_level_schedule(
    plan: &CcssPlan,
    sched: &LevelSchedule,
    cost: &CostModel,
    threads: usize,
) -> Report {
    let mut report = Report::new();
    let np = plan.partitions.len();
    if cost.costs.len() != np {
        report.push(Diagnostic::error(
            codes::COST_RANGE,
            format!(
                "cost table has {} entries for {np} scheduled partitions",
                cost.costs.len()
            ),
        ));
        // Cardinality mismatch poisons every per-entry check below.
        return report;
    }
    for (sched_idx, &c) in cost.costs.iter().enumerate() {
        if c == 0 {
            report.push(
                Diagnostic::error(
                    codes::COST_RANGE,
                    format!("partition p{sched_idx} has zero estimated cost; the floor is 1"),
                )
                .with_partition(sched_idx),
            );
        }
    }

    // Independent level derivation: combinational trigger edges always
    // point forward in schedule order; elided-register wakes order the
    // reader before the writer within a cycle.
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); np];
    for (s, part) in plan.partitions.iter().enumerate() {
        for o in &part.outputs {
            for &c in &o.consumers {
                if (c as usize) > s {
                    preds[c as usize].push(s as u32);
                }
            }
        }
        for &ri in &part.elided_regs {
            for &reader in &plan.reg_plans[ri].wake_on_change {
                if (reader as usize) != s {
                    preds[s].push(reader);
                }
            }
        }
    }
    let mut level_of = vec![0u32; np];
    for s in 0..np {
        level_of[s] = preds[s]
            .iter()
            .map(|&p| level_of[p as usize] + 1)
            .max()
            .unwrap_or(0);
    }
    let nlevels = level_of.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    if sched.levels.len() != nlevels {
        report.push(Diagnostic::error(
            codes::BIN_COVER,
            format!(
                "schedule has {} levels, dependency analysis derives {nlevels}",
                sched.levels.len()
            ),
        ));
        return report;
    }

    let mut seen = vec![0usize; np];
    for (lvl, lp) in sched.levels.iter().enumerate() {
        if lp.serial && lp.bins.len() != 1 {
            report.push(Diagnostic::error(
                codes::BIN_COVER,
                format!("serial level {lvl} has {} bins, expected 1", lp.bins.len()),
            ));
        }
        if !lp.serial && (lp.bins.len() < 2 || lp.bins.len() > threads.max(1)) {
            report.push(Diagnostic::error(
                codes::BIN_COVER,
                format!(
                    "parallel level {lvl} has {} bins for {threads} threads",
                    lp.bins.len()
                ),
            ));
        }
        for bin in &lp.bins {
            for &s in bin {
                if s as usize >= np {
                    report.push(Diagnostic::error(
                        codes::BIN_COVER,
                        format!("level {lvl} bins unknown partition p{s} ({np} scheduled)"),
                    ));
                    continue;
                }
                seen[s as usize] += 1;
                if level_of[s as usize] as usize != lvl {
                    report.push(
                        Diagnostic::error(
                            codes::BIN_COVER,
                            format!(
                                "partition p{s} binned at level {lvl}, dependency level is {}",
                                level_of[s as usize]
                            ),
                        )
                        .with_partition(s as usize),
                    );
                }
            }
        }
    }
    for (s, &count) in seen.iter().enumerate() {
        if count == 0 {
            report.push(
                Diagnostic::error(
                    codes::BIN_COVER,
                    format!("partition p{s} missing from every bin"),
                )
                .with_partition(s),
            );
        } else if count > 1 {
            report.push(
                Diagnostic::error(
                    codes::BIN_COVER,
                    format!("partition p{s} appears in {count} bins"),
                )
                .with_partition(s),
            );
        }
    }
    report
}
