//! Ninth layer: batched-lane engine audit (`X08xx`).
//!
//! The batch engine ([`essent_sim::batch::BatchSim`]) threads a second
//! data-parallel axis through the arena and the trigger subsystem: words
//! become lane stripes, activity flags become lane masks, and a
//! compaction permutation remaps logical lanes onto physical stride
//! slots. Each of those is a new way to corrupt a simulation without
//! failing any single-lane invariant — a stride drift reads lane `l`'s
//! word from lane `l+1`, a misrouted wake bit silently freezes one lane
//! of one partition, a bad remap loses a lane's identity entirely.
//!
//! This layer audits a live engine's captured tables
//! ([`essent_sim::batch::BatchAudit`]) against re-derivations from an
//! **independently built** plan and layout (the crate's usual
//! discipline: never trust the builder's own intermediate state):
//!
//! | code | check |
//! |---|---|
//! | `X0801` | stride geometry: lanes/stride/arena/scratch sizes, and every routed trigger offset inside its partition's independently derived write footprint (the `R05xx` machinery) |
//! | `X0802` | wake-mask completeness: engine routing (snapshot triggers ∪ fused ranges, register/memory/input wakes) ≡ the plan's consumer sets |
//! | `X0803` | compaction permutation is a bijection with consistent inverse |
//! | `X0804` | per-lane memory bank shapes match the netlist declarations |

use crate::footprint::derive_footprints;
use essent_core::diag::{codes, Diagnostic, Report};
use essent_core::partition::partition;
use essent_core::plan::{extended_dag, CcssPlan, PlanOptions, WakeRouting};
use essent_netlist::Netlist;
use essent_sim::batch::BatchAudit;
use essent_sim::compile::{compile_plan, Layout};
use essent_sim::step1::{lower_tier1, OutSpec, Tier1Program};
use essent_sim::EngineConfig;

/// Audits a batch engine's captured stride/routing/permutation tables
/// against an independently built plan for the same netlist and config.
/// The audit must come from an engine constructed with this `config`.
pub fn check_batch(netlist: &Netlist, config: &EngineConfig, audit: &BatchAudit) -> Report {
    let mut report = Report::new();

    // Independent re-derivation: same construction parameters, none of
    // the engine's intermediate state.
    let (dag, writes) = extended_dag(netlist);
    let plan = CcssPlan::from_partitioning(
        netlist,
        &dag,
        &writes,
        &partition(&dag, config.c_p),
        PlanOptions {
            elide_state: config.elide_state,
            elide_mem: config.elide_state,
        },
    );
    let layout = Layout::new(netlist);
    let np = plan.partitions.len();

    // --- X0801: stride geometry --------------------------------------
    let lanes = audit.lanes;
    if !(1..=64).contains(&lanes) {
        report.push(Diagnostic::error(
            codes::BATCH_STRIDE,
            format!("lane count {lanes} outside the 1..=64 wake-mask range"),
        ));
        // Size checks below would cascade meaninglessly.
        return report;
    }
    if audit.stride != lanes {
        report.push(Diagnostic::error(
            codes::BATCH_STRIDE,
            format!("arena stride {} != lane count {lanes}", audit.stride),
        ));
    }
    let total = layout.total_words();
    if audit.total_words != total {
        report.push(Diagnostic::error(
            codes::BATCH_STRIDE,
            format!(
                "engine layout covers {} word(s), independent layout {total}",
                audit.total_words
            ),
        ));
    }
    if audit.arena_len != total * audit.stride {
        report.push(Diagnostic::error(
            codes::BATCH_STRIDE,
            format!(
                "strided arena holds {} word(s), expected {} ({} x stride {})",
                audit.arena_len,
                total * audit.stride,
                total,
                audit.stride
            ),
        ));
    }
    if audit.scratch_len != total {
        report.push(Diagnostic::error(
            codes::BATCH_STRIDE,
            format!(
                "scalar scratch holds {} word(s), expected {total}",
                audit.scratch_len
            ),
        ));
    }

    // --- X0802 prerequisites: expected routing from the plan ---------
    let routing: WakeRouting = plan.wake_routing();
    let expected_routes: Vec<Vec<(u32, Vec<u32>)>> = routing
        .outputs
        .iter()
        .map(|outs| {
            let mut v: Vec<(u32, Vec<u32>)> = outs
                .iter()
                .map(|(sig, consumers)| (layout.offset(*sig) as u32, consumers.clone()))
                .collect();
            v.sort();
            v
        })
        .collect();

    if audit.out_routes.len() != np {
        report.push(Diagnostic::error(
            codes::BATCH_WAKE_ROUTE,
            format!(
                "engine routes {} partition(s), plan has {np}",
                audit.out_routes.len()
            ),
        ));
        return report;
    }

    // --- X0801 (continued): routed offsets inside the partition's
    //     independently derived write footprint ----------------------
    let blocks = compile_plan(netlist, &layout, &plan, config);
    let programs: Option<Vec<Tier1Program>> = config.tier1.then(|| {
        let fuse = config.fuse_triggers && config.trigger_push;
        plan.partitions
            .iter()
            .zip(&blocks)
            .map(|(part, block)| {
                let outs: Vec<OutSpec> = part
                    .outputs
                    .iter()
                    .map(|o| OutSpec {
                        sig: o.signal,
                        consumers: o.consumers.clone(),
                    })
                    .collect();
                lower_tier1(netlist, block, &outs, fuse)
            })
            .collect()
    });
    let (footprints, _fp_report) =
        derive_footprints(netlist, &layout, &plan, &blocks, programs.as_deref());
    if footprints.len() == np {
        for (sched, routes) in audit.out_routes.iter().enumerate() {
            let writes = &footprints[sched].writes;
            for &(off, _) in routes {
                let inside = writes.runs().iter().any(|&(s, e)| off >= s && off < e);
                if !inside {
                    report.push(
                        Diagnostic::error(
                            codes::BATCH_STRIDE,
                            format!(
                                "routed trigger offset {off} is outside the partition's \
                                 derived write footprint — the lane compare would watch \
                                 a word the partition never produces"
                            ),
                        )
                        .with_partition(sched),
                    );
                }
            }
        }
    } else {
        report.push(Diagnostic::error(
            codes::BATCH_STRIDE,
            "write-footprint derivation failed; routed offsets unverifiable".to_string(),
        ));
    }

    // --- X0802: wake-mask completeness -------------------------------
    for (sched, (got, want)) in audit.out_routes.iter().zip(&expected_routes).enumerate() {
        if got != want {
            report.push(
                Diagnostic::error(
                    codes::BATCH_WAKE_ROUTE,
                    format!(
                        "partition output routing disagrees with the plan: engine \
                         {got:?}, plan {want:?} (offset, consumer list)"
                    ),
                )
                .with_partition(sched),
            );
        }
    }
    let canon_list = |lists: &[Vec<u32>]| -> Vec<Vec<u32>> {
        lists
            .iter()
            .map(|l| {
                let mut s = l.clone();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect()
    };
    let want_regs = canon_list(&routing.reg_wakes);
    if audit.reg_wakes != want_regs {
        report.push(Diagnostic::error(
            codes::BATCH_WAKE_ROUTE,
            format!(
                "register wake routing disagrees with the plan: engine {:?}, plan {want_regs:?}",
                audit.reg_wakes
            ),
        ));
    }
    let want_mems = canon_list(&routing.mem_wakes);
    if audit.mem_wakes != want_mems {
        report.push(Diagnostic::error(
            codes::BATCH_WAKE_ROUTE,
            format!(
                "memory-write wake routing disagrees with the plan: engine {:?}, plan {want_mems:?}",
                audit.mem_wakes
            ),
        ));
    }
    let mut want_inputs: Vec<(u32, Vec<u32>)> = routing
        .input_wakes
        .iter()
        .map(|(sig, consumers)| (sig.0, consumers.clone()))
        .collect();
    want_inputs.sort();
    if audit.input_wakes != want_inputs {
        report.push(Diagnostic::error(
            codes::BATCH_WAKE_ROUTE,
            format!(
                "input wake routing disagrees with the plan: engine {:?}, plan {want_inputs:?}",
                audit.input_wakes
            ),
        ));
    }

    // --- X0803: compaction permutation bijection ---------------------
    let perm_ok =
        audit.phys_of_log.len() == lanes
            && audit.log_of_phys.len() == lanes
            && audit.phys_of_log.iter().enumerate().all(|(log, &p)| {
                (p as usize) < lanes && audit.log_of_phys[p as usize] as usize == log
            })
            && audit.log_of_phys.iter().enumerate().all(|(phys, &log)| {
                (log as usize) < lanes && audit.phys_of_log[log as usize] as usize == phys
            });
    if !perm_ok {
        report.push(Diagnostic::error(
            codes::BATCH_LANE_PERM,
            format!(
                "lane permutation is not a consistent bijection over {lanes} lane(s): \
                 phys_of_log {:?}, log_of_phys {:?}",
                audit.phys_of_log, audit.log_of_phys
            ),
        ));
    }

    // --- X0804: per-lane bank shapes ---------------------------------
    let want_banks: Vec<(usize, usize)> = netlist
        .mems()
        .iter()
        .map(|m| (essent_bits::words(m.width), m.depth))
        .collect();
    if audit.bank_shapes.len() != lanes {
        report.push(Diagnostic::error(
            codes::BATCH_BANK_SHAPE,
            format!(
                "engine carries banks for {} lane(s), expected {lanes}",
                audit.bank_shapes.len()
            ),
        ));
    }
    for (lane, shapes) in audit.bank_shapes.iter().enumerate() {
        if shapes != &want_banks {
            report.push(Diagnostic::error(
                codes::BATCH_BANK_SHAPE,
                format!(
                    "lane {lane} bank shapes {shapes:?} disagree with the netlist's \
                     memory declarations {want_banks:?} (words per entry, depth)"
                ),
            ));
        }
    }

    report
}
