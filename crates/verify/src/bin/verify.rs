//! Standalone verifier driver: builds the paper's SoC design points and
//! runs the full `essent-verify` stack on each.
//!
//! ```text
//! cargo run -p essent-verify --bin verify              # r16 r18 boom
//! cargo run -p essent-verify --bin verify -- tiny r16  # chosen designs
//! cargo run -p essent-verify --bin verify -- --cp 12   # partition size
//! ```
//!
//! Exit status is 0 iff every design verifies with no errors (warnings
//! and infos are reported but do not fail the run).

use essent_designs::soc::SocConfig;
use essent_netlist::{opt, Netlist};
use essent_sim::EngineConfig;
use essent_verify::verify_design;

fn config_for(name: &str) -> Option<SocConfig> {
    match name {
        "tiny" => Some(SocConfig::tiny()),
        "r16" => Some(SocConfig::r16()),
        "r18" => Some(SocConfig::r18()),
        "boom" => Some(SocConfig::boom()),
        _ => None,
    }
}

fn build_netlist(config: &SocConfig) -> Netlist {
    let src = essent_designs::soc::generate_soc(config);
    let circuit = essent_firrtl::parse(&src).expect("generated FIRRTL parses");
    let lowered = essent_firrtl::passes::lower(circuit).expect("generated FIRRTL lowers");
    let mut netlist = Netlist::from_circuit(&lowered).expect("netlist builds");
    opt::optimize(&mut netlist, &opt::OptConfig::default());
    netlist
}

fn main() {
    let mut designs: Vec<String> = Vec::new();
    let mut c_p: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cp" => {
                let value = args.next().unwrap_or_default();
                match value.parse() {
                    Ok(n) => c_p = Some(n),
                    Err(_) => {
                        eprintln!("verify: --cp needs a number, got `{value}`");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: verify [--cp N] [tiny|r16|r18|boom ...]");
                return;
            }
            name if config_for(name).is_some() => designs.push(name.to_string()),
            other => {
                eprintln!("verify: unknown design or flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if designs.is_empty() {
        designs = vec!["r16".into(), "r18".into(), "boom".into()];
    }

    let mut engine = EngineConfig::default();
    if let Some(c_p) = c_p {
        engine.c_p = c_p;
    }

    let mut failed = false;
    for name in &designs {
        let config = config_for(name).expect("validated above");
        let netlist = build_netlist(&config);
        let report = verify_design(&netlist, &engine);
        let verdict = if report.is_clean() { "ok" } else { "FAIL" };
        println!(
            "{name}: {} signal(s), {} register(s) ... {verdict}",
            netlist.signal_count(),
            netlist.regs().len()
        );
        if !report.is_empty() {
            println!("{report}");
        }
        failed |= !report.is_clean();
    }
    if failed {
        std::process::exit(1);
    }
}
