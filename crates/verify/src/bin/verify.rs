//! Standalone verifier driver: builds the paper's SoC design points and
//! runs the full `essent-verify` stack on each.
//!
//! ```text
//! cargo run -p essent-verify --bin verify              # r16 r18 boom
//! cargo run -p essent-verify --bin verify -- tiny r16  # chosen designs
//! cargo run -p essent-verify --bin verify -- --cp 12   # partition size
//! cargo run -p essent-verify --bin verify -- --emit-overlap tiny
//! ```
//!
//! `--emit-overlap` writes the footprint layer's cross-cycle
//! independence matrix to `FOOTPRINT_<design>.mayoverlap.json` (the
//! artifact the nightly CI lane uploads).
//!
//! Exit status is 0 iff every design verifies with no errors (warnings
//! and infos are reported but do not fail the run).

use essent_designs::soc::SocConfig;
use essent_netlist::{opt, Netlist};
use essent_sim::EngineConfig;
use essent_verify::verify_design_full;

fn config_for(name: &str) -> Option<SocConfig> {
    match name {
        "tiny" => Some(SocConfig::tiny()),
        "r16" => Some(SocConfig::r16()),
        "r18" => Some(SocConfig::r18()),
        "boom" => Some(SocConfig::boom()),
        _ => None,
    }
}

fn build_netlist(config: &SocConfig) -> Netlist {
    let src = essent_designs::soc::generate_soc(config);
    let circuit = essent_firrtl::parse(&src).expect("generated FIRRTL parses");
    let lowered = essent_firrtl::passes::lower(circuit).expect("generated FIRRTL lowers");
    let mut netlist = Netlist::from_circuit(&lowered).expect("netlist builds");
    opt::optimize(&mut netlist, &opt::OptConfig::default());
    netlist
}

fn main() {
    let mut designs: Vec<String> = Vec::new();
    let mut c_p: Option<usize> = None;
    let mut emit_overlap = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-overlap" => emit_overlap = true,
            "--cp" => {
                let value = args.next().unwrap_or_default();
                match value.parse() {
                    Ok(n) => c_p = Some(n),
                    Err(_) => {
                        eprintln!("verify: --cp needs a number, got `{value}`");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: verify [--cp N] [--emit-overlap] [tiny|r16|r18|boom ...]");
                return;
            }
            name if config_for(name).is_some() => designs.push(name.to_string()),
            other => {
                eprintln!("verify: unknown design or flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if designs.is_empty() {
        designs = vec!["r16".into(), "r18".into(), "boom".into()];
    }

    let mut engine = EngineConfig::default();
    if let Some(c_p) = c_p {
        engine.c_p = c_p;
    }

    let mut failed = false;
    for name in &designs {
        let config = config_for(name).expect("validated above");
        let netlist = build_netlist(&config);
        let artifacts = verify_design_full(&netlist, &engine);
        let report = artifacts.report;
        let verdict = if report.is_clean() { "ok" } else { "FAIL" };
        println!(
            "{name}: {} signal(s), {} register(s) ... {verdict}",
            netlist.signal_count(),
            netlist.regs().len()
        );
        if let Some(matrix) = &artifacts.may_overlap {
            println!(
                "{name}: may-overlap {} head(s) x {} tail(s), {} pair(s) independent",
                matrix.heads.len(),
                matrix.tails.len(),
                matrix.independent_pairs()
            );
            if emit_overlap {
                let path = format!("FOOTPRINT_{name}.mayoverlap.json");
                std::fs::write(&path, matrix.to_json()).expect("write may-overlap artifact");
                println!("{name}: wrote {path}");
            }
        }
        if let Some(ds) = &artifacts.dataflow {
            println!(
                "{name}: dataflow schedule {} worker(s), {} partition(s), {} exempt, \
                 {} same-cycle wait(s), {} cross-cycle wait(s)",
                ds.worker_count(),
                ds.worker_of.len(),
                ds.exempt_count(),
                ds.waits_same.iter().map(Vec::len).sum::<usize>(),
                ds.waits_prev.iter().map(Vec::len).sum::<usize>(),
            );
        }
        if !report.is_empty() {
            println!("{report}");
        }
        failed |= !report.is_clean();
    }
    if failed {
        std::process::exit(1);
    }
}
