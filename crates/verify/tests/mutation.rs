//! Mutation testing of the verifier: corrupt a known-good plan or
//! bytecode stream in a specific way and require the corresponding
//! stable diagnostic code. Each corruption models a distinct plan- or
//! compiler-bug class; a verifier that misses one of these is not
//! actually checking the invariant it claims to.

use essent_core::diag::codes;
use essent_core::plan::CcssPlan;
use essent_netlist::{Netlist, SignalId};
use essent_sim::compile::{compile_plan, Block, Item, Layout};
use essent_sim::step1::{lower_tier1, Op1, OutSpec, Tier1Program, NO_FUSE};
use essent_sim::EngineConfig;
use essent_verify::{check_blocks, check_jit, check_plan, check_tier1, lint_netlist};

fn build(source: &str) -> Netlist {
    let parsed = essent_firrtl::parse(source).expect("test FIRRTL parses");
    let lowered = essent_firrtl::passes::lower(parsed).expect("test FIRRTL lowers");
    Netlist::from_circuit(&lowered).expect("test netlist builds")
}

/// Four inverters in a row. The whole chain is one fanout-free cone, so
/// it always lands in a single partition — the stage for in-partition
/// ordering and bytecode mutations.
fn chain() -> Netlist {
    build(
        "circuit chain :\n  module chain :\n    input clock : Clock\n    input a : UInt<8>\n    output o : UInt<8>\n    node n0 = not(a)\n    node n1 = not(n0)\n    node n2 = not(n1)\n    node n3 = not(n2)\n    o <= n3\n",
    )
}

/// Two register-fed cones joined by a combinational diamond. At
/// `c_p = 1` this partitions into `{t, r2$next}`, `{s, r1$next}`, and
/// `{u1, u2, o}`, with real cross-partition triggers on `s` and `t` —
/// the stage for trigger and partition-graph mutations.
fn diamond() -> Netlist {
    build(
        "circuit diamond :\n  module diamond :\n    input clock : Clock\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<8>\n    reg r1 : UInt<8>, clock\n    reg r2 : UInt<8>, clock\n    node s = xor(r1, a)\n    node t = xor(r2, b)\n    node u1 = and(s, t)\n    node u2 = or(u1, t)\n    o <= u2\n    r1 <= not(s)\n    r2 <= not(t)\n",
    )
}

/// One register whose writer partition is scheduled before its two
/// reader partitions; the planner correctly refuses to elide it — the
/// stage for the forced-elision mutation.
fn reg_late_readers() -> Netlist {
    build(
        "circuit regs :\n  module regs :\n    input clock : Clock\n    input a : UInt<8>\n    input b : UInt<8>\n    output o1 : UInt<8>\n    output o2 : UInt<8>\n    reg r : UInt<8>, clock\n    node m = xor(r, a)\n    r <= m\n    node u = and(r, b)\n    o1 <= u\n    node v = xor(r, b)\n    o2 <= v\n",
    )
}

fn sid(netlist: &Netlist, name: &str) -> SignalId {
    netlist.expect_signal(name)
}

#[test]
fn pristine_plans_verify_clean() {
    for netlist in [chain(), diamond(), reg_late_readers()] {
        for c_p in [1, 2, 64] {
            let plan = CcssPlan::build(&netlist, c_p);
            let report = check_plan(&netlist, &plan);
            assert_eq!(report.error_count(), 0, "c_p={c_p}:\n{report}");
        }
    }
}

#[test]
fn dropped_trigger_is_v0102() {
    let netlist = diamond();
    let mut plan = CcssPlan::build(&netlist, 1);
    let cleared = plan
        .partitions
        .iter_mut()
        .flat_map(|p| &mut p.outputs)
        .find(|o| !o.consumers.is_empty())
        .map(|o| o.consumers = Vec::new());
    assert!(
        cleared.is_some(),
        "diamond plan must have a trigger to drop"
    );
    let report = check_plan(&netlist, &plan);
    assert!(report.contains(codes::TRIGGER_MISSING), "{report}");
}

#[test]
fn cyclic_partition_graph_is_v0103() {
    let netlist = diamond();
    let mut plan = CcssPlan::build(&netlist, 1);
    // Move `u2` into `s`'s partition: that partition then both feeds
    // `u1`'s partition (via s -> u1) and reads from it (via u1 -> u2).
    let (s, u1, u2) = (sid(&netlist, "s"), sid(&netlist, "u1"), sid(&netlist, "u2"));
    let from = plan.sched_of_signal[u2.index()] as usize;
    let to = plan.sched_of_signal[s.index()] as usize;
    assert_ne!(from, to, "u2 and s start in different partitions");
    assert_eq!(
        plan.sched_of_signal[u1.index()] as usize,
        from,
        "u1 stays behind in u2's original partition"
    );
    plan.partitions[from].members.retain(|&m| m != u2);
    plan.partitions[to].members.push(u2);
    plan.sched_of_signal[u2.index()] = to as u32;
    let report = check_plan(&netlist, &plan);
    assert!(report.contains(codes::PARTITION_CYCLE), "{report}");
}

#[test]
fn bad_topo_order_is_v0104() {
    let netlist = chain();
    // One partition holding the whole chain: swapping the first two
    // members breaks the in-partition dependency order.
    let mut plan = CcssPlan::build(&netlist, 64);
    let part = plan
        .partitions
        .iter_mut()
        .find(|p| p.members.len() >= 2)
        .expect("coarse plan has a multi-member partition");
    part.members.swap(0, 1);
    let report = check_plan(&netlist, &plan);
    assert!(report.contains(codes::TOPO_ORDER), "{report}");
}

#[test]
fn double_cover_is_v0105() {
    let netlist = chain();
    let mut plan = CcssPlan::build(&netlist, 1);
    let n0 = sid(&netlist, "n0");
    let home = plan.sched_of_signal[n0.index()] as usize;
    let other = (0..plan.partitions.len())
        .find(|&p| p != home)
        .expect("plan has a second partition");
    plan.partitions[other].members.push(n0);
    let report = check_plan(&netlist, &plan);
    assert!(report.contains(codes::DOUBLE_COVER), "{report}");
}

#[test]
fn unsafe_elision_is_v0106() {
    let netlist = reg_late_readers();
    let mut plan = CcssPlan::build(&netlist, 1);
    // The planner schedules the writer partition (`m`, computing
    // `r$next`) before the reader partitions (`u`, `v`) and therefore
    // keeps the register two-phase. Force-eliding it makes the readers
    // observe next-cycle state — the exact bug class Section III-B1's
    // side condition exists to prevent.
    let ri = plan
        .reg_plans
        .iter()
        .position(|rp| !rp.elided)
        .expect("planner refuses to elide this register");
    let writer = plan.sched_of_signal[sid(&netlist, "m").index()];
    let reader = plan.sched_of_signal[sid(&netlist, "u").index()];
    assert!(writer < reader, "writer runs before the readers here");
    plan.reg_plans[ri].elided = true;
    plan.partitions[writer as usize].elided_regs.push(ri);
    let report = check_plan(&netlist, &plan);
    assert!(report.contains(codes::UNSAFE_ELISION), "{report}");
}

#[test]
fn dropped_input_wake_is_v0107() {
    let netlist = chain();
    let mut plan = CcssPlan::build(&netlist, 1);
    let entry = plan
        .input_wakes
        .iter_mut()
        .find(|(_, wakes)| !wakes.is_empty())
        .expect("input `a` must wake its reader");
    entry.1 = Vec::new();
    let report = check_plan(&netlist, &plan);
    assert!(report.contains(codes::INPUT_WAKE_MISSING), "{report}");
}

#[test]
fn out_of_bounds_arg_is_b0201() {
    let netlist = chain();
    let config = EngineConfig::default();
    let plan = CcssPlan::build(&netlist, 1);
    let layout = Layout::new(&netlist);
    let mut blocks = compile_plan(&netlist, &layout, &plan, &config);
    let clean = check_blocks(&netlist, &layout, &blocks, Some(&plan));
    assert_eq!(clean.error_count(), 0, "{clean}");
    let step = blocks
        .iter_mut()
        .flat_map(|b| &mut b.items)
        .find_map(|item| match item {
            Item::Step(s) if !s.args.is_empty() => Some(s),
            _ => None,
        })
        .expect("compiled chain has a step with operands");
    step.args[0].off = 1 << 20;
    let report = check_blocks(&netlist, &layout, &blocks, Some(&plan));
    assert!(report.contains(codes::ARG_OUT_OF_BOUNDS), "{report}");
}

#[test]
fn reordered_bytecode_is_b0204() {
    let netlist = chain();
    let config = EngineConfig::default();
    let plan = CcssPlan::build(&netlist, 64);
    let layout = Layout::new(&netlist);
    let mut blocks = compile_plan(&netlist, &layout, &plan, &config);
    let block = blocks
        .iter_mut()
        .find(|b| b.items.len() >= 2)
        .expect("coarse compilation has a multi-item block");
    block.items.swap(0, 1);
    let report = check_blocks(&netlist, &layout, &blocks, Some(&plan));
    assert!(report.contains(codes::DEF_BEFORE_USE), "{report}");
}

/// A compiled design with every partition lowered into the word-
/// specialized tier — the stage for tier-program mutations.
struct TierSetup {
    layout: Layout,
    blocks: Vec<Block>,
    outs: Vec<Vec<OutSpec>>,
    progs: Vec<Tier1Program>,
}

fn tier_setup(netlist: &Netlist, c_p: usize) -> TierSetup {
    let config = EngineConfig::default();
    let plan = CcssPlan::build(netlist, c_p);
    let layout = Layout::new(netlist);
    let blocks = compile_plan(netlist, &layout, &plan, &config);
    let mut outs = Vec::new();
    let mut progs = Vec::new();
    for (part, block) in plan.partitions.iter().zip(&blocks) {
        let po: Vec<OutSpec> = part
            .outputs
            .iter()
            .map(|o| OutSpec {
                sig: o.signal,
                consumers: o.consumers.clone(),
            })
            .collect();
        progs.push(lower_tier1(netlist, block, &po, true));
        outs.push(po);
    }
    TierSetup {
        layout,
        blocks,
        outs,
        progs,
    }
}

fn tier_report(netlist: &Netlist, setup: &TierSetup) -> essent_core::diag::Report {
    let mut report = essent_core::diag::Report::new();
    for (sched, prog) in setup.progs.iter().enumerate() {
        report.merge(check_tier1(
            netlist,
            &setup.layout,
            &setup.blocks[sched],
            &setup.outs[sched],
            prog,
            true,
            sched,
        ));
    }
    report
}

/// A mux whose ways are single-consumer chains: compiles to a
/// conditional-mux diamond under the default config — the stage for
/// control-flow mutations.
fn mux_diamond() -> Netlist {
    build(
        "circuit M :\n  module M :\n    input clock : Clock\n    input c : UInt<1>\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<16>\n    node hi = mul(a, a)\n    node lo = mul(b, b)\n    o <= mux(c, hi, lo)\n",
    )
}

/// Signals wider than a word keep the generic path: the tier audit must
/// accept a program that is all `Generic` fallbacks.
fn wide() -> Netlist {
    build(
        "circuit W :\n  module W :\n    input clock : Clock\n    input a : UInt<100>\n    input b : UInt<100>\n    output o : UInt<100>\n    node s = xor(a, b)\n    node t = and(s, a)\n    o <= or(t, b)\n",
    )
}

#[test]
fn pristine_tier_programs_verify_clean() {
    for netlist in [
        chain(),
        diamond(),
        reg_late_readers(),
        mux_diamond(),
        wide(),
    ] {
        for c_p in [1, 2, 64] {
            let setup = tier_setup(&netlist, c_p);
            let report = tier_report(&netlist, &setup);
            assert_eq!(report.error_count(), 0, "c_p={c_p}:\n{report}");
        }
    }
}

#[test]
fn corrupted_tier_operand_is_b0210() {
    let netlist = chain();
    let mut setup = tier_setup(&netlist, 1);
    let inst = setup
        .progs
        .iter_mut()
        .flat_map(|p| &mut p.code)
        .find(|i| !matches!(i.op, Op1::Jmp | Op1::JmpIf0 | Op1::Generic))
        .expect("lowered chain has a specialized value instruction");
    inst.a += 1;
    let report = tier_report(&netlist, &setup);
    assert!(report.contains(codes::TIER_DECODE), "{report}");
}

#[test]
fn corrupted_fused_consumers_is_b0211() {
    let netlist = diamond();
    let mut setup = tier_setup(&netlist, 1);
    let range = setup
        .progs
        .iter_mut()
        .find_map(|p| {
            p.code
                .iter()
                .find(|i| i.ws != NO_FUSE && i.we > i.ws)
                .map(|i| i.ws as usize)
                .map(|ws| &mut p.consumers[ws])
        })
        .expect("diamond plan must have a fused trigger with consumers");
    *range = 97;
    let report = tier_report(&netlist, &setup);
    assert!(report.contains(codes::TIER_FUSE), "{report}");
}

#[test]
fn defused_output_missing_from_unfused_list_is_b0211() {
    let netlist = diamond();
    let mut setup = tier_setup(&netlist, 1);
    let inst = setup
        .progs
        .iter_mut()
        .flat_map(|p| &mut p.code)
        .find(|i| i.ws != NO_FUSE)
        .expect("diamond plan must have a fused output");
    // Silently dropping the fused tail without re-registering the output
    // for snapshot-compare would strand its consumers forever.
    inst.ws = NO_FUSE;
    inst.we = NO_FUSE;
    let report = tier_report(&netlist, &setup);
    assert!(report.contains(codes::TIER_FUSE), "{report}");
}

#[test]
fn corrupted_jump_target_is_b0212() {
    let netlist = mux_diamond();
    let mut setup = tier_setup(&netlist, 1);
    let jmp = setup
        .progs
        .iter_mut()
        .flat_map(|p| &mut p.code)
        .find(|i| matches!(i.op, Op1::Jmp))
        .expect("conditional mux must lower to a diamond with a Jmp");
    // A backward jump breaks the structural termination proof.
    jmp.a = 0;
    let report = tier_report(&netlist, &setup);
    assert!(report.contains(codes::TIER_FLOW), "{report}");
}

/// The three analysis lint codes other than `code` — each analysis-lint
/// mutation must trigger its own code and none of its siblings.
fn assert_only_analysis_code(
    report: &essent_core::diag::Report,
    code: essent_core::diag::DiagCode,
) {
    assert!(report.contains(code), "{report}");
    for other in [
        codes::DEAD_UPPER_BITS,
        codes::CONST_COMPARISON,
        codes::CONST_REGISTER,
        codes::UNREACHABLE_MUX_WAY,
    ] {
        if other != code {
            assert!(!report.contains(other), "unexpected {other}:\n{report}");
        }
    }
    assert_eq!(report.error_count(), 0, "{report}");
}

#[test]
fn dead_upper_bits_is_l0006() {
    // `and(a, 15)` pins the top four bits of an eight-bit signal to zero.
    let netlist = build(
        "circuit du :\n  module du :\n    input a : UInt<8>\n    output o : UInt<8>\n    node m = and(a, UInt<8>(15))\n    o <= m\n",
    );
    assert_only_analysis_code(&lint_netlist(&netlist), codes::DEAD_UPPER_BITS);
}

#[test]
fn const_comparison_is_l0007() {
    // An eight-bit value is always below 256; the ranges never overlap.
    let netlist = build(
        "circuit cc :\n  module cc :\n    input a : UInt<8>\n    output o : UInt<1>\n    node c = lt(a, UInt<9>(256))\n    o <= c\n",
    );
    assert_only_analysis_code(&lint_netlist(&netlist), codes::CONST_COMPARISON);
}

#[test]
fn const_register_is_l0008() {
    // A self-fed register can never leave its power-on zero.
    let netlist = build(
        "circuit cr :\n  module cr :\n    input clock : Clock\n    output o : UInt<1>\n    reg r : UInt<1>, clock\n    r <= r\n    o <= r\n",
    );
    assert_only_analysis_code(&lint_netlist(&netlist), codes::CONST_REGISTER);
}

#[test]
fn unreachable_mux_way_is_l0009() {
    // The selector is masked to zero without being a literal constant.
    let netlist = build(
        "circuit um :\n  module um :\n    input b : UInt<1>\n    input x : UInt<8>\n    input y : UInt<8>\n    output o : UInt<8>\n    node sel = and(b, UInt<1>(0))\n    o <= mux(sel, x, y)\n",
    );
    assert_only_analysis_code(&lint_netlist(&netlist), codes::UNREACHABLE_MUX_WAY);
}

/// A registered design with a memory write port, so the profiler wiring
/// has entries in every attribution table: units, register slots,
/// memory-write slots, and input slots — the stage for wiring mutations.
fn memful() -> Netlist {
    build(
        "circuit memful :\n  module memful :\n    input clock : Clock\n    input a : UInt<8>\n    input we : UInt<1>\n    output o : UInt<8>\n    mem m :\n      data-type => UInt<8>\n      depth => 8\n      read-latency => 0\n      write-latency => 1\n      reader => rd\n      writer => wr\n      read-under-write => undefined\n    reg r : UInt<3>, clock\n    r <= tail(add(r, UInt<3>(1)), 1)\n    m.rd.clk <= clock\n    m.rd.en <= UInt<1>(1)\n    m.rd.addr <= r\n    m.wr.clk <= clock\n    m.wr.en <= we\n    m.wr.addr <= r\n    m.wr.data <= a\n    m.wr.mask <= UInt<1>(1)\n    o <= m.rd.data\n",
    )
}

/// A wiring built by the engines' constructor plus the plan it claims to
/// describe — the starting point every wiring mutation corrupts.
fn wiring_setup(netlist: &Netlist, c_p: usize) -> (CcssPlan, essent_sim::ProfileWiring) {
    let plan = CcssPlan::build(netlist, c_p);
    let wiring = essent_sim::ProfileWiring::for_plan(netlist, &plan);
    (plan, wiring)
}

#[test]
fn pristine_profile_wirings_verify_clean() {
    for netlist in [chain(), diamond(), reg_late_readers(), memful()] {
        for c_p in [1, 2, 64] {
            let (plan, wiring) = wiring_setup(&netlist, c_p);
            let report = essent_verify::check_profile(&netlist, &plan, &wiring);
            assert_eq!(report.error_count(), 0, "c_p={c_p}:\n{report}");
        }
    }
}

#[test]
fn off_by_one_producer_attribution_is_p0302() {
    let netlist = diamond();
    let (plan, mut wiring) = wiring_setup(&netlist, 1);
    assert!(wiring.producer_slot.len() >= 2, "need multiple partitions");
    // Shift every producer's slot down one (wrapping): classic off-by-one
    // that charges each partition's wakes to its schedule predecessor.
    let n = wiring.producer_slot.len() as u32;
    for s in &mut wiring.producer_slot {
        *s = (*s + n - 1) % n;
    }
    let report = essent_verify::check_profile(&netlist, &plan, &wiring);
    assert!(report.contains(codes::PROFILE_MISATTRIBUTION), "{report}");
    assert!(!report.contains(codes::PROFILE_SLOT_RANGE), "{report}");
}

#[test]
fn reg_mem_slot_collision_is_p0303() {
    let netlist = memful();
    let (plan, mut wiring) = wiring_setup(&netlist, 1);
    assert!(
        !wiring.reg_slot.is_empty() && !wiring.mem_slot.is_empty(),
        "memful design has both register and memory-write plans"
    );
    // Point the memory-write plan at the register's slot: both causes
    // would silently accumulate into one count.
    wiring.mem_slot[0] = wiring.reg_slot[0];
    let report = essent_verify::check_profile(&netlist, &plan, &wiring);
    assert!(report.contains(codes::PROFILE_SLOT_ALIAS), "{report}");
    // The collision is also a misattribution of the mem plan.
    assert!(report.contains(codes::PROFILE_MISATTRIBUTION), "{report}");
}

#[test]
fn truncated_unit_table_is_p0301() {
    let netlist = diamond();
    let (plan, mut wiring) = wiring_setup(&netlist, 1);
    wiring.unit_names.pop();
    let report = essent_verify::check_profile(&netlist, &plan, &wiring);
    assert!(report.contains(codes::PROFILE_UNIT_COUNT), "{report}");
}

#[test]
fn out_of_range_state_slot_is_p0304() {
    let netlist = memful();
    let (plan, mut wiring) = wiring_setup(&netlist, 1);
    let n_state = wiring.state_names.len() as u32;
    wiring.reg_slot[0] = n_state + 3;
    let report = essent_verify::check_profile(&netlist, &plan, &wiring);
    assert!(report.contains(codes::PROFILE_SLOT_RANGE), "{report}");
}

#[test]
fn aliased_input_slots_are_p0303() {
    let netlist = diamond();
    let (plan, mut wiring) = wiring_setup(&netlist, 1);
    assert!(
        wiring.input_slot.len() >= 2,
        "diamond has two waking inputs"
    );
    let shared = wiring.input_slot[0].1;
    wiring.input_slot[1].1 = shared;
    let report = essent_verify::check_profile(&netlist, &plan, &wiring);
    assert!(report.contains(codes::PROFILE_SLOT_ALIAS), "{report}");
}

#[test]
fn dropped_input_slot_is_p0301() {
    let netlist = diamond();
    let (plan, mut wiring) = wiring_setup(&netlist, 1);
    wiring.input_slot.pop();
    wiring.input_names.pop();
    let report = essent_verify::check_profile(&netlist, &plan, &wiring);
    assert!(report.contains(codes::PROFILE_UNIT_COUNT), "{report}");
}

#[test]
fn dead_code_and_truncation_lints() {
    let netlist = build(
        "circuit lints :\n  module lints :\n    input clock : Clock\n    input a : UInt<8>\n    output o : UInt<4>\n    node dead = not(a)\n    node keep = not(a)\n    o <= keep\n",
    );
    let report = lint_netlist(&netlist);
    assert!(report.contains(codes::DEAD_SIGNAL), "{report}");
    assert!(report.contains(codes::WIDTH_TRUNCATION), "{report}");
    assert_eq!(report.error_count(), 0, "{report}");
}

// --- F04: profile-feedback layer ------------------------------------

use essent_core::partition::{
    partition, partition_with_prior, ActivityMergeParams, ActivityMergeRecord, ActivityPrior,
    Partitioning,
};
use essent_core::plan::extended_dag;
use essent_sim::par::{plan_levels, CostModel, LevelSchedule};
use essent_verify::{check_activity_merge, check_level_schedule};

/// The plan + LPT schedule a feedback-enabled engine would build, ready
/// for bin and cost mutations.
fn sched_setup(netlist: &Netlist, c_p: usize) -> (CcssPlan, LevelSchedule, CostModel) {
    let plan = CcssPlan::build(netlist, c_p);
    let layout = Layout::new(netlist);
    let blocks = compile_plan(netlist, &layout, &plan, &EngineConfig::default());
    let cost = CostModel::build(&plan, &blocks, None);
    let sched = LevelSchedule::build(&plan_levels(&plan), &cost, 4);
    (plan, sched, cost)
}

#[test]
fn pristine_feedback_layer_is_clean() {
    for netlist in [chain(), diamond(), reg_late_readers()] {
        for c_p in [1, 2, 64] {
            let (dag, _) = extended_dag(&netlist);
            let prior = ActivityPrior::uniform(dag.node_count(), 1.0);
            let params = ActivityMergeParams::for_cp(c_p);
            let (merged, log) = partition_with_prior(&dag, c_p, &prior, &params);
            let report = check_activity_merge(&dag, c_p, &prior, &params, &log, &merged);
            assert_eq!(report.error_count(), 0, "c_p={c_p}:\n{report}");
            let (plan, sched, cost) = sched_setup(&netlist, c_p);
            let report = check_level_schedule(&plan, &sched, &cost, 4);
            assert_eq!(report.error_count(), 0, "c_p={c_p}:\n{report}");
        }
    }
}

#[test]
fn cold_merge_in_log_is_f0401() {
    // A fabricated log entry merging two partitions whose activity is
    // *below* the hot threshold: the replay must reject it even though
    // the merge itself is structurally legal.
    let netlist = diamond();
    let (dag, _) = extended_dag(&netlist);
    let prior = ActivityPrior::uniform(dag.node_count(), 0.0);
    let params = ActivityMergeParams::for_cp(1);
    let mut parts = partition(&dag, 1);
    let live: Vec<usize> = parts.live_partitions().collect();
    assert!(live.len() >= 2, "diamond at c_p=1 has several partitions");
    let (a, b) = (live[0], live[1]);
    let log = vec![ActivityMergeRecord {
        kept: a,
        absorbed: b,
        rate_kept: 0.0,
        rate_absorbed: 0.0,
    }];
    parts.merge(a, b);
    let report = check_activity_merge(&dag, 1, &prior, &params, &log, &parts);
    assert!(report.contains(codes::ACTIVITY_SIDE_CONDITION), "{report}");
}

#[test]
fn assignment_mismatch_is_f0401() {
    // The claimed final partitioning disagrees with what replaying the
    // log produces (a node silently moved after the merge phase).
    let netlist = diamond();
    let (dag, _) = extended_dag(&netlist);
    let prior = ActivityPrior::uniform(dag.node_count(), 1.0);
    let params = ActivityMergeParams::for_cp(1);
    let (merged, log) = partition_with_prior(&dag, 1, &prior, &params);
    let mut assignment = merged.assignment().to_vec();
    let donor = assignment[0];
    let victim = assignment
        .iter()
        .position(|&p| p != donor)
        .expect("more than one live partition");
    assignment[victim] = donor;
    let slots = assignment.iter().max().unwrap() + 1;
    let forged = Partitioning::from_assignment(assignment, slots);
    let report = check_activity_merge(&dag, 1, &prior, &params, &log, &forged);
    assert!(report.contains(codes::ACTIVITY_SIDE_CONDITION), "{report}");
}

#[test]
fn moved_bin_entry_is_f0402() {
    let netlist = diamond();
    let (plan, mut sched, cost) = sched_setup(&netlist, 1);
    assert!(sched.levels.len() >= 2, "diamond has a trigger edge");
    let s = sched.levels[0].bins[0].pop().expect("level 0 nonempty");
    sched.levels[1].bins[0].push(s);
    let report = check_level_schedule(&plan, &sched, &cost, 4);
    assert!(report.contains(codes::BIN_COVER), "{report}");
}

#[test]
fn dropped_bin_entry_is_f0402() {
    let netlist = diamond();
    let (plan, mut sched, cost) = sched_setup(&netlist, 1);
    sched.levels[0].bins[0].pop().expect("level 0 nonempty");
    let report = check_level_schedule(&plan, &sched, &cost, 4);
    assert!(report.contains(codes::BIN_COVER), "{report}");
}

#[test]
fn duplicated_bin_entry_is_f0402() {
    let netlist = diamond();
    let (plan, mut sched, cost) = sched_setup(&netlist, 1);
    let s = sched.levels[0].bins[0][0];
    sched.levels[0].bins[0].push(s);
    let report = check_level_schedule(&plan, &sched, &cost, 4);
    assert!(report.contains(codes::BIN_COVER), "{report}");
}

#[test]
fn truncated_cost_table_is_f0403() {
    let netlist = diamond();
    let (plan, sched, mut cost) = sched_setup(&netlist, 1);
    cost.costs.pop();
    let report = check_level_schedule(&plan, &sched, &cost, 4);
    assert!(report.contains(codes::COST_RANGE), "{report}");
}

#[test]
fn zero_cost_entry_is_f0403() {
    let netlist = diamond();
    let (plan, sched, mut cost) = sched_setup(&netlist, 1);
    cost.costs[0] = 0;
    let report = check_level_schedule(&plan, &sched, &cost, 4);
    assert!(report.contains(codes::COST_RANGE), "{report}");
}

// ---------------------------------------------------------------------
// Layer six: footprint / race freedom (R0501-R0504)
// ---------------------------------------------------------------------

use essent_verify::check_footprint;

/// Everything `check_footprint` consumes, built the same way the
/// parallel engine builds it — the stage for footprint mutations.
struct FootSetup {
    layout: Layout,
    plan: CcssPlan,
    blocks: Vec<Block>,
    progs: Option<Vec<Tier1Program>>,
}

fn foot_setup(netlist: &Netlist, c_p: usize, tier: bool) -> FootSetup {
    let config = EngineConfig::default();
    let plan = CcssPlan::build(netlist, c_p);
    let layout = Layout::new(netlist);
    let blocks = compile_plan(netlist, &layout, &plan, &config);
    let progs = tier.then(|| {
        plan.partitions
            .iter()
            .zip(&blocks)
            .map(|(part, block)| {
                let po: Vec<OutSpec> = part
                    .outputs
                    .iter()
                    .map(|o| OutSpec {
                        sig: o.signal,
                        consumers: o.consumers.clone(),
                    })
                    .collect();
                lower_tier1(netlist, block, &po, true)
            })
            .collect()
    });
    FootSetup {
        layout,
        plan,
        blocks,
        progs,
    }
}

fn foot_report(netlist: &Netlist, s: &FootSetup) -> essent_core::diag::Report {
    check_footprint(netlist, &s.layout, &s.plan, &s.blocks, s.progs.as_deref()).0
}

/// Each footprint mutation must flip exactly its own R-code: the target
/// present, the three siblings absent.
fn assert_only_r_code(report: &essent_core::diag::Report, code: essent_core::diag::DiagCode) {
    assert!(report.contains(code), "{report}");
    for other in [
        codes::FOOTPRINT_TIER_MISMATCH,
        codes::FOOTPRINT_WRITE_WRITE,
        codes::FOOTPRINT_WRITE_READ,
        codes::FOOTPRINT_ESCAPE,
    ] {
        if other != code {
            assert!(!report.contains(other), "unexpected {other}:\n{report}");
        }
    }
}

#[test]
fn pristine_footprints_verify_clean() {
    for netlist in [
        chain(),
        diamond(),
        reg_late_readers(),
        mux_diamond(),
        wide(),
    ] {
        for c_p in [1, 2, 64] {
            for tier in [false, true] {
                let setup = foot_setup(&netlist, c_p, tier);
                let report = foot_report(&netlist, &setup);
                assert_eq!(report.error_count(), 0, "c_p={c_p} tier={tier}:\n{report}");
            }
        }
    }
}

#[test]
fn tier_read_drift_is_r0501() {
    let netlist = chain();
    let mut setup = foot_setup(&netlist, 64, true);
    let inst = setup
        .progs
        .as_mut()
        .unwrap()
        .iter_mut()
        .flat_map(|p| &mut p.code)
        .find(|i| !matches!(i.op, Op1::Jmp | Op1::JmpIf0 | Op1::Generic))
        .expect("lowered chain has a specialized value instruction");
    // The tier now reads a different word than the generic block.
    inst.a += 1;
    assert_only_r_code(
        &foot_report(&netlist, &setup),
        codes::FOOTPRINT_TIER_MISMATCH,
    );
}

#[test]
fn tier_write_drift_is_r0501() {
    let netlist = chain();
    let mut setup = foot_setup(&netlist, 64, true);
    let inst = setup
        .progs
        .as_mut()
        .unwrap()
        .iter_mut()
        .flat_map(|p| &mut p.code)
        .find(|i| !matches!(i.op, Op1::Jmp | Op1::JmpIf0 | Op1::Generic))
        .expect("lowered chain has a specialized value instruction");
    // The tier now writes a different word than the generic block.
    inst.dst += 1;
    assert_only_r_code(
        &foot_report(&netlist, &setup),
        codes::FOOTPRINT_TIER_MISMATCH,
    );
}

#[test]
fn unplanned_fused_wake_is_r0501() {
    let netlist = diamond();
    let mut setup = foot_setup(&netlist, 1, true);
    let slot = setup
        .progs
        .as_mut()
        .unwrap()
        .iter_mut()
        .find_map(|p| {
            p.code
                .iter()
                .find(|i| i.ws != NO_FUSE && i.we > i.ws)
                .map(|i| i.ws as usize)
                .map(|ws| &mut p.consumers[ws])
        })
        .expect("diamond plan must have a fused trigger with consumers");
    // The fused tail now wakes a partition no planned consumer list names.
    *slot = 97;
    assert_only_r_code(
        &foot_report(&netlist, &setup),
        codes::FOOTPRINT_TIER_MISMATCH,
    );
}

#[test]
fn duplicated_writer_is_r0502() {
    // Retarget the level-0 writers of `s` and `t` onto `o`'s slot —
    // a circuit output nobody reads, owned by the level-1 join
    // partition. Both level-0 partitions then write the same word
    // without any same-level reader (a pure write/write overlap).
    let netlist = diamond();
    let mut setup = foot_setup(&netlist, 1, false);
    let o = sid(&netlist, "o");
    let o_off = setup.layout.offset(o) as u32;
    let mut retargeted = 0;
    for name in ["s", "t"] {
        let sig = sid(&netlist, name);
        let home = setup.plan.sched_of_signal[sig.index()] as usize;
        let off = setup.layout.offset(sig) as u32;
        for item in &mut setup.blocks[home].items {
            if let Item::Step(step) = item {
                if step.dst.off == off {
                    step.dst.off = o_off;
                    retargeted += 1;
                }
            }
        }
        // Keep the stolen slot inside the declared range so only the
        // overlap itself is out of order.
        setup.plan.partitions[home].members.push(o);
    }
    assert_eq!(retargeted, 2, "s and t each have one writing step");
    assert_only_r_code(&foot_report(&netlist, &setup), codes::FOOTPRINT_WRITE_WRITE);
}

#[test]
fn flattened_levels_are_r0503() {
    let netlist = diamond();
    let mut setup = foot_setup(&netlist, 1, false);
    // Erase every cross-partition trigger: the level derivation then
    // co-schedules the diamond's join partition with the writers of the
    // values it reads.
    let mut erased = 0;
    for part in &mut setup.plan.partitions {
        for o in &mut part.outputs {
            erased += o.consumers.len();
            o.consumers = Vec::new();
        }
    }
    assert!(erased > 0, "diamond plan must have triggers to erase");
    assert_only_r_code(&foot_report(&netlist, &setup), codes::FOOTPRINT_WRITE_READ);
}

#[test]
fn retargeted_write_is_r0504() {
    let netlist = chain();
    let mut setup = foot_setup(&netlist, 64, false);
    // Redirect a step's destination onto the input's slot, which no
    // partition may ever write.
    let a_off = setup.layout.offset(sid(&netlist, "a")) as u32;
    let step = setup
        .blocks
        .iter_mut()
        .flat_map(|b| &mut b.items)
        .find_map(|item| match item {
            Item::Step(s) => Some(s),
            _ => None,
        })
        .expect("chain compiles to plain steps");
    step.dst.off = a_off;
    assert_only_r_code(&foot_report(&netlist, &setup), codes::FOOTPRINT_ESCAPE);
}

#[test]
fn out_of_arena_write_is_r0504() {
    let netlist = chain();
    let mut setup = foot_setup(&netlist, 64, false);
    let total = setup.layout.total_words() as u32;
    let step = setup
        .blocks
        .iter_mut()
        .flat_map(|b| &mut b.items)
        .find_map(|item| match item {
            Item::Step(s) => Some(s),
            _ => None,
        })
        .expect("chain compiles to plain steps");
    // One word past the arena: not owned by any signal at all.
    step.dst.off = total;
    assert_only_r_code(&foot_report(&netlist, &setup), codes::FOOTPRINT_ESCAPE);
}

// ---------------------------------------------------------------------
// Layer seven: dependence / dataflow schedule (S0601-S0605)
// ---------------------------------------------------------------------

use essent_core::depgraph::{synthesize_dataflow, DataflowSchedule, DepGraph};
use essent_core::plan::PlanOptions;
use essent_verify::check_depgraph;

/// A plan plus the dataflow schedule the parallel engine would
/// synthesize over it — with uniformly inflated costs, because the tiny
/// fixtures would otherwise fall under the synthesizer's serial floor
/// and collapse to one worker, hiding every cross-worker obligation.
fn dep_setup(
    netlist: &Netlist,
    elide_state: bool,
    threads: usize,
) -> (CcssPlan, Layout, Vec<Block>, DataflowSchedule) {
    let config = EngineConfig::default();
    let (dag, writes) = extended_dag(netlist);
    let plan = CcssPlan::from_partitioning(
        netlist,
        &dag,
        &writes,
        &partition(&dag, 1),
        PlanOptions {
            elide_state,
            elide_mem: false,
        },
    );
    let layout = Layout::new(netlist);
    let blocks = compile_plan(netlist, &layout, &plan, &config);
    let graph = DepGraph::derive(netlist, &plan);
    let costs = vec![2_000u64; plan.partitions.len()];
    let ds = synthesize_dataflow(&plan, &graph, &costs, threads);
    (plan, layout, blocks, ds)
}

/// Each dependence-schedule mutation must flip exactly its own S-code:
/// the target present, the four siblings absent.
fn assert_only_s_code(report: &essent_core::diag::Report, code: essent_core::diag::DiagCode) {
    assert!(report.contains(code), "{report}");
    for other in [
        codes::DEP_EDGE_UNCOVERED,
        codes::FABRICATED_OVERLAP,
        codes::SCHEDULE_CYCLE,
        codes::MISSING_CROSS_CYCLE_COVER,
        codes::WORKER_COVER,
    ] {
        if other != code {
            assert!(!report.contains(other), "unexpected {other}:\n{report}");
        }
    }
}

#[test]
fn pristine_dataflow_schedules_verify_clean() {
    for netlist in [
        chain(),
        diamond(),
        sunk_diamond(),
        reg_late_readers(),
        wide(),
        memful(),
    ] {
        for elide_state in [false, true] {
            for threads in [1, 2, 4] {
                let (plan, layout, blocks, ds) = dep_setup(&netlist, elide_state, threads);
                let report = check_depgraph(&netlist, &layout, &plan, &blocks, &ds);
                assert_eq!(
                    report.error_count(),
                    0,
                    "elide={elide_state} threads={threads}:\n{report}"
                );
            }
        }
    }
}

/// The diamond with a register sunk on the join: with elision off,
/// every partition (the two leaves *and* the join) touches a register
/// word the serial phase owns, so none of them is exempt.
fn sunk_diamond() -> Netlist {
    build(
        "circuit sunk :\n  module sunk :\n    input clock : Clock\n    input a : UInt<8>\n    input b : UInt<8>\n    output o : UInt<8>\n    reg r1 : UInt<8>, clock\n    reg r2 : UInt<8>, clock\n    reg r3 : UInt<8>, clock\n    node s = xor(r1, a)\n    node t = xor(r2, b)\n    node u1 = and(s, t)\n    node u2 = or(u1, t)\n    r3 <= u2\n    o <= r3\n    r1 <= not(s)\n    r2 <= not(t)\n",
    )
}

#[test]
fn dropped_wait_edge_is_s0601() {
    let netlist = sunk_diamond();
    // Non-elided registers keep every partition serial-conflicting, so
    // no partition is exempt and the exemption codes (S0602/S0604)
    // cannot fire: only the same-cycle coverage proof is in play.
    let (plan, layout, blocks, mut ds) = dep_setup(&netlist, false, 2);
    assert!(ds.worker_count() > 1, "fixture must spread across workers");
    // Only memberless partitions (empty footprint, no obligations) may
    // be exempt here: everything with compute touches a register word.
    assert!(
        ds.exempt
            .iter()
            .zip(&plan.partitions)
            .all(|(&e, part)| !e || part.members.is_empty()),
        "non-elided regs pin serial"
    );
    let (p, q) = (0..plan.partitions.len())
        .find_map(|p| ds.waits_same[p].first().map(|&q| (p, q)))
        .expect("the diamond join waits on a cross-worker producer");
    // Losing the one wait edge that orders the producer before the join
    // leaves their write/read overlap uncovered.
    ds.waits_same[p].retain(|&x| x != q);
    let report = check_depgraph(&netlist, &layout, &plan, &blocks, &ds);
    assert_only_s_code(&report, codes::DEP_EDGE_UNCOVERED);
}

#[test]
fn forged_exemption_is_s0602() {
    let netlist = diamond();
    // A single worker orders everything by list position: S0601/S0603
    // cannot fire, and an unsound exemption never reaches the S0604
    // cross-cycle proof (it is gated on S0602 passing).
    let (plan, layout, blocks, mut ds) = dep_setup(&netlist, false, 1);
    assert_eq!(ds.worker_count(), 1);
    // The partition computing `r1$next` writes a word the serial phase
    // reads for the register commit; claiming it may overlap the cycle
    // boundary fabricates independence.
    let p = plan.sched_of_signal[sid(&netlist, "s").index()] as usize;
    assert!(!ds.exempt[p]);
    ds.exempt[p] = true;
    let report = check_depgraph(&netlist, &layout, &plan, &blocks, &ds);
    assert_only_s_code(&report, codes::FABRICATED_OVERLAP);
}

#[test]
fn cyclic_wait_graph_is_s0603() {
    let netlist = diamond();
    let (plan, layout, blocks, mut ds) = dep_setup(&netlist, false, 2);
    let (p, q) = (0..plan.partitions.len())
        .find_map(|p| ds.waits_same[p].first().map(|&q| (p, q)))
        .expect("the diamond join waits on a cross-worker producer");
    // A reciprocal wait makes the two partitions wait on each other
    // within one cycle: the runtime would deadlock, and the verifier
    // must refuse before attempting any coverage proof over the cyclic
    // graph.
    ds.waits_same[q as usize].push(p as u32);
    let report = check_depgraph(&netlist, &layout, &plan, &blocks, &ds);
    assert_only_s_code(&report, codes::SCHEDULE_CYCLE);
}

#[test]
fn missing_cross_cycle_wait_is_s0604() {
    let netlist = diamond();
    // Default elision empties the serial phase, so every partition is
    // exempt and the cycle-boundary overlap machinery is fully engaged.
    let (plan, layout, blocks, mut ds) = dep_setup(&netlist, true, 2);
    assert!(ds.worker_count() > 1, "fixture must spread across workers");
    assert!(ds.exempt.iter().any(|&e| e), "elided diamond is all-exempt");
    let (p, q) = (0..plan.partitions.len())
        .find_map(|p| {
            if !ds.exempt[p] {
                return None;
            }
            ds.waits_prev[p]
                .iter()
                .find(|&&q| ds.worker_of[q as usize] != ds.worker_of[p])
                .map(|&q| (p, q))
        })
        .expect("an exempt leaf waits on its cross-worker consumer");
    // Without the cross-cycle wait, the leaf can recompute its outputs
    // for cycle k+1 while the consumer is still reading them in cycle k.
    ds.waits_prev[p].retain(|&x| x != q);
    let report = check_depgraph(&netlist, &layout, &plan, &blocks, &ds);
    assert_only_s_code(&report, codes::MISSING_CROSS_CYCLE_COVER);
}

#[test]
fn scrambled_worker_lists_are_s0605() {
    let netlist = diamond();
    let (plan, layout, blocks, mut ds) = dep_setup(&netlist, false, 2);
    let list = ds
        .workers
        .iter_mut()
        .find(|l| l.len() >= 2)
        .expect("two workers over several partitions share one list");
    // Descending list order breaks the done-counter prefix argument
    // (and disagrees with pos_of): the structural cover must refuse
    // before any ordering proof runs.
    list.swap(0, 1);
    let report = check_depgraph(&netlist, &layout, &plan, &blocks, &ds);
    assert_only_s_code(&report, codes::WORKER_COVER);
}

// --- J07: native-code (JIT) audit ------------------------------------

/// Both emitted streams for one tier program: the x86-64 stream (popcnt
/// assumed present, matching what the audit layer checks) and the
/// aarch64 stream. Both are pure byte generators, so mutations exercise
/// both decoders on any build host.
fn jit_streams(prog: &Tier1Program) -> Vec<essent_sim::jit::EmittedCode> {
    vec![
        essent_sim::jit::x64::emit(prog, true).expect("fixture is x64-eligible"),
        essent_sim::jit::a64::emit(prog).expect("fixture is a64-eligible"),
    ]
}

/// The fixture partition with a fused trigger tail — the stage for
/// flag-sink mutations.
fn fused_prog() -> Tier1Program {
    let netlist = diamond();
    let setup = tier_setup(&netlist, 1);
    setup
        .progs
        .into_iter()
        .find(|p| p.code.iter().any(|i| i.ws != NO_FUSE && i.we > i.ws))
        .expect("diamond at c_p=1 has a fused trigger with consumers")
}

#[test]
fn pristine_jit_streams_verify_clean() {
    for netlist in [chain(), diamond(), reg_late_readers(), mux_diamond()] {
        for c_p in [1, 2, 64] {
            let setup = tier_setup(&netlist, c_p);
            for prog in &setup.progs {
                for code in jit_streams(prog) {
                    let report = check_jit(prog, &code, 0);
                    assert_eq!(
                        report.error_count(),
                        0,
                        "{:?} c_p={c_p}:\n{report}",
                        code.arch
                    );
                }
            }
        }
    }
}

#[test]
fn jit_corrupt_byte_is_j0701() {
    let netlist = chain();
    let setup = tier_setup(&netlist, 1);
    let prog = &setup.progs[0];
    for mut code in jit_streams(prog) {
        let start = code.body_start() as usize;
        match code.arch {
            // `push es` does not exist in 64-bit mode: an unrecognizable
            // first byte of the first instruction's span.
            essent_sim::jit::JitArch::X64 => code.bytes[start] = 0x06,
            // An all-zero word is no recognized A64 encoding.
            essent_sim::jit::JitArch::A64 => code.bytes[start..start + 4].fill(0),
        }
        let report = check_jit(prog, &code, 0);
        assert!(
            report.contains(codes::JIT_DECODE),
            "{:?}:\n{report}",
            code.arch
        );
    }
}

#[test]
fn jit_operand_drift_is_j0702() {
    let netlist = chain();
    let setup = tier_setup(&netlist, 1);
    let prog = &setup.progs[0];
    for mut code in jit_streams(prog) {
        let (start, end) = (code.body_start() as usize, code.body_end() as usize);
        let patched = match code.arch {
            essent_sim::jit::JitArch::X64 => {
                // `mov rax, [rdi + disp32]` — shift the arena load one
                // word over, the compiled analogue of a B0210 read drift.
                (start..end.saturating_sub(6))
                    .find(|&i| {
                        code.bytes[i] == 0x48
                            && code.bytes[i + 1] == 0x8B
                            && code.bytes[i + 2] == 0x87
                    })
                    .map(|i| {
                        let d = u32::from_le_bytes(code.bytes[i + 3..i + 7].try_into().unwrap());
                        code.bytes[i + 3..i + 7].copy_from_slice(&(d + 8).to_le_bytes());
                    })
            }
            essent_sim::jit::JitArch::A64 => {
                // `movz x15, #off` feeding the indexed arena access —
                // bump the materialized word offset by one.
                (start..end)
                    .step_by(4)
                    .find(|&i| {
                        let w = u32::from_le_bytes(code.bytes[i..i + 4].try_into().unwrap());
                        w & 0xFFE0_001F == 0xD280_000F && w != 0xD280_000F
                    })
                    .map(|i| {
                        let w = u32::from_le_bytes(code.bytes[i..i + 4].try_into().unwrap());
                        code.bytes[i..i + 4].copy_from_slice(&(w + (1 << 5)).to_le_bytes());
                    })
            }
        };
        assert!(patched.is_some(), "{:?}: no arena operand found", code.arch);
        let report = check_jit(prog, &code, 0);
        assert!(
            report.contains(codes::JIT_OPERAND),
            "{:?}:\n{report}",
            code.arch
        );
    }
}

#[test]
fn jit_jump_escape_is_j0703() {
    let netlist = mux_diamond();
    let setup = tier_setup(&netlist, 1);
    let prog = setup
        .progs
        .iter()
        .find(|p| p.code.iter().any(|i| matches!(i.op, Op1::Jmp)))
        .expect("conditional mux lowers with a Jmp");
    let jmp = prog
        .code
        .iter()
        .position(|i| matches!(i.op, Op1::Jmp))
        .unwrap();
    for mut code in jit_streams(prog) {
        let (s, e) = (code.marks[jmp].0 as usize, code.marks[jmp].1 as usize);
        match code.arch {
            essent_sim::jit::JitArch::X64 => {
                // Retarget the `jmp rel32` far past the epilogue.
                let i = (s..e)
                    .find(|&i| code.bytes[i] == 0xE9)
                    .expect("E9 in Jmp span");
                let d = i32::from_le_bytes(code.bytes[i + 1..i + 5].try_into().unwrap());
                code.bytes[i + 1..i + 5].copy_from_slice(&(d + 0x400).to_le_bytes());
            }
            essent_sim::jit::JitArch::A64 => {
                // `b imm26`: add 0x100 instructions to the displacement.
                let i = (s..e)
                    .step_by(4)
                    .find(|&i| {
                        let w = u32::from_le_bytes(code.bytes[i..i + 4].try_into().unwrap());
                        w & 0xFC00_0000 == 0x1400_0000
                    })
                    .expect("b in Jmp span");
                let w = u32::from_le_bytes(code.bytes[i..i + 4].try_into().unwrap());
                code.bytes[i..i + 4].copy_from_slice(&(w + 0x100).to_le_bytes());
            }
        }
        let report = check_jit(prog, &code, 0);
        assert!(
            report.contains(codes::JIT_FLOW),
            "{:?}:\n{report}",
            code.arch
        );
    }
}

#[test]
fn jit_flag_sink_drift_is_j0704() {
    let prog = fused_prog();
    for mut code in jit_streams(&prog) {
        let (start, end) = (code.body_start() as usize, code.body_end() as usize);
        let patched = match code.arch {
            essent_sim::jit::JitArch::X64 => {
                // `mov byte [rsi + disp32], 1` — wake the wrong consumer,
                // the compiled analogue of a B0211 consumer-set drift.
                (start..end.saturating_sub(6))
                    .find(|&i| code.bytes[i] == 0xC6 && code.bytes[i + 1] == 0x86)
                    .map(|i| {
                        let d = u32::from_le_bytes(code.bytes[i + 2..i + 6].try_into().unwrap());
                        code.bytes[i + 2..i + 6].copy_from_slice(&(d + 1).to_le_bytes());
                    })
            }
            essent_sim::jit::JitArch::A64 => {
                // The `movz x15, #flag` directly preceding the
                // `strb w12, [x1, x15]` wake store.
                let strb: u32 = 0x3820_6800 | (15 << 16) | (1 << 5) | 12;
                (start + 4..end)
                    .step_by(4)
                    .find(|&i| {
                        let w = u32::from_le_bytes(code.bytes[i..i + 4].try_into().unwrap());
                        let prev = u32::from_le_bytes(code.bytes[i - 4..i].try_into().unwrap());
                        w == strb && prev & 0xFFE0_001F == 0xD280_000F
                    })
                    .map(|i| {
                        let w = u32::from_le_bytes(code.bytes[i - 4..i].try_into().unwrap());
                        code.bytes[i - 4..i].copy_from_slice(&(w + (1 << 5)).to_le_bytes());
                    })
            }
        };
        assert!(patched.is_some(), "{:?}: no flag sink found", code.arch);
        let report = check_jit(&prog, &code, 0);
        assert!(
            report.contains(codes::JIT_FUSE),
            "{:?}:\n{report}",
            code.arch
        );
    }
}

// ---------------------------------------------------------------------------
// Layer nine: batched-lane audit (X0801-X0804)
// ---------------------------------------------------------------------------
//
// The corruptions mutate the audit a live `BatchSim` captures — the
// checker must catch a lying engine, not merely a lying test. Each
// mutation models a distinct batch-engine bug class: a stride drift
// (lane l reads lane l+1's words), a wake mask routed to the wrong
// partition (one lane of one partition silently freezes), a compaction
// remap that loses a lane, and a lane whose banks have the wrong shape.

fn batch_setup(netlist: &Netlist, lanes: usize) -> (EngineConfig, essent_sim::BatchAudit) {
    let config = EngineConfig {
        lanes,
        ..EngineConfig::default()
    };
    let sim = essent_sim::BatchSim::new(netlist, &config);
    (config, sim.batch_audit())
}

#[test]
fn pristine_batch_audits_verify_clean() {
    for netlist in [chain(), diamond(), memful()] {
        for lanes in [1, 4] {
            let (config, audit) = batch_setup(&netlist, lanes);
            let report = essent_verify::check_batch(&netlist, &config, &audit);
            assert_eq!(report.error_count(), 0, "lanes={lanes}:\n{report}");
        }
        // Tier off: every output routes through the snapshot tables.
        let config = EngineConfig {
            lanes: 4,
            tier1: false,
            fuse_triggers: false,
            ..EngineConfig::default()
        };
        let sim = essent_sim::BatchSim::new(&netlist, &config);
        let report = essent_verify::check_batch(&netlist, &config, &sim.batch_audit());
        assert_eq!(report.error_count(), 0, "tier off:\n{report}");
    }
}

#[test]
fn batch_stride_drift_is_x0801() {
    let netlist = diamond();
    let (config, mut audit) = batch_setup(&netlist, 4);
    // A stride one wider than the lane count: every word of lane l
    // would be read from lane l's slot in a differently shaped arena.
    audit.stride += 1;
    let report = essent_verify::check_batch(&netlist, &config, &audit);
    assert!(report.contains(codes::BATCH_STRIDE), "{report}");
}

#[test]
fn batch_routed_offset_outside_footprint_is_x0801() {
    let netlist = diamond();
    let (config, mut audit) = batch_setup(&netlist, 4);
    // Redirect a routed trigger to an input's arena slot — a word no
    // partition writes, so the lane compare could never fire.
    let layout = Layout::new(&netlist);
    let input_off = layout.offset(sid(&netlist, "a")) as u32;
    let moved = audit
        .out_routes
        .iter_mut()
        .flat_map(|r| r.iter_mut())
        .next()
        .map(|entry| entry.0 = input_off);
    assert!(moved.is_some(), "diamond must have a routed trigger");
    let report = essent_verify::check_batch(&netlist, &config, &audit);
    assert!(report.contains(codes::BATCH_STRIDE), "{report}");
}

#[test]
fn batch_wake_misroute_is_x0802() {
    let netlist = diamond();
    let (config, mut audit) = batch_setup(&netlist, 4);
    // Drop one consumer from a routed trigger: that partition's lanes
    // would sleep through a producer change.
    let dropped = audit
        .out_routes
        .iter_mut()
        .flat_map(|r| r.iter_mut())
        .find(|entry| !entry.1.is_empty())
        .map(|entry| entry.1.pop());
    assert!(dropped.is_some(), "diamond must have a consumer to drop");
    let report = essent_verify::check_batch(&netlist, &config, &audit);
    assert!(report.contains(codes::BATCH_WAKE_ROUTE), "{report}");
}

#[test]
fn batch_reg_wake_misroute_is_x0802() {
    let netlist = diamond();
    let (config, mut audit) = batch_setup(&netlist, 4);
    let dropped = audit
        .reg_wakes
        .iter_mut()
        .find(|w| !w.is_empty())
        .map(|w| w.pop());
    assert!(dropped.is_some(), "diamond must have a register wake");
    let report = essent_verify::check_batch(&netlist, &config, &audit);
    assert!(report.contains(codes::BATCH_WAKE_ROUTE), "{report}");
}

#[test]
fn batch_lost_lane_remap_is_x0803() {
    let netlist = diamond();
    let (config, mut audit) = batch_setup(&netlist, 4);
    // A compaction remap that maps two logical lanes onto one physical
    // slot: lane 1's state is gone.
    audit.phys_of_log[1] = audit.phys_of_log[0];
    let report = essent_verify::check_batch(&netlist, &config, &audit);
    assert!(report.contains(codes::BATCH_LANE_PERM), "{report}");
}

#[test]
fn batch_inverse_mismatch_is_x0803() {
    let netlist = diamond();
    let (config, mut audit) = batch_setup(&netlist, 4);
    // Both directions are bijections but disagree with each other.
    audit.log_of_phys.swap(0, 1);
    audit.phys_of_log.swap(2, 3);
    let report = essent_verify::check_batch(&netlist, &config, &audit);
    assert!(report.contains(codes::BATCH_LANE_PERM), "{report}");
}

#[test]
fn batch_bank_shape_is_x0804() {
    let netlist = memful();
    let (config, mut audit) = batch_setup(&netlist, 4);
    // One lane's bank claims the wrong depth: its back-door and port
    // bounds checks would cover the wrong address range.
    assert!(!audit.bank_shapes[2].is_empty(), "memful must have a bank");
    audit.bank_shapes[2][0].1 += 1;
    let report = essent_verify::check_batch(&netlist, &config, &audit);
    assert!(report.contains(codes::BATCH_BANK_SHAPE), "{report}");
}
