//! Property test: everything the real pipeline builds must verify.
//!
//! Random synchronous circuits (the same generator the cross-engine
//! equivalence suite uses) are planned and compiled at several `C_p`
//! values; the full independent verifier stack must find zero errors on
//! all of them, optimized or not. Warnings are allowed — generated
//! circuits routinely contain dead cones.

use essent_core::plan::CcssPlan;
use essent_netlist::{opt, Netlist};
use essent_sim::compile::{compile_plan, Layout};
use essent_sim::testgen::gen_circuit;
use essent_sim::EngineConfig;
use essent_verify::{check_blocks, check_layout, check_plan, lint_netlist};
use proptest::prelude::*;

fn build(source: &str) -> Netlist {
    let parsed = essent_firrtl::parse(source)
        .unwrap_or_else(|e| panic!("generated FIRRTL must parse: {e}\n{source}"));
    let lowered = essent_firrtl::passes::lower(parsed)
        .unwrap_or_else(|e| panic!("generated FIRRTL must lower: {e}\n{source}"));
    Netlist::from_circuit(&lowered)
        .unwrap_or_else(|e| panic!("generated FIRRTL must build: {e}\n{source}"))
}

fn check_generated(seed: u64, optimize: bool) {
    let circuit = gen_circuit(seed);
    let mut netlist = build(&circuit.source);
    if optimize {
        opt::optimize(&mut netlist, &opt::OptConfig::default());
    }
    let lints = lint_netlist(&netlist);
    assert_eq!(
        lints.error_count(),
        0,
        "seed {seed} opt={optimize}: lints\n{lints}\n{}",
        circuit.source
    );
    let layout = Layout::new(&netlist);
    let layout_report = check_layout(&netlist, &layout);
    assert_eq!(
        layout_report.error_count(),
        0,
        "seed {seed} opt={optimize}: layout\n{layout_report}"
    );
    for c_p in [1usize, 4, 8, 64] {
        let plan = CcssPlan::build(&netlist, c_p);
        let report = check_plan(&netlist, &plan);
        assert_eq!(
            report.error_count(),
            0,
            "seed {seed} opt={optimize} c_p={c_p}: plan\n{report}\n{}",
            circuit.source
        );
        for mux_conditional in [false, true] {
            let config = EngineConfig {
                c_p,
                mux_conditional,
                ..EngineConfig::default()
            };
            let blocks = compile_plan(&netlist, &layout, &plan, &config);
            let report = check_blocks(&netlist, &layout, &blocks, Some(&plan));
            assert_eq!(
                report.error_count(),
                0,
                "seed {seed} opt={optimize} c_p={c_p} mux={mux_conditional}: bytecode\n{report}\n{}",
                circuit.source
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_circuits_verify_unoptimized(seed in any::<u64>()) {
        check_generated(seed, false);
    }

    #[test]
    fn generated_circuits_verify_optimized(seed in any::<u64>()) {
        check_generated(seed, true);
    }
}
