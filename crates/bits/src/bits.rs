//! An owned, arbitrary-width bit vector.
//!
//! [`Bits`] is the value type used at API boundaries: simulator peek/poke,
//! FIRRTL literal parsing, and constant folding. It wraps the word-slice
//! [`crate::kernels`] with width bookkeeping so callers cannot
//! violate the representation invariant.

use crate::{kernels, top_mask, words};
use std::cmp::Ordering;
use std::error::Error;
use std::fmt;

/// An owned bit vector of fixed width.
///
/// The numeric interpretation (unsigned vs. two's-complement) is chosen per
/// operation, mirroring FIRRTL where signedness is a property of the
/// expression type rather than the stored bits.
///
/// # Examples
///
/// ```
/// use essent_bits::Bits;
///
/// let x = Bits::from_i64(-1, 4);
/// assert_eq!(x.to_u64(), Some(0b1111));
/// assert_eq!(x.to_i64(), Some(-1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u32,
    limbs: Vec<u64>,
}

impl Bits {
    /// The all-zeros value of the given width.
    pub fn zero(width: u32) -> Self {
        Bits {
            width,
            limbs: vec![0; words(width)],
        }
    }

    /// The all-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        let mut limbs = vec![u64::MAX; words(width)];
        let last = limbs.len() - 1;
        limbs[last] = top_mask(width);
        Bits { width, limbs }
    }

    /// Builds a value from a `u64`, truncating to `width` bits.
    pub fn from_u64(value: u64, width: u32) -> Self {
        let mut b = Bits::zero(width);
        b.limbs[0] = value;
        kernels::normalize(&mut b.limbs, width);
        b
    }

    /// Builds a value from an `i64` two's-complement pattern truncated to
    /// `width` bits.
    pub fn from_i64(value: i64, width: u32) -> Self {
        let mut b = Bits::zero(width);
        let n = b.limbs.len();
        for (i, l) in b.limbs.iter_mut().enumerate() {
            *l = if i == 0 {
                value as u64
            } else if value < 0 {
                u64::MAX
            } else {
                0
            };
            let _ = n;
        }
        kernels::normalize(&mut b.limbs, width);
        b
    }

    /// Builds a value from little-endian limbs, truncating to `width`.
    pub fn from_limbs(mut limbs: Vec<u64>, width: u32) -> Self {
        limbs.resize(words(width), 0);
        let mut b = Bits { width, limbs };
        kernels::normalize(&mut b.limbs, width);
        b
    }

    /// Parses a FIRRTL-style based literal body: decimal by default, or
    /// `h…`/`o…`/`b…` prefixed hex/octal/binary, with an optional leading
    /// `-` (two's complement of the magnitude).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitsError`] when the body is empty, contains a
    /// digit invalid for its radix, or encodes a magnitude that does not
    /// fit the declared width (`parse("hff", 4)` is an error, not a
    /// silent truncation to `0xf`).
    ///
    /// # Examples
    ///
    /// ```
    /// use essent_bits::Bits;
    /// let v = Bits::parse("hff", 8)?;
    /// assert_eq!(v.to_u64(), Some(255));
    /// assert!(Bits::parse("hff", 4).is_err());
    /// # Ok::<(), essent_bits::ParseBitsError>(())
    /// ```
    pub fn parse(body: &str, width: u32) -> Result<Self, ParseBitsError> {
        let (neg, body) = match body.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, body),
        };
        let (radix, digits) = match body.chars().next() {
            Some('h') => (16, &body[1..]),
            Some('o') => (8, &body[1..]),
            Some('b') => (2, &body[1..]),
            Some(_) => (10, body),
            None => return Err(ParseBitsError::Empty),
        };
        // Some emitters write `h-ff`; accept sign after the radix tag too.
        let (neg, digits) = match digits.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (neg, digits),
        };
        if digits.is_empty() {
            return Err(ParseBitsError::Empty);
        }
        // Accumulate with five guard bits above the declared width: one
        // radix step on an in-range magnitude (`acc * 16 + 15`) grows it
        // by at most five bits, so the first digit that pushes the true
        // value past `width` is caught in the guard range before a later
        // step could wrap it back into range.
        let w = width.max(1);
        let aw = w + 5;
        let mut acc = Bits::zero(aw);
        let radix_b = Bits::from_u64(radix, aw);
        for ch in digits.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch
                .to_digit(radix as u32)
                .ok_or(ParseBitsError::InvalidDigit(ch))?;
            // acc = acc * radix + d.
            let mut next = Bits::zero(aw);
            kernels::mul(
                &mut next.limbs,
                aw,
                &acc.limbs,
                aw,
                &radix_b.limbs,
                aw,
                false,
            );
            let dv = Bits::from_u64(d as u64, aw);
            let mut sum = Bits::zero(aw);
            kernels::add(&mut sum.limbs, aw, &next.limbs, aw, &dv.limbs, aw, false);
            acc = sum;
            if !acc.extract(aw - 1, w).is_zero() {
                return Err(ParseBitsError::Overflow { width });
            }
        }
        // Width 0 admits only the value zero.
        if width == 0 && !acc.is_zero() {
            return Err(ParseBitsError::Overflow { width });
        }
        let mut out = if neg {
            // The magnitude fits `width` bits; the two's complement at
            // that width is the FIRRTL bit pattern of the literal.
            let zero = Bits::zero(w);
            zero.sub(&acc.extend(w, false), w)
        } else {
            acc
        };
        out.width = width;
        out.limbs.resize(words(width), 0);
        kernels::normalize(&mut out.limbs, width);
        Ok(out)
    }

    /// The declared width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The little-endian limbs (normalized: bits `>= width` are zero).
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Reads one bit; positions `>= width` read as zero.
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        kernels::get_bit(&self.limbs, i)
    }

    /// `true` when the value is numerically zero.
    pub fn is_zero(&self) -> bool {
        kernels::is_zero(&self.limbs)
    }

    /// The unsigned value if it fits in a `u64`.
    pub fn to_u64(&self) -> Option<u64> {
        kernels::to_u64(&self.limbs)
    }

    /// The two's-complement value if it fits in an `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        if self.width == 0 {
            return Some(0);
        }
        let sign = kernels::sign_bit(&self.limbs, self.width);
        let n = self.limbs.len();
        for i in 1..n {
            let expect = if sign {
                kernels::ext_limb(&self.limbs, self.width, true, i)
            } else {
                0
            };
            if sign {
                if expect != u64::MAX {
                    return None;
                }
            } else if self.limbs[i] != 0 {
                return None;
            }
        }
        let raw = kernels::ext_limb(&self.limbs, self.width, true, 0);
        let v = raw as i64;
        // Reject values whose magnitude exceeds i64 despite a single limb.
        if (v < 0) != sign {
            return None;
        }
        Some(v)
    }

    /// Zero- or sign-extends (or truncates) to a new width.
    pub fn extend(&self, new_width: u32, signed: bool) -> Bits {
        let mut out = Bits::zero(new_width);
        kernels::extend(&mut out.limbs, new_width, &self.limbs, self.width, signed);
        out
    }

    /// Three-way numeric comparison with shared signedness.
    pub fn compare(&self, other: &Bits, signed: bool) -> Ordering {
        kernels::cmp(&self.limbs, self.width, &other.limbs, other.width, signed)
    }
}

// Binary arithmetic helpers; each takes the destination width explicitly,
// mirroring the FIRRTL width rules computed by the netlist layer.
impl Bits {
    /// `self + other` at `out_width` (unsigned interpretation).
    pub fn add(&self, other: &Bits, out_width: u32) -> Bits {
        self.add_signed(other, out_width, false)
    }

    /// `self + other` at `out_width` with chosen signedness.
    pub fn add_signed(&self, other: &Bits, out_width: u32, signed: bool) -> Bits {
        let mut out = Bits::zero(out_width);
        kernels::add(
            &mut out.limbs,
            out_width,
            &self.limbs,
            self.width,
            &other.limbs,
            other.width,
            signed,
        );
        out
    }

    /// `self - other` at `out_width` (two's-complement wraparound).
    pub fn sub(&self, other: &Bits, out_width: u32) -> Bits {
        self.sub_signed(other, out_width, false)
    }

    /// `self - other` at `out_width` with chosen signedness.
    pub fn sub_signed(&self, other: &Bits, out_width: u32, signed: bool) -> Bits {
        let mut out = Bits::zero(out_width);
        kernels::sub(
            &mut out.limbs,
            out_width,
            &self.limbs,
            self.width,
            &other.limbs,
            other.width,
            signed,
        );
        out
    }

    /// `self * other` at `out_width` with chosen signedness.
    pub fn mul_signed(&self, other: &Bits, out_width: u32, signed: bool) -> Bits {
        let mut out = Bits::zero(out_width);
        kernels::mul(
            &mut out.limbs,
            out_width,
            &self.limbs,
            self.width,
            &other.limbs,
            other.width,
            signed,
        );
        out
    }

    /// Bitwise AND at `out_width`.
    pub fn and(&self, other: &Bits, out_width: u32) -> Bits {
        let mut out = Bits::zero(out_width);
        kernels::and(
            &mut out.limbs,
            out_width,
            &self.limbs,
            self.width,
            &other.limbs,
            other.width,
            false,
        );
        out
    }

    /// Bitwise OR at `out_width`.
    pub fn or(&self, other: &Bits, out_width: u32) -> Bits {
        let mut out = Bits::zero(out_width);
        kernels::or(
            &mut out.limbs,
            out_width,
            &self.limbs,
            self.width,
            &other.limbs,
            other.width,
            false,
        );
        out
    }

    /// Bitwise XOR at `out_width`.
    pub fn xor(&self, other: &Bits, out_width: u32) -> Bits {
        let mut out = Bits::zero(out_width);
        kernels::xor(
            &mut out.limbs,
            out_width,
            &self.limbs,
            self.width,
            &other.limbs,
            other.width,
            false,
        );
        out
    }

    /// Bitwise NOT at the value's own width.
    pub fn not(&self) -> Bits {
        let mut out = Bits::zero(self.width);
        kernels::not(&mut out.limbs, self.width, &self.limbs, self.width, false);
        out
    }

    /// Concatenation: `self` becomes the high bits.
    pub fn cat(&self, low: &Bits) -> Bits {
        let w = self.width + low.width;
        let mut out = Bits::zero(w);
        kernels::cat(
            &mut out.limbs,
            w,
            &self.limbs,
            self.width,
            &low.limbs,
            low.width,
        );
        out
    }

    /// Bit extraction `self[hi:lo]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn extract(&self, hi: u32, lo: u32) -> Bits {
        assert!(
            hi >= lo && hi < self.width.max(1),
            "bit range out of bounds"
        );
        let w = hi - lo + 1;
        let mut out = Bits::zero(w);
        kernels::bits(&mut out.limbs, w, &self.limbs, self.width, hi, lo);
        out
    }

    /// Left shift by a constant, result width `out_width`.
    pub fn shl(&self, sh: u64, out_width: u32) -> Bits {
        let mut out = Bits::zero(out_width);
        kernels::shl(&mut out.limbs, out_width, &self.limbs, self.width, sh);
        out
    }

    /// Right shift by a constant with optional sign fill, result width
    /// `out_width`.
    pub fn shr(&self, sh: u64, out_width: u32, signed: bool) -> Bits {
        let mut out = Bits::zero(out_width);
        kernels::shr(
            &mut out.limbs,
            out_width,
            &self.limbs,
            self.width,
            sh,
            signed,
        );
        out
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits<{}>({:#x})", self.width, self)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal display for small values, hex for wide ones.
        match self.to_u64() {
            Some(v) => write!(f, "{v}"),
            None => write!(f, "{:#x}", self),
        }
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "0x")?;
        }
        let mut started = false;
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if !started {
                if *limb == 0 && i != 0 {
                    continue;
                }
                write!(f, "{limb:x}")?;
                started = true;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "0b")?;
        }
        if self.width == 0 {
            return write!(f, "0");
        }
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl Default for Bits {
    /// A zero value of width 1 (the narrowest useful signal).
    fn default() -> Self {
        Bits::zero(1)
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_u64(v as u64, 1)
    }
}

/// Error produced by [`Bits::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBitsError {
    /// The literal body had no digits.
    Empty,
    /// A character was not a valid digit for the literal's radix.
    InvalidDigit(char),
    /// The literal's magnitude does not fit the declared width.
    Overflow { width: u32 },
}

impl fmt::Display for ParseBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBitsError::Empty => write!(f, "empty literal"),
            ParseBitsError::InvalidDigit(c) => write!(f, "invalid digit `{c}` in literal"),
            ParseBitsError::Overflow { width } => {
                write!(f, "literal magnitude exceeds declared width {width}")
            }
        }
    }
}

impl Error for ParseBitsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_convert() {
        assert_eq!(Bits::from_u64(300, 8).to_u64(), Some(300 & 0xff));
        assert_eq!(Bits::from_i64(-1, 4).to_u64(), Some(0xf));
        assert_eq!(Bits::from_i64(-1, 100).to_i64(), Some(-1));
        assert_eq!(Bits::from_i64(-5, 70).to_i64(), Some(-5));
        assert!(Bits::ones(65).bit(64));
        assert!(!Bits::ones(65).bit(65));
    }

    #[test]
    fn parse_radices() {
        assert_eq!(Bits::parse("hff", 8).unwrap().to_u64(), Some(255));
        assert_eq!(Bits::parse("b1010", 4).unwrap().to_u64(), Some(10));
        assert_eq!(Bits::parse("o17", 4).unwrap().to_u64(), Some(15));
        assert_eq!(Bits::parse("42", 8).unwrap().to_u64(), Some(42));
        assert_eq!(Bits::parse("-1", 4).unwrap().to_u64(), Some(0xf));
        assert_eq!(Bits::parse("h-2", 4).unwrap().to_i64(), Some(-2));
        assert_eq!(Bits::parse("1_000", 10).unwrap().to_u64(), Some(1000));
        assert!(Bits::parse("", 4).is_err());
        assert!(Bits::parse("hxyz", 4).is_err());
    }

    #[test]
    fn parse_rejects_overflow() {
        assert_eq!(
            Bits::parse("hff", 4),
            Err(ParseBitsError::Overflow { width: 4 })
        );
        assert_eq!(
            Bits::parse("16", 4),
            Err(ParseBitsError::Overflow { width: 4 })
        );
        assert_eq!(
            Bits::parse("-16", 4),
            Err(ParseBitsError::Overflow { width: 4 })
        );
        // Boundary values still parse.
        assert_eq!(Bits::parse("15", 4).unwrap().to_u64(), Some(15));
        assert_eq!(Bits::parse("-15", 4).unwrap().to_u64(), Some(1));
        assert_eq!(Bits::parse("hf", 4).unwrap().to_u64(), Some(15));
        // Leading zeros never count against the width.
        assert_eq!(Bits::parse("h00ff", 8).unwrap().to_u64(), Some(255));
        assert_eq!(Bits::parse("b0001", 1).unwrap().to_u64(), Some(1));
        // A long literal cannot wrap past the guard bits back into range.
        assert!(Bits::parse("h10000000000000000001", 8).is_err());
        // Width 0 admits only zero.
        assert_eq!(Bits::parse("0", 0).unwrap().to_u64(), Some(0));
        assert!(Bits::parse("1", 0).is_err());
    }

    #[test]
    fn parse_wide_hex() {
        let v = Bits::parse("hdeadbeefdeadbeef11", 72).unwrap();
        assert_eq!(v.limbs()[0], 0xadbeefdeadbeef11);
        assert_eq!(v.limbs()[1], 0xde);
    }

    #[test]
    fn display_formats() {
        let v = Bits::from_u64(0xabcd, 16);
        assert_eq!(format!("{v}"), "43981");
        assert_eq!(format!("{v:#x}"), "0xabcd");
        assert_eq!(format!("{v:b}"), "1010101111001101");
        let wide = Bits::ones(72);
        assert_eq!(format!("{wide:x}"), "ffffffffffffffffff");
    }

    #[test]
    fn extract_and_cat() {
        let v = Bits::from_u64(0xabcd, 16);
        assert_eq!(v.extract(15, 8).to_u64(), Some(0xab));
        let joined = v.extract(15, 8).cat(&v.extract(7, 0));
        assert_eq!(joined.to_u64(), Some(0xabcd));
    }

    #[test]
    fn to_i64_wide_rejects_overflow() {
        let big = Bits::ones(65); // numerically 2^65-1 unsigned; -1 if signed at 65
        assert_eq!(big.to_i64(), Some(-1));
        let mut limbs = vec![0u64; 2];
        limbs[1] = 1; // 2^64: positive, does not fit i64
        let v = Bits::from_limbs(limbs, 66);
        assert_eq!(v.to_i64(), None);
    }

    #[test]
    fn compare_orderings() {
        let a = Bits::from_i64(-3, 8);
        let b = Bits::from_u64(5, 8);
        assert_eq!(a.compare(&b, true), Ordering::Less);
        assert_eq!(a.compare(&b, false), Ordering::Greater);
    }
}
