//! Allocation-free arithmetic kernels on little-endian `u64` word slices.
//!
//! These functions are the computational core of the simulation engines:
//! signal values live in a flat word arena and every FIRRTL primitive
//! operation is ultimately one of these kernels. All kernels uphold the
//! crate-level representation invariant: a `width`-bit operand occupies
//! exactly [`words(width)`](crate::words) limbs with all bits at positions
//! `>= width` cleared, and every kernel re-normalizes its destination.
//!
//! Operands carry their own width and signedness; extension to the
//! destination width (zero- for `UInt`, sign- for `SInt`) happens on the
//! fly via [`ext_limb`], so no scratch buffers are required.
//!
//! # Panics
//!
//! In debug builds the kernels assert that slices have exactly the limb
//! count implied by their widths; release builds rely on the callers
//! (the compiled simulator schedules) having been constructed correctly.

use crate::{top_mask, words};
use std::cmp::Ordering;

/// Clears all bits at positions `>= width` in `dst`.
///
/// Every kernel calls this on its destination before returning.
#[inline]
pub fn normalize(dst: &mut [u64], width: u32) {
    debug_assert_eq!(dst.len(), words(width));
    let last = dst.len() - 1;
    dst[last] &= top_mask(width);
    if width == 0 {
        dst[0] = 0;
    }
}

/// Returns `true` if the sign bit (bit `width - 1`) of `src` is set.
///
/// A zero-width value has no sign bit and reports `false`.
#[inline]
pub fn sign_bit(src: &[u64], width: u32) -> bool {
    if width == 0 {
        return false;
    }
    let bit = (width - 1) as usize;
    (src[bit / 64] >> (bit % 64)) & 1 == 1
}

/// Returns limb `i` of `src` as if `src` were extended to infinite width.
///
/// Zero-extends when `signed` is `false`, sign-extends otherwise. This is
/// the primitive that lets every kernel mix operand widths without scratch
/// buffers.
#[inline]
pub fn ext_limb(src: &[u64], width: u32, signed: bool, i: usize) -> u64 {
    let n = words(width);
    let sign = signed && sign_bit(src, width);
    if i < n {
        let mut limb = src[i];
        if sign && i == n - 1 {
            limb |= !top_mask(width);
        }
        limb
    } else if sign {
        u64::MAX
    } else {
        0
    }
}

/// Copies `src` (of width `src_w`, signedness `signed`) into `dst` of width
/// `dst_w`, extending or truncating as needed.
///
/// Implements FIRRTL `pad` (extension) and also serves as plain assignment
/// and `asUInt`/`asSInt` reinterpretation (same width, `signed = false`).
pub fn extend(dst: &mut [u64], dst_w: u32, src: &[u64], src_w: u32, signed: bool) {
    debug_assert_eq!(dst.len(), words(dst_w));
    for (i, d) in dst.iter_mut().enumerate() {
        *d = ext_limb(src, src_w, signed, i);
    }
    normalize(dst, dst_w);
}

/// `dst = a + b`, truncated to `dst_w` bits.
///
/// Both operands share `signed`; FIRRTL's `add` always widens
/// (`dst_w = max(a_w, b_w) + 1`) so in practice no wrap occurs, but the
/// kernel is correct for any destination width.
pub fn add(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, b: &[u64], b_w: u32, signed: bool) {
    debug_assert_eq!(dst.len(), words(dst_w));
    let mut carry = 0u64;
    for (i, d) in dst.iter_mut().enumerate() {
        let x = ext_limb(a, a_w, signed, i);
        let y = ext_limb(b, b_w, signed, i);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        *d = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    normalize(dst, dst_w);
}

/// `dst = a - b`, truncated to `dst_w` bits (two's complement).
pub fn sub(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, b: &[u64], b_w: u32, signed: bool) {
    debug_assert_eq!(dst.len(), words(dst_w));
    let mut carry = 1u64; // a + !b + 1
    for (i, d) in dst.iter_mut().enumerate() {
        let x = ext_limb(a, a_w, signed, i);
        let y = !ext_limb(b, b_w, signed, i);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        *d = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    normalize(dst, dst_w);
}

/// `dst = a * b`, truncated to `dst_w` bits.
///
/// FIRRTL's `mul` result width is `a_w + b_w`, so the product is exact for
/// spec-conforming destinations; signed operands are handled by computing
/// the product of the sign-extended patterns modulo `2^dst_w`, which equals
/// the two's-complement product.
pub fn mul(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, b: &[u64], b_w: u32, signed: bool) {
    debug_assert_eq!(dst.len(), words(dst_w));
    let n = dst.len();
    dst.iter_mut().for_each(|d| *d = 0);
    for i in 0..n {
        let x = ext_limb(a, a_w, signed, i);
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for j in 0..(n - i) {
            let y = ext_limb(b, b_w, signed, j);
            let acc = (x as u128) * (y as u128) + (dst[i + j] as u128) + carry;
            dst[i + j] = acc as u64;
            carry = acc >> 64;
        }
    }
    normalize(dst, dst_w);
}

/// Magnitude (absolute value) of `src` into a fresh vector sized for
/// `width + 1` bits of headroom (so `abs(MIN)` does not overflow).
fn magnitude(src: &[u64], width: u32, signed: bool) -> Vec<u64> {
    let n = words(width + 1);
    let mut out = vec![0u64; n];
    if signed && sign_bit(src, width) {
        // out = -src
        let mut carry = 1u64;
        for (i, o) in out.iter_mut().enumerate() {
            let x = !ext_limb(src, width, true, i);
            let (s, c) = x.overflowing_add(carry);
            *o = s;
            carry = c as u64;
        }
    } else {
        for (i, o) in out.iter_mut().enumerate() {
            *o = ext_limb(src, width, signed, i);
        }
    }
    out
}

/// Returns `true` if all limbs of `v` are zero.
#[inline]
pub fn is_zero(v: &[u64]) -> bool {
    v.iter().all(|&w| w == 0)
}

/// Unsigned long division of magnitudes: returns `(quotient, remainder)`.
///
/// Fast paths cover one- and two-limb operands (the overwhelmingly common
/// cases); larger operands fall back to bit-serial restoring division.
fn udivrem(num: &[u64], den: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = num.len().max(den.len());
    debug_assert!(!is_zero(den), "division by zero handled by caller");
    if n <= 1 {
        let (q, r) = (num[0] / den[0], num[0] % den[0]);
        return (vec![q], vec![r]);
    }
    let limb = |v: &[u64], i: usize| if i < v.len() { v[i] } else { 0 };
    if n <= 2 {
        let nu = (limb(num, 0) as u128) | ((limb(num, 1) as u128) << 64);
        let de = (limb(den, 0) as u128) | ((limb(den, 1) as u128) << 64);
        let (q, r) = (nu / de, nu % de);
        return (
            vec![q as u64, (q >> 64) as u64],
            vec![r as u64, (r >> 64) as u64],
        );
    }
    // Bit-serial restoring division for wide operands.
    let mut quot = vec![0u64; n];
    let mut rem = vec![0u64; n];
    let total_bits = n * 64;
    for bit in (0..total_bits).rev() {
        // rem = (rem << 1) | num[bit]
        let mut carry = (limb(num, bit / 64) >> (bit % 64)) & 1;
        for r in rem.iter_mut() {
            let top = *r >> 63;
            *r = (*r << 1) | carry;
            carry = top;
        }
        // if rem >= den { rem -= den; quot[bit] = 1 }
        let ge = {
            let mut ord = Ordering::Equal;
            for i in (0..n).rev() {
                let d = limb(den, i);
                match rem[i].cmp(&d) {
                    Ordering::Equal => continue,
                    other => {
                        ord = other;
                        break;
                    }
                }
            }
            ord != Ordering::Less
        };
        if ge {
            let mut borrow = 0u64;
            for (i, r) in rem.iter_mut().enumerate() {
                let d = limb(den, i);
                let (s1, b1) = r.overflowing_sub(d);
                let (s2, b2) = s1.overflowing_sub(borrow);
                *r = s2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            quot[bit / 64] |= 1u64 << (bit % 64);
        }
    }
    (quot, rem)
}

/// Negate `v` in place (two's complement over its full limb span).
fn negate_in_place(v: &mut [u64]) {
    let mut carry = 1u64;
    for limb in v.iter_mut() {
        let (s, c) = (!*limb).overflowing_add(carry);
        *limb = s;
        carry = c as u64;
    }
}

/// `dst = a / b` with FIRRTL semantics: truncating (round toward zero) for
/// signed operands, and **division by zero yields zero** (the conventional
/// hardware-simulator convention, matching ESSENT's generated C++ guards).
pub fn div(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, b: &[u64], b_w: u32, signed: bool) {
    debug_assert_eq!(dst.len(), words(dst_w));
    if is_zero(b) {
        dst.iter_mut().for_each(|d| *d = 0);
        return;
    }
    let ma = magnitude(a, a_w, signed);
    let mb = magnitude(b, b_w, signed);
    let (mut q, _r) = udivrem(&ma, &mb);
    let neg = signed && (sign_bit(a, a_w) != sign_bit(b, b_w));
    if neg {
        negate_in_place(&mut q);
    }
    let qw = (q.len() * 64) as u32;
    extend(dst, dst_w, &q, qw, neg || signed);
}

/// `dst = a % b` with FIRRTL semantics: the remainder takes the sign of the
/// dividend; remainder by zero yields the dividend (so `a = (a/b)*b + a%b`
/// still holds under the divide-by-zero-is-zero convention).
pub fn rem(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, b: &[u64], b_w: u32, signed: bool) {
    debug_assert_eq!(dst.len(), words(dst_w));
    if is_zero(b) {
        extend(dst, dst_w, a, a_w, signed);
        return;
    }
    let ma = magnitude(a, a_w, signed);
    let mb = magnitude(b, b_w, signed);
    let (_q, mut r) = udivrem(&ma, &mb);
    let neg = signed && sign_bit(a, a_w) && !is_zero(&r);
    if neg {
        negate_in_place(&mut r);
    }
    let rw = (r.len() * 64) as u32;
    extend(dst, dst_w, &r, rw, neg || signed);
}

/// Three-way comparison of two values with shared signedness.
pub fn cmp(a: &[u64], a_w: u32, b: &[u64], b_w: u32, signed: bool) -> Ordering {
    if signed {
        let sa = sign_bit(a, a_w);
        let sb = sign_bit(b, b_w);
        if sa != sb {
            return if sa {
                Ordering::Less
            } else {
                Ordering::Greater
            };
        }
    }
    let n = words(a_w).max(words(b_w));
    for i in (0..n).rev() {
        let x = ext_limb(a, a_w, signed, i);
        let y = ext_limb(b, b_w, signed, i);
        match x.cmp(&y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Returns `true` if the two values are numerically equal.
pub fn eq(a: &[u64], a_w: u32, b: &[u64], b_w: u32, signed: bool) -> bool {
    cmp(a, a_w, b, b_w, signed) == Ordering::Equal
}

/// Bitwise binary op dispatcher used by [`and`], [`or`], and [`xor`].
macro_rules! bitwise {
    ($name:ident, $op:tt, $doc:expr) => {
        #[doc = $doc]
        ///
        /// FIRRTL extends both operands to the result width first (sign-
        /// extending `SInt` operands) and produces a `UInt` result.
        pub fn $name(
            dst: &mut [u64],
            dst_w: u32,
            a: &[u64],
            a_w: u32,
            b: &[u64],
            b_w: u32,
            signed: bool,
        ) {
            debug_assert_eq!(dst.len(), words(dst_w));
            for (i, d) in dst.iter_mut().enumerate() {
                *d = ext_limb(a, a_w, signed, i) $op ext_limb(b, b_w, signed, i);
            }
            normalize(dst, dst_w);
        }
    };
}

bitwise!(and, &, "`dst = a & b`.");
bitwise!(or, |, "`dst = a | b`.");
bitwise!(xor, ^, "`dst = a ^ b`.");

/// `dst = !a` over `dst_w` bits (`a` is extended to `dst_w` first).
pub fn not(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, signed: bool) {
    debug_assert_eq!(dst.len(), words(dst_w));
    for (i, d) in dst.iter_mut().enumerate() {
        *d = !ext_limb(a, a_w, signed, i);
    }
    normalize(dst, dst_w);
}

/// AND-reduction: `true` iff every bit of the `width`-bit value is one.
pub fn andr(a: &[u64], width: u32) -> bool {
    if width == 0 {
        return true; // vacuous
    }
    let n = words(width);
    for (i, &limb) in a.iter().enumerate().take(n) {
        let expect = if i == n - 1 {
            top_mask(width)
        } else {
            u64::MAX
        };
        if limb != expect {
            return false;
        }
    }
    true
}

/// OR-reduction: `true` iff any bit is one.
pub fn orr(a: &[u64]) -> bool {
    !is_zero(a)
}

/// XOR-reduction: parity of the population count.
pub fn xorr(a: &[u64]) -> bool {
    a.iter().map(|w| w.count_ones()).sum::<u32>() % 2 == 1
}

/// `dst = a << sh`, truncated to `dst_w` bits. The source is treated as raw
/// bits (FIRRTL `shl` widens so nothing is lost; `dshl` may truncate).
pub fn shl(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, sh: u64) {
    debug_assert_eq!(dst.len(), words(dst_w));
    let nbits = dst_w as u64;
    if sh >= nbits {
        dst.iter_mut().for_each(|d| *d = 0);
        return;
    }
    let word_sh = (sh / 64) as usize;
    let bit_sh = (sh % 64) as u32;
    let n = dst.len();
    for i in (0..n).rev() {
        let hi = if i >= word_sh {
            ext_limb(a, a_w, false, i - word_sh)
        } else {
            0
        };
        let lo = if bit_sh > 0 && i > word_sh && i - word_sh >= 1 {
            ext_limb(a, a_w, false, i - word_sh - 1)
        } else {
            0
        };
        dst[i] = if bit_sh == 0 {
            hi
        } else {
            (hi << bit_sh) | (lo >> (64 - bit_sh))
        };
        if i < word_sh {
            dst[i] = 0;
        }
    }
    normalize(dst, dst_w);
}

/// `dst = a >> sh` with sign fill when `signed` (FIRRTL `shr`/`dshr` on
/// `SInt`), truncated to `dst_w` bits.
pub fn shr(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, sh: u64, signed: bool) {
    debug_assert_eq!(dst.len(), words(dst_w));
    let word_sh = (sh / 64) as usize;
    let bit_sh = (sh % 64) as u32;
    for (i, d) in dst.iter_mut().enumerate() {
        let lo = ext_limb(a, a_w, signed, i + word_sh);
        *d = if bit_sh == 0 {
            lo
        } else {
            let hi = ext_limb(a, a_w, signed, i + word_sh + 1);
            (lo >> bit_sh) | (hi << (64 - bit_sh))
        };
    }
    normalize(dst, dst_w);
}

/// `dst = cat(a, b)`: `a` occupies the high bits, `b` the low `b_w` bits.
/// `dst_w` must be `a_w + b_w`.
pub fn cat(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, b: &[u64], b_w: u32) {
    debug_assert_eq!(dst.len(), words(dst_w));
    debug_assert_eq!(dst_w, a_w + b_w);
    // dst = b | (a << b_w)
    for (i, d) in dst.iter_mut().enumerate() {
        *d = ext_limb(b, b_w, false, i);
    }
    let word_sh = (b_w / 64) as usize;
    let bit_sh = b_w % 64;
    let n = dst.len();
    // Indexing is by shifted position; an enumerate would obscure the
    // `i - word_sh` source-limb arithmetic.
    #[allow(clippy::needless_range_loop)]
    for i in word_sh..n {
        let lo = ext_limb(a, a_w, false, i - word_sh);
        dst[i] |= if bit_sh == 0 {
            lo
        } else {
            let below = if i > word_sh {
                ext_limb(a, a_w, false, i - word_sh - 1)
            } else {
                0
            };
            (lo << bit_sh) | (below >> (64 - bit_sh))
        };
    }
    normalize(dst, dst_w);
}

/// `dst = a[hi:lo]` (FIRRTL `bits`): `dst_w` must be `hi - lo + 1`.
pub fn bits(dst: &mut [u64], dst_w: u32, a: &[u64], a_w: u32, hi: u32, lo: u32) {
    debug_assert!(hi >= lo);
    debug_assert_eq!(dst_w, hi - lo + 1);
    shr(dst, dst_w, a, a_w, lo as u64, false);
}

/// Reads a single bit of a normalized value.
#[inline]
pub fn get_bit(src: &[u64], i: u32) -> bool {
    let idx = (i / 64) as usize;
    if idx >= src.len() {
        return false;
    }
    (src[idx] >> (i % 64)) & 1 == 1
}

/// Converts a value to `u64`, returning `None` if it does not fit.
pub fn to_u64(src: &[u64]) -> Option<u64> {
    if src[1..].iter().any(|&w| w != 0) {
        None
    } else {
        Some(src[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(v: u128, w: u32) -> Vec<u64> {
        let mut out = vec![0u64; words(w)];
        out[0] = v as u64;
        if out.len() > 1 {
            out[1] = (v >> 64) as u64;
        }
        normalize(&mut out, w);
        out
    }

    #[test]
    fn add_widens_without_wrap() {
        let a = mk(200, 8);
        let b = mk(100, 8);
        let mut d = vec![0u64; words(9)];
        add(&mut d, 9, &a, 8, &b, 8, false);
        assert_eq!(d[0], 300);
    }

    #[test]
    fn signed_add_mixed_widths() {
        // -3 (width 4) + 2 (width 3) = -1 at width 5
        let a = mk(0b1101, 4);
        let b = mk(0b010, 3);
        let mut d = vec![0u64; words(5)];
        add(&mut d, 5, &a, 4, &b, 3, true);
        assert_eq!(d[0], 0b11111);
    }

    #[test]
    fn sub_produces_twos_complement() {
        let a = mk(1, 4);
        let b = mk(2, 4);
        let mut d = vec![0u64; words(5)];
        sub(&mut d, 5, &a, 4, &b, 4, false);
        assert_eq!(d[0], 0b11111); // -1 at width 5
    }

    #[test]
    fn mul_wide_exact() {
        let a = mk(u64::MAX as u128, 64);
        let b = mk(u64::MAX as u128, 64);
        let mut d = vec![0u64; words(128)];
        mul(&mut d, 128, &a, 64, &b, 64, false);
        let expect = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(d[0], expect as u64);
        assert_eq!(d[1], (expect >> 64) as u64);
    }

    #[test]
    fn signed_mul() {
        // -3 * 5 = -15, width 4 * width 4 -> width 8
        let a = mk(0b1101, 4);
        let b = mk(0b0101, 4);
        let mut d = vec![0u64; words(8)];
        mul(&mut d, 8, &a, 4, &b, 4, true);
        assert_eq!(d[0], (-15i64 as u64) & 0xff);
    }

    #[test]
    fn div_truncates_toward_zero() {
        // -7 / 2 = -3 (not -4)
        let a = mk((-7i64 as u64) as u128 & 0xf, 4);
        let b = mk(2, 4);
        let mut d = vec![0u64; words(5)];
        div(&mut d, 5, &a, 4, &b, 4, true);
        assert_eq!(d[0], (-3i64 as u64) & 0b11111);
    }

    #[test]
    fn rem_takes_dividend_sign() {
        // -7 % 2 = -1
        let a = mk((-7i64 as u64) as u128 & 0xf, 4);
        let b = mk(2, 4);
        let mut d = vec![0u64; words(4)];
        rem(&mut d, 4, &a, 4, &b, 4, true);
        assert_eq!(d[0], (-1i64 as u64) & 0xf);
    }

    #[test]
    fn div_by_zero_is_zero_rem_is_dividend() {
        let a = mk(9, 4);
        let z = mk(0, 4);
        let mut d = vec![0u64; words(4)];
        div(&mut d, 4, &a, 4, &z, 4, false);
        assert_eq!(d[0], 0);
        rem(&mut d, 4, &a, 4, &z, 4, false);
        assert_eq!(d[0], 9);
    }

    #[test]
    fn wide_udivrem_bit_serial() {
        // 3-limb operands exercise the bit-serial path.
        let num = vec![5, 0, 1]; // 2^128 + 5
        let den = vec![3, 0, 0];
        let (q, r) = udivrem(&num, &den);
        // (2^128 + 5) = 3*q + r
        // 2^128 mod 3 = 1 (since 2^2 = 1 mod 3 and 128 even), so r = (1+5) mod 3 = 0
        assert_eq!(r, vec![0, 0, 0]);
        // q = (2^128 + 5) / 3; check q*3 == num
        let mut back = vec![0u64; 3];
        mul(&mut back, 192, &q, 192, &den, 192, false);
        assert_eq!(back, num);
    }

    #[test]
    fn cmp_signed_and_unsigned() {
        let a = mk(0b1111, 4); // 15 unsigned, -1 signed
        let b = mk(0b0001, 4);
        assert_eq!(cmp(&a, 4, &b, 4, false), Ordering::Greater);
        assert_eq!(cmp(&a, 4, &b, 4, true), Ordering::Less);
        assert_eq!(cmp(&a, 4, &a, 4, true), Ordering::Equal);
    }

    #[test]
    fn reductions() {
        let a = mk(0b1111, 4);
        assert!(andr(&a, 4));
        assert!(orr(&a));
        assert!(!xorr(&a));
        let b = mk(0b0111, 4);
        assert!(!andr(&b, 4));
        assert!(xorr(&b));
        let z = mk(0, 4);
        assert!(!orr(&z));
    }

    #[test]
    fn shifts_across_limbs() {
        let a = mk(1, 1);
        let mut d = vec![0u64; words(100)];
        shl(&mut d, 100, &a, 1, 99);
        assert!(get_bit(&d, 99));
        assert_eq!(d.iter().map(|w| w.count_ones()).sum::<u32>(), 1);
        let mut e = vec![0u64; words(100)];
        shr(&mut e, 100, &d, 100, 99, false);
        assert_eq!(e[0], 1);
        assert_eq!(e[1], 0);
    }

    #[test]
    fn arithmetic_shr_fills_sign() {
        let a = mk(0b1000, 4); // -8 signed
        let mut d = vec![0u64; words(2)];
        shr(&mut d, 2, &a, 4, 2, true);
        assert_eq!(d[0], 0b10); // -2 at width 2
    }

    #[test]
    fn cat_and_bits_roundtrip() {
        let a = mk(0xAB, 8);
        let b = mk(0xCD, 8);
        let mut d = vec![0u64; words(16)];
        cat(&mut d, 16, &a, 8, &b, 8);
        assert_eq!(d[0], 0xABCD);
        let mut hi = vec![0u64; words(8)];
        bits(&mut hi, 8, &d, 16, 15, 8);
        assert_eq!(hi[0], 0xAB);
    }

    #[test]
    fn cat_unaligned_widths() {
        let a = mk(0b101, 3);
        let b = mk(0b01, 2);
        let mut d = vec![0u64; words(5)];
        cat(&mut d, 5, &a, 3, &b, 2);
        assert_eq!(d[0], 0b10101);
    }

    #[test]
    fn cat_crossing_limb_boundary() {
        let a = mk(0xFFFF_FFFF, 32);
        let b = mk(0x1234_5678_9ABC_DEF0, 40);
        let mut d = vec![0u64; words(72)];
        cat(&mut d, 72, &a, 32, &b, 40);
        // d = a << 40 | b
        assert_eq!(d[0] & ((1u64 << 40) - 1), 0x78_9ABC_DEF0);
        let upper = ((d[1] as u128) << 64 | d[0] as u128) >> 40;
        assert_eq!(upper as u64, 0xFFFF_FFFF);
    }

    #[test]
    fn extend_sign_and_zero() {
        let a = mk(0b1010, 4);
        let mut d = vec![0u64; words(8)];
        extend(&mut d, 8, &a, 4, false);
        assert_eq!(d[0], 0b0000_1010);
        extend(&mut d, 8, &a, 4, true);
        assert_eq!(d[0], 0b1111_1010);
    }

    #[test]
    fn zero_width_values() {
        let z = mk(0, 0);
        assert_eq!(words(0), 1);
        assert!(is_zero(&z));
        let mut d = vec![0u64; words(4)];
        extend(&mut d, 4, &z, 0, false);
        assert_eq!(d[0], 0);
    }
}
