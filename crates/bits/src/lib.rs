//! Arbitrary-width bit-vector arithmetic for RTL simulation.
//!
//! Every signal in a FIRRTL design carries an unsigned (`UInt`) or
//! two's-complement signed (`SInt`) value of a statically known bit width.
//! This crate provides exact arithmetic at any width, structured in two
//! layers:
//!
//! * [`kernels`] — allocation-free operations on little-endian `u64` word
//!   slices. The simulation engines in `essent-sim` store all signal values
//!   in a flat word arena and call these kernels directly, so no allocation
//!   happens inside the simulated-cycle loop.
//! * [`Bits`] — an owned bit vector built on the kernels, used at API
//!   boundaries: peeking and poking simulator signals, FIRRTL literal
//!   parsing, and constant folding.
//!
//! # Representation invariant
//!
//! A value of width `w` occupies `words(w)` little-endian `u64` limbs, and
//! **all bits at positions `>= w` are zero**. Signed values are stored as
//! their two's-complement bit pattern truncated to `w` bits (so `-1` at
//! width 4 is stored as `0b1111`); operations that need the numeric value
//! sign-extend internally.
//!
//! # Examples
//!
//! ```
//! use essent_bits::Bits;
//!
//! let a = Bits::from_u64(200, 8);
//! let b = Bits::from_u64(100, 8);
//! // FIRRTL `add` widens by one bit, so 200 + 100 does not wrap.
//! let sum = a.add(&b, 9);
//! assert_eq!(sum.to_u64(), Some(300));
//! ```

pub mod bits;
pub mod kernels;

pub use bits::{Bits, ParseBitsError};

/// Number of `u64` limbs required to hold `width` bits.
///
/// A zero-width value (legal in FIRRTL for e.g. `tail` results) occupies
/// one limb that is always zero, which keeps slice arithmetic uniform.
///
/// # Examples
///
/// ```
/// assert_eq!(essent_bits::words(0), 1);
/// assert_eq!(essent_bits::words(1), 1);
/// assert_eq!(essent_bits::words(64), 1);
/// assert_eq!(essent_bits::words(65), 2);
/// ```
#[inline]
pub const fn words(width: u32) -> usize {
    if width == 0 {
        1
    } else {
        (width as usize).div_ceil(64)
    }
}

/// Mask selecting the valid bits of the top limb of a `width`-bit value.
///
/// For widths that are a multiple of 64 the mask is all ones; for width 0
/// it is zero.
#[inline]
pub const fn top_mask(width: u32) -> u64 {
    if width == 0 {
        0
    } else {
        let rem = width % 64;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }
}
