//! Property tests: kernel arithmetic must agree with `i128`/`u128`
//! reference arithmetic for all widths that fit, across both signedness
//! interpretations and mixed operand widths.

use essent_bits::{kernels, words, Bits};
use proptest::prelude::*;
use std::cmp::Ordering;

/// Interprets a normalized bit pattern as a number, per signedness.
fn as_i128(v: u64, w: u32, signed: bool) -> i128 {
    if w == 0 {
        return 0;
    }
    let masked = v & essent_bits::top_mask(w.min(64));
    if signed && (masked >> (w - 1)) & 1 == 1 {
        (masked as i128) - (1i128 << w)
    } else {
        masked as i128
    }
}

fn truncate(v: i128, w: u32) -> u64 {
    if w == 0 {
        0
    } else {
        (v as u64) & essent_bits::top_mask(w.min(64))
    }
}

fn mk(v: u64, w: u32) -> Vec<u64> {
    let mut out = vec![0u64; words(w)];
    out[0] = v & essent_bits::top_mask(w.min(64));
    out
}

/// Strategy: width in 1..=48 plus a value fitting that width, keeping all
/// intermediate reference math inside i128.
fn operand() -> impl Strategy<Value = (u64, u32)> {
    (1u32..=48).prop_flat_map(|w| (0u64..(1u64 << w), Just(w)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn add_matches_reference(((a, aw), (b, bw), signed) in (operand(), operand(), any::<bool>())) {
        let dw = aw.max(bw) + 1;
        let mut dst = vec![0u64; words(dw)];
        kernels::add(&mut dst, dw, &mk(a, aw), aw, &mk(b, bw), bw, signed);
        let expect = as_i128(a, aw, signed) + as_i128(b, bw, signed);
        prop_assert_eq!(dst[0], truncate(expect, dw));
    }

    #[test]
    fn sub_matches_reference(((a, aw), (b, bw), signed) in (operand(), operand(), any::<bool>())) {
        let dw = aw.max(bw) + 1;
        let mut dst = vec![0u64; words(dw)];
        kernels::sub(&mut dst, dw, &mk(a, aw), aw, &mk(b, bw), bw, signed);
        let expect = as_i128(a, aw, signed) - as_i128(b, bw, signed);
        prop_assert_eq!(dst[0], truncate(expect, dw));
    }

    #[test]
    fn mul_matches_reference(((a, aw), (b, bw), signed) in (operand(), operand(), any::<bool>())) {
        let dw = aw + bw;
        let mut dst = vec![0u64; words(dw)];
        kernels::mul(&mut dst, dw, &mk(a, aw), aw, &mk(b, bw), bw, signed);
        let expect = as_i128(a, aw, signed) * as_i128(b, bw, signed);
        let lo = truncate(expect, dw.min(64));
        prop_assert_eq!(dst[0], lo);
        if dw > 64 {
            let hi = ((expect >> 64) as u64) & essent_bits::top_mask(dw - 64);
            prop_assert_eq!(dst[1], hi);
        }
    }

    #[test]
    fn div_matches_reference(((a, aw), (b, bw), signed) in (operand(), operand(), any::<bool>())) {
        let dw = if signed { aw + 1 } else { aw };
        let mut dst = vec![0u64; words(dw)];
        kernels::div(&mut dst, dw, &mk(a, aw), aw, &mk(b, bw), bw, signed);
        let bv = as_i128(b, bw, signed);
        let expect = if bv == 0 { 0 } else { as_i128(a, aw, signed) / bv };
        prop_assert_eq!(dst[0], truncate(expect, dw));
    }

    #[test]
    fn rem_matches_reference(((a, aw), (b, bw), signed) in (operand(), operand(), any::<bool>())) {
        let dw = aw.min(bw);
        let mut dst = vec![0u64; words(dw)];
        kernels::rem(&mut dst, dw, &mk(a, aw), aw, &mk(b, bw), bw, signed);
        let av = as_i128(a, aw, signed);
        let bv = as_i128(b, bw, signed);
        let expect = if bv == 0 { av } else { av % bv };
        prop_assert_eq!(dst[0], truncate(expect, dw));
    }

    #[test]
    fn cmp_matches_reference(((a, aw), (b, bw), signed) in (operand(), operand(), any::<bool>())) {
        let got = kernels::cmp(&mk(a, aw), aw, &mk(b, bw), bw, signed);
        let expect = as_i128(a, aw, signed).cmp(&as_i128(b, bw, signed));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn bitwise_matches_reference(((a, aw), (b, bw), signed) in (operand(), operand(), any::<bool>())) {
        let dw = aw.max(bw);
        let av = truncate(as_i128(a, aw, signed), dw);
        let bv = truncate(as_i128(b, bw, signed), dw);
        let mut dst = vec![0u64; words(dw)];
        kernels::and(&mut dst, dw, &mk(a, aw), aw, &mk(b, bw), bw, signed);
        prop_assert_eq!(dst[0], av & bv);
        kernels::or(&mut dst, dw, &mk(a, aw), aw, &mk(b, bw), bw, signed);
        prop_assert_eq!(dst[0], av | bv);
        kernels::xor(&mut dst, dw, &mk(a, aw), aw, &mk(b, bw), bw, signed);
        prop_assert_eq!(dst[0], av ^ bv);
    }

    #[test]
    fn shifts_match_reference(((a, aw), sh) in (operand(), 0u64..80)) {
        // shl: width grows by sh
        let dw = (aw as u64 + sh).min(120) as u32;
        let mut dst = vec![0u64; words(dw)];
        kernels::shl(&mut dst, dw, &mk(a, aw), aw, sh);
        let expect = (a as u128) << sh;
        prop_assert_eq!(dst[0], (expect as u64) & essent_bits::top_mask(dw.min(64)));
        // shr unsigned
        let dw2 = (aw as u64).saturating_sub(sh).max(1) as u32;
        let mut dst2 = vec![0u64; words(dw2)];
        kernels::shr(&mut dst2, dw2, &mk(a, aw), aw, sh, false);
        let expect2 = if sh >= 64 { 0 } else { a >> sh };
        prop_assert_eq!(dst2[0], expect2 & essent_bits::top_mask(dw2.min(64)));
    }

    #[test]
    fn arithmetic_shr_matches_reference(((a, aw), sh) in (operand(), 0u64..60)) {
        let dw = (aw as u64).saturating_sub(sh).max(1) as u32;
        let mut dst = vec![0u64; words(dw)];
        kernels::shr(&mut dst, dw, &mk(a, aw), aw, sh, true);
        let expect = as_i128(a, aw, true) >> sh;
        prop_assert_eq!(dst[0], truncate(expect, dw));
    }

    #[test]
    fn cat_matches_reference(((a, aw), (b, bw)) in (operand(), operand())) {
        let dw = aw + bw;
        let mut dst = vec![0u64; words(dw)];
        kernels::cat(&mut dst, dw, &mk(a, aw), aw, &mk(b, bw), bw);
        let expect = ((a as u128) << bw) | (b as u128);
        prop_assert_eq!(dst[0], expect as u64);
        if dw > 64 {
            prop_assert_eq!(dst[1], (expect >> 64) as u64);
        }
    }

    #[test]
    fn reductions_match_reference((a, aw) in operand()) {
        let v = mk(a, aw);
        prop_assert_eq!(kernels::andr(&v, aw), a == essent_bits::top_mask(aw.min(64)) || aw == 0);
        prop_assert_eq!(kernels::orr(&v), a != 0);
        prop_assert_eq!(kernels::xorr(&v), a.count_ones() % 2 == 1);
    }

    #[test]
    fn bits_parse_display_roundtrip((a, aw) in operand()) {
        let v = Bits::from_u64(a, aw);
        let hex = format!("{v:x}");
        let back = Bits::parse(&format!("h{hex}"), aw).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn bits_parse_overflow_is_explicit(((a, aw), extra) in (operand(), 1u32..12)) {
        // Any in-range magnitude re-parses exactly at its own width (and
        // wider); widening the value past the declared width must error
        // rather than silently truncate.
        let v = Bits::from_u64(a, aw);
        let dec = if aw >= 64 { u128::from(a) } else { u128::from(a) % (1u128 << aw) };
        let parsed = Bits::parse(&dec.to_string(), aw).unwrap();
        prop_assert_eq!(&parsed, &v);
        let wide = Bits::parse(&dec.to_string(), aw + extra).unwrap();
        prop_assert_eq!(wide.to_u64(), parsed.to_u64());
        // Force the magnitude out of range: set a bit at or above `aw`.
        let big = dec | (1u128 << (aw + extra - 1).min(120));
        if big >= (1u128 << aw.min(120)) {
            prop_assert_eq!(
                Bits::parse(&format!("h{big:x}"), aw),
                Err(essent_bits::ParseBitsError::Overflow { width: aw })
            );
        }
    }

    #[test]
    fn extend_preserves_value(((a, aw), extra, signed) in (operand(), 1u32..40, any::<bool>())) {
        let v = Bits::from_u64(a, aw);
        let wide = v.extend(aw + extra, signed);
        let expect = as_i128(a, aw, signed);
        let got = as_i128(wide.limbs()[0], (aw + extra).min(64), signed);
        if aw + extra <= 64 {
            prop_assert_eq!(got, expect);
        } else {
            prop_assert_eq!(wide.to_i64(), Some(expect as i64));
        }
    }
}

// Wide (multi-limb) sanity: algebraic identities that don't need a
// reference implementation.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wide_add_sub_roundtrip(a in prop::collection::vec(any::<u64>(), 3), b in prop::collection::vec(any::<u64>(), 3)) {
        let w = 190;
        let a = Bits::from_limbs(a, w);
        let b = Bits::from_limbs(b, w);
        let sum = a.add(&b, w + 1);
        let back = sum.sub(&b, w + 1);
        prop_assert_eq!(back.extract(w - 1, 0), a);
    }

    #[test]
    fn wide_divrem_identity(a in prop::collection::vec(any::<u64>(), 3), b in prop::collection::vec(1u64..=u64::MAX, 2)) {
        let w = 192;
        let a = Bits::from_limbs(a, w);
        let mut bl = b;
        bl.push(0);
        let b = Bits::from_limbs(bl, w);
        prop_assume!(!b.is_zero());
        // a = q*b + r with 0 <= r < b
        let mut q = vec![0u64; words(w)];
        kernels::div(&mut q, w, a.limbs(), w, b.limbs(), w, false);
        let mut r = vec![0u64; words(w)];
        kernels::rem(&mut r, w, a.limbs(), w, b.limbs(), w, false);
        let q = Bits::from_limbs(q, w);
        let r = Bits::from_limbs(r, w);
        prop_assert_eq!(r.compare(&b, false), Ordering::Less);
        let qb = q.mul_signed(&b, w, false);
        let sum = qb.add(&r, w);
        prop_assert_eq!(sum, a);
    }

    #[test]
    fn wide_cmp_antisymmetric(a in prop::collection::vec(any::<u64>(), 2), b in prop::collection::vec(any::<u64>(), 2), signed in any::<bool>()) {
        let w = 127;
        let a = Bits::from_limbs(a, w);
        let b = Bits::from_limbs(b, w);
        let ab = kernels::cmp(a.limbs(), w, b.limbs(), w, signed);
        let ba = kernels::cmp(b.limbs(), w, a.limbs(), w, signed);
        prop_assert_eq!(ab, ba.reverse());
    }
}
